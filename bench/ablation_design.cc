/**
 * @file
 * Ablation harness for the design choices DESIGN.md calls out:
 *
 *  1. Data sharing strategy (Figure 11a's end-to-end consequence):
 *     heap conversion vs DSS vs fully shared stacks, measured on the
 *     Redis macro-benchmark rather than in isolation.
 *  2. MPK gate flavour: light (shared stacks/registers) vs full DSS
 *     gate, same workload.
 *  3. Per-compartment allocator: TLSF vs Lea under the SQLite
 *     filesystem pattern (the CubicleOS observation).
 *  4. EPT RPC server pool sizing: does the second server thread matter
 *     under a single-client load?
 */

#include <cstdio>

#include "apps/deploy.hh"
#include "apps/redis.hh"
#include "ukalloc/lea.hh"
#include "ukalloc/tlsf.hh"

using namespace flexos;

namespace {

std::string
redisMpk2()
{
    return R"(
compartments:
- c1:
    mechanism: intel-mpk
    default: True
- c2:
    mechanism: intel-mpk
libraries:
- libredis: c1
- newlib: c1
- uksched: c1
- uktime: c1
- lwip: c2
)";
}

double
throughput(SafetyConfig cfg)
{
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(std::move(cfg), opts);
    dep.start();
    double out = runRedisGetBenchmark(dep.image(), dep.libc(),
                                      dep.clientStack(), 300, 1, 32)
                     .requestsPerSec;
    dep.stop();
    return out;
}

} // namespace

int
main()
{
    std::printf("=== Ablation: FlexOS design choices ===\n\n");

    std::printf("[1] stack data sharing strategy (Redis, MPK2):\n");
    for (auto [name, strategy] :
         {std::pair{"shared-heap conversion", StackSharing::Heap},
          std::pair{"data shadow stacks (DSS)", StackSharing::Dss},
          std::pair{"fully shared stacks", StackSharing::SharedStack}}) {
        SafetyConfig cfg = SafetyConfig::parse(redisMpk2());
        cfg.stackSharing = strategy;
        std::printf("    %-26s %9.1fk req/s\n", name,
                    throughput(cfg) / 1000);
    }

    std::printf("\n[2] MPK gate flavour (Redis, MPK2):\n");
    for (auto [name, flavor] :
         {std::pair{"light (ERIM-style)", MpkGateFlavor::Light},
          std::pair{"full/DSS (HODOR-style)", MpkGateFlavor::Dss}}) {
        SafetyConfig cfg = SafetyConfig::parse(redisMpk2());
        BoundaryRule rule;
        rule.from = "*";
        rule.to = "*";
        rule.flavor = flavor;
        cfg.boundaries.push_back(rule);
        std::printf("    %-26s %9.1fk req/s\n", name,
                    throughput(cfg) / 1000);
    }

    std::printf("\n[3] allocator family on the SQLite journal pattern "
                "(steps per op, lower is faster):\n");
    {
        TlsfAllocator tlsf(1 << 20);
        LeaAllocator lea(1 << 20);
        auto steps = [](Allocator &a) {
            for (int i = 0; i < 2000; ++i) {
                void *j = a.alloc(4096);
                void *c = a.alloc(256);
                a.free(c);
                a.free(j);
            }
            return static_cast<double>(a.stats().steps) / 8000.0;
        };
        std::printf("    %-26s %9.2f steps/op\n", "TLSF (Unikraft)",
                    steps(tlsf));
        std::printf("    %-26s %9.2f steps/op\n", "Lea (CubicleOS)",
                    steps(lea));
    }

    std::printf("\n[4] EPT with nested cross-VM calls (sanity: pool "
                "absorbs re-entrant gates):\n");
    {
        SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- c1:
    mechanism: vm-ept
    default: True
- c2:
    mechanism: vm-ept
libraries:
- libredis: c1
- newlib: c1
- uksched: c1
- uktime: c1
- lwip: c2
)");
        std::printf("    %-26s %9.1fk req/s\n", "EPT2 RPC pool",
                    throughput(cfg) / 1000);
    }

    std::printf("\nexpected: DSS within a few %% of shared stacks and "
                "well above heap conversion; light gates above DSS "
                "gates; Lea below TLSF in steps/op\n");
    return 0;
}
