/**
 * @file
 * Figure 8 reproduction: partial safety ordering over the 80 Redis
 * configurations. Builds the poset, labels it with measured
 * performance (using the monotone-pruning exploration), prunes to the
 * safest configurations meeting the performance budget, and emits the
 * Graphviz rendering of the DAG.
 *
 * The paper sets the budget at 500k req/s on a peak of 1.2M (41.7% of
 * peak) and obtains 5 starred configurations; we apply the same
 * relative budget to our measured peak.
 */

#include <cstdio>

#include "explore/poset.hh"
#include "explore/wayfinder.hh"

using namespace flexos;

int
main()
{
    std::vector<ConfigPoint> space = wayfinder::fig6Space();
    SafetyPoset poset;
    for (ConfigPoint &p : space) {
        p.label = wayfinder::pointLabel(p, "redis");
        poset.add(p);
    }
    poset.buildEdges();

    // Peak performance: the no-isolation/no-hardening corner.
    double peak = wayfinder::measureRedis(space[0], 400);
    double budget = peak * (500.0 / 1199.2); // the paper's ratio

    std::size_t evaluated = poset.explore(
        [&](ConfigPoint &p) { return wayfinder::measureRedis(p, 400); },
        budget);

    std::printf("=== Figure 8: Redis configuration poset ===\n");
    std::printf("peak %.1fk req/s; budget %.1fk req/s (paper: 1199.2k "
                "and 500k)\n",
                peak / 1000, budget / 1000);
    std::printf("monotone exploration evaluated %zu of %zu "
                "configurations (%zu pruned)\n",
                evaluated, poset.size(), poset.size() - evaluated);

    std::vector<std::size_t> best = poset.safestWithin(budget);
    std::printf("\nsafest configurations meeting the budget "
                "(paper: 5 starred):\n");
    for (std::size_t i : best) {
        std::printf("  * %-52s %9.1fk req/s\n", poset.at(i).label.c_str(),
                    poset.at(i).perf / 1000);
    }
    std::printf("--> %zu starred configurations\n", best.size());

    std::printf("\n--- graphviz (render with `dot -Tpdf`) ---\n%s",
                poset.toDot(budget).c_str());
    return 0;
}
