/**
 * @file
 * Figure 11a reproduction (google-benchmark): latency of allocating
 * 1..3 shared 1-byte stack variables under the three data-sharing
 * strategies — shared-heap conversion, DSS, and fully shared stacks.
 *
 * The reported `vcycles` counter is virtual machine cycles per
 * operation (the paper's y axis); wall time of the simulator is
 * irrelevant. Expected: heap 100-300+ cycles growing with the variable
 * count; DSS and shared stack constant ~2 cycles.
 */

#include <benchmark/benchmark.h>

#include "apps/deploy.hh"
#include "core/dss.hh"

using namespace flexos;

namespace {

const char *cfgText = R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libredis: comp1
- lwip: comp2
)";

/** Measure virtual cycles of one frame with n shared 1-byte vars. */
double
measure(StackSharing sharing, int nVars, std::uint64_t iters)
{
    SafetyConfig cfg = SafetyConfig::parse(cfgText);
    cfg.stackSharing = sharing;
    DeployOptions opts;
    opts.withNet = false;
    opts.withFs = false;
    Deployment dep(cfg, opts);

    Cycles total = 0;
    bool done = false;
    dep.image().spawnIn("libredis", "alloc-bench", [&] {
        Machine &m = dep.machine();
        for (std::uint64_t i = 0; i < iters; ++i) {
            Cycles before = m.cycles();
            {
                DssFrame frame(dep.image());
                for (int v = 0; v < nVars; ++v)
                    benchmark::DoNotOptimize(frame.alloc(1));
            }
            total += m.cycles() - before;
        }
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });
    return static_cast<double>(total) / static_cast<double>(iters);
}

void
allocBench(benchmark::State &state, StackSharing sharing)
{
    int nVars = static_cast<int>(state.range(0));
    double perOp = measure(sharing, nVars, 2000);
    for (auto _ : state)
        benchmark::DoNotOptimize(perOp);
    state.counters["vcycles"] = perOp;
}

} // namespace

BENCHMARK_CAPTURE(allocBench, heap, StackSharing::Heap)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3);
BENCHMARK_CAPTURE(allocBench, dss, StackSharing::Dss)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3);
BENCHMARK_CAPTURE(allocBench, shared_stack, StackSharing::SharedStack)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3);

BENCHMARK_MAIN();
