/**
 * @file
 * Figure 10 reproduction: time to perform 5000 SQLite INSERT queries
 * (each in its own transaction) on nine system configurations:
 *
 *   Unikraft  NONE (KVM)        — the baseline LibOS
 *   Unikraft  NONE (linuxu)     — same, in ring 3 over Linux syscalls
 *   FlexOS    NONE              — flexibility enabled, no isolation
 *   FlexOS    MPK3              — fs / time / rest, MPK gates
 *   FlexOS    EPT2              — fs isolated in its own VM
 *   Linux     PT2 (process)     — syscall-based kernel isolation
 *   seL4/Genode PT3             — microkernel IPC
 *   CubicleOS NONE (linuxu)     — Lea allocator, no isolation
 *   CubicleOS MPK3              — pkey_mprotect gates + trap-and-map
 *
 * Paper values (seconds): .052 .702 .054 .106 .173 .177 .333 .657 1.557
 */

#include <cstdio>
#include <string>

#include "apps/deploy.hh"
#include "apps/minisql.hh"

using namespace flexos;

namespace {

constexpr int insertCount = 5000;

std::string
cfgFor(const char *mech, int comps)
{
    std::string m = mech;
    std::string text = "compartments:\n";
    text += "- c1:\n    mechanism: " + m + "\n    default: True\n";
    if (comps >= 2)
        text += "- c2:\n    mechanism: " + m + "\n";
    if (comps >= 3)
        text += "- c3:\n    mechanism: " + m + "\n";
    text += "libraries:\n";
    text += "- libsqlite: c1\n- newlib: c1\n- uksched: c1\n";
    // PT2/EPT2: filesystem isolated from the application.
    // PT3/MPK3: filesystem / time subsystem / rest (paper 6.4).
    text += std::string("- vfscore: ") + (comps >= 2 ? "c2" : "c1") + "\n";
    text += std::string("- uktime: ") + (comps >= 3 ? "c3" : "c1") + "\n";
    return text;
}

double
run(const std::string &cfg, DeployOptions opts)
{
    opts.withNet = false;
    Deployment dep(cfg, opts);
    double seconds = -1;
    bool done = false;
    dep.image().spawnIn("libsqlite", "sqlite-bench", [&] {
        minisql::Database db(dep.libc(), "/bench.db");
        db.open();
        db.exec("CREATE TABLE t (id INTEGER, payload TEXT)");
        Cycles start = dep.machine().cycles();
        for (int i = 0; i < insertCount; ++i) {
            auto r = db.exec("INSERT INTO t VALUES (" +
                             std::to_string(i) + ", 'payload-" +
                             std::to_string(i) + "')");
            if (!r.ok)
                panic("INSERT failed: ", r.error);
        }
        seconds = static_cast<double>(dep.machine().cycles() - start) /
                  (dep.machine().timing.cpuGhz * 1e9);
        db.close();
        done = true;
    });
    bool ok = dep.scheduler().runUntil([&] { return done; },
                                       500'000'000);
    panic_if(!ok, "sqlite bench stalled");
    return seconds;
}

/**
 * The linuxu penalty: the unikernel runs in ring 3, so every
 * privileged operation (I/O submission, page-table work, clock reads,
 * context switches) traps into Linux — several syscalls per VFS
 * operation once block-layer and mmap traffic are included.
 */
TimingModel
linuxuTiming()
{
    TimingModel tm;
    tm.vfsOpBase += 5 * tm.syscallNoKpti;
    tm.ramfsOpBase += 2 * tm.syscallNoKpti;
    tm.contextSwitch += 2 * tm.syscallNoKpti;
    return tm;
}

void
row(const char *sys, const char *profile, double seconds, double paper)
{
    std::printf("%-14s %-8s %8.3f s   (paper: %5.3f s)\n", sys, profile,
                seconds, paper);
}

} // namespace

int
main()
{
    std::printf("=== Figure 10: SQLite, %d INSERTs, one transaction "
                "each ===\n\n",
                insertCount);

    DeployOptions plain;

    double unikraftKvm = run(cfgFor("none", 1), plain);
    row("Unikraft", "NONE", unikraftKvm, 0.052);

    DeployOptions linuxu;
    linuxu.timing = linuxuTiming();
    row("Unikraft", "linuxu", run(cfgFor("none", 1), linuxu), 0.702);

    row("FlexOS", "NONE", run(cfgFor("none", 1), plain), 0.054);
    row("FlexOS", "MPK3", run(cfgFor("intel-mpk", 3), plain), 0.106);
    row("FlexOS", "EPT2", run(cfgFor("vm-ept", 2), plain), 0.173);

    row("Linux", "PT2", run(cfgFor("linux-pt", 2), plain), 0.177);
    row("seL4/Genode", "PT3", run(cfgFor("sel4-ipc", 3), plain), 0.333);

    DeployOptions cubicle;
    cubicle.timing = linuxuTiming();
    cubicle.fsAllocator = DeployOptions::FsAllocator::Lea;
    row("CubicleOS", "NONE", run(cfgFor("none", 1), cubicle), 0.657);
    row("CubicleOS", "MPK3", run(cfgFor("cubicle-mpk", 3), cubicle),
        1.557);

    std::printf("\nexpected shape: FlexOS NONE == Unikraft; MPK3 ~2x "
                "NONE; EPT2 ~= Linux; seL4 ~3x MPK3; CubicleOS MPK3 "
                "an order of magnitude above FlexOS MPK3\n");
    return 0;
}
