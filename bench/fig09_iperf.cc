/**
 * @file
 * Figure 9 reproduction: iPerf network-stack throughput against the
 * receive buffer size (16 B .. 16 KiB) for: vanilla Unikraft, FlexOS
 * with no isolation, FlexOS MPK with shared call stacks (-light),
 * FlexOS MPK with protected stacks + DSS (-dss), and FlexOS EPT with
 * two compartments.
 *
 * Expected shape (paper 6.3): FlexOS NONE == Unikraft ("you only pay
 * for what you get"); MPK converges to baseline from ~128 B buffers;
 * EPT needs ~256 B to reach ~90% of baseline.
 *
 * A second, multi-flow mode (`--flows [N...]`, also run by default)
 * drives N parallel connections through one listener and reports the
 * aggregate goodput, exercising the accept backlog, the flow table and
 * per-connection reassembly under concurrent traffic. With `--cores
 * [M...]` the server machine simulates M cores: RSS steers each
 * connection to one core's RX queue, the per-queue pollers and flow
 * workers are pinned there, and aggregate goodput is expected to scale
 * with cores (wall time is the furthest-ahead core's clock). On one
 * core it holds steady (not multiplying) as flows are added; the
 * interesting signals are fairness and the absence of collapse.
 *
 * `--json [path]` additionally writes the flows x cores matrix to a
 * JSON snapshot (default BENCH_fig09.json) for regression tracking.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/deploy.hh"
#include "apps/iperf.hh"
#include "explore/wayfinder.hh"

using namespace flexos;

namespace {

const char *noneCfg = R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libiperf: all
- newlib: all
- uksched: all
- lwip: all
)";

std::string
mpk2Cfg(const char *flavor)
{
    return std::string(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libiperf: comp1
- newlib: comp2
- uksched: comp2
- lwip: comp2
boundaries:
- '*' -> '*': {gate: )") + flavor + "}\n";
}

const char *ept2Cfg = R"(
compartments:
- comp1:
    mechanism: vm-ept
    default: True
- comp2:
    mechanism: vm-ept
libraries:
- libiperf: comp1
- newlib: comp2
- uksched: comp2
- lwip: comp2
)";

double
run(const std::string &cfgText, std::size_t bufSize,
    StackSharing sharing = StackSharing::Dss)
{
    SafetyConfig cfg = SafetyConfig::parse(cfgText);
    cfg.stackSharing = sharing;
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    dep.start();
    IperfResult res = runIperf(dep.image(), dep.libc(),
                               dep.clientStack(), 512 * 1024, bufSize);
    dep.stop();
    return res.gbitPerSec;
}

constexpr std::size_t multiBufSize = 16 * 1024;
constexpr std::uint64_t multiBytesPerFlow = 256 * 1024;

IperfResult
runMulti(const std::string &cfgText, unsigned flows, std::size_t bufSize,
         std::uint64_t bytesPerFlow, unsigned cores = 1)
{
    SafetyConfig cfg = SafetyConfig::parse(cfgText);
    cfg.stackSharing = StackSharing::Dss;
    cfg.cores = cores ? cores : 1;
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    dep.start();
    IperfResult res =
        runIperfMulti(dep.image(), dep.libc(), dep.clientStack(),
                      bytesPerFlow, bufSize, flows);
    dep.stop();
    if (std::getenv("FLEXOS_FIG09_DEBUG")) {
        Machine &m = dep.machine();
        for (unsigned c = 0; c < m.coreCount(); ++c)
            std::fprintf(stderr, "  core%u: %llu cycles\n", c,
                         static_cast<unsigned long long>(
                             m.coreCycles(static_cast<int>(c))));
        for (const auto &[k, v] : m.counters())
            if (k.rfind("sched.", 0) == 0 || k.rfind("nic.", 0) == 0 ||
                k.rfind("machine.", 0) == 0 || k.rfind("tcp.", 0) == 0)
                std::fprintf(stderr, "  %s = %llu\n", k.c_str(),
                             static_cast<unsigned long long>(v));
    }
    return res;
}

void
multiFlowTable(const std::vector<unsigned> &flowCounts,
               const std::vector<unsigned> &coreCounts)
{
    std::printf("\n=== Multi-flow iPerf: aggregate goodput (Gb/s) vs "
                "concurrent connections (FlexOS-NONE, %zu B buffer) "
                "===\n",
                multiBufSize);
    std::printf("%-8s %-8s %-12s %-14s %-12s\n", "flows", "cores",
                "aggregate", "per-flow avg", "vs first");

    double single = 0;
    for (unsigned flows : flowCounts) {
        for (unsigned cores : coreCounts) {
            IperfResult res = runMulti(noneCfg, flows, multiBufSize,
                                       multiBytesPerFlow, cores);
            if (single == 0)
                single = res.gbitPerSec;
            char ratio[32];
            std::snprintf(ratio, sizeof(ratio), "%.2fx",
                          single > 0 ? res.gbitPerSec / single : 0);
            std::printf("%-8u %-8u %-12.3f %-14.3f %-12s\n", flows,
                        cores, res.gbitPerSec,
                        res.gbitPerSec / flows, ratio);
        }
    }
    if (coreCounts.size() == 1 && coreCounts[0] == 1)
        std::printf("\nexpected shape: aggregate holds (single "
                    "simulated core); no collapse as flows scale\n");
    else
        std::printf("\nexpected shape: aggregate scales with cores "
                    "while flows >= cores (RSS spreads connections); "
                    "holds steady per core count as flows grow\n");
}

/**
 * The flows x cores goodput matrix as a JSON snapshot
 * (BENCH_fig09.json): the regression-tracked artefact for the SMP
 * machine model.
 */
void
emitJson(const char *path, const std::vector<unsigned> &flowCounts,
         const std::vector<unsigned> &coreCounts)
{
    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "fig09_iperf: cannot write %s\n", path);
        std::exit(2);
    }
    // The audit-score axis: the static boundary-audit hazard score of
    // the swept configuration (one config here, so one top-level
    // field; lower = cleaner boundaries).
    ConfigPoint nonePt;
    nonePt.partition = {0, 0, 0, 0};
    nonePt.hardening.assign(4, 0);
    nonePt.mechanismRank = 0; // none
    std::fprintf(f, "{\n"
                    "  \"bench\": \"fig09_iperf_multiflow\",\n"
                    "  \"config\": \"flexos-none\",\n"
                    "  \"audit_score\": %d,\n"
                    "  \"buf_bytes\": %zu,\n"
                    "  \"bytes_per_flow\": %llu,\n"
                    "  \"results\": [\n",
                 wayfinder::auditScore(nonePt, "libiperf"), multiBufSize,
                 static_cast<unsigned long long>(multiBytesPerFlow));
    bool first = true;
    for (unsigned flows : flowCounts) {
        for (unsigned cores : coreCounts) {
            IperfResult res = runMulti(noneCfg, flows, multiBufSize,
                                       multiBytesPerFlow, cores);
            std::fprintf(f,
                         "%s    {\"flows\": %u, \"cores\": %u, "
                         "\"gbps\": %.3f, \"seconds\": %.6f, "
                         "\"bytes\": %llu}",
                         first ? "" : ",\n", flows, cores,
                         res.gbitPerSec, res.seconds,
                         static_cast<unsigned long long>(res.bytes));
            first = false;
        }
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    // `--flows [N...]` runs only the multi-flow table, optionally with
    // an explicit list of connection counts. `--cores [M...]` adds
    // simulated core counts as a second sweep dimension, and
    // `--json [path]` writes the matrix to a snapshot file.
    std::vector<unsigned> flowCounts;
    std::vector<unsigned> coreCounts;
    bool flowsMode = false;
    bool jsonMode = false;
    const char *jsonPath = "BENCH_fig09.json";
    std::vector<unsigned> *sink = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--flows") == 0) {
            flowsMode = true;
            sink = &flowCounts;
            continue;
        }
        if (std::strcmp(argv[i], "--cores") == 0) {
            flowsMode = true;
            sink = &coreCounts;
            continue;
        }
        if (std::strcmp(argv[i], "--json") == 0) {
            flowsMode = true;
            jsonMode = true;
            if (i + 1 < argc && argv[i + 1][0] != '-' &&
                (argv[i + 1][0] < '0' || argv[i + 1][0] > '9'))
                jsonPath = argv[++i];
            sink = nullptr;
            continue;
        }
        char *end = nullptr;
        unsigned long v = std::strtoul(argv[i], &end, 10);
        if (!sink || end == argv[i] || *end != '\0' || v == 0 ||
            v > 1024) {
            std::fprintf(stderr,
                         "fig09_iperf: invalid argument '%s' (usage: "
                         "[--flows N...] [--cores M...] "
                         "[--json [path]])\n",
                         argv[i]);
            return 2;
        }
        sink->push_back(static_cast<unsigned>(v));
    }
    if (flowsMode) {
        if (flowCounts.empty())
            flowCounts = {1, 2, 4, 8, 16, 32};
        if (coreCounts.empty())
            coreCounts = {1};
        if (jsonMode)
            emitJson(jsonPath, flowCounts, coreCounts);
        else
            multiFlowTable(flowCounts, coreCounts);
        return 0;
    }

    std::printf("=== Figure 9: iPerf throughput (Gb/s) vs receive "
                "buffer size ===\n");
    std::printf("%-8s %-10s %-12s %-12s %-12s %-10s\n", "bufsize",
                "Unikraft", "FlexOS-NONE", "MPK2-light", "MPK2-dss",
                "EPT2");

    for (unsigned shift = 4; shift <= 14; ++shift) {
        std::size_t buf = std::size_t(1) << shift;
        // Vanilla Unikraft is the same code with the flexibility layer
        // compiled out; in FlexOS terms, the NONE backend.
        double unikraft = run(noneCfg, buf);
        double none = run(noneCfg, buf);
        double light = run(mpk2Cfg("light"), buf,
                           StackSharing::SharedStack);
        double dss = run(mpk2Cfg("dss"), buf, StackSharing::Dss);
        double ept = run(ept2Cfg, buf);
        std::printf("%-8zu %-10.3f %-12.3f %-12.3f %-12.3f %-10.3f\n",
                    buf, unikraft, none, light, dss, ept);
    }

    std::printf("\nexpected shape: NONE==Unikraft; light >= dss >= ept "
                "at small buffers; all converge as the buffer grows\n");

    multiFlowTable({1, 2, 4, 8, 16, 32}, {1});
    return 0;
}
