/**
 * @file
 * Figure 9 reproduction: iPerf network-stack throughput against the
 * receive buffer size (16 B .. 16 KiB) for: vanilla Unikraft, FlexOS
 * with no isolation, FlexOS MPK with shared call stacks (-light),
 * FlexOS MPK with protected stacks + DSS (-dss), and FlexOS EPT with
 * two compartments.
 *
 * Expected shape (paper 6.3): FlexOS NONE == Unikraft ("you only pay
 * for what you get"); MPK converges to baseline from ~128 B buffers;
 * EPT needs ~256 B to reach ~90% of baseline.
 *
 * A second, multi-flow mode (`--flows [N...]`, also run by default)
 * drives N parallel connections through one listener and reports the
 * aggregate goodput, exercising the accept backlog, the flow table and
 * per-connection reassembly under concurrent traffic. The machine
 * model is a single simulated core, so aggregate goodput is expected
 * to hold steady (not multiply) as flows are added; the interesting
 * signals are fairness and the absence of collapse.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "apps/deploy.hh"
#include "apps/iperf.hh"

using namespace flexos;

namespace {

const char *noneCfg = R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libiperf: all
- newlib: all
- uksched: all
- lwip: all
)";

std::string
mpk2Cfg(const char *flavor)
{
    return std::string(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libiperf: comp1
- newlib: comp2
- uksched: comp2
- lwip: comp2
boundaries:
- '*' -> '*': {gate: )") + flavor + "}\n";
}

const char *ept2Cfg = R"(
compartments:
- comp1:
    mechanism: vm-ept
    default: True
- comp2:
    mechanism: vm-ept
libraries:
- libiperf: comp1
- newlib: comp2
- uksched: comp2
- lwip: comp2
)";

double
run(const std::string &cfgText, std::size_t bufSize,
    StackSharing sharing = StackSharing::Dss)
{
    SafetyConfig cfg = SafetyConfig::parse(cfgText);
    cfg.stackSharing = sharing;
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    dep.start();
    IperfResult res = runIperf(dep.image(), dep.libc(),
                               dep.clientStack(), 512 * 1024, bufSize);
    dep.stop();
    return res.gbitPerSec;
}

IperfResult
runMulti(const std::string &cfgText, unsigned flows, std::size_t bufSize,
         std::uint64_t bytesPerFlow)
{
    SafetyConfig cfg = SafetyConfig::parse(cfgText);
    cfg.stackSharing = StackSharing::Dss;
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    dep.start();
    IperfResult res =
        runIperfMulti(dep.image(), dep.libc(), dep.clientStack(),
                      bytesPerFlow, bufSize, flows);
    dep.stop();
    return res;
}

void
multiFlowTable(const std::vector<unsigned> &flowCounts)
{
    constexpr std::size_t bufSize = 16 * 1024;
    constexpr std::uint64_t bytesPerFlow = 256 * 1024;

    std::printf("\n=== Multi-flow iPerf: aggregate goodput (Gb/s) vs "
                "concurrent connections (FlexOS-NONE, %zu B buffer) "
                "===\n",
                bufSize);
    std::printf("%-8s %-12s %-14s %-12s\n", "flows", "aggregate",
                "per-flow avg", "vs first");

    double single = 0;
    for (unsigned flows : flowCounts) {
        IperfResult res =
            runMulti(noneCfg, flows, bufSize, bytesPerFlow);
        if (flows == 1 || single == 0)
            single = res.gbitPerSec;
        char ratio[32];
        std::snprintf(ratio, sizeof(ratio), "%.2fx",
                      single > 0 ? res.gbitPerSec / single : 0);
        std::printf("%-8u %-12.3f %-14.3f %-12s\n", flows,
                    res.gbitPerSec, res.gbitPerSec / flows, ratio);
    }
    std::printf("\nexpected shape: aggregate holds (single simulated "
                "core); no collapse as flows scale\n");
}

} // namespace

int
main(int argc, char **argv)
{
    // `--flows [N...]` runs only the multi-flow table, optionally with
    // an explicit list of connection counts.
    if (argc > 1 && std::strcmp(argv[1], "--flows") == 0) {
        std::vector<unsigned> counts;
        for (int i = 2; i < argc; ++i) {
            char *end = nullptr;
            unsigned long v = std::strtoul(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || v == 0 || v > 1024) {
                std::fprintf(stderr,
                             "fig09_iperf: invalid flow count '%s' "
                             "(expected 1..1024)\n",
                             argv[i]);
                return 2;
            }
            counts.push_back(static_cast<unsigned>(v));
        }
        if (counts.empty())
            counts = {1, 2, 4, 8, 16, 32};
        multiFlowTable(counts);
        return 0;
    }

    std::printf("=== Figure 9: iPerf throughput (Gb/s) vs receive "
                "buffer size ===\n");
    std::printf("%-8s %-10s %-12s %-12s %-12s %-10s\n", "bufsize",
                "Unikraft", "FlexOS-NONE", "MPK2-light", "MPK2-dss",
                "EPT2");

    for (unsigned shift = 4; shift <= 14; ++shift) {
        std::size_t buf = std::size_t(1) << shift;
        // Vanilla Unikraft is the same code with the flexibility layer
        // compiled out; in FlexOS terms, the NONE backend.
        double unikraft = run(noneCfg, buf);
        double none = run(noneCfg, buf);
        double light = run(mpk2Cfg("light"), buf,
                           StackSharing::SharedStack);
        double dss = run(mpk2Cfg("dss"), buf, StackSharing::Dss);
        double ept = run(ept2Cfg, buf);
        std::printf("%-8zu %-10.3f %-12.3f %-12.3f %-12.3f %-10.3f\n",
                    buf, unikraft, none, light, dss, ept);
    }

    std::printf("\nexpected shape: NONE==Unikraft; light >= dss >= ept "
                "at small buffers; all converge as the buffer grows\n");

    multiFlowTable({1, 2, 4, 8, 16, 32});
    return 0;
}
