/**
 * @file
 * Figure 9 reproduction: iPerf network-stack throughput against the
 * receive buffer size (16 B .. 16 KiB) for: vanilla Unikraft, FlexOS
 * with no isolation, FlexOS MPK with shared call stacks (-light),
 * FlexOS MPK with protected stacks + DSS (-dss), and FlexOS EPT with
 * two compartments.
 *
 * Expected shape (paper 6.3): FlexOS NONE == Unikraft ("you only pay
 * for what you get"); MPK converges to baseline from ~128 B buffers;
 * EPT needs ~256 B to reach ~90% of baseline.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "apps/deploy.hh"
#include "apps/iperf.hh"

using namespace flexos;

namespace {

const char *noneCfg = R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libiperf: all
- newlib: all
- uksched: all
- lwip: all
)";

std::string
mpk2Cfg(const char *flavor)
{
    return std::string(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libiperf: comp1
- newlib: comp2
- uksched: comp2
- lwip: comp2
mpk_gate: )") + flavor + "\n";
}

const char *ept2Cfg = R"(
compartments:
- comp1:
    mechanism: vm-ept
    default: True
- comp2:
    mechanism: vm-ept
libraries:
- libiperf: comp1
- newlib: comp2
- uksched: comp2
- lwip: comp2
)";

double
run(const std::string &cfgText, std::size_t bufSize,
    StackSharing sharing = StackSharing::Dss)
{
    SafetyConfig cfg = SafetyConfig::parse(cfgText);
    cfg.stackSharing = sharing;
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    dep.start();
    IperfResult res = runIperf(dep.image(), dep.libc(),
                               dep.clientStack(), 512 * 1024, bufSize);
    dep.stop();
    return res.gbitPerSec;
}

} // namespace

int
main()
{
    std::printf("=== Figure 9: iPerf throughput (Gb/s) vs receive "
                "buffer size ===\n");
    std::printf("%-8s %-10s %-12s %-12s %-12s %-10s\n", "bufsize",
                "Unikraft", "FlexOS-NONE", "MPK2-light", "MPK2-dss",
                "EPT2");

    for (unsigned shift = 4; shift <= 14; ++shift) {
        std::size_t buf = std::size_t(1) << shift;
        // Vanilla Unikraft is the same code with the flexibility layer
        // compiled out; in FlexOS terms, the NONE backend.
        double unikraft = run(noneCfg, buf);
        double none = run(noneCfg, buf);
        double light = run(mpk2Cfg("light"), buf,
                           StackSharing::SharedStack);
        double dss = run(mpk2Cfg("dss"), buf, StackSharing::Dss);
        double ept = run(ept2Cfg, buf);
        std::printf("%-8zu %-10.3f %-12.3f %-12.3f %-12.3f %-10.3f\n",
                    buf, unikraft, none, light, dss, ept);
    }

    std::printf("\nexpected shape: NONE==Unikraft; light >= dss >= ept "
                "at small buffers; all converge as the buffer grows\n");
    return 0;
}
