/**
 * @file
 * Figure 11b reproduction (google-benchmark): raw gate latencies —
 * plain function call, MPK light gate, MPK DSS gate, EPT RPC gate,
 * and Linux system calls with/without KPTI.
 *
 * The `vcycles` counter is virtual cycles per gate round trip; paper
 * values: function 2, MPK-light 62, MPK-dss 108, EPT 462, syscall 470,
 * syscall-nokpti 146.
 */

#include <benchmark/benchmark.h>

#include <functional>
#include <vector>

#include "apps/deploy.hh"

using namespace flexos;

namespace {

std::string
twoComp(const char *mech, const char *gateFlavor = nullptr,
        const char *extraRule = nullptr)
{
    std::string text = std::string(R"(
compartments:
- c1:
    mechanism: )") + mech + R"(
    default: True
- c2:
    mechanism: )" + mech + R"(
libraries:
- libredis: c1
- lwip: c2
)";
    if (gateFlavor || extraRule)
        text += "boundaries:\n";
    if (gateFlavor)
        text += std::string("- '*' -> '*': {gate: ") + gateFlavor +
                "}\n";
    if (extraRule)
        text += std::string("- ") + extraRule + "\n";
    return text;
}

/** Average virtual cycles of one cross-compartment gate round trip. */
double
gateCost(const std::string &cfgText, bool sameCompartment = false,
         bool noKpti = false)
{
    DeployOptions opts;
    opts.withNet = false;
    opts.withFs = false;
    if (noKpti) {
        // Reboot with KPTI disabled: syscalls get the cheap path.
        opts.timing.syscallKpti = opts.timing.syscallNoKpti;
    }
    Deployment dep(cfgText, opts);

    const std::string callee = sameCompartment ? "libredis" : "lwip";
    const char *entry = sameCompartment ? "redis_main" : "recv";
    constexpr std::uint64_t iters = 2000;

    Cycles measured = 0;
    bool done = false;
    dep.image().spawnIn("libredis", "gate-bench", [&] {
        Machine &m = dep.machine();
        Cycles before = m.cycles();
        for (std::uint64_t i = 0; i < iters; ++i)
            dep.image().gate(callee, entry, [] {});
        measured = m.cycles() - before;
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });
    return static_cast<double>(measured) / static_cast<double>(iters);
}

void
gateBench(benchmark::State &state, const std::string &cfg,
          bool sameComp, bool noKpti)
{
    double perOp = gateCost(cfg, sameComp, noKpti);
    for (auto _ : state)
        benchmark::DoNotOptimize(perOp);
    state.counters["vcycles"] = perOp;
}

/**
 * Average virtual cycles per LOGICAL call when calls ride vectored
 * crossings of the given width — the amortization the `batch:` knob
 * buys: one backend transition (one EPT doorbell) per chunk plus a
 * per-slot dispatch cost, instead of a full round trip per call.
 * width 1 is the identity case and must match gateCost() exactly.
 */
double
batchedGateCost(const std::string &cfgText, std::size_t width)
{
    DeployOptions opts;
    opts.withNet = false;
    opts.withFs = false;
    Deployment dep(cfgText, opts);

    constexpr std::uint64_t iters = 2000;
    static_assert(iters % 8 == 0 && iters % 4 == 0,
                  "iters must divide evenly into batch widths");
    std::vector<std::function<void()>> bodies(width, [] {});

    Cycles measured = 0;
    bool done = false;
    dep.image().spawnIn("libredis", "gate-bench", [&] {
        Machine &m = dep.machine();
        Cycles before = m.cycles();
        for (std::uint64_t i = 0; i < iters; i += width)
            dep.image().gateBatch("lwip", "recv", bodies);
        measured = m.cycles() - before;
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });
    return static_cast<double>(measured) / static_cast<double>(iters);
}

void
batchedGateBench(benchmark::State &state, const std::string &cfg,
                 std::size_t width)
{
    double perOp = batchedGateCost(cfg, width);
    for (auto _ : state)
        benchmark::DoNotOptimize(perOp);
    state.counters["vcycles"] = perOp;
}

} // namespace

BENCHMARK_CAPTURE(gateBench, function_call, twoComp("intel-mpk"), true,
                  false);
BENCHMARK_CAPTURE(gateBench, mpk_light, twoComp("intel-mpk", "light"),
                  false, false);
BENCHMARK_CAPTURE(gateBench, mpk_dss, twoComp("intel-mpk", "dss"), false,
                  false);
BENCHMARK_CAPTURE(gateBench, ept, twoComp("vm-ept"), false, false);
BENCHMARK_CAPTURE(gateBench, syscall, twoComp("linux-pt"), false, false);
BENCHMARK_CAPTURE(gateBench, syscall_nokpti, twoComp("linux-pt"), false,
                  true);
BENCHMARK_CAPTURE(gateBench, sel4_ipc, twoComp("sel4-ipc"), false,
                  false);
BENCHMARK_CAPTURE(gateBench, cubicle_pkey_mprotect,
                  twoComp("cubicle-mpk"), false, false);
BENCHMARK_CAPTURE(gateBench, cheri_sketch, twoComp("cheri"), false,
                  false);

// --- Vectored crossings: the `batch:` / `coalesce:` / `elide:` knobs.
// batch: 1 is regression-pinned to the sequential gate (vcycle-
// identical by construction); batch: 8 amortizes the transition —
// one EPT doorbell per eight calls — and the EPT step-change is the
// headline number. The elide rows show repeated same-boundary
// crossings shedding the entry-validate / return-scrub charges.
BENCHMARK_CAPTURE(batchedGateBench, ept_batch1,
                  twoComp("vm-ept", nullptr, "'*' -> '*': {batch: 1}"),
                  1);
BENCHMARK_CAPTURE(batchedGateBench, ept_batch4,
                  twoComp("vm-ept", nullptr, "'*' -> '*': {batch: 4}"),
                  4);
BENCHMARK_CAPTURE(batchedGateBench, ept_batch8,
                  twoComp("vm-ept", nullptr, "'*' -> '*': {batch: 8}"),
                  8);
BENCHMARK_CAPTURE(batchedGateBench, ept_batch8_coalesce,
                  twoComp("vm-ept", nullptr,
                          "'*' -> '*': {batch: 8, coalesce: 2000}"),
                  8);
BENCHMARK_CAPTURE(batchedGateBench, mpk_dss_batch8,
                  twoComp("intel-mpk", "dss", "'*' -> '*': {batch: 8}"),
                  8);
BENCHMARK_CAPTURE(batchedGateBench, cheri_batch8,
                  twoComp("cheri", nullptr, "'*' -> '*': {batch: 8}"),
                  8);
BENCHMARK_CAPTURE(gateBench, mpk_dss_validate,
                  twoComp("intel-mpk", "dss",
                          "'*' -> '*': {validate: true}"),
                  false, false);
BENCHMARK_CAPTURE(gateBench, mpk_dss_elide_both,
                  twoComp("intel-mpk", "dss",
                          "'*' -> '*': {validate: true, elide: both}"),
                  false, false);
BENCHMARK_CAPTURE(gateBench, ept_elide_scrub,
                  twoComp("vm-ept", nullptr,
                          "'*' -> '*': {elide: scrub}"),
                  false, false);

BENCHMARK_MAIN();
