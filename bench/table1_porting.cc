/**
 * @file
 * Table 1 reproduction: porting effort per component — patch size
 * (including automatic gate replacements) and the number of manually
 * annotated shared variables — as recorded in the library registry,
 * plus the toolchain's view of how many annotations it instantiates
 * for a representative configuration.
 */

#include <cstdio>

#include "core/toolchain.hh"

using namespace flexos;

int
main()
{
    LibraryRegistry reg = LibraryRegistry::standard();

    std::printf("=== Table 1: porting effort ===\n");
    std::printf("%-28s %-14s %s\n", "Libs/Apps", "Patch size",
                "Shared vars");

    struct Entry
    {
        const char *label;
        const char *lib;
    };
    const Entry entries[] = {
        {"TCP/IP stack (LwIP)", "lwip"},
        {"scheduler (uksched)", "uksched"},
        {"filesystem (ramfs, vfscore)", "vfscore"},
        {"time subsystem (uktime)", "uktime"},
        {"Redis", "libredis"},
        {"Nginx", "libnginx"},
        {"SQLite", "libsqlite"},
        {"iPerf", "libiperf"},
    };
    for (const Entry &e : entries) {
        const LibraryInfo &info = reg.get(e.lib);
        std::printf("%-28s +%-5d/ -%-5d %d\n", e.label, info.patchAdded,
                    info.patchRemoved, info.sharedVars);
    }

    // Demonstrate the build-time instantiation: how many annotations
    // and gates the toolchain touches for a simple Redis configuration
    // (the paper reports ~1 KLoC of generated modification).
    Machine mach;
    MachineScope scope(mach);
    Scheduler sched(mach);
    Toolchain tc(reg);
    SafetyConfig cfg = SafetyConfig::parse(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libredis: comp1
- newlib: comp1
- uksched: comp1
- uktime: comp1
- lwip: comp2
)");
    cfg.heapBytes = 1 << 20;
    cfg.sharedHeapBytes = 1 << 20;
    auto img = tc.build(mach, sched, cfg);
    std::printf("\ntoolchain build for a 2-compartment Redis image:\n");
    std::printf("  gates instantiated:       %d\n",
                tc.report().gatesInserted);
    std::printf("  annotations instantiated: %d\n",
                tc.report().annotationsReplaced);
    std::printf("  transformation log lines: %zu\n",
                tc.report().transformations.size());
    return 0;
}
