/**
 * @file
 * Figure 7 reproduction: Nginx vs. Redis normalized performance for
 * the same 80 configurations, grouped by compartment count — showing
 * that isolating/hardening the same components costs the two
 * applications differently (uneven, hard-to-predict slowdowns).
 *
 * Extended with the per-boundary dimensions of the gate-policy matrix:
 * the mixed-mechanism sweep ({none, mpk, ept, cheri} per block), the
 * per-boundary MPK gate-flavour sweep ({light, dss} per block), an
 * asymmetric-boundary demonstration (EPT->MPK returns skipping the
 * return-side scrub are measurably cheaper), and the closed-loop
 * gate-storm containment demo: the runtime policy controller detects a
 * storming boundary from its counters, tightens it through quiesced
 * matrix swaps until the storm fails fast, and the well-behaved flows
 * recover to near the no-attack baseline.
 *
 * `--controller` runs only the closed-loop section; `--json [path]`
 * additionally writes its measurements to a snapshot file (default
 * BENCH_fig07_controller.json), the regression-tracked artefact.
 *
 * `--attack <class|all>` replaces the storm with the flexos::adversary
 * catalogue: each attack class is mounted round by round against a
 * deliberately attackable config, with one controller epoch between
 * rounds, until the class is fully contained — measuring
 * time-to-containment (controller epochs and vcycles) per class and
 * dumping the controller's decision trace. With `--json` the result
 * goes to BENCH_attack.json.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "adversary/adversary.hh"
#include "apps/deploy.hh"
#include "apps/redis.hh"
#include "explore/wayfinder.hh"

using namespace flexos;

namespace {

/** Measurements of the closed-loop containment demo. */
struct ClosedLoopResult
{
    double baseline = 0;  ///< req/s, no attacker
    double attacked = 0;  ///< req/s, storm + static matrix
    double contained = 0; ///< req/s, storm + controller
    bool containedOk = false; ///< att->sys reached overflow: fail
    std::uint64_t containEpochs = 0; ///< controller epochs to contain
    std::uint64_t swaps = 0;
    std::uint64_t tightens = 0;
    std::uint64_t alerts = 0;
};

/**
 * The demo image: Redis (with the whole network path) in the default
 * compartment, the scheduler in `sys`, and a compromised `att`
 * compartment whose only legitimate channel is the adaptive att -> sys
 * edge. att -> app is denied outright, so the attacker's probe of it
 * is a deny witness the controller alerts on.
 */
std::string
closedLoopConfig(bool withController)
{
    std::string cfg = R"(compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- att:
    mechanism: intel-mpk
libraries:
- libredis: app
- newlib: app
- lwip: app
- uksched: sys
- uktime: att
boundaries:
- att -> sys: {adaptive: true}
- att -> app: {deny: true}
)";
    if (withController) {
        // calm_epochs is set high so containment stays pinned for the
        // whole measurement: the relax path is exercised by the unit
        // tests, this demo is about the tighten half of the loop.
        cfg += "controller:\n"
               "  epoch: 300000\n"
               "  storm_threshold: 100\n"
               "  calm_epochs: 1000\n";
    }
    return cfg;
}

/**
 * The attacker: probe the denied edge once, then storm the att -> sys
 * boundary in bursts, yielding between bursts (a storm that never
 * yields would not even need throttling to be noticed — it would
 * simply hang the machine). Once the controller has escalated the
 * edge to `overflow: fail`, the burst dies fast with ThrottledCrossing
 * and the attacker backs off — freeing the core for the real flows.
 */
void
attackerLoop(Deployment &dep, const bool &stop)
{
    Image &img = dep.image();
    try {
        img.gate("libredis", "redis_handle_conn", [] {});
    } catch (const DeniedCrossing &) {
        // The deny witness the controller's alert rule picks up.
    }
    constexpr std::uint64_t burst = 400;
    while (!stop) {
        try {
            for (std::uint64_t i = 0; i < burst && !stop; ++i)
                img.gate("uksched", "yield", [] {});
        } catch (const ThrottledCrossing &) {
            dep.scheduler().sleepNs(2'000'000);
        }
        dep.scheduler().yield();
    }
}

ClosedLoopResult
runClosedLoop(std::uint64_t requests)
{
    ClosedLoopResult r;
    DeployOptions opts;
    opts.withFs = false;
    opts.heapBytes = 2 * 1024 * 1024;
    opts.sharedHeapBytes = 1 * 1024 * 1024;

    // No-attack baseline: same image, controller sampling but with
    // nothing to adapt — the number the contained run must recover to.
    {
        Deployment dep(closedLoopConfig(true), opts);
        dep.start();
        r.baseline = runRedisGetBenchmark(dep.image(), dep.libc(),
                                          dep.clientStack(), requests,
                                          1, 50)
                         .requestsPerSec;
        dep.stop();
    }

    // Static matrix under storm: the damage a fixed configuration
    // takes from a boundary it cannot retune.
    {
        Deployment dep(closedLoopConfig(false), opts);
        dep.start();
        bool stop = false;
        dep.image().spawnIn("uktime", "storm",
                            [&] { attackerLoop(dep, stop); });
        r.attacked = runRedisGetBenchmark(dep.image(), dep.libc(),
                                          dep.clientStack(), requests,
                                          1, 50)
                         .requestsPerSec;
        stop = true;
        dep.stop();
    }

    // Closed loop: let the controller observe and contain the storm
    // (escalating att -> sys to overflow: fail through quiesced
    // swaps), then measure what the well-behaved flows get back.
    {
        Deployment dep(closedLoopConfig(true), opts);
        dep.start();
        bool stop = false;
        dep.image().spawnIn("uktime", "storm",
                            [&] { attackerLoop(dep, stop); });
        Image &img = dep.image();
        int att = img.compartmentIndexOf("uktime");
        int sys = img.compartmentIndexOf("uksched");
        PolicyController *ctl = dep.policyController();
        dep.scheduler().runUntil(
            [&] {
                return img.policyFor(att, sys).overflow ==
                           RateOverflow::Fail ||
                       ctl->epochs() >= 20;
            },
            2'000'000);
        r.containedOk = img.policyFor(att, sys).overflow ==
                        RateOverflow::Fail;
        r.containEpochs = ctl->epochs();
        r.contained = runRedisGetBenchmark(dep.image(), dep.libc(),
                                           dep.clientStack(), requests,
                                           1, 50)
                          .requestsPerSec;
        Machine &m = dep.machine();
        r.swaps = m.counter("matrix.swaps");
        r.tightens = m.counter("controller.tightens");
        r.alerts = m.counter("controller.alerts");
        stop = true;
        dep.stop();
    }
    return r;
}

void
emitControllerJson(const char *path, const ClosedLoopResult &r)
{
    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "fig07_scatter: cannot write %s\n", path);
        std::exit(2);
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"fig07_controller_closed_loop\",\n"
        "  \"config\": \"att->sys adaptive, controller epoch 300000, "
        "storm_threshold 100\",\n"
        "  \"baseline_req_per_sec\": %.1f,\n"
        "  \"attacked_req_per_sec\": %.1f,\n"
        "  \"contained_req_per_sec\": %.1f,\n"
        "  \"recovery_ratio\": %.3f,\n"
        "  \"contained\": %s,\n"
        "  \"containment_epochs\": %lu,\n"
        "  \"matrix_swaps\": %lu,\n"
        "  \"controller_tightens\": %lu,\n"
        "  \"controller_alerts\": %lu\n"
        "}\n",
        r.baseline, r.attacked, r.contained,
        r.baseline > 0 ? r.contained / r.baseline : 0.0,
        r.containedOk ? "true" : "false",
        static_cast<unsigned long>(r.containEpochs),
        static_cast<unsigned long>(r.swaps),
        static_cast<unsigned long>(r.tightens),
        static_cast<unsigned long>(r.alerts));
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

void
closedLoopSection(bool jsonMode, const char *jsonPath)
{
    ClosedLoopResult cl = runClosedLoop(300);
    std::printf("\n=== Closed-loop gate-storm containment: runtime "
                "policy controller ===\n");
    std::printf("  no attack (baseline)        : %10.1f req/s\n",
                cl.baseline);
    std::printf("  storm, static matrix        : %10.1f req/s "
                "(%.1f%% of baseline)\n",
                cl.attacked, 100.0 * cl.attacked / cl.baseline);
    std::printf("  storm, controller contained : %10.1f req/s "
                "(%.1f%% of baseline)\n",
                cl.contained, 100.0 * cl.contained / cl.baseline);
    std::printf("  contained to overflow: fail : %s, after %lu "
                "epochs\n",
                cl.containedOk ? "yes" : "NO",
                static_cast<unsigned long>(cl.containEpochs));
    std::printf("  matrix.swaps %lu, controller.tightens %lu, "
                "controller.alerts %lu (deny probe witnessed)\n",
                static_cast<unsigned long>(cl.swaps),
                static_cast<unsigned long>(cl.tightens),
                static_cast<unsigned long>(cl.alerts));
    if (jsonMode)
        emitControllerJson(jsonPath, cl);
}

// --- Adversary closed loop (`--attack`) ------------------------------

/** One attack round's tally, stamped with the controller epoch. */
struct AttackRound
{
    std::uint64_t epoch = 0;
    std::size_t contained = 0;
    std::size_t partial = 0;
    std::size_t breached = 0;
};

/** The closed-loop record of one attack class. */
struct AttackClassRun
{
    adversary::AttackClass cls = adversary::AttackClass::IllegalCrossing;
    std::vector<AttackRound> rounds;
    /** Scenario verdicts of the last round mounted. */
    std::vector<adversary::AttackResult> finalResults;
    bool contained = false; ///< a round reached full containment
    /** Adaptation rounds (controller steps) before containment. */
    std::size_t roundsToContain = 0;
    /**
     * Controller epochs elapsed while the loop ran (the free-running
     * sampler also ticks during the attack itself, so this tracks
     * elapsed virtual time, not adaptation count).
     */
    std::uint64_t epochsElapsed = 0;
    std::uint64_t vcyclesToContain = 0;
    std::vector<PolicyController::TraceEntry> trace;
};

/**
 * The attackable config: Redis and its libc in `app`, the scheduler
 * and clock in `sys`, and the network stack — the compromised
 * compartment — alone in `att`. att -> app is denied (the deny
 * witness the controller alerts on); att -> sys is the adaptive edge
 * the controller hardens. The baseline att -> sys policy is chosen
 * per class so round 0 has something to breach where the class can
 * be closed online:
 *
 *  - info-leak starts from a light, unscrubbed gate (the reg-probe
 *    leaks) — deny-hardening restores DSS + scrub + validation;
 *  - rop-crossing starts without entry validation (gadget jumps
 *    execute) — deny-hardening forces validation on;
 *  - doorbell runs `sys` on vm-ept (the forged-ring surface);
 *  - ret-corrupt and resource are contained by the baseline itself
 *    (DSS frames, netstack bounds): time-to-containment 0.
 */
std::string
attackBenchConfig(adversary::AttackClass cls)
{
    bool ept = cls == adversary::AttackClass::ForgedDoorbell;
    bool leaky = cls == adversary::AttackClass::InfoLeak;
    std::string cfg = "compartments:\n"
                      "- app:\n"
                      "    mechanism: intel-mpk\n"
                      "    default: True\n"
                      "- sys:\n";
    cfg += ept ? "    mechanism: vm-ept\n" : "    mechanism: intel-mpk\n";
    cfg += "- att:\n"
           "    mechanism: intel-mpk\n"
           "libraries:\n"
           "- libredis: app\n"
           "- newlib: app\n"
           "- uksched: sys\n"
           "- uktime: sys\n"
           "- lwip: att\n"
           "boundaries:\n";
    cfg += leaky
               ? "- att -> sys: {adaptive: true, gate: light, scrub: false}\n"
               : "- att -> sys: {adaptive: true}\n";
    cfg += "- att -> app: {deny: true}\n"
           "controller:\n"
           "  epoch: 300000\n"
           "  storm_threshold: 100\n"
           "  calm_epochs: 1000\n"
           "  deny_alert: 1\n";
    return cfg;
}

/**
 * The attacker's probe of the closed edge, mounted once per round
 * (every campaign in this file opens with it — see attackerLoop).
 * The resulting gate.denied witness is what lets the controller pin
 * the breach on `att` and deny-harden its outgoing adaptive edges;
 * without it, classes whose scenarios never touch a denied edge
 * (info-leak) would give the controller nothing to key on.
 */
void
denyProbe(Deployment &dep, const std::string &attackerLib)
{
    Image &img = dep.image();
    bool done = false;
    img.spawnIn(attackerLib, "deny-probe", [&] {
        try {
            img.gate("libredis", "redis_handle_conn", [] {});
        } catch (const DeniedCrossing &) {
        }
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });
}

/**
 * Mount one attack class round by round with a controller epoch
 * between rounds, until a round is fully contained (or the round cap
 * trips). Returns the per-round tallies, the converged scorecard,
 * and the controller's decision trace.
 */
AttackClassRun
runAttackClassLoop(adversary::AttackClass cls)
{
    constexpr int maxRounds = 8;
    AttackClassRun run;
    run.cls = cls;

    DeployOptions opts;
    opts.withFs = false;
    opts.withNet = cls == adversary::AttackClass::Resource;
    opts.heapBytes = 2 * 1024 * 1024;
    opts.sharedHeapBytes = 1 * 1024 * 1024;
    Deployment dep(attackBenchConfig(cls), opts);
    dep.start();

    adversary::AttackOptions aopts;
    aopts.attackerLib = "lwip";
    aopts.withNet = opts.withNet;

    PolicyController *ctl = dep.policyController();
    Machine &m = dep.machine();
    Cycles start = m.cycles();
    std::uint64_t epoch0 = ctl->epochs();
    for (int round = 0; round < maxRounds; ++round) {
        adversary::AttackScorecard card =
            adversary::runAttackClass(dep, cls, aopts);
        run.rounds.push_back({ctl->epochs() - epoch0, card.contained(),
                              card.partial(), card.breached()});
        run.finalResults = card.results;
        if (card.fullContainment()) {
            run.contained = true;
            run.roundsToContain = static_cast<std::size_t>(round);
            run.epochsElapsed = ctl->epochs() - epoch0;
            run.vcyclesToContain = m.cycles() - start;
            break;
        }
        denyProbe(dep, aopts.attackerLib);
        ctl->step();
    }
    run.trace.assign(ctl->trace().begin(), ctl->trace().end());
    dep.stop();
    return run;
}

void
emitAttackJson(const char *path, const std::vector<AttackClassRun> &runs)
{
    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "fig07_scatter: cannot write %s\n", path);
        std::exit(2);
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"fig07_attack_closed_loop\",\n"
                 "  \"attacker\": \"att/lwip\",\n"
                 "  \"classes\": [\n");
    for (std::size_t c = 0; c < runs.size(); ++c) {
        const AttackClassRun &r = runs[c];
        std::fprintf(f,
                     "    {\n"
                     "      \"class\": \"%s\",\n"
                     "      \"contained\": %s,\n"
                     "      \"adaptation_rounds_to_containment\": %zu,\n"
                     "      \"controller_epochs_elapsed\": %lu,\n"
                     "      \"vcycles_to_containment\": %lu,\n"
                     "      \"rounds\": [\n",
                     adversary::attackClassName(r.cls),
                     r.contained ? "true" : "false",
                     r.roundsToContain,
                     static_cast<unsigned long>(r.epochsElapsed),
                     static_cast<unsigned long>(r.vcyclesToContain));
        for (std::size_t i = 0; i < r.rounds.size(); ++i)
            std::fprintf(f,
                         "        {\"epoch\": %lu, \"contained\": %zu, "
                         "\"partial\": %zu, \"breached\": %zu}%s\n",
                         static_cast<unsigned long>(r.rounds[i].epoch),
                         r.rounds[i].contained, r.rounds[i].partial,
                         r.rounds[i].breached,
                         i + 1 < r.rounds.size() ? "," : "");
        std::fprintf(f,
                     "      ],\n"
                     "      \"final_scenarios\": [\n");
        for (std::size_t i = 0; i < r.finalResults.size(); ++i) {
            const adversary::AttackResult &s = r.finalResults[i];
            std::fprintf(
                f,
                "        {\"scenario\": \"%s\", \"outcome\": \"%s\", "
                "\"witness\": \"%s\", \"detection_vcycles\": %lu, "
                "\"bits_leaked\": %u, \"entropy_defeated\": %u}%s\n",
                s.scenario.c_str(), adversary::outcomeName(s.outcome),
                s.witness.c_str(),
                static_cast<unsigned long>(s.detectionCycles),
                s.bitsLeaked, s.entropyDefeated,
                i + 1 < r.finalResults.size() ? "," : "");
        }
        std::fprintf(f,
                     "      ],\n"
                     "      \"controller_trace\": [\n");
        for (std::size_t i = 0; i < r.trace.size(); ++i)
            std::fprintf(
                f,
                "        {\"epoch\": %lu, \"rule\": \"%s\", "
                "\"edge\": \"%s\", \"level\": %d}%s\n",
                static_cast<unsigned long>(r.trace[i].epoch),
                r.trace[i].rule.c_str(), r.trace[i].edge.c_str(),
                r.trace[i].level, i + 1 < r.trace.size() ? "," : "");
        std::fprintf(f,
                     "      ]\n"
                     "    }%s\n",
                     c + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ]\n"
                 "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

int
attackSection(const std::vector<adversary::AttackClass> &classes,
              bool jsonMode, const char *jsonPath)
{
    std::vector<AttackClassRun> runs;
    bool allContained = true;
    for (adversary::AttackClass cls : classes) {
        AttackClassRun run = runAttackClassLoop(cls);
        std::printf("\n=== Adversary closed loop: %s (attacker: "
                    "att/lwip) ===\n",
                    adversary::attackClassName(cls));
        for (std::size_t i = 0; i < run.rounds.size(); ++i)
            std::printf("  round %zu (epoch %lu): %zu contained, %zu "
                        "partial, %zu breached\n",
                        i,
                        static_cast<unsigned long>(run.rounds[i].epoch),
                        run.rounds[i].contained, run.rounds[i].partial,
                        run.rounds[i].breached);
        if (run.contained)
            std::printf("  contained after %zu adaptation round(s), "
                        "%lu vcycles\n",
                        run.roundsToContain,
                        static_cast<unsigned long>(
                            run.vcyclesToContain));
        else
            std::printf("  NOT contained within the round cap\n");
        std::printf("  final scenarios:\n");
        for (const adversary::AttackResult &s : run.finalResults)
            std::printf("    %-26s %-9s %s\n", s.scenario.c_str(),
                        adversary::outcomeName(s.outcome),
                        s.witness.c_str());
        std::printf("  controller trace (%zu decision(s)):\n",
                    run.trace.size());
        for (const PolicyController::TraceEntry &t : run.trace)
            std::printf("    epoch %-3lu %-12s %-10s level %d\n",
                        static_cast<unsigned long>(t.epoch),
                        t.rule.c_str(), t.edge.c_str(), t.level);
        allContained = allContained && run.contained;
        runs.push_back(std::move(run));
    }
    if (jsonMode)
        emitAttackJson(jsonPath, runs);
    if (!allContained) {
        std::printf("\nFAIL: some attack class was not contained\n");
        return 1;
    }
    std::printf("\nevery attack class contained by the closed loop\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // `--controller` runs only the closed-loop containment demo;
    // `--json [path]` also writes its snapshot file (and implies
    // `--controller`, matching the fig06 convention). `--attack
    // <class|all>` swaps the storm for the adversary catalogue and
    // changes the default snapshot path to BENCH_attack.json.
    bool controllerOnly = false;
    bool jsonMode = false;
    bool attackMode = false;
    const char *jsonPath = nullptr;
    std::vector<adversary::AttackClass> attackClasses;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--controller") == 0) {
            controllerOnly = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            controllerOnly = true;
            jsonMode = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--attack") == 0) {
            controllerOnly = true;
            attackMode = true;
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "fig07_scatter: --attack needs a class "
                             "name or 'all'\n");
                return 2;
            }
            std::string name = argv[++i];
            if (name == "all") {
                attackClasses = adversary::allAttackClasses();
            } else {
                adversary::AttackClass c;
                if (!adversary::parseAttackClass(name, c)) {
                    std::fprintf(stderr,
                                 "fig07_scatter: unknown attack class "
                                 "'%s' (classes:",
                                 name.c_str());
                    for (adversary::AttackClass k :
                         adversary::allAttackClasses())
                        std::fprintf(stderr, " %s",
                                     adversary::attackClassName(k));
                    std::fprintf(stderr, ", or all)\n");
                    return 2;
                }
                attackClasses.push_back(c);
            }
        } else {
            std::fprintf(stderr,
                         "fig07_scatter: invalid argument '%s' "
                         "(usage: [--controller] [--json [path]] "
                         "[--attack <class|all>])\n",
                         argv[i]);
            return 2;
        }
    }
    if (!jsonPath)
        jsonPath = attackMode ? "BENCH_attack.json"
                              : "BENCH_fig07_controller.json";
    if (attackMode)
        return attackSection(attackClasses, jsonMode, jsonPath);
    if (controllerOnly) {
        closedLoopSection(jsonMode, jsonPath);
        return 0;
    }
    std::vector<ConfigPoint> space = wayfinder::fig6Space();
    std::vector<double> redis, nginx;
    double redisMax = 0, nginxMax = 0;
    for (const ConfigPoint &p : space) {
        redis.push_back(wayfinder::measureRedis(p, 300));
        nginx.push_back(wayfinder::measureNginx(p, 200));
        redisMax = std::max(redisMax, redis.back());
        nginxMax = std::max(nginxMax, nginx.back());
    }

    std::printf("=== Figure 7: Nginx vs Redis normalized performance "
                "===\n");
    std::printf("%-6s %-14s %-14s %s\n", "comps", "redis (norm)",
                "nginx (norm)", "configuration");
    for (std::size_t i = 0; i < space.size(); ++i) {
        std::printf("%-6d %-14.3f %-14.3f %s\n",
                    space[i].compartments(), redis[i] / redisMax,
                    nginx[i] / nginxMax,
                    wayfinder::pointLabel(space[i], "app").c_str());
    }

    // The paper's distribution claim: more Nginx configurations stay
    // within 20%/45% overhead than Redis ones.
    auto countWithin = [&](const std::vector<double> &v, double maxV,
                           double overhead) {
        int n = 0;
        for (double x : v)
            if (x >= maxV * (1 - overhead))
                ++n;
        return n;
    };
    std::printf("\nconfigs within 20%% of peak: nginx %d vs redis %d "
                "(paper: 9 vs 2)\n",
                countWithin(nginx, nginxMax, 0.20),
                countWithin(redis, redisMax, 0.20));
    std::printf("configs within 45%% of peak: nginx %d vs redis %d "
                "(paper: 32 vs 20)\n",
                countWithin(nginx, nginxMax, 0.45),
                countWithin(redis, redisMax, 0.45));

    // --- Mixed-mechanism scatter -------------------------------------
    // The mechanism is a per-boundary knob: the same partitions, with
    // every per-block assignment from {none, mpk, ept}. Heterogeneous
    // points sit between the homogeneous corners — e.g. keeping only
    // the network boundary on EPT buys VM-grade isolation where it
    // matters at a fraction of the all-EPT cost.
    std::vector<ConfigPoint> mixed = wayfinder::mixedMechanismSpace();
    std::vector<double> mixedRedis;
    double mixedMax = 0;
    for (const ConfigPoint &p : mixed) {
        mixedRedis.push_back(wayfinder::measureRedis(p, 150));
        mixedMax = std::max(mixedMax, mixedRedis.back());
    }
    std::printf("\n=== Mixed-mechanism dimension: Redis, %zu per-block "
                "mechanism assignments ===\n",
                mixed.size());
    std::printf("%-6s %-14s %s\n", "comps", "redis (norm)",
                "configuration");
    for (std::size_t i = 0; i < mixed.size(); ++i) {
        std::printf("%-6d %-14.3f %s\n", mixed[i].compartments(),
                    mixedRedis[i] / mixedMax,
                    wayfinder::pointLabel(mixed[i], "app").c_str());
    }

    // --- Per-boundary gate-flavour dimension -------------------------
    // The MPK flavour is a (from, to) knob of the gate matrix, not a
    // global: each block's boundary picks light (ERIM-style) or dss
    // (HODOR-style), so a hot trusted boundary can run the cheap gate
    // while an attacker-facing one keeps the register-scrubbing one.
    std::vector<ConfigPoint> flav = wayfinder::gateFlavorSpace();
    std::vector<double> flavRedis;
    double flavMax = 0;
    for (const ConfigPoint &p : flav) {
        flavRedis.push_back(wayfinder::measureRedis(p, 150));
        flavMax = std::max(flavMax, flavRedis.back());
    }
    std::printf("\n=== Gate-flavour dimension: Redis, %zu per-block "
                "flavour assignments (light < dss per boundary) ===\n",
                flav.size());
    std::printf("%-6s %-14s %s\n", "comps", "redis (norm)",
                "configuration");
    for (std::size_t i = 0; i < flav.size(); ++i) {
        std::printf("%-6d %-14.3f %s\n", flav[i].compartments(),
                    flavRedis[i] / flavMax,
                    wayfinder::pointLabel(flav[i], "app").c_str());
    }

    // --- Vectored-crossing dimension ---------------------------------
    // batch/elide are boundary knobs like flavour: batch width is
    // performance-only (every call still passes entry checks and rate
    // enforcement), the elided set orders points by subset in the
    // poset. The batched RX path shows up wherever lwip sits behind a
    // boundary: the pollers fetch a burst and cross once per burst.
    std::vector<ConfigPoint> bat = wayfinder::batchingSpace();
    std::vector<double> batRedis;
    double batMax = 0;
    for (const ConfigPoint &p : bat) {
        batRedis.push_back(wayfinder::measureRedis(p, 150));
        batMax = std::max(batMax, batRedis.back());
    }
    std::printf("\n=== Vectored-crossing dimension: Redis, %zu "
                "batch/elide points (batch perf-only, elide subset-"
                "ordered) ===\n",
                bat.size());
    std::printf("%-6s %-14s %s\n", "comps", "redis (norm)",
                "configuration");
    for (std::size_t i = 0; i < bat.size(); ++i) {
        std::printf("%-6d %-14.3f %s\n", bat[i].compartments(),
                    batRedis[i] / batMax,
                    wayfinder::pointLabel(bat[i], "app").c_str());
    }

    // --- EPT batching on request/response RX -------------------------
    // Batching amortizes per-call gate cost, so it needs real bursts:
    // fig11b carries the per-gate step change (EPT 462 -> 63 vcycles
    // per call at width 8). Redis is the anti-case — ping-pong RX
    // arrives one frame at a time, so the batched drain pays one
    // crossing per frame while the unbatched poller lives inside the
    // stack and pays none. The delta below is the honest cost of
    // choosing a batched boundary for a workload that never bursts.
    {
        ConfigPoint eptPt;
        eptPt.partition = {0, 0, 0, 1};
        eptPt.hardening.assign(4, 0);
        eptPt.blockMechanism = {2, 2}; // vm-ept both blocks
        eptPt.sharingRank = 1;
        double unbatched = wayfinder::measureRedis(eptPt, 150);
        eptPt.gateBatch = 8;
        double batched = wayfinder::measureRedis(eptPt, 150);
        std::printf("\n=== EPT batching vs request/response RX (lwip "
                    "split, all-EPT; bursts of 1 cannot amortize — "
                    "see fig11b for the streaming step change) ===\n");
        std::printf("  in-stack poller, unbatched : %10.1f req/s\n",
                    unbatched);
        std::printf("  batched boundary, batch: 8 : %10.1f req/s "
                    "(%+.1f%%)\n",
                    batched,
                    100.0 * (batched - unbatched) / unbatched);
    }

    // --- Pruned product sweep ----------------------------------------
    // mechanism x flavour x deny x elide x batch for one partition,
    // enumerated lazily with monotone budget pruning: once a point
    // misses the budget, everything safety-dominating it is skipped
    // unevaluated — the full product is never materialized.
    {
        std::vector<int> partition = {0, 0, 0, 1}; // lwip split
        std::vector<ConfigPoint> accepted;
        // Tight enough that the weaker-performing (safer) corners of
        // the product miss it, so the pruning actually fires.
        double budget = 0.8 * redisMax;
        std::size_t evaluated = wayfinder::prunedBoundarySweep(
            partition, "libredis",
            [](ConfigPoint &p) {
                return wayfinder::measureRedis(p, 100);
            },
            budget, accepted);
        std::size_t blocks = 2; // lwip split has two blocks
        std::size_t deniable =
            blocks * blocks - blocks -
            wayfinder::requiredBlockEdges(partition, "libredis").size();
        std::size_t product = 16 * 4 * 4 * 3; // mech x flav x elide x batch
        for (std::size_t i = 0; i < deniable; ++i)
            product *= 2;
        std::printf("\n=== Pruned boundary sweep (lwip split): "
                    "mechanism x flavour x deny x elide x batch ===\n");
        std::printf("  budget %.1f req/s: evaluated %zu of %zu points "
                    "(%zu pruned unevaluated), %zu met the budget\n",
                    budget, evaluated, product, product - evaluated,
                    accepted.size());
        std::sort(accepted.begin(), accepted.end(),
                  [](const ConfigPoint &a, const ConfigPoint &b) {
                      return a.perf > b.perf;
                  });
        std::size_t show = std::min<std::size_t>(accepted.size(), 12);
        for (std::size_t i = 0; i < show; ++i)
            std::printf("  %10.1f req/s  %s\n", accepted[i].perf,
                        wayfinder::pointLabel(accepted[i], "app")
                            .c_str());
    }

    // --- Asymmetric boundary policies --------------------------------
    // With a full (from, to) matrix, a crossing's cost can depend on
    // both endpoints. Canonical case: calls from an EPT VM into an MPK
    // compartment return into the caller's own trusted VM state, so
    // the return-side register scrub can be waived (`scrub: false` on
    // the net -> * edge) without weakening what the *callee* boundary
    // protects. Measure the raw EPT->MPK gate round trip both ways.
    auto eptToMpkGateCost = [](bool skipReturnScrub) {
        std::string cfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: vm-ept
libraries:
- libredis: app
- newlib: sys
- uksched: sys
- lwip: net
)";
        if (skipReturnScrub)
            cfg += "boundaries:\n- net -> '*': {scrub: false}\n";
        DeployOptions opts;
        opts.withNet = false;
        opts.withFs = false;
        Deployment dep(cfg, opts);
        constexpr std::uint64_t iters = 2000;
        Cycles measured = 0;
        bool done = false;
        // Spawn inside the EPT VM and gate into the MPK sys
        // compartment: the (net -> sys) cell of the matrix.
        dep.image().spawnIn("lwip", "ept-caller", [&] {
            Machine &m = dep.machine();
            Cycles before = m.cycles();
            for (std::uint64_t i = 0; i < iters; ++i)
                dep.image().gate("uksched", "yield", [] {});
            measured = m.cycles() - before;
            done = true;
        });
        dep.scheduler().runUntil([&] { return done; });
        return static_cast<double>(measured) /
               static_cast<double>(iters);
    };
    double symmetric = eptToMpkGateCost(false);
    double asymmetric = eptToMpkGateCost(true);
    std::printf("\n=== Asymmetric boundary: EPT->MPK return policy "
                "===\n");
    std::printf("  net -> sys, full dss gate          : %7.1f "
                "vcycles/crossing\n",
                symmetric);
    std::printf("  net -> sys, scrub: false on return : %7.1f "
                "vcycles/crossing (%.1f%% cheaper)\n",
                asymmetric, 100.0 * (symmetric - asymmetric) / symmetric);

    // --- Least-privilege dimension -----------------------------------
    // deny: rules prune the reachable call graph per boundary. The
    // wayfinder enumerates only subsets of edges the static call graph
    // can spare — a point denying a required edge would be rejected at
    // image build, so denied edges are never swept as reachable.
    std::vector<ConfigPoint> lp = wayfinder::leastPrivilegeSpace();
    std::vector<double> lpRedis;
    double lpMax = 0;
    for (const ConfigPoint &p : lp) {
        lpRedis.push_back(wayfinder::measureRedis(p, 150));
        lpMax = std::max(lpMax, lpRedis.back());
    }
    std::printf("\n=== Least-privilege dimension: Redis, %zu "
                "deny-rule subsets over the Figure 8 partitions ===\n",
                lp.size());
    std::printf("%-6s %-14s %s\n", "comps", "redis (norm)",
                "configuration");
    for (std::size_t i = 0; i < lp.size(); ++i) {
        std::printf("%-6d %-14.3f %s\n", lp[i].compartments(),
                    lpRedis[i] / lpMax,
                    wayfinder::pointLabel(lp[i], "app").c_str());
    }

    // --- Denied and throttled boundaries under load ------------------
    // A rate-limited boundary back-pressures gate storms (stall) and
    // a denied edge refuses dynamic crossings the static graph never
    // promised. Both show up in the stats: gate.throttled with the
    // stalled vcycles, gate.denied per refused crossing.
    {
        const char *cfg = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
libraries:
- libredis: app
- uksched: sys
- uktime: sys
boundaries:
- app -> sys: {rate: 50, window: 1000000, overflow: stall}
- sys -> app: {deny: true}
)";
        DeployOptions opts;
        opts.withNet = false;
        opts.withFs = false;
        Deployment dep(cfg, opts);
        Machine &m = dep.machine();
        constexpr std::uint64_t crossings = 200;
        Cycles spent = 0;
        std::uint64_t denied = 0;
        bool done = false;
        dep.image().spawnIn("libredis", "storm", [&] {
            Cycles before = m.cycles();
            for (std::uint64_t i = 0; i < crossings; ++i)
                dep.image().gate("uksched", "yield", [] {});
            spent = m.cycles() - before;
            // The reverse edge is denied outright.
            dep.image().gate("uksched", "yield", [&] {
                try {
                    dep.image().gate("libredis", "redis_handle_conn",
                                     [] {});
                } catch (const DeniedCrossing &) {
                    ++denied;
                }
            });
            done = true;
        });
        dep.scheduler().runUntil([&] { return done; });
        std::printf("\n=== Gate-storm containment: rate-limited and "
                    "denied boundaries ===\n");
        std::printf("  app -> sys rate 50/1M vcycles, %lu crossings: "
                    "%7.1f vcycles/crossing\n",
                    static_cast<unsigned long>(crossings),
                    static_cast<double>(spent) /
                        static_cast<double>(crossings));
        std::printf("  gate.throttled       : %10lu\n",
                    static_cast<unsigned long>(
                        m.counter("gate.throttled")));
        std::printf("  machine.stallCycles  : %10lu\n",
                    static_cast<unsigned long>(
                        m.counter("machine.stallCycles")));
        std::printf("  gate.denied (sys -> app attempts): %lu "
                    "(DeniedCrossing raised %lu)\n",
                    static_cast<unsigned long>(m.counter("gate.denied")),
                    static_cast<unsigned long>(denied));
    }

    // --- Closed-loop containment -------------------------------------
    // The static containment above needs the rate written into the
    // config up front; the runtime policy controller derives it online
    // from the counters and applies it through quiesced matrix swaps.
    closedLoopSection(jsonMode, jsonPath);
    return 0;
}
