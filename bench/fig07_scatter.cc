/**
 * @file
 * Figure 7 reproduction: Nginx vs. Redis normalized performance for
 * the same 80 configurations, grouped by compartment count — showing
 * that isolating/hardening the same components costs the two
 * applications differently (uneven, hard-to-predict slowdowns).
 */

#include <cstdio>
#include <vector>

#include "explore/wayfinder.hh"

using namespace flexos;

int
main()
{
    std::vector<ConfigPoint> space = wayfinder::fig6Space();
    std::vector<double> redis, nginx;
    double redisMax = 0, nginxMax = 0;
    for (const ConfigPoint &p : space) {
        redis.push_back(wayfinder::measureRedis(p, 300));
        nginx.push_back(wayfinder::measureNginx(p, 200));
        redisMax = std::max(redisMax, redis.back());
        nginxMax = std::max(nginxMax, nginx.back());
    }

    std::printf("=== Figure 7: Nginx vs Redis normalized performance "
                "===\n");
    std::printf("%-6s %-14s %-14s %s\n", "comps", "redis (norm)",
                "nginx (norm)", "configuration");
    for (std::size_t i = 0; i < space.size(); ++i) {
        std::printf("%-6d %-14.3f %-14.3f %s\n",
                    space[i].compartments(), redis[i] / redisMax,
                    nginx[i] / nginxMax,
                    wayfinder::pointLabel(space[i], "app").c_str());
    }

    // The paper's distribution claim: more Nginx configurations stay
    // within 20%/45% overhead than Redis ones.
    auto countWithin = [&](const std::vector<double> &v, double maxV,
                           double overhead) {
        int n = 0;
        for (double x : v)
            if (x >= maxV * (1 - overhead))
                ++n;
        return n;
    };
    std::printf("\nconfigs within 20%% of peak: nginx %d vs redis %d "
                "(paper: 9 vs 2)\n",
                countWithin(nginx, nginxMax, 0.20),
                countWithin(redis, redisMax, 0.20));
    std::printf("configs within 45%% of peak: nginx %d vs redis %d "
                "(paper: 32 vs 20)\n",
                countWithin(nginx, nginxMax, 0.45),
                countWithin(redis, redisMax, 0.45));

    // --- Mixed-mechanism scatter -------------------------------------
    // The mechanism is a per-boundary knob: the same partitions, with
    // every per-block assignment from {none, mpk, ept}. Heterogeneous
    // points sit between the homogeneous corners — e.g. keeping only
    // the network boundary on EPT buys VM-grade isolation where it
    // matters at a fraction of the all-EPT cost.
    std::vector<ConfigPoint> mixed = wayfinder::mixedMechanismSpace();
    std::vector<double> mixedRedis;
    double mixedMax = 0;
    for (const ConfigPoint &p : mixed) {
        mixedRedis.push_back(wayfinder::measureRedis(p, 150));
        mixedMax = std::max(mixedMax, mixedRedis.back());
    }
    std::printf("\n=== Mixed-mechanism dimension: Redis, %zu per-block "
                "mechanism assignments ===\n",
                mixed.size());
    std::printf("%-6s %-14s %s\n", "comps", "redis (norm)",
                "configuration");
    for (std::size_t i = 0; i < mixed.size(); ++i) {
        std::printf("%-6d %-14.3f %s\n", mixed[i].compartments(),
                    mixedRedis[i] / mixedMax,
                    wayfinder::pointLabel(mixed[i], "app").c_str());
    }
    return 0;
}
