/**
 * @file
 * Figure 6 reproduction: Redis (top) and Nginx (bottom) throughput for
 * the 80 MPK+DSS configurations each — 5 compartmentalization
 * strategies over {app, newlib, uksched, lwip} x 2^4 per-component
 * hardening bundles (stack protector + UBSan + KASan).
 *
 * Prints each panel as the paper does: configurations sorted by
 * throughput, with per-component hardening dots and the compartment
 * assignment.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "explore/wayfinder.hh"

using namespace flexos;

namespace {

struct Row
{
    ConfigPoint point;
    double reqPerSec;
};

void
runPanel(const char *app, const char *appLib,
         double (*measure)(const ConfigPoint &, std::uint64_t),
         std::uint64_t requests)
{
    std::vector<Row> rows;
    for (const ConfigPoint &p : wayfinder::fig6Space())
        rows.push_back({p, measure(p, requests)});
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.reqPerSec < b.reqPerSec;
    });

    std::printf("\n=== Figure 6 (%s): %zu configurations, "
                "MPK + DSS ===\n",
                app, rows.size());
    std::printf("%-4s %-52s %12s\n", "#", "configuration [harden: app "
                                          "newlib sched lwip]",
                "req/s");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("%-4zu %-52s %11.1fk\n", i + 1,
                    wayfinder::pointLabel(rows[i].point, appLib).c_str(),
                    rows[i].reqPerSec / 1000.0);
    }

    double lo = rows.front().reqPerSec;
    double hi = rows.back().reqPerSec;
    std::printf("--> span: %.1fk .. %.1fk req/s (%.1fx; paper: "
                "292k .. 1199k, 4.1x)\n",
                lo / 1000, hi / 1000, hi / lo);

    // The paper's headline single-split observations.
    auto perfOf = [&](std::vector<int> part) {
        for (const Row &r : rows) {
            bool anyHard = false;
            for (unsigned h : r.point.hardening)
                anyHard |= h != 0;
            if (!anyHard && r.point.partition == part)
                return r.reqPerSec;
        }
        return 0.0;
    };
    double base = perfOf({0, 0, 0, 0});
    double lwipSplit = perfOf({0, 0, 0, 1});
    double schedSplit = perfOf({0, 0, 1, 0});
    std::printf("--> isolating lwip alone:  %5.1f%% slowdown\n",
                100.0 * (1 - lwipSplit / base));
    std::printf("--> isolating sched alone: %5.1f%% slowdown\n",
                100.0 * (1 - schedSplit / base));
}

} // namespace

int
main()
{
    runPanel("Redis GET", "libredis", &wayfinder::measureRedis, 400);
    runPanel("Nginx HTTP", "libnginx", &wayfinder::measureNginx, 250);
    return 0;
}
