/**
 * @file
 * Figure 6 reproduction: Redis (top) and Nginx (bottom) throughput for
 * the 80 MPK+DSS configurations each — 5 compartmentalization
 * strategies over {app, newlib, uksched, lwip} x 2^4 per-component
 * hardening bundles (stack protector + UBSan + KASan).
 *
 * Prints each panel as the paper does: configurations sorted by
 * throughput, with per-component hardening dots and the compartment
 * assignment.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "explore/wayfinder.hh"

using namespace flexos;

namespace {

struct Row
{
    ConfigPoint point;
    double reqPerSec;
};

void
runPanel(const char *app, const char *appLib,
         double (*measure)(const ConfigPoint &, std::uint64_t),
         std::uint64_t requests)
{
    std::vector<Row> rows;
    for (const ConfigPoint &p : wayfinder::fig6Space())
        rows.push_back({p, measure(p, requests)});
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.reqPerSec < b.reqPerSec;
    });

    std::printf("\n=== Figure 6 (%s): %zu configurations, "
                "MPK + DSS ===\n",
                app, rows.size());
    std::printf("%-4s %-52s %12s\n", "#", "configuration [harden: app "
                                          "newlib sched lwip]",
                "req/s");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        std::printf("%-4zu %-52s %11.1fk\n", i + 1,
                    wayfinder::pointLabel(rows[i].point, appLib).c_str(),
                    rows[i].reqPerSec / 1000.0);
    }

    double lo = rows.front().reqPerSec;
    double hi = rows.back().reqPerSec;
    std::printf("--> span: %.1fk .. %.1fk req/s (%.1fx; paper: "
                "292k .. 1199k, 4.1x)\n",
                lo / 1000, hi / 1000, hi / lo);

    // The paper's headline single-split observations.
    auto perfOf = [&](std::vector<int> part) {
        for (const Row &r : rows) {
            bool anyHard = false;
            for (unsigned h : r.point.hardening)
                anyHard |= h != 0;
            if (!anyHard && r.point.partition == part)
                return r.reqPerSec;
        }
        return 0.0;
    };
    double base = perfOf({0, 0, 0, 0});
    double lwipSplit = perfOf({0, 0, 0, 1});
    double schedSplit = perfOf({0, 0, 1, 0});
    std::printf("--> isolating lwip alone:  %5.1f%% slowdown\n",
                100.0 * (1 - lwipSplit / base));
    std::printf("--> isolating sched alone: %5.1f%% slowdown\n",
                100.0 * (1 - schedSplit / base));
}

/** One multi-core / batching sample of the cores sweep. */
struct Sample
{
    const char *app;
    std::string partition;
    unsigned cores;
    int batch;
    double reqPerSec;
    /** Static boundary-audit hazard score (lower = cleaner). */
    int audit;
};

/**
 * The `cores:` dimension (RSS steers each connection to one core's RX
 * queue, so throughput is expected to scale while gate overhead does
 * not amortize away), plus batched-vs-unbatched points on the
 * lwip-split partition — the boundary the vectored RX path amortizes.
 */
std::vector<Sample>
coresSweep()
{
    static const struct
    {
        const char *name;
        std::vector<int> part;
    } picks[] = {
        {"A app+newlib+sched+lwip", {0, 0, 0, 0}},
        {"C lwip split", {0, 0, 0, 1}},
        {"E three-way split", {0, 0, 1, 2}},
    };

    std::vector<Sample> out;
    for (const auto &pick : picks) {
        for (unsigned cores : {1u, 2u, 4u}) {
            ConfigPoint p;
            p.partition = pick.part;
            p.hardening.assign(4, 0);
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            p.cores = static_cast<int>(cores);
            out.push_back({"redis", pick.name, cores, 1,
                           wayfinder::measureRedis(p, 300),
                           wayfinder::auditScore(p, "libredis")});
            out.push_back({"nginx", pick.name, cores, 1,
                           wayfinder::measureNginx(p, 200),
                           wayfinder::auditScore(p, "libnginx")});
        }
    }
    // Batched vs unbatched across the lwip boundary: the poller
    // fetches a burst and crosses once per burst when batch > 1.
    for (int batch : {1, 8}) {
        for (unsigned cores : {1u, 4u}) {
            ConfigPoint p;
            p.partition = {0, 0, 0, 1};
            p.hardening.assign(4, 0);
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            p.cores = static_cast<int>(cores);
            p.gateBatch = batch;
            out.push_back({"redis", "C lwip split", cores, batch,
                           wayfinder::measureRedis(p, 300),
                           wayfinder::auditScore(p, "libredis")});
        }
    }
    return out;
}

void
coresTable(const std::vector<Sample> &samples)
{
    std::printf("\n=== Multi-core sweep: req/s vs cores (RSS), plus "
                "batch: 8 on the lwip boundary ===\n");
    std::printf("%-7s %-26s %-7s %-7s %12s %7s\n", "app", "partition",
                "cores", "batch", "req/s", "audit");
    for (const Sample &s : samples)
        std::printf("%-7s %-26s %-7u %-7d %11.1fk %7d\n", s.app,
                    s.partition.c_str(), s.cores, s.batch,
                    s.reqPerSec / 1000.0, s.audit);
}

/**
 * The cores x batching matrix as a JSON snapshot (BENCH_fig06.json):
 * the regression-tracked artefact for the multi-core app benchmarks.
 */
void
emitJson(const char *path, const std::vector<Sample> &samples)
{
    FILE *f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "fig06_redis_nginx: cannot write %s\n",
                     path);
        std::exit(2);
    }
    std::fprintf(f, "{\n"
                    "  \"bench\": \"fig06_redis_nginx_cores\",\n"
                    "  \"config\": \"mpk-dss, no hardening\",\n"
                    "  \"results\": [\n");
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        std::fprintf(f,
                     "    {\"app\": \"%s\", \"partition\": \"%s\", "
                     "\"cores\": %u, \"batch\": %d, "
                     "\"req_per_sec\": %.1f, \"audit_score\": %d}%s\n",
                     s.app, s.partition.c_str(), s.cores, s.batch,
                     s.reqPerSec, s.audit,
                     i + 1 < samples.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    // `--cores` runs only the multi-core/batching sweep; `--json
    // [path]` writes it to a snapshot file (default BENCH_fig06.json)
    // instead of printing the table.
    bool coresOnly = false;
    bool jsonMode = false;
    const char *jsonPath = "BENCH_fig06.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--cores") == 0) {
            coresOnly = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            coresOnly = true;
            jsonMode = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "fig06_redis_nginx: invalid argument '%s' "
                         "(usage: [--cores] [--json [path]])\n",
                         argv[i]);
            return 2;
        }
    }

    if (!coresOnly) {
        runPanel("Redis GET", "libredis", &wayfinder::measureRedis, 400);
        runPanel("Nginx HTTP", "libnginx", &wayfinder::measureNginx,
                 250);
    }
    std::vector<Sample> samples = coresSweep();
    if (jsonMode)
        emitJson(jsonPath, samples);
    else
        coresTable(samples);
    return 0;
}
