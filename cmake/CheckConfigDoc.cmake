# Freshness check for the generated config reference: run config_doc
# and fail when its output differs from the committed
# docs/config-reference.md. Invoked by the `config_doc_fresh` CTest
# (and the CI docs job) as:
#   cmake -DDOC_TOOL=<config_doc> -DREFERENCE=<docs/config-reference.md>
#         -P cmake/CheckConfigDoc.cmake

execute_process(COMMAND ${DOC_TOOL}
                OUTPUT_VARIABLE generated
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "config_doc failed with exit code ${rc}")
endif()

if(NOT EXISTS ${REFERENCE})
  message(FATAL_ERROR
          "${REFERENCE} does not exist; generate it with "
          "`./build/config_doc > docs/config-reference.md`")
endif()

file(READ ${REFERENCE} committed)
if(NOT generated STREQUAL committed)
  message(FATAL_ERROR
          "docs/config-reference.md is stale: the parser's key tables "
          "changed. Regenerate with "
          "`./build/config_doc > docs/config-reference.md` and commit "
          "the result.")
endif()
