# Golden-report diff for the boundary auditor: run boundary_audit over
# every example and test source (sorted, repo-relative, so the report
# is deterministic across machines) and fail when the output differs
# from the committed golden report. Invoked by the
# `boundary_audit_golden` CTest (and the CI static-analysis job) as:
#   cmake -DAUDIT_TOOL=<boundary_audit> -DSRC_ROOT=<repo root>
#         -DGOLDEN=<tests/golden/boundary_audit.txt>
#         -P cmake/CheckBoundaryAudit.cmake

file(GLOB inputs RELATIVE ${SRC_ROOT}
     ${SRC_ROOT}/examples/*.cpp ${SRC_ROOT}/tests/*.cc)
list(SORT inputs)

execute_process(COMMAND ${AUDIT_TOOL} --exit-zero
                        --src-root ${SRC_ROOT} ${inputs}
                WORKING_DIRECTORY ${SRC_ROOT}
                OUTPUT_VARIABLE generated
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "boundary_audit failed with exit code ${rc}")
endif()

if(NOT EXISTS ${GOLDEN})
  message(FATAL_ERROR
          "${GOLDEN} does not exist; generate it with "
          "`tools/update_boundary_audit_golden.sh`")
endif()

file(READ ${GOLDEN} committed)
if(NOT generated STREQUAL committed)
  file(WRITE ${CMAKE_CURRENT_BINARY_DIR}/boundary_audit.actual.txt
       "${generated}")
  message(FATAL_ERROR
          "tests/golden/boundary_audit.txt is stale: the audit findings "
          "over examples/ and tests/ changed (actual output written to "
          "boundary_audit.actual.txt). Review the diff and regenerate "
          "with `tools/update_boundary_audit_golden.sh`.")
endif()
