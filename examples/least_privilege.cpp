/**
 * @file
 * Least-privilege boundary rules: the gate matrix as a call-graph
 * specification, not just a table of gate knobs.
 *
 * Three rule kinds beyond {gate, validate, scrub}:
 *
 *  - `deny: true` statically forbids an edge. Edges the static call
 *    graph needs are rejected at image build; dynamic crossings raise
 *    DeniedCrossing and count in `gate.denied`. Here nothing may ever
 *    gate back into the application compartment.
 *  - `rate: N` budgets crossings per boundary per virtual-time window
 *    (token bucket in vcycles) — gate-storm containment. Overflowing
 *    crossings count in `gate.throttled` and either stall the caller
 *    (back-pressure, `machine.stallCycles`) or fail, per `overflow:`.
 *  - `stack_sharing:` is a per-boundary strategy resolved through the
 *    same wildcard layering; the old image-global key is just the
 *    `'*' -> '*'` default. Every boundary here keeps the DSS: sharing
 *    the whole stack on the hot app -> sys edge would be cheaper, but
 *    the adversary scorecard (`--score`) rates shared frames as
 *    corruptible/scannable from a compromised peer.
 *
 * Run with `--score` to deploy this config and mount the full
 * flexos::adversary attack catalogue against it from a compromised
 * net compartment; the process exits non-zero unless every applicable
 * scenario is contained (the CI containment smoke).
 *
 * The config round-trips through SafetyConfig::toText() — see
 * docs/gate-policy.md for the worked version of this example.
 */

#include <cstdio>
#include <cstring>

#include "adversary/adversary.hh"
#include "analysis/audit.hh"
#include "apps/deploy.hh"
#include "core/dss.hh"

using namespace flexos;

namespace {

const char *leastPrivilegeConfig = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: intel-mpk
libraries:
- libredis: app
- newlib: sys
- uksched: sys
- uktime: sys
- lwip: net
boundaries:
- '*' -> app: {deny: true}                     # nobody calls back in
- app -> sys: {stack_sharing: dss}             # hot edge keeps the DSS
- sys -> net: {rate: 100, window: 1000000, overflow: stall}
- net -> sys: {rate: 500, overflow: fail, validate: true}
)";

} // namespace

int
main(int argc, char **argv)
{
    DeployOptions opts;
    opts.withNet = false;
    opts.withFs = false;
    Deployment dep(leastPrivilegeConfig, opts);
    Image &img = dep.image();
    Machine &m = dep.machine();

    if (argc > 1 && std::strcmp(argv[1], "--score") == 0) {
        // Containment smoke: attack the deployed matrix from a
        // compromised net compartment and demand full containment.
        adversary::AttackOptions aopts;
        aopts.attackerLib = "lwip";
        adversary::AttackScorecard card =
            adversary::runScorecard(dep, aopts);
        std::printf("=== Adversary scorecard (attacker: net/lwip) "
                    "===\n\n");
        for (const adversary::AttackResult &r : card.results)
            std::printf("  %-11s %-28s %-9s %s\n",
                        adversary::attackClassName(r.cls),
                        r.scenario.c_str(),
                        adversary::outcomeName(r.outcome),
                        r.witness.c_str());
        std::printf("\n%s\n", card.summary().c_str());
        if (!card.fullContainment()) {
            std::printf("FAIL: configuration does not fully contain "
                        "the attack catalogue\n");
            return 1;
        }
        std::printf("full containment: yes\n");
        return 0;
    }

    std::printf("=== Least-privilege boundary rules ===\n\n");
    std::printf("gate-policy matrix (from -> to : policy):\n");
    for (std::size_t f = 0; f < img.compartmentCount(); ++f) {
        for (std::size_t t = 0; t < img.compartmentCount(); ++t) {
            if (f == t)
                continue;
            std::printf("  %-4s -> %-4s : %s\n",
                        img.compartmentAt(f).spec.name.c_str(),
                        img.compartmentAt(t).spec.name.c_str(),
                        img.policyFor(static_cast<int>(f),
                                      static_cast<int>(t))
                            .name()
                            .c_str());
        }
    }

    // The config survives serialization: reparsing toText() resolves
    // to the exact same matrix (CI keeps this property tested too).
    SafetyConfig again = SafetyConfig::parse(img.config().toText());
    GateMatrix m2 = GateMatrix::build(again);
    bool same = true;
    for (std::size_t f = 0; f < img.compartmentCount(); ++f)
        for (std::size_t t = 0; t < img.compartmentCount(); ++t)
            same = same && m2.at(static_cast<int>(f),
                                 static_cast<int>(t)) ==
                               img.policyFor(static_cast<int>(f),
                                             static_cast<int>(t));
    std::printf("\ntoText() round-trip resolves to the same matrix: "
                "%s\n",
                same ? "yes" : "NO");

    // Drive the boundaries. The storm loop overruns sys -> net's
    // 100-per-1M-vcycle budget and gets stalled; the denied edges
    // refuse their dynamic crossings.
    std::uint64_t denied = 0, throttleFailed = 0;
    bool done = false;
    img.spawnIn("libredis", "driver", [&] {
        // Hot edge: app -> sys keeps the DSS, so frames opened behind
        // it still split private variable from shared shadow copy.
        img.gate("uksched", "yield", [&] {
            DssFrame frame(img);
            int *x = frame.var<int>();
            img.store(x, 7);
            std::printf("\napp -> sys frame: shadow(&x) != &x: %s "
                        "(dss boundary)\n",
                        frame.shadow(x) != x ? "yes" : "NO");
        });

        // Gate storm across the rate-limited sys -> net edge.
        img.gate("uksched", "yield", [&] {
            for (int i = 0; i < 300; ++i)
                img.gate("lwip", "poll", [] {});
        });

        // net -> sys is budgeted with overflow: fail.
        img.gate("uksched", "yield", [&] {
            img.gate("lwip", "poll", [&] {
                for (int i = 0; i < 700; ++i) {
                    try {
                        img.gate("uksched", "yield", [] {});
                    } catch (const ThrottledCrossing &) {
                        ++throttleFailed;
                    }
                }
            });
        });

        // Crossings back into the app compartment are denied for
        // everyone — sys and net alike.
        img.gate("uksched", "yield", [&] {
            try {
                img.gate("libredis", "redis_handle_conn", [] {});
            } catch (const DeniedCrossing &) {
                ++denied;
            }
        });
        img.gate("lwip", "poll", [&] {
            try {
                img.gate("libredis", "redis_handle_conn", [] {});
            } catch (const DeniedCrossing &) {
                ++denied;
            }
        });
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });

    std::printf("\nleast-privilege stats:\n");
    std::printf("  gate.denied          : %6lu  (DeniedCrossing "
                "caught: %lu)\n",
                static_cast<unsigned long>(m.counter("gate.denied")),
                static_cast<unsigned long>(denied));
    std::printf("  gate.throttled       : %6lu  (ThrottledCrossing "
                "caught: %lu)\n",
                static_cast<unsigned long>(m.counter("gate.throttled")),
                static_cast<unsigned long>(throttleFailed));
    std::printf("  machine.stallCycles  : %6lu  (sys -> net "
                "back-pressure)\n",
                static_cast<unsigned long>(
                    m.counter("machine.stallCycles")));

    std::printf("\ncrossings per boundary (from -> to : policy):\n");
    for (const auto &[pair, stat] : img.boundaryStats()) {
        (void)pair;
        std::printf("  %-4s -> %-4s : %-28s %8lu\n", stat.from.c_str(),
                    stat.to.c_str(), stat.policy.c_str(),
                    static_cast<unsigned long>(stat.count));
    }

    // Where do the deny rules come from? The boundary auditor derives
    // them: strip this config's deny rules and ask it what a minimal
    // least-privilege ruleset would be — it suggests exactly the edges
    // the `'*' -> app` rule covers (see docs/static-analysis.md and
    // `tools/boundary_audit`).
    LibraryRegistry reg = LibraryRegistry::standard();
    analysis::AuditOptions aopts;
    aopts.escape = false; // call-graph + policy passes only

    SafetyConfig loose = img.config();
    std::erase_if(loose.boundaries, [](const BoundaryRule &r) {
        return r.deny && *r.deny;
    });
    analysis::AuditReport before = analysis::runAudit(loose, reg, aopts);
    analysis::AuditReport after =
        analysis::runAudit(img.config(), reg, aopts);

    std::printf("\nboundary audit, deny rules stripped (score %d) — "
                "suggested minimal deny ruleset:\n",
                before.score());
    for (const auto &[f, t] : before.suggestedDeny)
        std::printf("  - %s -> %s: {deny: true}\n", f.c_str(),
                    t.c_str());
    std::printf("boundary audit of the shipped config (score %d): "
                "%zu further deny rule(s) suggested\n",
                after.score(), after.suggestedDeny.size());

    std::printf("\nThe matrix is a call-graph specification: edges "
                "the deployment does not\nneed are denied, bursty "
                "edges are budgeted, and the data-sharing strategy\n"
                "is chosen boundary by boundary.\n");
    return 0;
}
