/**
 * @file
 * Heterogeneous isolation: one image, several mechanisms, and a
 * gate-policy matrix. The mechanism is a per-boundary build-time
 * knob, so a deployment can spend the expensive protection exactly
 * where the threat is: here the network stack — the component parsing
 * attacker-controlled bytes — sits alone in an EPT-backed VM, while
 * the application and system libraries stay behind MPK boundaries.
 *
 * The `boundaries:` section then tunes individual (from, to) pairs of
 * the matrix: the hot trusted app -> sys boundary runs the ERIM-style
 * light gate while every other MPK boundary keeps the full
 * register-scrubbing DSS gate (two flavours live in one image),
 * crossings into the attacker-facing net VM force caller-side entry
 * validation, and EPT -> MPK returns skip the return-side scrub —
 * asymmetric policies the old global `mpk_gate` knob could not say.
 *
 * The workload is the PR 1 multi-flow iperf: N parallel connections
 * through one listener, i.e. MPK->EPT and EPT->MPK crossings under
 * load rather than a single ping.
 */

#include <cstdio>

#include "apps/deploy.hh"
#include "apps/iperf.hh"

using namespace flexos;

namespace {

const char *heterogeneousConfig = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: vm-ept        # attacker-facing: strongest boundary
    servers: 3               # RPC pool size (elastic up to the cap)
libraries:
- libiperf: app
- newlib: sys
- uksched: sys
- lwip: net
boundaries:
- app -> sys: {gate: light}  # hot trusted boundary: ERIM-style gate
- '*' -> net: {validate: true} # attacker-facing: validate entries
- net -> '*': {scrub: false} # EPT->MPK returns skip the re-scrub
)";

} // namespace

int
main()
{
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(heterogeneousConfig, opts);

    std::printf("=== Heterogeneous isolation: MPK app/sys + EPT net "
                "===\n\n");
    std::printf("backends instantiated: %s\n",
                dep.image().backendNames().c_str());
    for (std::size_t i = 0; i < dep.image().compartmentCount(); ++i) {
        const Compartment &c = dep.image().compartmentAt(i);
        std::printf("  compartment %zu '%s' -> %s\n", i,
                    c.spec.name.c_str(),
                    dep.image().backendFor(static_cast<int>(i)).name());
    }

    std::printf("\ngate-policy matrix (from -> to : policy):\n");
    for (std::size_t f = 0; f < dep.image().compartmentCount(); ++f) {
        for (std::size_t t = 0; t < dep.image().compartmentCount();
             ++t) {
            if (f == t)
                continue;
            std::printf("  %-4s -> %-4s : %s\n",
                        dep.image().compartmentAt(f).spec.name.c_str(),
                        dep.image().compartmentAt(t).spec.name.c_str(),
                        dep.image()
                            .policyFor(static_cast<int>(f),
                                       static_cast<int>(t))
                            .name()
                            .c_str());
        }
    }
    std::printf("\nround-tripped config (toText):\n%s",
                dep.image().config().toText().c_str());

    dep.start();
    IperfResult res = runIperfMulti(dep.image(), dep.libc(),
                                    dep.clientStack(), 64 * 1024, 4096,
                                    /*flows=*/4);
    dep.stop();

    Machine &m = dep.machine();
    std::printf("\niperf: %u flows, %.2f Gb/s aggregate\n", res.flows,
                res.gbitPerSec);
    std::printf("\ngate traffic by flavour/mechanism:\n");
    std::printf("  gate.direct    (same compartment)  : %10lu\n",
                static_cast<unsigned long>(m.counter("gate.direct")));
    std::printf("  gate.mpk.light (hot app->sys edge) : %10lu\n",
                static_cast<unsigned long>(m.counter("gate.mpk.light")));
    std::printf("  gate.mpk.dss   (other MPK edges)   : %10lu\n",
                static_cast<unsigned long>(m.counter("gate.mpk.dss")));
    std::printf("  gate.ept       (into net, RPC)     : %10lu\n",
                static_cast<unsigned long>(m.counter("gate.ept")));
    std::printf("  gate.validate  (forced entry check): %10lu\n",
                static_cast<unsigned long>(m.counter("gate.validate")));
    std::printf("  gate.ept.ringDepth (high water)    : %10lu\n",
                static_cast<unsigned long>(
                    m.counter("gate.ept.ringDepth")));

    std::printf("\ncrossings per boundary (from -> to : policy):\n");
    for (const auto &[pair, stat] : dep.image().boundaryStats()) {
        (void)pair;
        std::printf("  %-4s -> %-4s : %-22s %10lu\n",
                    stat.from.c_str(), stat.to.c_str(),
                    stat.policy.c_str(),
                    static_cast<unsigned long>(stat.count));
    }

    std::printf("\nOne config file, two mechanisms, one policy "
                "matrix: the network boundary\nis VM-grade, the hot "
                "app->sys edge runs the light gate, and every "
                "override\nis a one-line boundaries: rule.\n");
    return 0;
}
