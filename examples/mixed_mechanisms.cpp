/**
 * @file
 * Heterogeneous isolation: one image, several mechanisms. The
 * mechanism is a per-boundary build-time knob, so a deployment can
 * spend the expensive protection exactly where the threat is: here the
 * network stack — the component parsing attacker-controlled bytes —
 * sits alone in an EPT-backed VM, while the application and system
 * libraries stay behind cheap MPK boundaries. Every crossing is routed
 * through the *callee* compartment's backend: calls into lwip pay the
 * RPC gate, calls between app and libc pay the MPK gate, and
 * same-compartment calls stay plain calls.
 *
 * The workload is the PR 1 multi-flow iperf: N parallel connections
 * through one listener, i.e. MPK->EPT and EPT->MPK crossings under
 * load rather than a single ping.
 */

#include <cstdio>

#include "apps/deploy.hh"
#include "apps/iperf.hh"

using namespace flexos;

namespace {

const char *heterogeneousConfig = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: vm-ept        # attacker-facing: strongest boundary
libraries:
- libiperf: app
- newlib: sys
- uksched: sys
- lwip: net
)";

} // namespace

int
main()
{
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(heterogeneousConfig, opts);

    std::printf("=== Heterogeneous isolation: MPK app/sys + EPT net "
                "===\n\n");
    std::printf("backends instantiated: %s\n",
                dep.image().backendNames().c_str());
    for (std::size_t i = 0; i < dep.image().compartmentCount(); ++i) {
        const Compartment &c = dep.image().compartmentAt(i);
        std::printf("  compartment %zu '%s' -> %s\n", i,
                    c.spec.name.c_str(),
                    dep.image().backendFor(static_cast<int>(i)).name());
    }

    dep.start();
    IperfResult res = runIperfMulti(dep.image(), dep.libc(),
                                    dep.clientStack(), 64 * 1024, 4096,
                                    /*flows=*/4);
    dep.stop();

    Machine &m = dep.machine();
    std::printf("\niperf: %u flows, %.2f Gb/s aggregate\n", res.flows,
                res.gbitPerSec);
    std::printf("\ngate traffic by mechanism:\n");
    std::printf("  gate.direct   (same compartment) : %10lu\n",
                static_cast<unsigned long>(m.counter("gate.direct")));
    std::printf("  gate.mpk.dss  (into app/sys)     : %10lu\n",
                static_cast<unsigned long>(m.counter("gate.mpk.dss")));
    std::printf("  gate.ept      (into net, RPC)    : %10lu\n",
                static_cast<unsigned long>(m.counter("gate.ept")));

    std::printf("\ncrossings per boundary (from -> to):\n");
    for (const auto &[pair, n] : dep.image().gateCrossings()) {
        std::printf("  %s -> %s : %lu\n",
                    dep.image()
                        .compartmentAt(static_cast<std::size_t>(
                            pair.first))
                        .spec.name.c_str(),
                    dep.image()
                        .compartmentAt(static_cast<std::size_t>(
                            pair.second))
                        .spec.name.c_str(),
                    static_cast<unsigned long>(n));
    }

    std::printf("\nOne config file, two mechanisms: the network "
                "boundary is VM-grade while\napp<->libc crossings stay "
                "at MPK cost. Swapping 'vm-ept' for 'intel-mpk'\n(or "
                "back) is a one-word change per compartment.\n");
    return 0;
}
