/**
 * @file
 * Quickstart: build a two-compartment MPK image from the paper's
 * example configuration, boot it, run a Redis server inside, and talk
 * RESP to it over the TCP stack. Prints the toolchain's transformation
 * report and the gate-crossing counters so you can see the isolation
 * working.
 */

#include <cstdio>

#include "apps/deploy.hh"
#include "apps/redis.hh"

using namespace flexos;

int
main()
{
    // The safety configuration is data, not design: change the
    // mechanism or move a library and rebuild — nothing else changes.
    const char *config = R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
    hardening: [cfi, kasan]
libraries:
- libredis: comp1
- newlib: comp1
- uksched: comp1
- uktime: comp1
- lwip: comp2
)";

    Deployment dep(config);
    std::printf("built image with backend: %s\n",
                dep.toolchain().report().backendName.c_str());
    std::printf("gates instantiated: %d, annotations: %d\n\n",
                dep.toolchain().report().gatesInserted,
                dep.toolchain().report().annotationsReplaced);
    std::printf("--- generated linker script ---\n%s\n",
                dep.image().linkerScript().c_str());

    dep.start();
    RedisServer server(dep.libc(), 6379);
    server.start();

    std::string reply;
    Thread *cli = dep.scheduler().spawn("client", [&] {
        TcpSocket *s =
            dep.clientStack().connect(makeIp(10, 0, 0, 1), 6379);
        std::string wire =
            RespParser::command({"SET", "greeting", "hello, flexos"}) +
            RespParser::command({"GET", "greeting"});
        s->send(wire.data(), wire.size());
        char buf[256];
        while (reply.find("flexos") == std::string::npos) {
            long n = s->recv(buf, sizeof(buf));
            if (n <= 0)
                break;
            reply.append(buf, static_cast<std::size_t>(n));
        }
        s->close();
    });
    cli->freeRunning = true;
    dep.scheduler().runUntil(
        [&] { return reply.find("flexos") != std::string::npos; });

    std::printf("server replied: %s\n", reply.c_str());
    std::printf("MPK gate crossings: %llu\n",
                static_cast<unsigned long long>(
                    dep.machine().counter("gate.mpk.dss")));
    std::printf("virtual time elapsed: %.3f ms\n",
                dep.machine().seconds() * 1e3);
    server.stop();
    dep.stop();
    return 0;
}
