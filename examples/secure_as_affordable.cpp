/**
 * @file
 * Use case (paper section 7): "as secure as you can afford". A service
 * operator wants, at any time, the *safest* configuration that still
 * sustains the current load. Partial safety ordering answers exactly
 * that question: build the poset over the configuration space, label
 * it with measured throughput, and pick the maximal elements above the
 * load. As load rises, defenses gracefully switch off; as it falls,
 * they come back.
 */

#include <cstdio>

#include "explore/poset.hh"
#include "explore/wayfinder.hh"

using namespace flexos;

int
main()
{
    // Build and measure a compact slice of the Redis space once.
    std::vector<ConfigPoint> space = wayfinder::fig6Space();
    SafetyPoset poset;
    for (ConfigPoint &p : space) {
        p.label = wayfinder::pointLabel(p, "redis");
        poset.add(p);
    }
    poset.buildEdges();
    for (std::size_t i = 0; i < poset.size(); ++i)
        poset.at(i).perf = wayfinder::measureRedis(poset.at(i), 250);

    double peak = 0;
    for (std::size_t i = 0; i < poset.size(); ++i)
        peak = std::max(peak, poset.at(i).perf);

    // A day in the life of the service: load as a fraction of peak.
    struct Hour
    {
        const char *when;
        double load;
    };
    const Hour day[] = {
        {"03:00 (night, idle)", 0.25},
        {"09:00 (morning ramp)", 0.55},
        {"13:00 (lunch peak)", 0.85},
        {"20:00 (evening)", 0.45},
    };

    std::printf("peak capacity: %.0fk req/s\n\n", peak / 1000);
    for (const Hour &h : day) {
        double needed = peak * h.load;
        std::vector<std::size_t> best = poset.safestWithin(needed);
        std::printf("%-22s needs %6.0fk req/s -> %zu safest "
                    "configuration(s):\n",
                    h.when, needed / 1000, best.size());
        for (std::size_t i : best) {
            std::printf("    %-52s %8.0fk req/s\n",
                        poset.at(i).label.c_str(),
                        poset.at(i).perf / 1000);
        }
    }
    std::printf("\nswitching between these is a rebuild away — no "
                "redesign, ever.\n");
    return 0;
}
