/**
 * @file
 * Use case (paper section 7): react to a hardware protection breaking
 * down. A Meltdown-class vulnerability just made the MPK-based
 * isolation untrustworthy; switching every compartment to EPT-backed
 * VMs is a one-word change in the configuration — the engineering cost
 * is nil, only the rebuild. The same application binary-to-be runs
 * unchanged under both mechanisms, at different cost points.
 */

#include <cstdio>
#include <string>

#include "apps/deploy.hh"
#include "apps/iperf.hh"

using namespace flexos;

namespace {

std::string
config(const char *mechanism)
{
    return std::string(R"(
compartments:
- comp1:
    mechanism: )") + mechanism + R"(
    default: True
- comp2:
    mechanism: )" + mechanism + R"(
libraries:
- libiperf: comp1
- newlib: comp2
- uksched: comp2
- lwip: comp2
)";
}

double
runWorkload(const std::string &cfg)
{
    DeployOptions opts;
    opts.withFs = false;
    Deployment dep(cfg, opts);
    dep.start();
    IperfResult res = runIperf(dep.image(), dep.libc(),
                               dep.clientStack(), 256 * 1024, 4096);
    dep.stop();
    return res.gbitPerSec;
}

} // namespace

int
main()
{
    std::printf("Monday: production runs the MPK configuration.\n");
    double mpk = runWorkload(config("intel-mpk"));
    std::printf("  iperf throughput: %.2f Gb/s\n\n", mpk);

    std::printf("Tuesday: an errata drops — protection keys can be "
                "bypassed speculatively.\n");
    std::printf("Change one word in the config (intel-mpk -> vm-ept) "
                "and rebuild:\n");
    double ept = runWorkload(config("vm-ept"));
    std::printf("  iperf throughput: %.2f Gb/s\n\n", ept);

    std::printf("Isolation now rests on EPT instead of PKRU — at %.0f%% "
                "of the MPK throughput, with zero code changes.\n",
                100.0 * ept / mpk);
    return 0;
}
