/**
 * @file
 * Use case (paper section 7): quickly isolate an exploitable library.
 *
 * libopenjpg has a known memory-corruption bug (planted here as a rogue
 * pointer read into another component's heap). Before the fix ships,
 * rebuild the image with the vulnerable library in its own hardened
 * compartment: the exploit now faults at the compartment boundary
 * instead of leaking the application's secrets.
 */

#include <cstdio>

#include "apps/deploy.hh"

using namespace flexos;

namespace {

/** The "exploit": from inside libopenjpg, read the app's secret. */
bool
runExploit(Deployment &dep, int *secret)
{
    bool leaked = false;
    bool done = false;
    dep.image().spawnIn("libopenjpg", "decoder", [&] {
        try {
            // A corrupted offset walks right into libredis' heap.
            int value = dep.image().load(secret);
            std::printf("  exploit read the secret: %d\n", value);
            leaked = true;
        } catch (const ProtectionFault &f) {
            std::printf("  exploit stopped: %s\n", f.what());
        }
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });
    return leaked;
}

int *
plantSecret(Deployment &dep)
{
    auto *secret =
        static_cast<int *>(dep.image().heapOf("libredis").alloc(16));
    bool done = false;
    dep.image().spawnIn("libredis", "app", [&] {
        dep.image().store(secret, 0x5ec12e7);
        done = true;
    });
    dep.scheduler().runUntil([&] { return done; });
    return secret;
}

} // namespace

int
main()
{
    std::printf("vulnerability window, day 0: everything in one "
                "compartment\n");
    {
        Deployment dep(R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libredis: all
- newlib: all
- libopenjpg: all
)",
                       DeployOptions{.withNet = false, .withFs = false});
        int *secret = plantSecret(dep);
        bool leaked = runExploit(dep, secret);
        std::printf("  -> %s\n\n",
                    leaked ? "SECRET LEAKED" : "contained");
    }

    std::printf("five minutes later: rebuild with libopenjpg in its own "
                "compartment (one config edit, zero code changes)\n");
    {
        Deployment dep(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- jail:
    mechanism: intel-mpk
    hardening: [cfi, kasan]
libraries:
- libredis: comp1
- newlib: comp1
- libopenjpg: jail
)",
                       DeployOptions{.withNet = false, .withFs = false});
        int *secret = plantSecret(dep);
        bool leaked = runExploit(dep, secret);
        std::printf("  -> %s\n", leaked ? "SECRET LEAKED"
                                        : "exploit contained by MPK "
                                          "compartment");
    }
    return 0;
}
