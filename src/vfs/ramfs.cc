#include "vfs/ramfs.hh"

#include <cstring>

#include "base/logging.hh"
#include "machine/machine.hh"

namespace flexos {

RamfsNode::RamfsNode(VnodeType t, Allocator *allocator)
    : nodeType(t), alloc(allocator)
{
}

RamfsNode::~RamfsNode()
{
    for (char *b : blocks)
        freeBlock(b);
}

char *
RamfsNode::allocBlock()
{
    if (alloc)
        return static_cast<char *>(alloc->alloc(blockSize));
    return new char[blockSize];
}

void
RamfsNode::freeBlock(char *b)
{
    if (alloc)
        alloc->free(b);
    else
        delete[] b;
}

void
RamfsNode::chargeOp(std::size_t bytes) const
{
    if (Machine::hasCurrent()) {
        auto &m = Machine::current();
        m.consume(m.timing.ramfsOpBase);
        m.consumePerByte(bytes, m.timing.fsCopyPer16B);
        m.bump("ramfs.ops");
    }
}

bool
RamfsNode::ensureCapacity(std::uint64_t newSize)
{
    std::size_t needed =
        static_cast<std::size_t>((newSize + blockSize - 1) / blockSize);
    while (blocks.size() < needed) {
        char *b = allocBlock();
        if (!b)
            return false;
        std::memset(b, 0, blockSize);
        blocks.push_back(b);
    }
    return true;
}

long
RamfsNode::read(std::uint64_t off, void *buf, std::size_t n)
{
    if (nodeType != VnodeType::Regular)
        return vfsIsDir;
    if (off >= fileSize)
        return 0;
    std::size_t todo =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, fileSize - off));
    chargeOp(todo);

    char *out = static_cast<char *>(buf);
    std::size_t done = 0;
    while (done < todo) {
        std::size_t blk = static_cast<std::size_t>((off + done) / blockSize);
        std::size_t in = static_cast<std::size_t>((off + done) % blockSize);
        std::size_t chunk = std::min(todo - done, blockSize - in);
        std::memcpy(out + done, blocks[blk] + in, chunk);
        done += chunk;
    }
    return static_cast<long>(todo);
}

long
RamfsNode::write(std::uint64_t off, const void *buf, std::size_t n)
{
    if (nodeType != VnodeType::Regular)
        return vfsIsDir;
    if (!ensureCapacity(off + n))
        return vfsNoSpace;
    chargeOp(n);

    const char *in = static_cast<const char *>(buf);
    std::size_t done = 0;
    while (done < n) {
        std::size_t blk = static_cast<std::size_t>((off + done) / blockSize);
        std::size_t at = static_cast<std::size_t>((off + done) % blockSize);
        std::size_t chunk = std::min(n - done, blockSize - at);
        std::memcpy(blocks[blk] + at, in + done, chunk);
        done += chunk;
    }
    if (off + n > fileSize)
        fileSize = off + n;
    return static_cast<long>(n);
}

int
RamfsNode::truncate(std::uint64_t newSize)
{
    if (nodeType != VnodeType::Regular)
        return vfsIsDir;
    chargeOp(0);
    if (newSize < fileSize) {
        std::size_t keep =
            static_cast<std::size_t>((newSize + blockSize - 1) / blockSize);
        while (blocks.size() > keep) {
            freeBlock(blocks.back());
            blocks.pop_back();
        }
        // Zero the tail of the last kept block so regrowth reads zeros.
        if (!blocks.empty() && newSize % blockSize != 0) {
            std::size_t at = static_cast<std::size_t>(newSize % blockSize);
            std::memset(blocks.back() + at, 0, blockSize - at);
        }
    } else if (!ensureCapacity(newSize)) {
        return vfsNoSpace;
    }
    fileSize = newSize;
    return vfsOk;
}

int
RamfsNode::sync()
{
    // ramfs has no backing store; model the flush barrier cost only.
    chargeOp(0);
    return vfsOk;
}

std::shared_ptr<Vnode>
RamfsNode::lookup(const std::string &name)
{
    if (nodeType != VnodeType::Directory)
        return nullptr;
    auto it = children.find(name);
    return it == children.end() ? nullptr : it->second;
}

std::shared_ptr<Vnode>
RamfsNode::create(const std::string &name, VnodeType t)
{
    if (nodeType != VnodeType::Directory || name.empty())
        return nullptr;
    if (children.count(name))
        return nullptr;
    chargeOp(0);
    auto node = std::make_shared<RamfsNode>(t, alloc);
    children.emplace(name, node);
    return node;
}

int
RamfsNode::unlink(const std::string &name)
{
    if (nodeType != VnodeType::Directory)
        return vfsNotDir;
    chargeOp(0);
    return children.erase(name) ? vfsOk : vfsNotFound;
}

std::vector<std::string>
RamfsNode::list()
{
    std::vector<std::string> names;
    names.reserve(children.size());
    for (const auto &[name, node] : children)
        names.push_back(name);
    return names;
}

std::shared_ptr<RamfsNode>
makeRamfs(Allocator *alloc)
{
    return std::make_shared<RamfsNode>(VnodeType::Directory, alloc);
}

} // namespace flexos
