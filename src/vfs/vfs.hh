/**
 * @file
 * vfscore: the virtual filesystem micro-library.
 *
 * A vnode-based VFS with a POSIX-flavoured descriptor API. In the paper's
 * experiments the filesystem (ramfs+vfscore, ported as one component —
 * they are too entangled to split profitably, paper 4.4) is one of the
 * compartmentalized components (Figure 10).
 */

#ifndef FLEXOS_VFS_VFS_HH
#define FLEXOS_VFS_VFS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace flexos {

/** VFS error codes (negative values returned by descriptor calls). */
enum VfsError : int
{
    vfsOk = 0,
    vfsNotFound = -2,  // ENOENT
    vfsIo = -5,        // EIO
    vfsBadFd = -9,     // EBADF
    vfsExists = -17,   // EEXIST
    vfsNotDir = -20,   // ENOTDIR
    vfsIsDir = -21,    // EISDIR
    vfsInval = -22,    // EINVAL
    vfsNoSpace = -28,  // ENOSPC
    vfsNotEmpty = -39, // ENOTEMPTY
};

/** Node types. */
enum class VnodeType { Regular, Directory };

/** Open flags (subset of POSIX). */
enum OpenFlags : unsigned
{
    oRdOnly = 0x0,
    oWrOnly = 0x1,
    oRdWr = 0x2,
    oCreat = 0x40,
    oTrunc = 0x200,
    oAppend = 0x400,
};

/** Whence values for lseek. */
enum class SeekWhence { Set, Cur, End };

/** File metadata. */
struct VfsStat
{
    VnodeType type = VnodeType::Regular;
    std::uint64_t size = 0;
};

/**
 * A filesystem node. Concrete filesystems (ramfs) subclass this.
 */
class Vnode
{
  public:
    virtual ~Vnode() = default;

    virtual VnodeType type() const = 0;
    virtual std::uint64_t size() const = 0;

    /** @name Regular-file operations. @{ */
    virtual long read(std::uint64_t off, void *buf, std::size_t n) = 0;
    virtual long write(std::uint64_t off, const void *buf,
                       std::size_t n) = 0;
    virtual int truncate(std::uint64_t newSize) = 0;
    /** Flush to "stable storage" (charges the sync cost). */
    virtual int sync() = 0;
    /** @} */

    /** @name Directory operations. @{ */
    virtual std::shared_ptr<Vnode> lookup(const std::string &name) = 0;
    virtual std::shared_ptr<Vnode> create(const std::string &name,
                                          VnodeType t) = 0;
    virtual int unlink(const std::string &name) = 0;
    virtual std::vector<std::string> list() = 0;
    /** @} */
};

/**
 * The VFS layer: path resolution plus a file-descriptor table.
 */
class Vfs
{
  public:
    /** Mount a filesystem root. */
    explicit Vfs(std::shared_ptr<Vnode> root);

    /** @name POSIX-flavoured API. Negative returns are VfsError. @{ */
    int open(const std::string &path, unsigned flags);
    int close(int fd);
    long read(int fd, void *buf, std::size_t n);
    long write(int fd, const void *buf, std::size_t n);
    long pread(int fd, void *buf, std::size_t n, std::uint64_t off);
    long pwrite(int fd, const void *buf, std::size_t n, std::uint64_t off);
    long lseek(int fd, long off, SeekWhence whence);
    int fsync(int fd);
    int ftruncate(int fd, std::uint64_t size);
    int unlink(const std::string &path);
    int mkdir(const std::string &path);
    int rmdir(const std::string &path);
    int stat(const std::string &path, VfsStat &out);
    int readdir(const std::string &path, std::vector<std::string> &out);
    /** @} */

    /** Number of open descriptors (leak checks in tests). */
    std::size_t openCount() const;

  private:
    struct OpenFile
    {
        std::shared_ptr<Vnode> node;
        std::uint64_t offset = 0;
        unsigned flags = 0;
    };

    /** Resolve a path to its vnode; null with err set on failure. */
    std::shared_ptr<Vnode> resolve(const std::string &path, int &err);

    /** Resolve the parent directory of path; sets leaf name. */
    std::shared_ptr<Vnode> resolveParent(const std::string &path,
                                         std::string &leaf, int &err);

    OpenFile *file(int fd);

    /** Charge the fixed VFS entry cost for one operation. */
    void chargeOp() const;

    std::shared_ptr<Vnode> root;
    std::vector<std::unique_ptr<OpenFile>> fds;
};

} // namespace flexos

#endif // FLEXOS_VFS_VFS_HH
