/**
 * @file
 * ramfs: an in-memory filesystem whose file data lives in 4 KiB blocks
 * drawn from a compartment allocator.
 *
 * Routing block storage through the allocator matters for the Figure 10
 * reproduction: filesystem-intensive workloads exercise the compartment's
 * allocator on every growing write, so allocator behaviour differences
 * (TLSF vs. Lea) surface in end-to-end numbers exactly as in the paper.
 */

#ifndef FLEXOS_VFS_RAMFS_HH
#define FLEXOS_VFS_RAMFS_HH

#include <map>
#include <memory>

#include "ukalloc/allocator.hh"
#include "vfs/vfs.hh"

namespace flexos {

/**
 * A ramfs node: either a regular file (block list) or a directory
 * (name -> node map).
 */
class RamfsNode : public Vnode,
                  public std::enable_shared_from_this<RamfsNode>
{
  public:
    static constexpr std::size_t blockSize = 4096;

    /** Create a node; alloc may be null (fall back to new[]). */
    RamfsNode(VnodeType t, Allocator *alloc);
    ~RamfsNode() override;

    VnodeType type() const override { return nodeType; }
    std::uint64_t size() const override { return fileSize; }

    long read(std::uint64_t off, void *buf, std::size_t n) override;
    long write(std::uint64_t off, const void *buf, std::size_t n) override;
    int truncate(std::uint64_t newSize) override;
    int sync() override;

    std::shared_ptr<Vnode> lookup(const std::string &name) override;
    std::shared_ptr<Vnode> create(const std::string &name,
                                  VnodeType t) override;
    int unlink(const std::string &name) override;
    std::vector<std::string> list() override;

  private:
    char *allocBlock();
    void freeBlock(char *b);
    /** Grow the block list to cover newSize bytes. @return success */
    bool ensureCapacity(std::uint64_t newSize);
    void chargeOp(std::size_t bytes) const;

    VnodeType nodeType;
    Allocator *alloc;

    // Regular files:
    std::vector<char *> blocks;
    std::uint64_t fileSize = 0;

    // Directories:
    std::map<std::string, std::shared_ptr<RamfsNode>> children;
};

/** Build a fresh ramfs and return its root directory. */
std::shared_ptr<RamfsNode> makeRamfs(Allocator *alloc = nullptr);

} // namespace flexos

#endif // FLEXOS_VFS_RAMFS_HH
