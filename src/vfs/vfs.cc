#include "vfs/vfs.hh"

#include "base/logging.hh"
#include "base/strutil.hh"
#include "machine/machine.hh"

namespace flexos {

Vfs::Vfs(std::shared_ptr<Vnode> rootNode) : root(std::move(rootNode))
{
    fatal_if(!root, "VFS mounted without a root");
    fatal_if(root->type() != VnodeType::Directory,
             "VFS root must be a directory");
}

void
Vfs::chargeOp() const
{
    if (Machine::hasCurrent()) {
        auto &m = Machine::current();
        m.consume(m.timing.vfsOpBase);
        m.bump("vfs.ops");
    }
}

std::shared_ptr<Vnode>
Vfs::resolve(const std::string &path, int &err)
{
    std::shared_ptr<Vnode> node = root;
    for (const std::string &part : split(path, '/')) {
        if (part.empty())
            continue;
        if (node->type() != VnodeType::Directory) {
            err = vfsNotDir;
            return nullptr;
        }
        node = node->lookup(part);
        if (!node) {
            err = vfsNotFound;
            return nullptr;
        }
    }
    err = vfsOk;
    return node;
}

std::shared_ptr<Vnode>
Vfs::resolveParent(const std::string &path, std::string &leaf, int &err)
{
    std::vector<std::string> parts;
    for (const std::string &part : split(path, '/')) {
        if (!part.empty())
            parts.push_back(part);
    }
    if (parts.empty()) {
        err = vfsInval;
        return nullptr;
    }
    leaf = parts.back();

    std::shared_ptr<Vnode> node = root;
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
        if (node->type() != VnodeType::Directory) {
            err = vfsNotDir;
            return nullptr;
        }
        node = node->lookup(parts[i]);
        if (!node) {
            err = vfsNotFound;
            return nullptr;
        }
    }
    if (node->type() != VnodeType::Directory) {
        err = vfsNotDir;
        return nullptr;
    }
    err = vfsOk;
    return node;
}

Vfs::OpenFile *
Vfs::file(int fd)
{
    if (fd < 0 || static_cast<std::size_t>(fd) >= fds.size())
        return nullptr;
    return fds[fd].get();
}

int
Vfs::open(const std::string &path, unsigned flags)
{
    chargeOp();
    int err;
    std::shared_ptr<Vnode> node = resolve(path, err);
    if (!node) {
        if (err != vfsNotFound || !(flags & oCreat))
            return err;
        std::string leaf;
        std::shared_ptr<Vnode> parent = resolveParent(path, leaf, err);
        if (!parent)
            return err;
        node = parent->create(leaf, VnodeType::Regular);
        if (!node)
            return vfsNoSpace;
    }
    if (node->type() == VnodeType::Directory &&
        (flags & (oWrOnly | oRdWr)))
        return vfsIsDir;
    if ((flags & oTrunc) && node->type() == VnodeType::Regular)
        node->truncate(0);

    // Reuse the lowest free slot, POSIX-style.
    for (std::size_t i = 0; i < fds.size(); ++i) {
        if (!fds[i]) {
            fds[i] = std::make_unique<OpenFile>(
                OpenFile{node, 0, flags});
            return static_cast<int>(i);
        }
    }
    fds.push_back(std::make_unique<OpenFile>(OpenFile{node, 0, flags}));
    return static_cast<int>(fds.size() - 1);
}

int
Vfs::close(int fd)
{
    chargeOp();
    OpenFile *f = file(fd);
    if (!f)
        return vfsBadFd;
    fds[fd].reset();
    return vfsOk;
}

long
Vfs::read(int fd, void *buf, std::size_t n)
{
    chargeOp();
    OpenFile *f = file(fd);
    if (!f)
        return vfsBadFd;
    if (f->node->type() != VnodeType::Regular)
        return vfsIsDir;
    long got = f->node->read(f->offset, buf, n);
    if (got > 0)
        f->offset += static_cast<std::uint64_t>(got);
    return got;
}

long
Vfs::write(int fd, const void *buf, std::size_t n)
{
    chargeOp();
    OpenFile *f = file(fd);
    if (!f)
        return vfsBadFd;
    if (f->node->type() != VnodeType::Regular)
        return vfsIsDir;
    if (f->flags & oAppend)
        f->offset = f->node->size();
    long put = f->node->write(f->offset, buf, n);
    if (put > 0)
        f->offset += static_cast<std::uint64_t>(put);
    return put;
}

long
Vfs::pread(int fd, void *buf, std::size_t n, std::uint64_t off)
{
    chargeOp();
    OpenFile *f = file(fd);
    if (!f)
        return vfsBadFd;
    return f->node->read(off, buf, n);
}

long
Vfs::pwrite(int fd, const void *buf, std::size_t n, std::uint64_t off)
{
    chargeOp();
    OpenFile *f = file(fd);
    if (!f)
        return vfsBadFd;
    return f->node->write(off, buf, n);
}

long
Vfs::lseek(int fd, long off, SeekWhence whence)
{
    chargeOp();
    OpenFile *f = file(fd);
    if (!f)
        return vfsBadFd;
    long base = 0;
    switch (whence) {
      case SeekWhence::Set:
        base = 0;
        break;
      case SeekWhence::Cur:
        base = static_cast<long>(f->offset);
        break;
      case SeekWhence::End:
        base = static_cast<long>(f->node->size());
        break;
    }
    long target = base + off;
    if (target < 0)
        return vfsInval;
    f->offset = static_cast<std::uint64_t>(target);
    return target;
}

int
Vfs::fsync(int fd)
{
    chargeOp();
    OpenFile *f = file(fd);
    if (!f)
        return vfsBadFd;
    return f->node->sync();
}

int
Vfs::ftruncate(int fd, std::uint64_t size)
{
    chargeOp();
    OpenFile *f = file(fd);
    if (!f)
        return vfsBadFd;
    return f->node->truncate(size);
}

int
Vfs::unlink(const std::string &path)
{
    chargeOp();
    int err;
    std::string leaf;
    std::shared_ptr<Vnode> parent = resolveParent(path, leaf, err);
    if (!parent)
        return err;
    std::shared_ptr<Vnode> victim = parent->lookup(leaf);
    if (!victim)
        return vfsNotFound;
    if (victim->type() == VnodeType::Directory)
        return vfsIsDir;
    return parent->unlink(leaf);
}

int
Vfs::mkdir(const std::string &path)
{
    chargeOp();
    int err;
    std::string leaf;
    std::shared_ptr<Vnode> parent = resolveParent(path, leaf, err);
    if (!parent)
        return err;
    if (parent->lookup(leaf))
        return vfsExists;
    return parent->create(leaf, VnodeType::Directory) ? vfsOk : vfsNoSpace;
}

int
Vfs::rmdir(const std::string &path)
{
    chargeOp();
    int err;
    std::string leaf;
    std::shared_ptr<Vnode> parent = resolveParent(path, leaf, err);
    if (!parent)
        return err;
    std::shared_ptr<Vnode> victim = parent->lookup(leaf);
    if (!victim)
        return vfsNotFound;
    if (victim->type() != VnodeType::Directory)
        return vfsNotDir;
    if (!victim->list().empty())
        return vfsNotEmpty;
    return parent->unlink(leaf);
}

int
Vfs::stat(const std::string &path, VfsStat &out)
{
    chargeOp();
    int err;
    std::shared_ptr<Vnode> node = resolve(path, err);
    if (!node)
        return err;
    out.type = node->type();
    out.size = node->size();
    return vfsOk;
}

int
Vfs::readdir(const std::string &path, std::vector<std::string> &out)
{
    chargeOp();
    int err;
    std::shared_ptr<Vnode> node = resolve(path, err);
    if (!node)
        return err;
    if (node->type() != VnodeType::Directory)
        return vfsNotDir;
    out = node->list();
    return vfsOk;
}

std::size_t
Vfs::openCount() const
{
    std::size_t n = 0;
    for (const auto &f : fds) {
        if (f)
            ++n;
    }
    return n;
}

} // namespace flexos
