/**
 * @file
 * Embedded-config extraction: finds every C++ raw-string literal in a
 * source file that contains a safety configuration (both a
 * `compartments:` and a `libraries:` section). Shared by
 * `tools/config_lint` and `tools/boundary_audit`, which run over the
 * examples and tests in CI.
 *
 * Handles the full raw-string grammar — bare `R"( ... )"` as well as
 * delimited literals `R"cfg( ... )cfg"` — so a `)"` inside the
 * payload (or a delimiter-carrying literal) cannot silently truncate
 * or skip a config. Blocks that are intentionally malformed
 * (rejection tests) opt out with a `lint-skip` marker inside or
 * immediately before the literal.
 */

#ifndef FLEXOS_ANALYSIS_EXTRACT_HH
#define FLEXOS_ANALYSIS_EXTRACT_HH

#include <cstddef>
#include <string>
#include <vector>

namespace flexos {
namespace analysis {

/** One extracted raw-string literal. */
struct ConfigBlock
{
    std::string text;
    /** 1-based line of the literal's opening `R"` in the source. */
    std::size_t line = 0;
    /** A `lint-skip` marker appeared in or just before the literal. */
    bool skip = false;
};

/**
 * Every raw-string literal in `src` (any delimiter). Literals whose
 * opening quote cannot be matched to a closing `)delim"` are dropped
 * (unterminated literals do not compile anyway).
 */
std::vector<ConfigBlock> rawStringLiterals(const std::string &src);

/** Whether a literal looks like a safety configuration. */
bool looksLikeConfig(const std::string &text);

/**
 * The auditable configs of one source file: raw-string literals that
 * look like configs and do not carry a `lint-skip` marker.
 */
std::vector<ConfigBlock> extractEmbeddedConfigs(const std::string &src);

} // namespace analysis
} // namespace flexos

#endif // FLEXOS_ANALYSIS_EXTRACT_HH
