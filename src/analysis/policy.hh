/**
 * @file
 * Policy-safety audit: walks every resolved GatePolicy of a
 * configuration's gate matrix against the call-graph model and flags
 * rule/reachability hazards — weak legs on boundaries an attacker in
 * the net-facing compartment can drive, unthrottled external edges,
 * and unused static edges, for which it emits the suggested minimal
 * `deny:` ruleset (the least-privilege tightening the config could
 * apply without losing any statically-needed crossing).
 */

#ifndef FLEXOS_ANALYSIS_POLICY_HH
#define FLEXOS_ANALYSIS_POLICY_HH

#include "analysis/callgraph.hh"
#include "analysis/report.hh"
#include "core/config.hh"

namespace flexos {
namespace analysis {

/**
 * The policy audit pass. Findings (all anchored to a boundary):
 *
 *  - `unscrubbed-net-boundary` (error): `scrub: false` on a boundary
 *    whose caller compartment is reachable from the net-facing
 *    compartment — register contents leak to an attacker-drivable
 *    edge;
 *  - `elided-net-boundary` (error): `elide:` skips validation or
 *    scrubbing legs on such a boundary (streak gadget surface);
 *  - `unvalidated-net-boundary` (warning): no `validate:` on such a
 *    boundary;
 *  - `unthrottled-external-edge` (warning): a gate out of the
 *    net-facing compartment itself carries no `rate:` budget — a
 *    compromised netstack can storm it freely;
 *  - `unused-static-edge` (note): the pair carries no static call
 *    edge and is not denied; collected into report.suggestedDeny.
 *
 * With no net-facing compartment only the last two kinds can fire.
 */
void policyPass(const SafetyConfig &cfg, const CompartmentGraph &graph,
                AuditReport &report);

} // namespace analysis
} // namespace flexos

#endif // FLEXOS_ANALYSIS_POLICY_HH
