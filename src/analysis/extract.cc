#include "analysis/extract.hh"

#include <algorithm>
#include <cctype>

namespace flexos {
namespace analysis {

std::vector<ConfigBlock>
rawStringLiterals(const std::string &src)
{
    std::vector<ConfigBlock> out;
    std::size_t pos = 0;
    std::size_t prevEnd = 0; // end of the previous literal
    while ((pos = src.find("R\"", pos)) != std::string::npos) {
        // R"delim( — the delimiter is up to 16 characters of anything
        // but parentheses, backslash and whitespace (the C++ grammar).
        std::size_t open = pos + 2;
        std::size_t d = open;
        auto delimChar = [&](char c) {
            return c != '(' && c != ')' && c != '\\' &&
                   !std::isspace(static_cast<unsigned char>(c));
        };
        while (d < src.size() && d - open < 16 && delimChar(src[d]))
            ++d;
        if (d >= src.size() || src[d] != '(') {
            // Not a raw-string literal after all (e.g. `R"x` inside a
            // comment, or an over-long delimiter): move past the `R"`.
            pos += 2;
            continue;
        }
        std::string delim = src.substr(open, d - open);
        std::string closer = ")" + delim + "\"";
        std::size_t start = d + 1;
        std::size_t end = src.find(closer, start);
        if (end == std::string::npos) {
            pos += 2;
            continue;
        }
        ConfigBlock b;
        b.text = src.substr(start, end - start);
        b.line = 1 + static_cast<std::size_t>(
                         std::count(src.begin(),
                                    src.begin() +
                                        static_cast<long>(pos),
                                    '\n'));
        // A lint-skip marker inside, or in the ~two lines before, the
        // literal opts it out of the config smoke checks. The lookback
        // never crosses a preceding literal — its marker (or payload)
        // must not bleed onto this one.
        std::size_t ctx = pos > 160 ? pos - 160 : 0;
        ctx = std::max(ctx, prevEnd);
        b.skip = b.text.find("lint-skip") != std::string::npos ||
                 src.substr(ctx, pos - ctx).find("lint-skip") !=
                     std::string::npos;
        out.push_back(std::move(b));
        pos = end + closer.size();
        prevEnd = pos;
    }
    return out;
}

bool
looksLikeConfig(const std::string &text)
{
    return text.find("compartments:") != std::string::npos &&
           text.find("libraries:") != std::string::npos;
}

std::vector<ConfigBlock>
extractEmbeddedConfigs(const std::string &src)
{
    std::vector<ConfigBlock> out;
    for (ConfigBlock &b : rawStringLiterals(src))
        if (looksLikeConfig(b.text) && !b.skip)
            out.push_back(std::move(b));
    return out;
}

} // namespace analysis
} // namespace flexos
