/**
 * @file
 * Cross-compartment call-graph analysis: the library registry's
 * static dependencies projected onto a configuration's compartments
 * and combined with the resolved gate matrix into a deny-aware
 * transitive reachability model (the static half of FlexOS's
 * toolchain analysis, paper 3.1).
 *
 * The model answers three questions the policy and escape passes and
 * `tools/config_lint` build on:
 *
 *  - which (from, to) compartment pairs carry *static* call edges
 *    (and through which library -> callee dependency);
 *  - which compartments are transitively reachable from the default
 *    (thread-spawning) compartment, with and without `deny:` rules —
 *    the difference is exactly what a deny ruleset severs, including
 *    multi-hop forwarding/proxy chains;
 *  - which compartments an attacker in the net-facing compartment can
 *    reach through non-denied gates (the audit's attack surface).
 */

#ifndef FLEXOS_ANALYSIS_CALLGRAPH_HH
#define FLEXOS_ANALYSIS_CALLGRAPH_HH

#include <string>
#include <utility>
#include <vector>

#include "analysis/report.hh"
#include "core/config.hh"
#include "core/library.hh"

namespace flexos {
namespace analysis {

/** The compartment-level projection of the static call graph. */
struct CompartmentGraph
{
    /** Compartment names, index order (= SafetyConfig order). */
    std::vector<std::string> comps;

    int defaultComp = -1;
    /** Compartment holding a net-facing library, or -1 if none. */
    int netComp = -1;

    /** One library -> callee dependency behind a static edge. */
    struct Witness
    {
        std::string lib;    ///< caller library
        std::string callee; ///< callee library
    };

    /** One cross-compartment static call edge. */
    struct Edge
    {
        int from = -1;
        int to = -1;
        /** Library dependencies this edge is the only path for. */
        std::vector<Witness> witnesses;
        /** Whether the gate matrix carries `deny: true` for it. */
        bool denied = false;
    };

    /** Static edges, ordered by (from, to). */
    std::vector<Edge> edges;

    /** Row-major [from * n + to]: gate not denied (dynamic calls ok). */
    std::vector<bool> allowed;

    /** Reachable from defaultComp via static edges, ignoring denies. */
    std::vector<bool> reachableIgnoringDeny;
    /** Reachable from defaultComp via non-denied static edges. */
    std::vector<bool> reachable;
    /**
     * Reachable from netComp through *allowed* gates (any non-denied
     * pair, not just static edges — a compromised compartment can
     * attempt any crossing). All false when netComp < 0.
     */
    std::vector<bool> netReachable;

    std::size_t size() const { return comps.size(); }

    bool
    edgeAllowed(int from, int to) const
    {
        return allowed[static_cast<std::size_t>(from) * comps.size() +
                       static_cast<std::size_t>(to)];
    }

    /** The static edge (from, to), or nullptr if none exists. */
    const Edge *staticEdge(int from, int to) const;
};

/**
 * Project the registry's call graph onto cfg's compartments and
 * resolve reachability against the configuration's gate matrix.
 * TCB libraries called by a compartment whose mechanism replicates
 * the kernel stay local and contribute no edge (the same predicate
 * the image build applies). The config must already validate.
 */
CompartmentGraph buildCompartmentGraph(const SafetyConfig &cfg,
                                       const LibraryRegistry &reg);

/**
 * The call-graph audit pass. Findings:
 *
 *  - `denied-static-edge` (error): a `deny:` rule covers a static
 *    call edge — the denied gate is the caller's only path to the
 *    named dependency, so the image build will reject the config.
 *  - `deny-unreachable-compartment` (warning): the compartment is
 *    statically reachable from the default compartment, but the deny
 *    ruleset severs every path to it (including multi-hop chains
 *    through forwarding/proxy compartments).
 *  - `dead-compartment` (warning): every inbound gate of a
 *    non-default compartment is denied — nothing can ever gate into
 *    it (legal, but suspicious unless it spawns its own threads).
 *  - `statically-unreachable-compartment` (note): no static call
 *    path from the default compartment ever existed; crossings into
 *    it happen only through dynamic edges the registry's call graph
 *    does not see.
 */
void callGraphPass(const CompartmentGraph &graph, AuditReport &report);

} // namespace analysis
} // namespace flexos

#endif // FLEXOS_ANALYSIS_CALLGRAPH_HH
