/**
 * @file
 * Shared-data escape analysis: FlexOS's Coccinelle-style shared-data
 * discovery (paper 3.1), reimplemented as a lightweight C++ source
 * scanner keyed off the library registry's file lists.
 *
 * For every library placed in a compartment, the scanner walks the
 * library's sources for file-scope (and function-local `static`)
 * mutable data and classifies each datum:
 *
 *  - *constant*: `constexpr`, or a non-pointer `const` — immutable,
 *    no sharing hazard;
 *  - *dss-framed*: annotated `// flexos: dss` — the port materializes
 *    it through a data shadow stack frame;
 *  - *registered-shared*: annotated `// flexos: shared` or listed in
 *    the registry's `sharedData` set — the port deliberately placed
 *    it in the shared domain;
 *  - *escaping*: mutable, unannotated, unregistered — in any
 *    multi-compartment image the datum is reachable across the
 *    boundary without the toolchain knowing (the leakage surface the
 *    audit reports as an error).
 *
 * The scanner also counts cross-boundary pointer-carrying call sites:
 * `gate(...)` / `gateDeferred(...)` / `gateBatch(...)` invocations
 * whose lambda captures by reference (`[&]`), i.e. crossings that
 * hand the callee compartment pointers into the caller's frame.
 */

#ifndef FLEXOS_ANALYSIS_ESCAPE_HH
#define FLEXOS_ANALYSIS_ESCAPE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/callgraph.hh"
#include "analysis/report.hh"
#include "core/config.hh"
#include "core/library.hh"

namespace flexos {
namespace analysis {

/** Classification of one discovered shared datum. */
enum class DatumClass
{
    Constant,
    DssFramed,
    RegisteredShared,
    Escaping,
};

const char *datumClassName(DatumClass c);

/** One file-scope / static datum found in a library's sources. */
struct SharedDatum
{
    std::string name;
    std::string file; ///< repo-relative, as listed in the registry
    std::size_t line = 0;
    DatumClass cls = DatumClass::Escaping;
};

/** The scan result of one library's source files. */
struct EscapeScan
{
    std::vector<SharedDatum> data;
    /** Gate call sites whose lambda captures by reference. */
    int pointerCarryingCalls = 0;
    /** Listed files that could not be read under the source root. */
    std::vector<std::string> missingFiles;
};

/**
 * Scan one library's registered source files under srcRoot. Purely
 * lexical: line-based, comment-aware, brace-scope-tracking — the
 * "lightweight Coccinelle" tradeoff, good enough for the paper-style
 * annotate-and-audit workflow and deliberately dependency-free.
 */
EscapeScan scanLibrarySources(const LibraryInfo &info,
                              const std::string &srcRoot);

/**
 * The escape audit pass over every compartmentalized library of cfg.
 * Findings (only emitted for multi-compartment configurations — in a
 * single protection domain nothing escapes anywhere):
 *
 *  - `escaping-shared-datum` (error) per escaping datum;
 *  - `shared-data-summary` (note) per library with dss-framed or
 *    registered-shared data (k dss-framed, m registered-shared);
 *  - `pointer-carrying-calls` (note) per library with by-reference
 *    gate call sites;
 *  - `missing-source` (note) per unreadable registered file.
 */
void escapePass(const SafetyConfig &cfg, const LibraryRegistry &reg,
                const std::string &srcRoot, AuditReport &report);

} // namespace analysis
} // namespace flexos

#endif // FLEXOS_ANALYSIS_ESCAPE_HH
