#include "analysis/escape.hh"

#include <cctype>
#include <fstream>

#include "base/logging.hh"

namespace flexos {
namespace analysis {

const char *
datumClassName(DatumClass c)
{
    switch (c) {
    case DatumClass::Constant:
        return "constant";
    case DatumClass::DssFramed:
        return "dss-framed";
    case DatumClass::RegisteredShared:
        return "registered-shared";
    case DatumClass::Escaping:
        return "escaping";
    }
    panic("unreachable datum class");
}

namespace {

std::string
trim(const std::string &s)
{
    std::size_t a = 0, b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Whether `word` occurs in `s` as a whole token. */
bool
hasToken(const std::string &s, const std::string &word)
{
    std::size_t pos = 0;
    auto isIdent = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while ((pos = s.find(word, pos)) != std::string::npos) {
        bool beforeOk = pos == 0 || !isIdent(s[pos - 1]);
        std::size_t end = pos + word.size();
        bool afterOk = end >= s.size() || !isIdent(s[end]);
        if (beforeOk && afterOk)
            return true;
        pos = end;
    }
    return false;
}

/** Keywords that rule a file-scope line out as a data declaration. */
bool
isNonDataLine(const std::string &t)
{
    static const char *starts[] = {
        "#",       "}",          "using ",  "typedef ", "template",
        "class ",  "struct ",    "enum ",   "friend ",  "extern ",
        "return ", "namespace",  "public:", "private:", "protected:",
        "case ",   "static_assert",
    };
    for (const char *s : starts)
        if (startsWith(t, s))
            return true;
    return t.find("operator") != std::string::npos;
}

/** Extract the declared name: the last identifier of the decl part. */
std::string
declaredName(const std::string &declPart)
{
    std::size_t end = declPart.size();
    // Strip trailing array extents / brace initializers: `char
    // buf[64]`, `DecodeResult state{}`.
    std::size_t cut = declPart.find_first_of("[{");
    if (cut != std::string::npos)
        end = cut;
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(declPart[end - 1])))
        --end;
    std::size_t start = end;
    auto isIdent = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while (start > 0 && isIdent(declPart[start - 1]))
        --start;
    return declPart.substr(start, end - start);
}

/** Per-file lexical scanner state. */
struct FileScanner
{
    const LibraryInfo &info;
    EscapeScan &out;
    const std::string &relPath;

    bool inBlockComment = false;
    bool inRawString = false;
    std::string rawStringEnd;
    /** Scope stack: true = namespace-like (file scope continues). */
    std::vector<bool> scopes;
    bool pendingNamespace = false;
    std::string prevRaw;  ///< previous raw line (trailing markers)
    std::string prevCode; ///< previous stripped line (gate sites)

    bool
    atFileScope() const
    {
        for (bool ns : scopes)
            if (!ns)
                return false;
        return true;
    }

    /** Strip comments / string contents, tracking multi-line state. */
    std::string
    stripped(const std::string &raw)
    {
        std::string out;
        std::size_t i = 0;
        while (i < raw.size()) {
            if (inBlockComment) {
                std::size_t close = raw.find("*/", i);
                if (close == std::string::npos)
                    return out;
                inBlockComment = false;
                i = close + 2;
                continue;
            }
            if (inRawString) {
                std::size_t close = raw.find(rawStringEnd, i);
                if (close == std::string::npos)
                    return out;
                inRawString = false;
                i = close + rawStringEnd.size();
                continue;
            }
            if (raw.compare(i, 2, "//") == 0)
                return out;
            if (raw.compare(i, 2, "/*") == 0) {
                inBlockComment = true;
                i += 2;
                continue;
            }
            if (raw.compare(i, 2, "R\"") == 0) {
                // Raw string literal: R"delim( ... )delim".
                std::size_t open = raw.find('(', i + 2);
                if (open == std::string::npos)
                    return out;
                rawStringEnd =
                    ")" + raw.substr(i + 2, open - i - 2) + "\"";
                inRawString = true;
                i = open + 1;
                out += "\"\"";
                continue;
            }
            if (raw[i] == '"') {
                // Ordinary string literal: skip to the closing quote.
                std::size_t j = i + 1;
                while (j < raw.size() &&
                       (raw[j] != '"' || raw[j - 1] == '\\'))
                    ++j;
                out += "\"\"";
                i = j < raw.size() ? j + 1 : raw.size();
                continue;
            }
            if (raw[i] == '\'') {
                std::size_t j = i + 1;
                while (j < raw.size() &&
                       (raw[j] != '\'' || raw[j - 1] == '\\'))
                    ++j;
                out += "' '";
                i = j < raw.size() ? j + 1 : raw.size();
                continue;
            }
            out += raw[i++];
        }
        return out;
    }

    DatumClass
    classify(const std::string &raw, const std::string &declPart,
             const std::string &name) const
    {
        if (hasToken(declPart, "constexpr"))
            return DatumClass::Constant;
        // A const non-pointer/non-reference datum is immutable; a
        // `const T *p` pointer is itself still writable shared state.
        if (hasToken(declPart, "const") &&
            declPart.find('*') == std::string::npos &&
            declPart.find('&') == std::string::npos)
            return DatumClass::Constant;
        auto marked = [&](const char *marker) {
            return raw.find(marker) != std::string::npos ||
                   prevRaw.find(marker) != std::string::npos;
        };
        if (marked("flexos: dss"))
            return DatumClass::DssFramed;
        if (marked("flexos: shared") || info.sharedData.count(name))
            return DatumClass::RegisteredShared;
        return DatumClass::Escaping;
    }

    void
    consider(const std::string &raw, const std::string &code,
             std::size_t lineNo)
    {
        std::string t = trim(code);
        bool fileScope = atFileScope();
        bool localStatic = !fileScope && startsWith(t, "static ");
        if (t.empty() || (!fileScope && !localStatic))
            return;
        if (fileScope && isNonDataLine(t))
            return;
        std::size_t semi = t.find(';');
        if (semi == std::string::npos)
            return;
        std::size_t eq = t.find('=');
        std::string declPart =
            t.substr(0, eq != std::string::npos && eq < semi ? eq
                                                             : semi);
        // Function declarations / calls carry parens; data does not
        // (brace-or-equals initialization keeps this heuristic sound
        // for the idiom of this code base).
        if (declPart.find('(') != std::string::npos)
            return;
        std::string name = declaredName(declPart);
        if (name.empty())
            return;
        // A single token is a statement, not a declaration.
        if (trim(declPart).find_first_of(" \t*&") == std::string::npos)
            return;
        DatumClass cls = classify(raw, declPart, name);
        if (cls == DatumClass::Constant)
            return;
        out.data.push_back({name, relPath, lineNo, cls});
    }

    void
    trackGateSites(const std::string &code)
    {
        bool gateCall = code.find(".gate(") != std::string::npos ||
                        code.find("gateDeferred(") != std::string::npos ||
                        code.find("gateBatch(") != std::string::npos;
        bool capture = code.find("[&") != std::string::npos;
        bool prevGate =
            prevCode.find(".gate(") != std::string::npos ||
            prevCode.find("gateDeferred(") != std::string::npos ||
            prevCode.find("gateBatch(") != std::string::npos;
        if (capture && (gateCall || prevGate))
            ++out.pointerCarryingCalls;
    }

    void
    trackScopes(const std::string &code)
    {
        std::string t = trim(code);
        bool namespaceLine = startsWith(t, "namespace") ||
                             startsWith(t, "inline namespace") ||
                             startsWith(t, "extern \"\"");
        if (namespaceLine && t.find('{') == std::string::npos)
            pendingNamespace = true;
        bool nextIsNamespace = namespaceLine || pendingNamespace;
        for (char c : code) {
            if (c == '{') {
                scopes.push_back(nextIsNamespace);
                nextIsNamespace = false;
                pendingNamespace = false;
            } else if (c == '}') {
                if (!scopes.empty())
                    scopes.pop_back();
            }
        }
        if (!t.empty() && !namespaceLine)
            pendingNamespace = false;
    }

    void
    line(const std::string &raw, std::size_t lineNo)
    {
        std::string code = stripped(raw);
        consider(raw, code, lineNo);
        trackGateSites(code);
        trackScopes(code);
        prevRaw = raw;
        prevCode = code;
    }
};

} // namespace

EscapeScan
scanLibrarySources(const LibraryInfo &info, const std::string &srcRoot)
{
    EscapeScan scan;
    for (const std::string &rel : info.files) {
        std::string path =
            srcRoot.empty() ? rel : srcRoot + "/" + rel;
        std::ifstream in(path);
        if (!in) {
            scan.missingFiles.push_back(rel);
            continue;
        }
        FileScanner fs{info, scan, rel};
        std::string raw;
        std::size_t lineNo = 0;
        while (std::getline(in, raw))
            fs.line(raw, ++lineNo);
    }
    return scan;
}

void
escapePass(const SafetyConfig &cfg, const LibraryRegistry &reg,
           const std::string &srcRoot, AuditReport &report)
{
    // One protection domain: nothing can escape anywhere.
    if (cfg.compartments.size() < 2)
        return;

    for (const auto &[lib, compName] : cfg.libraries) {
        if (!reg.contains(lib))
            continue;
        const LibraryInfo &info = reg.get(lib);
        if (info.files.empty())
            continue;
        EscapeScan scan = scanLibrarySources(info, srcRoot);

        int dssFramed = 0, registered = 0;
        for (const SharedDatum &d : scan.data) {
            if (d.cls == DatumClass::DssFramed)
                ++dssFramed;
            else if (d.cls == DatumClass::RegisteredShared)
                ++registered;
            if (d.cls != DatumClass::Escaping)
                continue;
            Finding f;
            f.pass = "escape";
            f.code = "escaping-shared-datum";
            f.severity = Severity::Error;
            f.library = lib;
            f.datum = d.name;
            f.file = d.file;
            f.line = d.line;
            f.message = "mutable global '" + d.name + "' of library " +
                        lib + " (compartment '" + compName +
                        "') is neither DSS-framed nor registered "
                        "shared — it escapes the boundary";
            report.add(std::move(f));
        }

        if (dssFramed || registered) {
            Finding f;
            f.pass = "escape";
            f.code = "shared-data-summary";
            f.severity = Severity::Note;
            f.library = lib;
            f.message = "library " + lib + ": " +
                        std::to_string(dssFramed) + " dss-framed, " +
                        std::to_string(registered) +
                        " registered-shared datum/data";
            report.add(std::move(f));
        }
        if (scan.pointerCarryingCalls) {
            Finding f;
            f.pass = "escape";
            f.code = "pointer-carrying-calls";
            f.severity = Severity::Note;
            f.library = lib;
            f.message =
                "library " + lib + ": " +
                std::to_string(scan.pointerCarryingCalls) +
                " gate call site(s) capture by reference (caller-"
                "frame pointers cross the boundary)";
            report.add(std::move(f));
        }
        for (const std::string &missing : scan.missingFiles) {
            Finding f;
            f.pass = "escape";
            f.code = "missing-source";
            f.severity = Severity::Note;
            f.library = lib;
            f.file = missing;
            f.message = "registered source " + missing + " of library " +
                        lib + " not found under the source root";
            report.add(std::move(f));
        }
    }
}

} // namespace analysis
} // namespace flexos
