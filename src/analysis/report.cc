#include "analysis/report.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "base/logging.hh"

namespace flexos {
namespace analysis {

const char *
severityName(Severity s)
{
    switch (s) {
    case Severity::Note:
        return "note";
    case Severity::Warning:
        return "warning";
    case Severity::Error:
        return "error";
    }
    panic("unreachable severity");
}

Severity
severityFromName(const std::string &name)
{
    if (name == "note")
        return Severity::Note;
    if (name == "warning")
        return Severity::Warning;
    if (name == "error")
        return Severity::Error;
    fatal("unknown severity '", name, "'");
}

bool
Finding::operator<(const Finding &o) const
{
    return std::tie(pass, code, from, to, library, file, line, datum,
                    message) < std::tie(o.pass, o.code, o.from, o.to,
                                        o.library, o.file, o.line,
                                        o.datum, o.message);
}

void
AuditReport::normalize()
{
    std::sort(findings.begin(), findings.end());
    std::sort(suggestedDeny.begin(), suggestedDeny.end());
}

std::size_t
AuditReport::countOf(Severity s) const
{
    std::size_t n = 0;
    for (const Finding &f : findings)
        n += f.severity == s;
    return n;
}

int
AuditReport::score() const
{
    int total = 0;
    for (const Finding &f : findings)
        switch (f.severity) {
        case Severity::Error:
            total += errorWeight;
            break;
        case Severity::Warning:
            total += warningWeight;
            break;
        case Severity::Note:
            total += noteWeight;
            break;
        }
    return total;
}

std::string
AuditReport::toText() const
{
    std::ostringstream oss;
    oss << "== " << label << "\n";
    for (const Finding &f : findings) {
        oss << severityName(f.severity) << ": [" << f.pass << "/"
            << f.code << "]";
        if (!f.from.empty() && !f.to.empty())
            oss << " " << f.from << " -> " << f.to << ":";
        else if (!f.to.empty())
            oss << " " << f.to << ":"; // compartment-anchored finding
        oss << " " << f.message;
        if (!f.file.empty()) {
            oss << " (" << f.file;
            if (f.line)
                oss << ":" << f.line;
            oss << ")";
        }
        oss << "\n";
    }
    if (!suggestedDeny.empty()) {
        oss << "suggested deny:";
        bool first = true;
        for (const auto &[f, t] : suggestedDeny) {
            oss << (first ? " " : ", ") << f << " -> " << t;
            first = false;
        }
        oss << "\n";
    }
    oss << "score: " << score() << " (" << countOf(Severity::Error)
        << " error(s), " << countOf(Severity::Warning)
        << " warning(s), " << countOf(Severity::Note) << " note(s))\n";
    return oss.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
AuditReport::toJson() const
{
    std::ostringstream oss;
    oss << "{\"config\": \"" << jsonEscape(label) << "\", ";
    oss << "\"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        if (i)
            oss << ", ";
        oss << "{\"pass\": \"" << jsonEscape(f.pass) << "\", \"code\": \""
            << jsonEscape(f.code) << "\", \"severity\": \""
            << severityName(f.severity) << "\", \"message\": \""
            << jsonEscape(f.message) << "\"";
        if (!f.from.empty())
            oss << ", \"from\": \"" << jsonEscape(f.from) << "\"";
        if (!f.to.empty())
            oss << ", \"to\": \"" << jsonEscape(f.to) << "\"";
        if (!f.library.empty())
            oss << ", \"library\": \"" << jsonEscape(f.library) << "\"";
        if (!f.datum.empty())
            oss << ", \"datum\": \"" << jsonEscape(f.datum) << "\"";
        if (!f.file.empty())
            oss << ", \"file\": \"" << jsonEscape(f.file) << "\"";
        if (f.line)
            oss << ", \"line\": " << f.line;
        oss << "}";
    }
    oss << "], \"suggested_deny\": [";
    for (std::size_t i = 0; i < suggestedDeny.size(); ++i) {
        if (i)
            oss << ", ";
        oss << "{\"from\": \"" << jsonEscape(suggestedDeny[i].first)
            << "\", \"to\": \"" << jsonEscape(suggestedDeny[i].second)
            << "\"}";
    }
    oss << "], \"score\": " << score() << "}";
    return oss.str();
}

namespace {

/**
 * Minimal recursive-descent JSON reader — just enough to parse what
 * AuditReport::toJson emits (objects, arrays, strings, integers,
 * bools/null for forward compatibility). Fatal on malformed input.
 */
class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : src(text) {}

    void
    skipWs()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        fatal_if(pos >= src.size(), "json: unexpected end of input");
        return src[pos];
    }

    void
    expect(char c)
    {
        fatal_if(peek() != c, "json: expected '", c, "' at offset ",
                 pos);
        ++pos;
    }

    bool
    consume(char c)
    {
        if (peek() == c) {
            ++pos;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos < src.size() && src[pos] != '"') {
            char c = src[pos++];
            if (c == '\\') {
                fatal_if(pos >= src.size(), "json: dangling escape");
                char e = src[pos++];
                switch (e) {
                case 'n':
                    out += '\n';
                    break;
                case 't':
                    out += '\t';
                    break;
                case 'u': {
                    fatal_if(pos + 4 > src.size(),
                             "json: truncated \\u escape");
                    out += static_cast<char>(
                        std::stoi(src.substr(pos, 4), nullptr, 16));
                    pos += 4;
                    break;
                }
                default:
                    out += e; // \" \\ \/ and friends
                }
            } else {
                out += c;
            }
        }
        fatal_if(pos >= src.size(), "json: unterminated string");
        ++pos; // closing quote
        return out;
    }

    std::uint64_t
    number()
    {
        skipWs();
        std::size_t start = pos;
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '-'))
            ++pos;
        fatal_if(start == pos, "json: expected number at offset ", pos);
        return std::stoull(src.substr(start, pos - start));
    }

    /** Skip one value of any type (unknown keys stay ignorable). */
    void
    skipValue()
    {
        char c = peek();
        if (c == '"') {
            string();
        } else if (c == '{') {
            expect('{');
            if (!consume('}')) {
                do {
                    string();
                    expect(':');
                    skipValue();
                } while (consume(','));
                expect('}');
            }
        } else if (c == '[') {
            expect('[');
            if (!consume(']')) {
                do {
                    skipValue();
                } while (consume(','));
                expect(']');
            }
        } else {
            // number / true / false / null
            while (pos < src.size() && src[pos] != ',' &&
                   src[pos] != '}' && src[pos] != ']')
                ++pos;
        }
    }

  private:
    const std::string &src;
    std::size_t pos = 0;
};

} // namespace

AuditReport
AuditReport::fromJson(const std::string &json)
{
    AuditReport report;
    JsonReader r(json);
    r.expect('{');
    if (r.consume('}'))
        return report;
    do {
        std::string key = r.string();
        r.expect(':');
        if (key == "config") {
            report.label = r.string();
        } else if (key == "findings") {
            r.expect('[');
            if (!r.consume(']')) {
                do {
                    Finding f;
                    r.expect('{');
                    do {
                        std::string fk = r.string();
                        r.expect(':');
                        if (fk == "pass")
                            f.pass = r.string();
                        else if (fk == "code")
                            f.code = r.string();
                        else if (fk == "severity")
                            f.severity = severityFromName(r.string());
                        else if (fk == "message")
                            f.message = r.string();
                        else if (fk == "from")
                            f.from = r.string();
                        else if (fk == "to")
                            f.to = r.string();
                        else if (fk == "library")
                            f.library = r.string();
                        else if (fk == "datum")
                            f.datum = r.string();
                        else if (fk == "file")
                            f.file = r.string();
                        else if (fk == "line")
                            f.line = static_cast<std::size_t>(r.number());
                        else
                            r.skipValue();
                    } while (r.consume(','));
                    r.expect('}');
                    report.findings.push_back(std::move(f));
                } while (r.consume(','));
                r.expect(']');
            }
        } else if (key == "suggested_deny") {
            r.expect('[');
            if (!r.consume(']')) {
                do {
                    std::string from, to;
                    r.expect('{');
                    do {
                        std::string dk = r.string();
                        r.expect(':');
                        if (dk == "from")
                            from = r.string();
                        else if (dk == "to")
                            to = r.string();
                        else
                            r.skipValue();
                    } while (r.consume(','));
                    r.expect('}');
                    report.suggestedDeny.emplace_back(std::move(from),
                                                      std::move(to));
                } while (r.consume(','));
                r.expect(']');
            }
        } else {
            r.skipValue(); // "score" is derived; ignore unknown keys
        }
    } while (r.consume(','));
    r.expect('}');
    return report;
}

} // namespace analysis
} // namespace flexos
