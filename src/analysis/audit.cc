#include "analysis/audit.hh"

#include "analysis/callgraph.hh"
#include "analysis/escape.hh"
#include "analysis/policy.hh"

namespace flexos {
namespace analysis {

AuditReport
runAudit(const SafetyConfig &cfg, const LibraryRegistry &reg,
         const AuditOptions &opts)
{
    AuditReport report;
    CompartmentGraph graph = buildCompartmentGraph(cfg, reg);
    callGraphPass(graph, report);
    if (opts.escape)
        escapePass(cfg, reg, opts.srcRoot, report);
    policyPass(cfg, graph, report);
    report.normalize();
    return report;
}

} // namespace analysis
} // namespace flexos
