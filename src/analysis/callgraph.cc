#include "analysis/callgraph.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>

#include "base/logging.hh"
#include "core/backend.hh"

namespace flexos {
namespace analysis {

namespace {

/** Breadth-first closure over an adjacency predicate. */
std::vector<bool>
closure(std::size_t n, int start,
        const std::function<bool(int, int)> &adjacent)
{
    std::vector<bool> seen(n, false);
    if (start < 0)
        return seen;
    std::vector<int> work{start};
    seen[static_cast<std::size_t>(start)] = true;
    while (!work.empty()) {
        int at = work.back();
        work.pop_back();
        for (int next = 0; next < static_cast<int>(n); ++next) {
            if (seen[static_cast<std::size_t>(next)] || next == at)
                continue;
            if (adjacent(at, next)) {
                seen[static_cast<std::size_t>(next)] = true;
                work.push_back(next);
            }
        }
    }
    return seen;
}

} // namespace

const CompartmentGraph::Edge *
CompartmentGraph::staticEdge(int from, int to) const
{
    for (const Edge &e : edges)
        if (e.from == from && e.to == to)
            return &e;
    return nullptr;
}

CompartmentGraph
buildCompartmentGraph(const SafetyConfig &cfg, const LibraryRegistry &reg)
{
    CompartmentGraph g;
    for (const CompartmentSpec &c : cfg.compartments) {
        g.comps.push_back(c.name);
        if (c.isDefault)
            g.defaultComp = static_cast<int>(g.comps.size()) - 1;
    }
    std::size_t n = g.comps.size();

    // Library placement; the first compartment holding a net-facing
    // library is the attacker-facing root.
    std::map<std::string, int> compOf;
    for (const auto &[lib, compName] : cfg.libraries) {
        int idx = cfg.compartmentIndex(compName);
        compOf[lib] = idx;
        if (g.netComp < 0 && reg.contains(lib) && reg.get(lib).netFacing)
            g.netComp = idx;
    }

    GateMatrix matrix = GateMatrix::build(cfg);
    g.allowed.assign(n * n, false);
    for (std::size_t f = 0; f < n; ++f)
        for (std::size_t t = 0; t < n; ++t)
            g.allowed[f * n + t] =
                f == t || !matrix
                               .at(static_cast<int>(f),
                                   static_cast<int>(t))
                               .deny;

    // Static cross-compartment edges from the registry's dependency
    // graph. TCB callees of a kernel-replicating caller stay local —
    // ask the caller's backend, the predicate the image build uses.
    std::map<std::pair<int, int>, std::vector<CompartmentGraph::Witness>>
        edgeWitnesses;
    for (const auto &[lib, from] : compOf) {
        if (!reg.contains(lib))
            continue;
        for (const std::string &callee : reg.get(lib).callees) {
            auto it = compOf.find(callee);
            if (it == compOf.end() || it->second == from)
                continue;
            Mechanism callerMech =
                cfg.compartments[static_cast<std::size_t>(from)]
                    .mechanism;
            if (reg.get(callee).tcb &&
                makeBackend(callerMech)->replicatesTcb())
                continue;
            edgeWitnesses[{from, it->second}].push_back(
                {lib, callee});
        }
    }
    for (auto &[pair, witnesses] : edgeWitnesses) {
        CompartmentGraph::Edge e;
        e.from = pair.first;
        e.to = pair.second;
        e.witnesses = std::move(witnesses);
        std::sort(e.witnesses.begin(), e.witnesses.end(),
                  [](const auto &a, const auto &b) {
                      return std::tie(a.lib, a.callee) <
                             std::tie(b.lib, b.callee);
                  });
        e.denied = !g.edgeAllowed(e.from, e.to);
        g.edges.push_back(std::move(e));
    }

    g.reachableIgnoringDeny =
        closure(n, g.defaultComp, [&](int f, int t) {
            return g.staticEdge(f, t) != nullptr;
        });
    g.reachable = closure(n, g.defaultComp, [&](int f, int t) {
        const CompartmentGraph::Edge *e = g.staticEdge(f, t);
        return e && !e->denied;
    });
    g.netReachable = closure(n, g.netComp, [&](int f, int t) {
        return g.edgeAllowed(f, t);
    });
    return g;
}

void
callGraphPass(const CompartmentGraph &g, AuditReport &report)
{
    std::size_t n = g.size();

    // Denied static edges: the image build will reject the config.
    for (const CompartmentGraph::Edge &e : g.edges) {
        if (!e.denied)
            continue;
        for (const CompartmentGraph::Witness &w : e.witnesses) {
            Finding f;
            f.pass = "callgraph";
            f.code = "denied-static-edge";
            f.severity = Severity::Error;
            f.from = g.comps[static_cast<std::size_t>(e.from)];
            f.to = g.comps[static_cast<std::size_t>(e.to)];
            f.library = w.lib;
            f.message = "denied boundary is " + w.lib +
                        "'s only path to its dependency " + w.callee +
                        " (image build will reject this config)";
            report.add(std::move(f));
        }
    }

    for (std::size_t c = 0; c < n; ++c) {
        if (static_cast<int>(c) == g.defaultComp)
            continue;

        // Deny-induced unreachability, multi-hop chains included: the
        // compartment had a static path from the default compartment
        // and the deny ruleset severed every one of them.
        if (g.reachableIgnoringDeny[c] && !g.reachable[c]) {
            Finding f;
            f.pass = "callgraph";
            f.code = "deny-unreachable-compartment";
            f.severity = Severity::Warning;
            f.to = g.comps[c];
            f.message = "compartment '" + g.comps[c] +
                        "' is statically reachable from the default "
                        "compartment only through denied boundaries";
            report.add(std::move(f));
        } else if (!g.reachableIgnoringDeny[c] && n > 1) {
            Finding f;
            f.pass = "callgraph";
            f.code = "statically-unreachable-compartment";
            f.severity = Severity::Note;
            f.to = g.comps[c];
            f.message = "no static call path from the default "
                        "compartment reaches '" +
                        g.comps[c] +
                        "' — only dynamic crossings can enter it";
            report.add(std::move(f));
        }

        // Dead compartments: every inbound gate denied.
        bool reachable = n == 1;
        for (std::size_t f = 0; f < n && !reachable; ++f)
            reachable = f != c && g.edgeAllowed(static_cast<int>(f),
                                                static_cast<int>(c));
        if (!reachable) {
            Finding f;
            f.pass = "callgraph";
            f.code = "dead-compartment";
            f.severity = Severity::Warning;
            f.to = g.comps[c];
            f.message = "compartment '" + g.comps[c] +
                        "' is denied from every other compartment — "
                        "nothing can ever gate into it";
            report.add(std::move(f));
        }
    }
}

} // namespace analysis
} // namespace flexos
