#include "analysis/policy.hh"

#include "base/logging.hh"

namespace flexos {
namespace analysis {

void
policyPass(const SafetyConfig &cfg, const CompartmentGraph &g,
           AuditReport &report)
{
    std::size_t n = g.size();
    if (n < 2)
        return;
    GateMatrix matrix = GateMatrix::build(cfg);

    for (int from = 0; from < static_cast<int>(n); ++from) {
        for (int to = 0; to < static_cast<int>(n); ++to) {
            if (from == to)
                continue;
            const GatePolicy &pol = matrix.at(from, to);
            const std::string &fromName =
                g.comps[static_cast<std::size_t>(from)];
            const std::string &toName =
                g.comps[static_cast<std::size_t>(to)];

            // Unused static edges: nothing in the registry's call
            // graph needs this pair, and the config does not deny it.
            // The collected set is the suggested minimal deny ruleset
            // (it never covers a static edge, so the image still
            // builds).
            if (!pol.deny && !g.staticEdge(from, to)) {
                Finding f;
                f.pass = "policy";
                f.code = "unused-static-edge";
                f.severity = Severity::Note;
                f.from = fromName;
                f.to = toName;
                f.message = "no static call edge needs this boundary; "
                            "a `deny: true` rule would cost nothing";
                report.add(std::move(f));
                report.suggestedDeny.emplace_back(fromName, toName);
            }

            // The rest of the pass audits the attacker-drivable
            // surface: gates whose caller compartment an attacker in
            // the net-facing compartment can reach.
            if (g.netComp < 0 ||
                !g.netReachable[static_cast<std::size_t>(from)] ||
                !g.edgeAllowed(from, to))
                continue;

            if (!pol.scrubReturn) {
                Finding f;
                f.pass = "policy";
                f.code = "unscrubbed-net-boundary";
                f.severity = Severity::Error;
                f.from = fromName;
                f.to = toName;
                f.message = "`scrub: false` on a boundary reachable "
                            "from net-facing compartment '" +
                            g.comps[static_cast<std::size_t>(
                                g.netComp)] +
                            "' — returning registers leak";
                report.add(std::move(f));
            }
            if (pol.elide != GateElide::None) {
                Finding f;
                f.pass = "policy";
                f.code = "elided-net-boundary";
                f.severity = Severity::Error;
                f.from = fromName;
                f.to = toName;
                f.message =
                    std::string("`elide: ") + elideName(pol.elide) +
                    "` skips per-crossing legs on a boundary "
                    "reachable from net-facing compartment '" +
                    g.comps[static_cast<std::size_t>(g.netComp)] +
                    "'";
                report.add(std::move(f));
            }
            if (!pol.validateEntry) {
                Finding f;
                f.pass = "policy";
                f.code = "unvalidated-net-boundary";
                f.severity = Severity::Warning;
                f.from = fromName;
                f.to = toName;
                f.message = "no `validate:` on a boundary reachable "
                            "from net-facing compartment '" +
                            g.comps[static_cast<std::size_t>(
                                g.netComp)] +
                            "'";
                report.add(std::move(f));
            }
            if (from == g.netComp && pol.rate == 0) {
                Finding f;
                f.pass = "policy";
                f.code = "unthrottled-external-edge";
                f.severity = Severity::Warning;
                f.from = fromName;
                f.to = toName;
                f.message = "gate out of net-facing compartment '" +
                            fromName +
                            "' carries no `rate:` budget — gate "
                            "storms are uncontained";
                report.add(std::move(f));
            }
        }
    }
}

} // namespace analysis
} // namespace flexos
