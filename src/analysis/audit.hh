/**
 * @file
 * The boundary auditor: orchestrates the three static-analysis passes
 * (call-graph, shared-data escape, policy-safety) over one validated
 * SafetyConfig and returns a normalized AuditReport.
 *
 * `tools/boundary_audit` (and `tools/config_lint`, which reuses the
 * call-graph model) are thin drivers over this entry point; the
 * explore hook calls it with escape scanning disabled to attach a
 * hazard score per ConfigPoint.
 */

#ifndef FLEXOS_ANALYSIS_AUDIT_HH
#define FLEXOS_ANALYSIS_AUDIT_HH

#include <string>

#include "analysis/report.hh"
#include "core/config.hh"
#include "core/library.hh"

namespace flexos {
namespace analysis {

struct AuditOptions
{
    /**
     * Repository root the registry's file lists resolve against.
     * Empty means "current working directory".
     */
    std::string srcRoot;
    /** Run the shared-data escape scan (needs source access). */
    bool escape = true;
};

/**
 * Audit one configuration: build the compartment graph, run the
 * call-graph pass, the escape pass (when enabled), and the policy
 * pass, then normalize the report. `cfg` must already validate —
 * callers parse with SafetyConfig::parse(), which throws on
 * malformed input.
 */
AuditReport runAudit(const SafetyConfig &cfg, const LibraryRegistry &reg,
                     const AuditOptions &opts = {});

} // namespace analysis
} // namespace flexos

#endif // FLEXOS_ANALYSIS_AUDIT_HH
