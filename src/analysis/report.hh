/**
 * @file
 * Boundary-audit findings: the common currency of the static analyses
 * in flexos::analysis (call-graph, shared-data escape, policy-safety
 * passes). A finding names the pass and a stable kebab-case code, the
 * severity, the boundary / library / datum it is anchored to, and a
 * human-readable message. The report renders to text (the CLI and
 * golden-diff format) and to JSON, and parses back from JSON so
 * downstream tooling can round-trip it.
 */

#ifndef FLEXOS_ANALYSIS_REPORT_HH
#define FLEXOS_ANALYSIS_REPORT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flexos {
namespace analysis {

/**
 * Finding severity. `Error` findings are hard hazards (the image
 * build will reject the config, or data demonstrably escapes a
 * boundary); `Warning` findings are attack-surface weaknesses on
 * reachable boundaries; `Note` findings are informational (unused
 * static edges, per-library scan summaries).
 */
enum class Severity
{
    Note,
    Warning,
    Error,
};

const char *severityName(Severity s);
Severity severityFromName(const std::string &name);

/** One finding of one pass over one configuration. */
struct Finding
{
    /** Producing pass: "callgraph", "escape" or "policy". */
    std::string pass;
    /** Stable kebab-case finding code, e.g. "escaping-shared-datum". */
    std::string code;
    Severity severity = Severity::Note;
    /** Human-readable one-line description. */
    std::string message;

    /** @name Anchors (empty/0 when not applicable). @{ */
    std::string from; ///< caller compartment of the boundary
    std::string to;   ///< callee compartment of the boundary
    std::string library;
    std::string datum; ///< shared-variable name (escape pass)
    std::string file;  ///< source file (escape pass), repo-relative
    std::size_t line = 0;
    /** @} */

    bool operator==(const Finding &o) const = default;

    /** Deterministic report order (pass, code, anchors, message). */
    bool operator<(const Finding &o) const;
};

/** Severity weights of the audit score (lower score = cleaner). */
inline constexpr int errorWeight = 100;
inline constexpr int warningWeight = 10;
inline constexpr int noteWeight = 1;

/**
 * The result of auditing one configuration: every finding plus the
 * suggested minimal `deny:` ruleset (unused static edges the config
 * could reject without losing any statically-needed crossing).
 */
struct AuditReport
{
    /** Where the config came from, e.g. "examples/foo.cpp:34". */
    std::string label;

    std::vector<Finding> findings;

    /** Suggested (from, to) deny rules, compartment names. */
    std::vector<std::pair<std::string, std::string>> suggestedDeny;

    void add(Finding f) { findings.push_back(std::move(f)); }

    /** Sort findings (and the deny set) into deterministic order. */
    void normalize();

    std::size_t countOf(Severity s) const;

    /**
     * Weighted hazard score: errors x 100 + warnings x 10 + notes.
     * The explore hook attaches this per ConfigPoint so sweeps can
     * plot audit outcome against performance.
     */
    int score() const;

    /** Human-readable rendering (the golden-diff format). */
    std::string toText() const;

    /** JSON rendering (one object; the CLI emits an array of them). */
    std::string toJson() const;

    /** Parse a report back from toJson() output (round-trip). */
    static AuditReport fromJson(const std::string &json);

    bool operator==(const AuditReport &o) const = default;
};

/** @name Minimal JSON helpers (shared with the CLI). @{ */

/** Escape a string for embedding in a JSON literal. */
std::string jsonEscape(const std::string &s);

/** @} */

} // namespace analysis
} // namespace flexos

#endif // FLEXOS_ANALYSIS_REPORT_HH
