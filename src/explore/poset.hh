/**
 * @file
 * Partial safety ordering (paper section 5).
 *
 * Configurations cannot be totally ordered by safety, but some pairs
 * are programmatically comparable: safety probabilistically increases
 * with (1) the number of compartments (partition refinement), (2) data
 * isolation strength, (3) stackable software hardening, and (4) the
 * strength of the isolation mechanism. The poset of configurations —
 * viewed as a DAG — can then be labelled with measured performance and
 * pruned to the *maximal* (safest) elements meeting a budget.
 */

#ifndef FLEXOS_EXPLORE_POSET_HH
#define FLEXOS_EXPLORE_POSET_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace flexos {

/**
 * One point in the safety configuration space, abstracted for
 * comparison: components are indices 0..n-1.
 */
struct ConfigPoint
{
    /** Component -> compartment block id (normalized partition). */
    std::vector<int> partition;
    /** Per-component hardening bitmask (bit per mechanism). */
    std::vector<unsigned> hardening;
    /** Mechanism strength rank (see mechanismRankLe for the order). */
    int mechanismRank = 1;
    /**
     * Per-block mechanism rank for mixed-mechanism images, indexed by
     * partition block id (none=0, mpk=1, ept=2, cheri=3 — see
     * mechanismRankLe). Empty means the image is homogeneous at
     * mechanismRank. When set, the safety comparison is
     * component-wise: every component's boundary must be at least as
     * strong for one config to dominate the other.
     */
    std::vector<int> blockMechanism;
    /**
     * Per-block MPK gate flavour rank (light=0 < dss=1), indexed by
     * partition block id: the flavour of gates *into* that block.
     * Empty means every boundary runs the full DSS gate. Ordered
     * component-wise like blockMechanism, so light < dss per block.
     */
    std::vector<int> blockGateFlavor;
    /** Data-isolation rank (shared stack=0 < dss=1 < private+heap=2). */
    int sharingRank = 1;

    /**
     * Simulated core count the image boots with. A pure performance
     * dimension: core count does not change the protection state, so
     * compareSafety ignores it — points differing only in cores are
     * Equal in the safety order and distinguished by perf alone.
     */
    int cores = 1;

    /**
     * Vectored-gate batch width (the `batch:` boundary knob, applied
     * image-wide as a wildcard rule). Purely a performance dimension
     * like cores: batching moves calls between crossings without
     * weakening any protection state — every call still passes entry
     * checks and rate enforcement — so compareSafety ignores it.
     */
    int gateBatch = 1;

    /**
     * Crossing-work elided on repeated same-boundary calls (the
     * `elide:` knob): bit 0 = entry validation, bit 1 = return-side
     * scrubbing. Unlike batching this weakens the protection state,
     * so the subset order ranks it — a config eliding a strict
     * superset of another's per-crossing work is strictly LESS safe.
     */
    unsigned elided = 0;

    /**
     * Runtime policy controller enabled, with every boundary opted in
     * (`controller:` section plus an image-wide `adaptive: true`
     * rule). Performance/operations-only in the safety order: the
     * controller only ever tightens below the configured baseline and
     * relaxes back to it — never past it — so the static protection
     * state is a floor, and compareSafety ignores the flag like cores
     * and batch width.
     */
    bool adaptive = false;

    /**
     * Least-privilege dimension: ordered (from, to) partition-block
     * edges the configuration denies (`deny: true` boundary rules).
     * Denying more edges shrinks the reachable call graph, so the
     * superset relation orders this dimension: a config denying a
     * strict superset of another's edges is (probabilistically)
     * safer. Only meaningful between points over the same partition —
     * block ids name different things otherwise, making the dimension
     * incomparable unless both sets are empty.
     */
    std::vector<std::pair<int, int>> deniedEdges;

    /** Mechanism rank protecting component c's compartment boundary. */
    int mechanismRankOf(std::size_t c) const;

    /** Gate-flavour rank of component c's boundary (default dss=1). */
    int gateFlavorRankOf(std::size_t c) const;

    std::string label;

    /** Measured performance (filled by the explorer); higher=faster. */
    double perf = 0;

    /**
     * Static boundary-audit hazard score of the materialized config
     * (flexos::analysis, call-graph + policy passes; lower = cleaner),
     * or -1 before wayfinder::attachAuditScore() fills it. Like perf
     * this is a measurement label, not a safety dimension —
     * compareSafety ignores it; sweeps plot it against perf instead.
     */
    int auditScore = -1;

    /**
     * Measured adversary-simulation hazard score: the config is
     * deployed and the attack catalogue (flexos::adversary) is run
     * from a compromised net compartment; 10 per breach + 3 per
     * partial containment (0 = full containment), or -1 before
     * wayfinder::attachAttackScore() fills it. A measurement label
     * like perf/auditScore — compareSafety ignores it; it is the
     * *dynamic* counterpart of the static auditScore (what the config
     * actually contains, not what it promises).
     */
    int attackScore = -1;

    /** Number of distinct compartments in the partition. */
    int compartments() const;
};

/** Result of comparing two configurations by safety. */
enum class SafetyOrder { Less, Equal, Greater, Incomparable };

/**
 * The mechanism-strength dimension is itself a partial order:
 * none(0) < mpk(1) < {ept(2), cheri(3)}, with ept and cheri
 * incomparable — VM-grade address-space isolation and capability-
 * grade spatial safety protect against different attacker models.
 * Returns whether rank a is at most rank b in that order.
 */
bool mechanismRankLe(int a, int b);

/**
 * Compare a and b. Greater means "a is probabilistically safer".
 */
SafetyOrder compareSafety(const ConfigPoint &a, const ConfigPoint &b);

/** Whether partition a refines partition b (a splits at least as much). */
bool refines(const std::vector<int> &a, const std::vector<int> &b);

/**
 * The configuration poset.
 */
class SafetyPoset
{
  public:
    /** Add a configuration; returns its node index. */
    std::size_t add(ConfigPoint p);

    std::size_t size() const { return nodes.size(); }
    const ConfigPoint &at(std::size_t i) const { return nodes[i]; }
    ConfigPoint &at(std::size_t i) { return nodes[i]; }

    /** Build the Hasse diagram (cover edges, transitively reduced). */
    void buildEdges();

    /** Direct covers of node i (immediately-safer configurations). */
    const std::vector<std::size_t> &coversOf(std::size_t i) const;

    /**
     * The safest configurations meeting a performance budget: maximal
     * elements of the sub-poset { perf >= minPerf } (the paper's green
     * starred nodes in Figure 8).
     */
    std::vector<std::size_t> safestWithin(double minPerf) const;

    /**
     * Label nodes by running evaluate() bottom-up with monotone
     * pruning: since performance monotonically decreases with safety,
     * any node whose predecessor already misses the budget is skipped
     * (assigned perf 0). @return number of evaluations actually run.
     */
    std::size_t explore(const std::function<double(ConfigPoint &)> &eval,
                        double minPerf);

    /** Graphviz rendering (Figure 8). */
    std::string toDot(double minPerf) const;

  private:
    bool strictlySafer(std::size_t a, std::size_t b) const;

    std::vector<ConfigPoint> nodes;
    std::vector<std::vector<std::size_t>> covers;  ///< safer neighbours
    std::vector<std::vector<std::size_t>> coveredBy; ///< less-safe nbrs
    bool edgesBuilt = false;
};

} // namespace flexos

#endif // FLEXOS_EXPLORE_POSET_HH
