/**
 * @file
 * Wayfinder-style configuration sweep (paper 6.1): generates the 80
 * Figure 6 configurations per application — 5 compartmentalization
 * strategies over {app, newlib, uksched, lwip} times 2^4 per-component
 * hardening bundles — materializes each as a SafetyConfig, and measures
 * it with the application benchmark.
 */

#ifndef FLEXOS_EXPLORE_WAYFINDER_HH
#define FLEXOS_EXPLORE_WAYFINDER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hh"
#include "explore/poset.hh"

namespace flexos {
namespace wayfinder {

/** The components varied in the Figure 6 sweep, index order. */
std::vector<std::string> sweepComponents(const std::string &appLib);

/**
 * The five compartmentalization strategies of Figure 8:
 * A all-in-one, B scheduler split, C lwip split, D app+newlib vs
 * sched+lwip, E app+newlib / sched / lwip.
 */
const std::vector<std::vector<int>> &fig6Partitions();

/** All 80 configuration points (5 partitions x 16 hardening masks). */
std::vector<ConfigPoint> fig6Space();

/**
 * The mixed-mechanism dimension of the configuration space: the five
 * Figure 8 partitions crossed with every per-block mechanism
 * assignment from {none, intel-mpk, vm-ept, cheri} (no hardening,
 * DSS). A homogeneous assignment reproduces a fig6-style point; the
 * rest are heterogeneous images where each boundary picks its own
 * mechanism.
 */
std::vector<ConfigPoint> mixedMechanismSpace();

/**
 * The per-boundary gate-flavour dimension: the five Figure 8
 * partitions (all-MPK, no hardening) crossed with every per-block
 * flavour assignment from {light, dss} — each block's flavour governs
 * the gates *into* it, materialized as a `'*' -> block` boundary
 * rule. light < dss orders the points component-wise in the poset.
 */
std::vector<ConfigPoint> gateFlavorSpace();

/**
 * The SMP dimension of the configuration space: the five Figure 8
 * partitions (all-MPK, no hardening, DSS) crossed with simulated core
 * counts {1, 2, 4}. Core count is performance-only — compareSafety
 * ignores it — so the sweep shows how each partition's gate overhead
 * scales (or fails to amortize) as RSS spreads flows across cores.
 */
std::vector<ConfigPoint> coreCountSpace();

/**
 * The (from, to) partition-block edges the application's *static call
 * graph* needs under a partition: the edges a least-privilege config
 * must keep. Everything else is deniable without rejecting the image
 * at build.
 */
std::vector<std::pair<int, int>>
requiredBlockEdges(const std::vector<int> &partition,
                   const std::string &appLib);

/**
 * The vectored-crossing dimension of the configuration space: the
 * five Figure 8 partitions (all-MPK, no hardening, DSS) crossed with
 * gate batch widths {1, 4, 8} and elision sets {none, validate,
 * scrub, both}, applied image-wide as a `'*' -> '*'` boundary rule.
 * Batch width is performance-only; the elided set orders points by
 * subset (eliding more per-crossing work is strictly less safe).
 */
std::vector<ConfigPoint> batchingSpace();

/**
 * The control-plane dimension of the configuration space: the five
 * Figure 8 partitions (all-MPK, no hardening, DSS) crossed with the
 * runtime policy controller {off, on}. "On" materializes a
 * `controller:` section plus an image-wide `adaptive: true` rule, so
 * every boundary is enrolled. Operations-only in the safety order
 * (the controller tightens below the configured baseline and relaxes
 * back to it, never past it): compareSafety ignores the flag, and the
 * sweep shows what the sampling/adaptation machinery itself costs on
 * storm-free workloads.
 */
std::vector<ConfigPoint> controllerSpace();

/**
 * One axis of a lazily enumerated product configuration space. The
 * axis has `size` choices; `le(a, b)` is the safety partial order on
 * choice indices ("a is at most as safe as b"). Choices MUST be
 * listed in a linear extension of that order — le(a, b) implies
 * a <= b — so that visiting index vectors by ascending index sum
 * never visits a dominating vector before a dominated one. A
 * performance-only axis (batch width, cores) uses equality as its
 * order: no choice prunes any other.
 */
struct ProductDimension
{
    std::string name;
    std::size_t size = 1;
    std::function<bool(std::size_t a, std::size_t b)> le;
};

/**
 * Monotone budget pruning over a product space, without materializing
 * the product (the poset's explore() needs every node up front and
 * O(n^2) edge construction — hopeless for mechanism × flavour × deny
 * × batching products). Index vectors are generated one at a time in
 * ascending index-sum order (a linear extension of the product
 * safety order, given each axis's listing contract); eval() measures
 * a vector's configuration. Since performance decreases monotonically
 * with safety, once a vector misses the budget every vector
 * dominating it component-wise is skipped unevaluated. emit() is
 * called for every vector that met the budget, with its measurement.
 * @return number of evaluations actually run.
 */
std::size_t explorePrunedProduct(
    const std::vector<ProductDimension> &dims,
    const std::function<double(const std::vector<std::size_t> &)> &eval,
    double minPerf,
    const std::function<void(const std::vector<std::size_t> &, double)>
        &emit = {});

/**
 * The carried follow-up sweep: per-block mechanisms × per-block gate
 * flavours × deniable-edge subsets × batching/elision for one
 * Figure 8 partition, wired through explorePrunedProduct so the new
 * batching dimension is sweepable without materializing the full
 * product. Points meeting the budget are appended to `accepted` with
 * their measured perf. @return number of evaluations actually run.
 */
std::size_t prunedBoundarySweep(
    const std::vector<int> &partition, const std::string &appLib,
    const std::function<double(ConfigPoint &)> &eval, double minPerf,
    std::vector<ConfigPoint> &accepted);

/**
 * The least-privilege dimension of the configuration space: the five
 * Figure 8 partitions (all-MPK, no hardening, DSS) crossed with every
 * subset of *deniable* block edges — ordered pairs the static call
 * graph does not need. Edges the call graph requires are never
 * enumerated as denied (such points would be rejected at image
 * build), so the wayfinder sweeps only buildable least-privilege
 * graphs; denying a superset of edges orders points in the poset.
 */
std::vector<ConfigPoint>
leastPrivilegeSpace(const std::string &appLib = "libredis");

/**
 * Materialize a sweep point as a full safety configuration for the
 * given application (DSS, as Figure 6 fixes). Homogeneous points map
 * every compartment to intel-mpk; points carrying blockMechanism get
 * one mechanism per compartment (none/intel-mpk/vm-ept/cheri by
 * rank); points carrying blockGateFlavor emit a `boundaries:` section
 * with one wildcard rule per light block; deniedEdges add one
 * `deny: true` rule per edge; gateBatch > 1 and a non-empty elided
 * set emit an image-wide `'*' -> '*'` batch/elide rule.
 */
SafetyConfig toSafetyConfig(const ConfigPoint &point,
                            const std::string &appLib);

/**
 * Static boundary-audit hazard score of a sweep point: materializes
 * it via toSafetyConfig and runs the flexos::analysis call-graph and
 * policy passes (no shared-data escape scan — sweeps run far from the
 * source tree and the registry's sources do not vary per point).
 * Lower is cleaner; see flexos::analysis severity weights.
 */
int auditScore(const ConfigPoint &point, const std::string &appLib);

/** Fill point.auditScore (see auditScore()). */
void attachAuditScore(ConfigPoint &point, const std::string &appLib);

/**
 * Measured adversary-simulation hazard score of a sweep point:
 * materializes and *deploys* it (no networking — the resource class
 * reports n/a), then mounts the flexos::adversary attack catalogue
 * from the compromised net compartment (lwip when configured, the
 * first configured library otherwise). Lower is better; 0 = every
 * applicable scenario contained. The dynamic complement of
 * auditScore(): the audit scores what the matrix promises, this
 * scores what the deployed image actually contained.
 */
int attackScore(const ConfigPoint &point, const std::string &appLib);

/** Fill point.attackScore (see attackScore()). */
void attachAttackScore(ConfigPoint &point, const std::string &appLib);

/** Measured Redis GET throughput (req/s) for a configuration. */
double measureRedis(const ConfigPoint &point, std::uint64_t requests);

/** Measured Nginx throughput (req/s) for a configuration. */
double measureNginx(const ConfigPoint &point, std::uint64_t requests);

/** Human-readable row label: partition plus hardening dots. */
std::string pointLabel(const ConfigPoint &point,
                       const std::string &appLib);

} // namespace wayfinder
} // namespace flexos

#endif // FLEXOS_EXPLORE_WAYFINDER_HH
