#include "explore/wayfinder.hh"

#include <map>
#include <set>
#include <sstream>

#include "apps/deploy.hh"
#include "apps/http.hh"
#include "apps/redis.hh"
#include "base/logging.hh"

namespace flexos {
namespace wayfinder {

std::vector<std::string>
sweepComponents(const std::string &appLib)
{
    return {appLib, "newlib", "uksched", "lwip"};
}

const std::vector<std::vector<int>> &
fig6Partitions()
{
    static const std::vector<std::vector<int>> parts = {
        {0, 0, 0, 0}, // A: app+newlib+sched+lwip
        {0, 0, 1, 0}, // B: sched isolated
        {0, 0, 0, 1}, // C: lwip isolated
        {0, 0, 1, 1}, // D: app+newlib / sched+lwip
        {0, 0, 1, 2}, // E: app+newlib / sched / lwip
    };
    return parts;
}

std::vector<ConfigPoint>
fig6Space()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        for (unsigned mask = 0; mask < 16; ++mask) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.resize(4);
            for (unsigned c = 0; c < 4; ++c)
                p.hardening[c] = (mask >> c) & 1;
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            out.push_back(std::move(p));
        }
    }
    return out;
}

namespace {

/** Mechanism rank (poset order) -> config-file mechanism name. */
const char *
mechanismNameOfRank(int rank)
{
    switch (rank) {
      case 0:
        return "none";
      case 1:
        return "intel-mpk";
      case 2:
        return "vm-ept";
      case 3:
        return "cheri";
    }
    fatal("unknown mechanism rank ", rank);
}

} // namespace

std::vector<ConfigPoint>
mixedMechanismSpace()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        ConfigPoint base;
        base.partition = partition;
        int nBlocks = base.compartments();
        // Every assignment from {none, mpk, ept, cheri}^nBlocks.
        int total = 1;
        for (int b = 0; b < nBlocks; ++b)
            total *= 4;
        for (int code = 0; code < total; ++code) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.blockMechanism.resize(static_cast<std::size_t>(nBlocks));
            int rest = code;
            for (int b = 0; b < nBlocks; ++b) {
                p.blockMechanism[static_cast<std::size_t>(b)] = rest % 4;
                rest /= 4;
            }
            p.sharingRank = 1; // DSS
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::vector<ConfigPoint>
gateFlavorSpace()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        ConfigPoint base;
        base.partition = partition;
        int nBlocks = base.compartments();
        // Every assignment from {light, dss}^nBlocks, all-MPK.
        for (int code = 0; code < (1 << nBlocks); ++code) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.mechanismRank = 1; // MPK
            p.blockGateFlavor.resize(static_cast<std::size_t>(nBlocks));
            for (int b = 0; b < nBlocks; ++b)
                p.blockGateFlavor[static_cast<std::size_t>(b)] =
                    (code >> b) & 1;
            p.sharingRank = 1; // DSS
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::vector<std::pair<int, int>>
requiredBlockEdges(const std::vector<int> &partition,
                   const std::string &appLib)
{
    // Which block every library of the materialized image lands in
    // (toSafetyConfig places the non-swept components with the app).
    std::vector<std::string> comps = sweepComponents(appLib);
    panic_if(partition.size() != comps.size(),
             "partition arity mismatch");
    std::map<std::string, int> blockOf;
    for (std::size_t c = 0; c < comps.size(); ++c)
        blockOf[comps[c]] = partition[c];
    int appBlock = partition[0];
    blockOf["uktime"] = appBlock;
    if (appLib == "libnginx")
        blockOf["vfscore"] = appBlock;

    // Cross-block edges of the registry's static call graph. All
    // sweep points are MPK-only, so no TCB replication applies and
    // unassigned TCB services (ukalloc) stay local to every caller.
    LibraryRegistry reg = LibraryRegistry::standard();
    std::set<std::pair<int, int>> edges;
    for (const auto &[lib, from] : blockOf) {
        for (const std::string &callee : reg.get(lib).callees) {
            auto it = blockOf.find(callee);
            if (it == blockOf.end() || it->second == from)
                continue;
            edges.emplace(from, it->second);
        }
    }
    return {edges.begin(), edges.end()};
}

std::vector<ConfigPoint>
coreCountSpace()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        for (int cores : {1, 2, 4}) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            p.cores = cores;
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::vector<ConfigPoint>
leastPrivilegeSpace(const std::string &appLib)
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        ConfigPoint base;
        base.partition = partition;
        int nBlocks = base.compartments();

        // Deniable edges: every ordered cross-block pair the static
        // call graph does not need. Required edges are never offered
        // to the sweep — a point denying one would be rejected at
        // image build, i.e. it is not a reachable configuration.
        auto required = requiredBlockEdges(partition, appLib);
        std::set<std::pair<int, int>> keep(required.begin(),
                                           required.end());
        std::vector<std::pair<int, int>> deniable;
        for (int f = 0; f < nBlocks; ++f)
            for (int t = 0; t < nBlocks; ++t)
                if (f != t && !keep.count({f, t}))
                    deniable.emplace_back(f, t);

        for (unsigned mask = 0; mask < (1u << deniable.size());
             ++mask) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            for (std::size_t e = 0; e < deniable.size(); ++e)
                if (mask & (1u << e))
                    p.deniedEdges.push_back(deniable[e]);
            out.push_back(std::move(p));
        }
    }
    return out;
}

SafetyConfig
toSafetyConfig(const ConfigPoint &point, const std::string &appLib)
{
    std::vector<std::string> comps = sweepComponents(appLib);
    panic_if(point.partition.size() != comps.size(),
             "partition arity mismatch");

    int nBlocks = point.compartments();
    std::ostringstream cfg;
    cfg << "compartments:\n";
    int appBlock = point.partition[0];
    for (int b = 0; b < nBlocks; ++b) {
        cfg << "- comp" << b + 1 << ":\n";
        const char *mech =
            point.blockMechanism.empty()
                ? "intel-mpk"
                : mechanismNameOfRank(
                      point.blockMechanism[static_cast<std::size_t>(b)]);
        cfg << "    mechanism: " << mech << "\n";
        if (b == appBlock)
            cfg << "    default: True\n";
    }
    cfg << "libraries:\n";
    for (std::size_t c = 0; c < comps.size(); ++c) {
        cfg << "- " << comps[c] << ": comp" << point.partition[c] + 1;
        if (point.hardening[c])
            cfg << " [stack-protector, ubsan, kasan]";
        cfg << "\n";
    }
    // Components not varied by the sweep ride in the app compartment.
    cfg << "- uktime: comp" << appBlock + 1 << "\n";
    if (appLib == "libnginx")
        cfg << "- vfscore: comp" << appBlock + 1 << "\n";
    // Per-block gate flavours materialize as callee-side wildcard
    // boundary rules: gates *into* a light block run the ERIM-style
    // light gate (the default is dss, so only light needs a rule).
    // Denied edges become exact-pair deny rules.
    std::vector<std::string> rules;
    if (!point.blockGateFlavor.empty()) {
        panic_if(static_cast<int>(point.blockGateFlavor.size()) !=
                     nBlocks,
                 "gate-flavour arity mismatch");
        for (int b = 0; b < nBlocks; ++b)
            if (point.blockGateFlavor[static_cast<std::size_t>(b)] == 0)
                rules.push_back("- '*' -> comp" + std::to_string(b + 1) +
                                ": {gate: light}");
    }
    for (const auto &[f, t] : point.deniedEdges) {
        panic_if(f < 0 || t < 0 || f >= nBlocks || t >= nBlocks,
                 "denied edge names an unknown partition block");
        rules.push_back("- comp" + std::to_string(f + 1) + " -> comp" +
                        std::to_string(t + 1) + ": {deny: true}");
    }
    if (!rules.empty()) {
        cfg << "boundaries:\n";
        for (const std::string &r : rules)
            cfg << r << "\n";
    }
    if (point.cores > 1)
        cfg << "cores: " << point.cores << "\n";
    return SafetyConfig::parse(cfg.str());
}

std::string
pointLabel(const ConfigPoint &point, const std::string &appLib)
{
    std::vector<std::string> comps = sweepComponents(appLib);
    std::ostringstream oss;
    // Partition rendering: blocks joined by '/'.
    int nBlocks = point.compartments();
    for (int b = 0; b < nBlocks; ++b) {
        if (b)
            oss << " / ";
        bool first = true;
        for (std::size_t c = 0; c < comps.size(); ++c) {
            if (point.partition[c] != b)
                continue;
            if (!first)
                oss << "+";
            oss << comps[c];
            first = false;
        }
    }
    oss << "  [";
    for (std::size_t c = 0; c < comps.size(); ++c)
        oss << (point.hardening[c] ? "●" : "○");
    oss << "]";
    if (!point.blockMechanism.empty()) {
        static const char *short_[] = {"none", "mpk", "ept", "cheri"};
        oss << " {";
        for (std::size_t b = 0; b < point.blockMechanism.size(); ++b) {
            if (b)
                oss << "/";
            oss << short_[point.blockMechanism[b]];
        }
        oss << "}";
    }
    if (!point.blockGateFlavor.empty()) {
        oss << " <";
        for (std::size_t b = 0; b < point.blockGateFlavor.size(); ++b) {
            if (b)
                oss << "/";
            oss << (point.blockGateFlavor[b] == 0 ? "light" : "dss");
        }
        oss << ">";
    }
    if (!point.deniedEdges.empty()) {
        oss << " deny{";
        for (std::size_t e = 0; e < point.deniedEdges.size(); ++e) {
            if (e)
                oss << ",";
            oss << point.deniedEdges[e].first + 1 << "->"
                << point.deniedEdges[e].second + 1;
        }
        oss << "}";
    }
    if (point.cores > 1)
        oss << " x" << point.cores << "cores";
    return oss.str();
}

double
measureRedis(const ConfigPoint &point, std::uint64_t requests)
{
    DeployOptions opts;
    opts.withFs = false;
    opts.heapBytes = 2 * 1024 * 1024;
    opts.sharedHeapBytes = 1 * 1024 * 1024;
    Deployment dep(toSafetyConfig(point, "libredis"), opts);
    dep.start();
    // redis-benchmark default: no pipelining — every request pays the
    // full per-request communication pattern (paper 6.1).
    RedisBenchmarkResult res = runRedisGetBenchmark(
        dep.image(), dep.libc(), dep.clientStack(), requests, 1, 50);
    dep.stop();
    return res.requestsPerSec;
}

double
measureNginx(const ConfigPoint &point, std::uint64_t requests)
{
    DeployOptions opts;
    opts.heapBytes = 2 * 1024 * 1024;
    opts.sharedHeapBytes = 1 * 1024 * 1024;
    Deployment dep(toSafetyConfig(point, "libnginx"), opts);
    dep.writeFile("/www/index.html", std::string(612, 'w'));
    dep.start();
    HttpBenchmarkResult res = runHttpBenchmark(
        dep.image(), dep.libc(), dep.clientStack(), requests,
        "/index.html", 1);
    dep.stop();
    return res.requestsPerSec;
}

} // namespace wayfinder
} // namespace flexos
