#include "explore/wayfinder.hh"

#include <map>
#include <set>
#include <sstream>

#include "adversary/adversary.hh"
#include "analysis/audit.hh"
#include "apps/deploy.hh"
#include "apps/http.hh"
#include "apps/redis.hh"
#include "base/logging.hh"

namespace flexos {
namespace wayfinder {

std::vector<std::string>
sweepComponents(const std::string &appLib)
{
    return {appLib, "newlib", "uksched", "lwip"};
}

const std::vector<std::vector<int>> &
fig6Partitions()
{
    static const std::vector<std::vector<int>> parts = {
        {0, 0, 0, 0}, // A: app+newlib+sched+lwip
        {0, 0, 1, 0}, // B: sched isolated
        {0, 0, 0, 1}, // C: lwip isolated
        {0, 0, 1, 1}, // D: app+newlib / sched+lwip
        {0, 0, 1, 2}, // E: app+newlib / sched / lwip
    };
    return parts;
}

std::vector<ConfigPoint>
fig6Space()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        for (unsigned mask = 0; mask < 16; ++mask) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.resize(4);
            for (unsigned c = 0; c < 4; ++c)
                p.hardening[c] = (mask >> c) & 1;
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            out.push_back(std::move(p));
        }
    }
    return out;
}

namespace {

/** Mechanism rank (poset order) -> config-file mechanism name. */
const char *
mechanismNameOfRank(int rank)
{
    switch (rank) {
      case 0:
        return "none";
      case 1:
        return "intel-mpk";
      case 2:
        return "vm-ept";
      case 3:
        return "cheri";
    }
    fatal("unknown mechanism rank ", rank);
}

} // namespace

std::vector<ConfigPoint>
mixedMechanismSpace()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        ConfigPoint base;
        base.partition = partition;
        int nBlocks = base.compartments();
        // Every assignment from {none, mpk, ept, cheri}^nBlocks.
        int total = 1;
        for (int b = 0; b < nBlocks; ++b)
            total *= 4;
        for (int code = 0; code < total; ++code) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.blockMechanism.resize(static_cast<std::size_t>(nBlocks));
            int rest = code;
            for (int b = 0; b < nBlocks; ++b) {
                p.blockMechanism[static_cast<std::size_t>(b)] = rest % 4;
                rest /= 4;
            }
            p.sharingRank = 1; // DSS
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::vector<ConfigPoint>
gateFlavorSpace()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        ConfigPoint base;
        base.partition = partition;
        int nBlocks = base.compartments();
        // Every assignment from {light, dss}^nBlocks, all-MPK.
        for (int code = 0; code < (1 << nBlocks); ++code) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.mechanismRank = 1; // MPK
            p.blockGateFlavor.resize(static_cast<std::size_t>(nBlocks));
            for (int b = 0; b < nBlocks; ++b)
                p.blockGateFlavor[static_cast<std::size_t>(b)] =
                    (code >> b) & 1;
            p.sharingRank = 1; // DSS
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::vector<std::pair<int, int>>
requiredBlockEdges(const std::vector<int> &partition,
                   const std::string &appLib)
{
    // Which block every library of the materialized image lands in
    // (toSafetyConfig places the non-swept components with the app).
    std::vector<std::string> comps = sweepComponents(appLib);
    panic_if(partition.size() != comps.size(),
             "partition arity mismatch");
    std::map<std::string, int> blockOf;
    for (std::size_t c = 0; c < comps.size(); ++c)
        blockOf[comps[c]] = partition[c];
    int appBlock = partition[0];
    blockOf["uktime"] = appBlock;
    if (appLib == "libnginx")
        blockOf["vfscore"] = appBlock;

    // Cross-block edges of the registry's static call graph. All
    // sweep points are MPK-only, so no TCB replication applies and
    // unassigned TCB services (ukalloc) stay local to every caller.
    LibraryRegistry reg = LibraryRegistry::standard();
    std::set<std::pair<int, int>> edges;
    for (const auto &[lib, from] : blockOf) {
        for (const std::string &callee : reg.get(lib).callees) {
            auto it = blockOf.find(callee);
            if (it == blockOf.end() || it->second == from)
                continue;
            edges.emplace(from, it->second);
        }
    }
    return {edges.begin(), edges.end()};
}

std::vector<ConfigPoint>
coreCountSpace()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        for (int cores : {1, 2, 4}) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            p.cores = cores;
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::vector<ConfigPoint>
batchingSpace()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        for (int batch : {1, 4, 8}) {
            for (unsigned elided : {0u, 1u, 2u, 3u}) {
                ConfigPoint p;
                p.partition = partition;
                p.hardening.assign(partition.size(), 0);
                p.mechanismRank = 1; // MPK
                p.sharingRank = 1;   // DSS
                p.gateBatch = batch;
                p.elided = elided;
                out.push_back(std::move(p));
            }
        }
    }
    return out;
}

std::vector<ConfigPoint>
controllerSpace()
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        for (bool adaptive : {false, true}) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            p.adaptive = adaptive;
            out.push_back(std::move(p));
        }
    }
    return out;
}

std::size_t
explorePrunedProduct(
    const std::vector<ProductDimension> &dims,
    const std::function<double(const std::vector<std::size_t> &)> &eval,
    double minPerf,
    const std::function<void(const std::vector<std::size_t> &, double)>
        &emit)
{
    // Does candidate `v` dominate (sit at-or-above, component-wise)
    // one of the vectors that already missed the budget? Every axis
    // order is reflexive, so a failed vector also "dominates" itself
    // and is never revisited.
    std::vector<std::vector<std::size_t>> failed;
    auto dominatesFailed = [&](const std::vector<std::size_t> &v) {
        for (const auto &f : failed) {
            bool dom = true;
            for (std::size_t d = 0; d < dims.size() && dom; ++d)
                if (!dims[d].le(f[d], v[d]))
                    dom = false;
            if (dom)
                return true;
        }
        return false;
    };

    std::size_t evaluated = 0;
    auto visit = [&](const std::vector<std::size_t> &v) {
        if (dominatesFailed(v))
            return;
        double perf = eval(v);
        ++evaluated;
        if (perf >= minPerf) {
            if (emit)
                emit(v, perf);
        } else {
            failed.push_back(v);
        }
    };

    // Ascending index-sum enumeration: one index vector live at a
    // time, recursion assigning axis d a share of the remaining sum.
    // The linear-extension contract on each axis makes this a linear
    // extension of the product order, so by the time a vector is
    // visited everything it dominates has already been measured (or
    // pruned) — maximal pruning without materializing the product.
    std::size_t maxSum = 0;
    for (const auto &d : dims) {
        panic_if(d.size == 0 || !d.le, "malformed product dimension");
        maxSum += d.size - 1;
    }
    std::vector<std::size_t> v(dims.size(), 0);
    std::function<void(std::size_t, std::size_t)> place =
        [&](std::size_t d, std::size_t rest) {
            if (d == dims.size()) {
                if (rest == 0)
                    visit(v);
                return;
            }
            std::size_t cap = std::min(rest, dims[d].size - 1);
            for (std::size_t i = 0; i <= cap; ++i) {
                v[d] = i;
                place(d + 1, rest - i);
            }
        };
    for (std::size_t sum = 0; sum <= maxSum; ++sum)
        place(0, sum);
    return evaluated;
}

std::size_t
prunedBoundarySweep(const std::vector<int> &partition,
                    const std::string &appLib,
                    const std::function<double(ConfigPoint &)> &eval,
                    double minPerf, std::vector<ConfigPoint> &accepted)
{
    ConfigPoint base;
    base.partition = partition;
    std::size_t nBlocks = static_cast<std::size_t>(base.compartments());

    // Axis 1: per-block mechanism assignments, every code from
    // {none, mpk, ept, cheri}^nBlocks listed by ascending rank sum (a
    // linear extension of the component-wise partial order, ept/cheri
    // antichain included).
    std::size_t mechCount = 1;
    for (std::size_t b = 0; b < nBlocks; ++b)
        mechCount *= 4;
    auto mechRanks = [nBlocks](std::size_t code) {
        std::vector<int> r(nBlocks);
        for (std::size_t b = 0; b < nBlocks; ++b) {
            r[b] = static_cast<int>(code % 4);
            code /= 4;
        }
        return r;
    };
    std::vector<std::size_t> mechCodes(mechCount);
    for (std::size_t c = 0; c < mechCount; ++c)
        mechCodes[c] = c;
    std::stable_sort(mechCodes.begin(), mechCodes.end(),
                     [&](std::size_t a, std::size_t b) {
                         auto ra = mechRanks(a), rb = mechRanks(b);
                         int sa = 0, sb = 0;
                         for (std::size_t i = 0; i < nBlocks; ++i) {
                             sa += ra[i];
                             sb += rb[i];
                         }
                         return sa < sb;
                     });

    // Axis 2: per-block gate flavours (bitmask, bit = dss), listed by
    // popcount so subsets precede supersets.
    std::vector<std::size_t> flavCodes(std::size_t(1) << nBlocks);
    for (std::size_t c = 0; c < flavCodes.size(); ++c)
        flavCodes[c] = c;
    auto popcount = [](std::size_t x) {
        int n = 0;
        for (; x; x &= x - 1)
            ++n;
        return n;
    };
    std::stable_sort(flavCodes.begin(), flavCodes.end(),
                     [&](std::size_t a, std::size_t b) {
                         return popcount(a) < popcount(b);
                     });

    // Axis 3: deniable-edge subsets (bitmask over the edges the
    // static call graph does not need), by popcount — denying more
    // edges is safer.
    auto required = requiredBlockEdges(partition, appLib);
    std::set<std::pair<int, int>> keep(required.begin(), required.end());
    std::vector<std::pair<int, int>> deniable;
    for (int f = 0; f < static_cast<int>(nBlocks); ++f)
        for (int t = 0; t < static_cast<int>(nBlocks); ++t)
            if (f != t && !keep.count({f, t}))
                deniable.emplace_back(f, t);
    std::vector<std::size_t> denyCodes(std::size_t(1)
                                       << deniable.size());
    for (std::size_t c = 0; c < denyCodes.size(); ++c)
        denyCodes[c] = c;
    std::stable_sort(denyCodes.begin(), denyCodes.end(),
                     [&](std::size_t a, std::size_t b) {
                         return popcount(a) < popcount(b);
                     });

    // Axis 4: elision sets, least safe first (elide superset ⇒ less
    // safe): both < {validate, scrub} < none.
    static const unsigned elideLevels[] = {3u, 1u, 2u, 0u};

    // Axis 5: batch width — performance-only, equality order.
    static const int batchLevels[] = {1, 4, 8};

    std::vector<ProductDimension> dims(5);
    dims[0] = {"mechanism", mechCount, [&, nBlocks](std::size_t a,
                                                    std::size_t b) {
                   auto ra = mechRanks(mechCodes[a]),
                        rb = mechRanks(mechCodes[b]);
                   for (std::size_t i = 0; i < nBlocks; ++i)
                       if (!mechanismRankLe(ra[i], rb[i]))
                           return false;
                   return true;
               }};
    dims[1] = {"flavour", flavCodes.size(),
               [&](std::size_t a, std::size_t b) {
                   return (flavCodes[a] & flavCodes[b]) == flavCodes[a];
               }};
    dims[2] = {"deny", denyCodes.size(),
               [&](std::size_t a, std::size_t b) {
                   return (denyCodes[a] & denyCodes[b]) == denyCodes[a];
               }};
    dims[3] = {"elide", 4, [](std::size_t a, std::size_t b) {
                   return (elideLevels[a] & elideLevels[b]) ==
                          elideLevels[b];
               }};
    dims[4] = {"batch", 3,
               [](std::size_t a, std::size_t b) { return a == b; }};

    auto materialize = [&](const std::vector<std::size_t> &v) {
        ConfigPoint p;
        p.partition = partition;
        p.hardening.assign(partition.size(), 0);
        p.blockMechanism = mechRanks(mechCodes[v[0]]);
        p.blockGateFlavor.resize(nBlocks);
        for (std::size_t b = 0; b < nBlocks; ++b)
            p.blockGateFlavor[b] =
                (flavCodes[v[1]] >> b) & 1 ? 1 : 0;
        for (std::size_t e = 0; e < deniable.size(); ++e)
            if (denyCodes[v[2]] & (std::size_t(1) << e))
                p.deniedEdges.push_back(deniable[e]);
        p.elided = elideLevels[v[3]];
        p.gateBatch = batchLevels[v[4]];
        p.sharingRank = 1; // DSS
        return p;
    };

    return explorePrunedProduct(
        dims,
        [&](const std::vector<std::size_t> &v) {
            ConfigPoint p = materialize(v);
            return eval(p);
        },
        minPerf,
        [&](const std::vector<std::size_t> &v, double perf) {
            ConfigPoint p = materialize(v);
            p.perf = perf;
            accepted.push_back(std::move(p));
        });
}

std::vector<ConfigPoint>
leastPrivilegeSpace(const std::string &appLib)
{
    std::vector<ConfigPoint> out;
    for (const auto &partition : fig6Partitions()) {
        ConfigPoint base;
        base.partition = partition;
        int nBlocks = base.compartments();

        // Deniable edges: every ordered cross-block pair the static
        // call graph does not need. Required edges are never offered
        // to the sweep — a point denying one would be rejected at
        // image build, i.e. it is not a reachable configuration.
        auto required = requiredBlockEdges(partition, appLib);
        std::set<std::pair<int, int>> keep(required.begin(),
                                           required.end());
        std::vector<std::pair<int, int>> deniable;
        for (int f = 0; f < nBlocks; ++f)
            for (int t = 0; t < nBlocks; ++t)
                if (f != t && !keep.count({f, t}))
                    deniable.emplace_back(f, t);

        for (unsigned mask = 0; mask < (1u << deniable.size());
             ++mask) {
            ConfigPoint p;
            p.partition = partition;
            p.hardening.assign(partition.size(), 0);
            p.mechanismRank = 1; // MPK
            p.sharingRank = 1;   // DSS
            for (std::size_t e = 0; e < deniable.size(); ++e)
                if (mask & (1u << e))
                    p.deniedEdges.push_back(deniable[e]);
            out.push_back(std::move(p));
        }
    }
    return out;
}

SafetyConfig
toSafetyConfig(const ConfigPoint &point, const std::string &appLib)
{
    std::vector<std::string> comps = sweepComponents(appLib);
    panic_if(point.partition.size() != comps.size(),
             "partition arity mismatch");

    int nBlocks = point.compartments();
    std::ostringstream cfg;
    cfg << "compartments:\n";
    int appBlock = point.partition[0];
    for (int b = 0; b < nBlocks; ++b) {
        cfg << "- comp" << b + 1 << ":\n";
        const char *mech =
            point.blockMechanism.empty()
                ? "intel-mpk"
                : mechanismNameOfRank(
                      point.blockMechanism[static_cast<std::size_t>(b)]);
        cfg << "    mechanism: " << mech << "\n";
        if (b == appBlock)
            cfg << "    default: True\n";
    }
    cfg << "libraries:\n";
    for (std::size_t c = 0; c < comps.size(); ++c) {
        cfg << "- " << comps[c] << ": comp" << point.partition[c] + 1;
        if (point.hardening[c])
            cfg << " [stack-protector, ubsan, kasan]";
        cfg << "\n";
    }
    // Components not varied by the sweep ride in the app compartment.
    cfg << "- uktime: comp" << appBlock + 1 << "\n";
    if (appLib == "libnginx")
        cfg << "- vfscore: comp" << appBlock + 1 << "\n";
    // Per-block gate flavours materialize as callee-side wildcard
    // boundary rules: gates *into* a light block run the ERIM-style
    // light gate (the default is dss, so only light needs a rule).
    // Denied edges become exact-pair deny rules.
    std::vector<std::string> rules;
    if (!point.blockGateFlavor.empty()) {
        panic_if(static_cast<int>(point.blockGateFlavor.size()) !=
                     nBlocks,
                 "gate-flavour arity mismatch");
        for (int b = 0; b < nBlocks; ++b)
            if (point.blockGateFlavor[static_cast<std::size_t>(b)] == 0)
                rules.push_back("- '*' -> comp" + std::to_string(b + 1) +
                                ": {gate: light}");
    }
    for (const auto &[f, t] : point.deniedEdges) {
        panic_if(f < 0 || t < 0 || f >= nBlocks || t >= nBlocks,
                 "denied edge names an unknown partition block");
        rules.push_back("- comp" + std::to_string(f + 1) + " -> comp" +
                        std::to_string(t + 1) + ": {deny: true}");
    }
    // Vectored-crossing knobs apply image-wide: one least-specific
    // wildcard rule that every exact/deny rule above still overrides.
    if (point.gateBatch > 1 || point.elided != 0 || point.adaptive) {
        std::string knobs;
        if (point.gateBatch > 1)
            knobs += "batch: " + std::to_string(point.gateBatch);
        if (point.elided != 0) {
            if (!knobs.empty())
                knobs += ", ";
            knobs += std::string("elide: ") +
                     (point.elided == 3   ? "both"
                      : point.elided == 1 ? "validate"
                                          : "scrub");
        }
        if (point.adaptive) {
            if (!knobs.empty())
                knobs += ", ";
            knobs += "adaptive: true";
        }
        rules.push_back("- '*' -> '*': {" + knobs + "}");
    }
    if (!rules.empty()) {
        cfg << "boundaries:\n";
        for (const std::string &r : rules)
            cfg << r << "\n";
    }
    if (point.cores > 1)
        cfg << "cores: " << point.cores << "\n";
    // Controller points run the default sampling/threshold knobs —
    // the section's presence alone enables the control plane.
    if (point.adaptive)
        cfg << "controller:\n";
    return SafetyConfig::parse(cfg.str());
}

std::string
pointLabel(const ConfigPoint &point, const std::string &appLib)
{
    std::vector<std::string> comps = sweepComponents(appLib);
    std::ostringstream oss;
    // Partition rendering: blocks joined by '/'.
    int nBlocks = point.compartments();
    for (int b = 0; b < nBlocks; ++b) {
        if (b)
            oss << " / ";
        bool first = true;
        for (std::size_t c = 0; c < comps.size(); ++c) {
            if (point.partition[c] != b)
                continue;
            if (!first)
                oss << "+";
            oss << comps[c];
            first = false;
        }
    }
    oss << "  [";
    for (std::size_t c = 0; c < comps.size(); ++c)
        oss << (point.hardening[c] ? "●" : "○");
    oss << "]";
    if (!point.blockMechanism.empty()) {
        static const char *short_[] = {"none", "mpk", "ept", "cheri"};
        oss << " {";
        for (std::size_t b = 0; b < point.blockMechanism.size(); ++b) {
            if (b)
                oss << "/";
            oss << short_[point.blockMechanism[b]];
        }
        oss << "}";
    }
    if (!point.blockGateFlavor.empty()) {
        oss << " <";
        for (std::size_t b = 0; b < point.blockGateFlavor.size(); ++b) {
            if (b)
                oss << "/";
            oss << (point.blockGateFlavor[b] == 0 ? "light" : "dss");
        }
        oss << ">";
    }
    if (!point.deniedEdges.empty()) {
        oss << " deny{";
        for (std::size_t e = 0; e < point.deniedEdges.size(); ++e) {
            if (e)
                oss << ",";
            oss << point.deniedEdges[e].first + 1 << "->"
                << point.deniedEdges[e].second + 1;
        }
        oss << "}";
    }
    if (point.cores > 1)
        oss << " x" << point.cores << "cores";
    if (point.gateBatch > 1)
        oss << " batch" << point.gateBatch;
    if (point.elided)
        oss << " elide:"
            << (point.elided == 3   ? "both"
                : point.elided == 1 ? "validate"
                                    : "scrub");
    if (point.adaptive)
        oss << " ctl";
    return oss.str();
}

int
auditScore(const ConfigPoint &point, const std::string &appLib)
{
    static const LibraryRegistry reg = LibraryRegistry::standard();
    analysis::AuditOptions opts;
    opts.escape = false;
    return analysis::runAudit(toSafetyConfig(point, appLib), reg, opts)
        .score();
}

void
attachAuditScore(ConfigPoint &point, const std::string &appLib)
{
    point.auditScore = auditScore(point, appLib);
}

int
attackScore(const ConfigPoint &point, const std::string &appLib)
{
    SafetyConfig cfg = toSafetyConfig(point, appLib);
    adversary::AttackOptions aopts;
    aopts.attackerLib = cfg.libraries.empty()
                            ? std::string("lwip")
                            : cfg.libraries.front().first;
    for (const auto &[lib, comp] : cfg.libraries)
        if (lib == "lwip")
            aopts.attackerLib = lib;
    DeployOptions opts;
    opts.withNet = false;
    opts.withFs = false;
    opts.heapBytes = 2 * 1024 * 1024;
    opts.sharedHeapBytes = 1 * 1024 * 1024;
    Deployment dep(std::move(cfg), opts);
    dep.start();
    adversary::AttackScorecard card =
        adversary::runScorecard(dep, aopts);
    dep.stop();
    return card.score();
}

void
attachAttackScore(ConfigPoint &point, const std::string &appLib)
{
    point.attackScore = attackScore(point, appLib);
}

double
measureRedis(const ConfigPoint &point, std::uint64_t requests)
{
    DeployOptions opts;
    opts.withFs = false;
    opts.heapBytes = 2 * 1024 * 1024;
    opts.sharedHeapBytes = 1 * 1024 * 1024;
    Deployment dep(toSafetyConfig(point, "libredis"), opts);
    dep.start();
    // redis-benchmark default: no pipelining — every request pays the
    // full per-request communication pattern (paper 6.1).
    RedisBenchmarkResult res = runRedisGetBenchmark(
        dep.image(), dep.libc(), dep.clientStack(), requests, 1, 50);
    dep.stop();
    return res.requestsPerSec;
}

double
measureNginx(const ConfigPoint &point, std::uint64_t requests)
{
    DeployOptions opts;
    opts.heapBytes = 2 * 1024 * 1024;
    opts.sharedHeapBytes = 1 * 1024 * 1024;
    Deployment dep(toSafetyConfig(point, "libnginx"), opts);
    dep.writeFile("/www/index.html", std::string(612, 'w'));
    dep.start();
    HttpBenchmarkResult res = runHttpBenchmark(
        dep.image(), dep.libc(), dep.clientStack(), requests,
        "/index.html", 1);
    dep.stop();
    return res.requestsPerSec;
}

} // namespace wayfinder
} // namespace flexos
