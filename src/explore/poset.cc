#include "explore/poset.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "base/logging.hh"

namespace flexos {

int
ConfigPoint::compartments() const
{
    std::set<int> blocks(partition.begin(), partition.end());
    return static_cast<int>(blocks.size());
}

int
ConfigPoint::mechanismRankOf(std::size_t c) const
{
    if (blockMechanism.empty())
        return mechanismRank;
    panic_if(c >= partition.size(), "component index out of range");
    auto block = static_cast<std::size_t>(partition[c]);
    panic_if(block >= blockMechanism.size(),
             "partition block without a mechanism assignment");
    return blockMechanism[block];
}

int
ConfigPoint::gateFlavorRankOf(std::size_t c) const
{
    if (blockGateFlavor.empty())
        return 1; // full DSS gate everywhere by default
    panic_if(c >= partition.size(), "component index out of range");
    auto block = static_cast<std::size_t>(partition[c]);
    panic_if(block >= blockGateFlavor.size(),
             "partition block without a gate-flavour assignment");
    return blockGateFlavor[block];
}

bool
mechanismRankLe(int a, int b)
{
    if (a == b)
        return true;
    if (a > b)
        return false;
    // a < b is ordered except across the ept(2)/cheri(3) antichain.
    return !(a == 2 && b == 3);
}

bool
refines(const std::vector<int> &a, const std::vector<int> &b)
{
    panic_if(a.size() != b.size(), "partition size mismatch");
    // a refines b iff components sharing a block in a also share in b.
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = i + 1; j < a.size(); ++j) {
            if (a[i] == a[j] && b[i] != b[j])
                return false;
        }
    }
    return true;
}

namespace {

/** Tri-state accumulate: does a dominate b on this dimension? */
enum class Dim { ALeq, AGeq, Both, Neither };

Dim
combine(Dim acc, bool aLeB, bool bLeA)
{
    Dim cur = aLeB && bLeA ? Dim::Both
              : aLeB       ? Dim::ALeq
              : bLeA       ? Dim::AGeq
                           : Dim::Neither;
    if (acc == Dim::Both)
        return cur;
    if (cur == Dim::Both)
        return acc;
    if (acc == cur)
        return acc;
    return Dim::Neither;
}

} // namespace

SafetyOrder
compareSafety(const ConfigPoint &a, const ConfigPoint &b)
{
    panic_if(a.partition.size() != b.partition.size() ||
                 a.hardening.size() != b.hardening.size(),
             "comparing configurations over different components");

    Dim acc = Dim::Both;

    // 1) Compartmentalization granularity: refinement order.
    acc = combine(acc, refines(b.partition, a.partition),
                  refines(a.partition, b.partition));

    // 2) Per-component hardening: subset order on each component.
    bool aSub = true, bSub = true;
    for (std::size_t i = 0; i < a.hardening.size(); ++i) {
        if ((a.hardening[i] & b.hardening[i]) != a.hardening[i])
            aSub = false;
        if ((a.hardening[i] & b.hardening[i]) != b.hardening[i])
            bSub = false;
    }
    acc = combine(acc, aSub, bSub);

    // 3) Mechanism strength, component-wise: with per-block mechanisms
    // (mixed images) a config dominates only if every component's
    // boundary is at least as strong — under the partial mechanism
    // order (ept and cheri are incomparable). Homogeneous configs
    // degenerate to the scalar-rank comparison.
    bool aMechLe = true, bMechLe = true;
    if (a.partition.empty()) {
        aMechLe = mechanismRankLe(a.mechanismRank, b.mechanismRank);
        bMechLe = mechanismRankLe(b.mechanismRank, a.mechanismRank);
    }
    for (std::size_t c = 0; c < a.partition.size(); ++c) {
        int ra = a.mechanismRankOf(c);
        int rb = b.mechanismRankOf(c);
        if (!mechanismRankLe(ra, rb))
            aMechLe = false;
        if (!mechanismRankLe(rb, ra))
            bMechLe = false;
    }
    acc = combine(acc, aMechLe, bMechLe);

    // 3b) Per-boundary MPK gate flavour, component-wise: the DSS gate
    // (register scrub + stack switch) dominates the light gate on
    // every boundary it guards.
    bool aFlavLe = true, bFlavLe = true;
    for (std::size_t c = 0; c < a.partition.size(); ++c) {
        int ra = a.gateFlavorRankOf(c);
        int rb = b.gateFlavorRankOf(c);
        if (ra > rb)
            aFlavLe = false;
        if (rb > ra)
            bFlavLe = false;
    }
    acc = combine(acc, aFlavLe, bFlavLe);

    // 3c) Least-privilege call graph: denying a superset of edges is
    // safer. Block ids only line up between identical partitions;
    // otherwise the dimension is neutral when both sets are empty and
    // incomparable when either denies anything.
    {
        std::set<std::pair<int, int>> da(a.deniedEdges.begin(),
                                         a.deniedEdges.end()),
            db(b.deniedEdges.begin(), b.deniedEdges.end());
        bool comparable = a.partition == b.partition ||
                          (da.empty() && db.empty());
        bool aSubset = std::includes(db.begin(), db.end(), da.begin(),
                                     da.end());
        bool bSubset = std::includes(da.begin(), da.end(), db.begin(),
                                     db.end());
        acc = combine(acc, comparable && aSubset, comparable && bSubset);
    }

    // 3d) Per-crossing work elision: skipping entry validation or
    // return scrubbing on repeated crossings weakens the boundary, so
    // eliding a subset of another config's work is safer — a ≤ b iff
    // b's elided set is contained in a's. gateBatch, like cores, is
    // performance-only and deliberately left out of the order.
    acc = combine(acc, (a.elided & b.elided) == b.elided,
                  (a.elided & b.elided) == a.elided);

    // 4) Data-isolation strength.
    acc = combine(acc, a.sharingRank <= b.sharingRank,
                  b.sharingRank <= a.sharingRank);

    switch (acc) {
      case Dim::Both:
        return SafetyOrder::Equal;
      case Dim::ALeq:
        return SafetyOrder::Less;
      case Dim::AGeq:
        return SafetyOrder::Greater;
      case Dim::Neither:
        return SafetyOrder::Incomparable;
    }
    return SafetyOrder::Incomparable;
}

std::size_t
SafetyPoset::add(ConfigPoint p)
{
    nodes.push_back(std::move(p));
    edgesBuilt = false;
    return nodes.size() - 1;
}

bool
SafetyPoset::strictlySafer(std::size_t a, std::size_t b) const
{
    return compareSafety(nodes[a], nodes[b]) == SafetyOrder::Greater;
}

void
SafetyPoset::buildEdges()
{
    std::size_t n = nodes.size();
    covers.assign(n, {});
    coveredBy.assign(n, {});

    for (std::size_t lo = 0; lo < n; ++lo) {
        for (std::size_t hi = 0; hi < n; ++hi) {
            if (lo == hi || !strictlySafer(hi, lo))
                continue;
            // Cover edge iff no intermediate m with lo < m < hi
            // (transitive reduction -> Hasse diagram).
            bool direct = true;
            for (std::size_t m = 0; m < n && direct; ++m) {
                if (m == lo || m == hi)
                    continue;
                if (strictlySafer(m, lo) && strictlySafer(hi, m))
                    direct = false;
            }
            if (direct) {
                covers[lo].push_back(hi);
                coveredBy[hi].push_back(lo);
            }
        }
    }
    edgesBuilt = true;
}

const std::vector<std::size_t> &
SafetyPoset::coversOf(std::size_t i) const
{
    panic_if(!edgesBuilt, "poset edges not built");
    return covers[i];
}

std::vector<std::size_t>
SafetyPoset::safestWithin(double minPerf) const
{
    panic_if(!edgesBuilt, "poset edges not built");
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].perf < minPerf)
            continue;
        // Maximal in the qualifying sub-poset: no strictly safer node
        // also meets the budget.
        bool dominated = false;
        for (std::size_t j = 0; j < nodes.size() && !dominated; ++j) {
            if (j != i && nodes[j].perf >= minPerf &&
                strictlySafer(j, i))
                dominated = true;
        }
        if (!dominated)
            out.push_back(i);
    }
    return out;
}

std::size_t
SafetyPoset::explore(const std::function<double(ConfigPoint &)> &eval,
                     double minPerf)
{
    if (!edgesBuilt)
        buildEdges();

    // Topological walk from the least-safe nodes upward. Performance
    // decreases monotonically with safety, so once a node misses the
    // budget every safer node would too: prune the entire up-set
    // (paper 5: "it can safely stop evaluating a path as soon as a
    // threshold is reached").
    std::size_t n = nodes.size();
    std::vector<int> pendingBelow(n);
    std::vector<bool> pruned(n, false);
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < n; ++i) {
        pendingBelow[i] = static_cast<int>(coveredBy[i].size());
        if (pendingBelow[i] == 0)
            queue.push_back(i);
    }

    std::size_t evaluated = 0;
    while (!queue.empty()) {
        std::size_t i = queue.back();
        queue.pop_back();

        if (pruned[i]) {
            nodes[i].perf = 0;
        } else {
            nodes[i].perf = eval(nodes[i]);
            ++evaluated;
            if (nodes[i].perf < minPerf)
                pruned[i] = true;
        }

        for (std::size_t up : covers[i]) {
            if (pruned[i])
                pruned[up] = true;
            if (--pendingBelow[up] == 0)
                queue.push_back(up);
        }
    }
    return evaluated;
}

std::string
SafetyPoset::toDot(double minPerf) const
{
    std::vector<std::size_t> best = safestWithin(minPerf);
    std::ostringstream oss;
    oss << "digraph safety {\n    rankdir=BT;\n";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        bool starred =
            std::find(best.begin(), best.end(), i) != best.end();
        oss << "    n" << i << " [label=\"" << nodes[i].label << "\\n"
            << static_cast<std::uint64_t>(nodes[i].perf);
        // Audit-score axis: nodes carrying a static boundary-audit
        // score show it next to perf (lower = cleaner boundaries).
        if (nodes[i].auditScore >= 0)
            oss << "\\naudit=" << nodes[i].auditScore;
        oss << "\""
            << (starred ? ", shape=star, style=filled, fillcolor=green"
                : nodes[i].perf < minPerf ? ", style=dashed" : "")
            << "];\n";
    }
    for (std::size_t i = 0; i < nodes.size(); ++i)
        for (std::size_t up : covers[i])
            oss << "    n" << i << " -> n" << up << ";\n";
    oss << "}\n";
    return oss.str();
}

} // namespace flexos
