/**
 * @file
 * Isolation backend implementations (paper sections 4.1-4.3) plus the
 * baseline mechanisms used by the Figure 10 comparison.
 *
 * - None: single protection domain; gates are plain calls.
 * - MPK: inline gates that swap the PKRU (light flavour) and
 *   additionally save/zero registers and switch the per-compartment
 *   stack (DSS flavour).
 * - EPT: one "VM" per compartment with a pool of RPC server threads;
 *   gates marshal a request into a shared ring and block the caller.
 * - CHERI: a sketch backend (paper 4.3) — CInvoke-style inline domain
 *   transitions with sentry-capability entry checks.
 * - LinuxPt / Sel4Ipc / CubicleMpk: baseline crossing-cost regimes.
 */

#include "core/backend.hh"

#include <algorithm>
#include <deque>
#include <exception>

#include "base/logging.hh"
#include "core/image.hh"

namespace flexos {

namespace {

/**
 * Whether a compartment's boundary is enforced by backend `be` — in a
 * mixed-mechanism image each backend boots/tears down only the
 * compartments declaring its mechanism.
 */
bool
ownsCompartment(const IsolationBackend &be, Image &img, std::size_t i)
{
    return img.compartmentAt(i).spec.mechanism == be.mechanism();
}

/**
 * RAII domain transition used by all inline (non-RPC) gates: installs
 * the target compartment's PKRU, VM token, compartment id and work
 * multiplier, restoring the caller's on scope exit (also on
 * exceptions, which is how ProtectionFault and hardening violations
 * unwind through gates).
 */
class DomainTransition
{
  public:
    DomainTransition(Image &img, int to, double workMult)
        : mach(img.machine()), thread(img.scheduler().current()),
          savedPkru(mach.pkru), savedVm(mach.currentVm),
          savedMult(mach.workMultiplier),
          savedComp(thread ? thread->currentCompartment : 0)
    {
        Compartment &c = img.compartmentAt(static_cast<std::size_t>(to));
        mach.pkru = c.domain;
        // VM-private (EPT) compartments are unmapped outside their VM:
        // executing there makes only that VM's memory reachable.
        mach.currentVm = c.vmPrivate ? to : -1;
        mach.workMultiplier = workMult;
        if (thread)
            thread->currentCompartment = to;
    }

    ~DomainTransition()
    {
        mach.pkru = savedPkru;
        mach.currentVm = savedVm;
        mach.workMultiplier = savedMult;
        if (thread)
            thread->currentCompartment = savedComp;
    }

    DomainTransition(const DomainTransition &) = delete;
    DomainTransition &operator=(const DomainTransition &) = delete;

  private:
    Machine &mach;
    Thread *thread;
    Pkru savedPkru;
    int savedVm;
    double savedMult;
    int savedComp;
};

/**
 * RAII return-leg gate charge. Crossings are charged in two halves —
 * the entry sequence up front, the return sequence when the callee
 * hands control back — so per-direction policy (scrub_return,
 * validate_return) attaches to the right half. Charged from a
 * destructor so an exception unwinding through the gate still pays
 * the return transition (it re-enters the caller's domain the same
 * way), keeping the aggregate round-trip numbers in timing.hh exact.
 *
 * Declare *before* DomainTransition: the return leg must be charged
 * after the transition restores the caller's work multiplier, which
 * is the multiplier the entry leg was charged under.
 */
class ReturnCharge
{
  public:
    /**
     * `scrub` is the *functional* half of the return-side register
     * save/zero: when the policy keeps it, the callee's leavings in
     * the machine's scratch file are wiped before the caller resumes;
     * a policy (or elision streak) that waives the scrub leaves them
     * readable — the register side channel the adversary measures.
     */
    ReturnCharge(Machine &m, Cycles c, bool scrub = false)
        : mach(m), cost(c), doScrub(scrub)
    {
    }

    ~ReturnCharge()
    {
        mach.consume(cost);
        if (doScrub)
            mach.scrubScratch();
    }

    ReturnCharge(const ReturnCharge &) = delete;
    ReturnCharge &operator=(const ReturnCharge &) = delete;

  private:
    Machine &mach;
    Cycles cost;
    bool doScrub;
};

/** Single-domain backend: everything is one compartment. */
class NoneBackend : public IsolationBackend
{
  public:
    Mechanism mechanism() const override { return Mechanism::None; }
    const char *name() const override { return "none"; }

    void
    boot(Image &img) override
    {
        // One protection domain: each unisolated compartment's PKRU
        // allows all. Other compartments (mixed image) keep theirs.
        for (std::size_t i = 0; i < img.compartmentCount(); ++i)
            if (ownsCompartment(*this, img, i))
                img.compartmentAt(i).domain = Pkru(Pkru::allowAllValue);
    }

    void shutdown(Image &) override {}

    void
    crossCall(Image &img, int from, int to, const GatePolicy &,
              const std::string &, const char *, double workMult,
              const std::function<void()> &body) override
    {
        // No isolation: the "gate" is the function call itself.
        auto &m = img.machine();
        m.consume(m.timing.functionCall);
        m.bump("gate.none");
        img.noteCrossing(from, to);
        DomainTransition dt(img, to, workMult);
        body();
    }
};

/**
 * Intel MPK backend (paper 4.1). Flavour-agnostic: each crossing's
 * GatePolicy picks the light (ERIM-style) or DSS (HODOR-style) gate,
 * so one image can run both flavours on different boundaries.
 */
class MpkBackend : public IsolationBackend
{
  public:
    Mechanism mechanism() const override { return Mechanism::IntelMpk; }
    const char *name() const override { return "intel-mpk"; }

    void
    boot(Image &img) override
    {
        // The key budget binds only the compartments this backend
        // enforces; EPT/none compartments in a mixed image don't
        // consume protection keys at the boundary.
        std::size_t mpkComps = 0;
        for (std::size_t i = 0; i < img.compartmentCount(); ++i)
            if (ownsCompartment(*this, img, i))
                ++mpkComps;
        fatal_if(mpkComps > numProtKeys - 1,
                 "MPK supports at most ", numProtKeys - 1,
                 " compartments (one key is reserved for the shared "
                 "domain)");
    }

    void shutdown(Image &) override {}

    void
    crossCall(Image &img, int from, int to, const GatePolicy &policy,
              const std::string &, const char *, double workMult,
              const std::function<void()> &body) override
    {
        auto &m = img.machine();
        Cycles returnCost = 0;
        if (policy.flavor == MpkGateFlavor::Light) {
            // ERIM-style: wrpkru pair around a normal call; stack and
            // register set are shared with the callee (nothing to
            // scrub on return). Entry leg is the first wrpkru + call;
            // the second wrpkru + return is charged on the way back.
            // The callee's sim stack (used by any DssFrame it opens)
            // still follows this boundary's stack-sharing policy.
            m.consume(m.timing.mpkLightGate - m.timing.mpkLightReturn);
            returnCost = m.timing.mpkLightReturn;
            m.bump("gate.mpk.light");
            Thread *t = img.scheduler().current();
            if (t)
                img.simStackFor(t->id(), to, policy.stackSharing);
        } else {
            // HODOR-style full gate: save+zero the register set, switch
            // thread permissions, switch to the compartment's stack via
            // the per-thread stack registry (and back on return). An
            // asymmetric policy can waive the return-side scrub (e.g.
            // returns into the caller's own VM re-enter trusted state),
            // saving the register save/zero on the way back.
            m.consume(m.timing.mpkDssGate - m.timing.mpkDssReturn);
            returnCost = m.timing.mpkDssReturn;
            if (!policy.scrubReturn) {
                returnCost -=
                    std::min(returnCost, m.timing.registerSaveZero);
                m.bump("gate.mpk.dss.noscrub");
            }
            m.bump("gate.mpk.dss");
            // The entry-side register save/zero: the callee starts
            // from a clean scratch file (the light gate shares it).
            m.scrubScratch();
            // Touch the per-thread compartment stack registry so the
            // target stack exists (the functional stack switch), laid
            // out under this boundary's stack-sharing policy.
            Thread *t = img.scheduler().current();
            if (t)
                img.simStackFor(t->id(), to, policy.stackSharing);
        }
        img.noteCrossing(from, to);
        ReturnCharge rc(m, returnCost,
                        policy.flavor != MpkGateFlavor::Light &&
                            policy.scrubReturn);
        DomainTransition dt(img, to, workMult);
        body();
    }

    void
    crossCallBatch(Image &img, int from, int to,
                   const GatePolicy &policy, const std::string &,
                   const char *, double workMult,
                   const std::function<void()> *bodies,
                   std::size_t count) override
    {
        // One entry/return leg for the whole vector: the PKRU switch,
        // register save/zero and stack switch are paid once, each
        // extra call only its slot-dispatch cost. The bodies run
        // back-to-back inside the callee domain.
        auto &m = img.machine();
        Cycles returnCost = 0;
        if (policy.flavor == MpkGateFlavor::Light) {
            m.consume(m.timing.mpkLightGate - m.timing.mpkLightReturn);
            returnCost = m.timing.mpkLightReturn;
            m.bump("gate.mpk.light");
        } else {
            m.consume(m.timing.mpkDssGate - m.timing.mpkDssReturn);
            returnCost = m.timing.mpkDssReturn;
            if (!policy.scrubReturn) {
                returnCost -=
                    std::min(returnCost, m.timing.registerSaveZero);
                m.bump("gate.mpk.dss.noscrub");
            }
            m.bump("gate.mpk.dss");
            m.scrubScratch();
        }
        if (count > 1)
            m.consume(static_cast<Cycles>(count - 1) *
                      m.timing.batchSlot);
        Thread *t = img.scheduler().current();
        if (t)
            img.simStackFor(t->id(), to, policy.stackSharing);
        for (std::size_t i = 0; i < count; ++i)
            img.noteCrossing(from, to);
        ReturnCharge rc(m, returnCost,
                        policy.flavor != MpkGateFlavor::Light &&
                            policy.scrubReturn);
        DomainTransition dt(img, to, workMult);
        for (std::size_t i = 0; i < count; ++i)
            bodies[i]();
    }
};

/** EPT backend: one VM per compartment, RPC gates (paper 4.2). */
class EptBackend : public IsolationBackend
{
  public:
    /** Elastic pool cap: a shard never grows past this many servers. */
    static constexpr int maxServersPerVm = 8;

    /**
     * Idle grace before an elastic server retires (virtual ns): long
     * enough to ride out RPC bursts, short enough that a drained
     * boundary returns to its base pool size.
     */
    static constexpr std::uint64_t elasticRetireNs = 1'000'000;

    Mechanism mechanism() const override { return Mechanism::VmEpt; }
    const char *name() const override { return "vm-ept"; }
    bool checksEntryPoints() const override { return true; }
    bool replicatesTcb() const override { return true; }

    void
    boot(Image &img) override
    {
        stopping = false;
        vms.clear();
        // Slots are indexed by compartment id, but only EPT
        // compartments become VMs with an RPC server pool; in a mixed
        // image the other compartments' slots stay empty (no crossing
        // is ever routed here for them).
        vms.resize(img.compartmentCount());
        Scheduler &sched = img.scheduler();
        // One shard per core: ring, idle queue and server pool are
        // core-local, so two cores crossing into the same VM never
        // contend on one ring. Callers enqueue on their own core's
        // shard; servers are pinned to their shard's core.
        std::size_t shardCount = img.machine().coreCount();

        for (std::size_t vmId = 0; vmId < vms.size(); ++vmId) {
            if (!ownsCompartment(*this, img, vmId))
                continue;
            auto &vm = vms[vmId];
            vm.shards.resize(shardCount);
            for (auto &sh : vm.shards)
                sh.serverIdle = std::make_unique<WaitQueue>(sched);
            // Base pool size is the compartment's `servers:` knob,
            // dealt round-robin across the shards; each shard grows
            // elastically under load (blocked RPC bodies — socket
            // waits — would otherwise occupy the whole pool).
            int base = img.compartmentAt(vmId).spec.servers;
            for (int s = 0; s < base; ++s)
                spawnServer(img, vmId,
                            static_cast<std::size_t>(s) % shardCount,
                            /*elastic=*/false);
        }
    }

    void
    shutdown(Image &img) override
    {
        stopping = true;
        for (auto &vm : vms)
            for (auto &sh : vm.shards)
                if (sh.serverIdle)
                    sh.serverIdle->wakeAll();
        // Let the servers observe the flag and exit; other long-running
        // threads (e.g. net pollers) may keep yielding meanwhile.
        img.scheduler().runUntil(
            [this] {
                for (Thread *t : serverThreads)
                    if (t->state() != Thread::State::Finished)
                        return false;
                return true;
            },
            1'000'000);
        // A server can still be live here: blocked inside a long RPC
        // body (e.g. a recv() that will never complete). Destroying
        // vms underneath it would free the rings and WaitQueues its
        // frames reference — use-after-free on its next step. Unwind
        // stragglers via the cancellation path instead: the throw in
        // the body is converted to the RPC's error, the caller is
        // woken, and the server exits its loop.
        std::uint64_t cancels = 0;
        for (Thread *t : serverThreads) {
            if (t->state() != Thread::State::Finished) {
                img.scheduler().cancel(t);
                ++cancels;
            }
        }
        if (cancels)
            img.machine().bump("gate.ept.shutdownCancels", cancels);
        // RPCs still queued in a ring (all servers were busy or
        // cancelled) would leave their callers blocked on doneWait
        // forever: fail each one and wake its caller before the rings
        // are destroyed. The callers observe the cancellation and
        // unwind.
        std::uint64_t drained = 0;
        for (auto &vm : vms) {
            for (auto &sh : vm.shards) {
                while (!sh.ring.empty()) {
                    Rpc *rpc = sh.ring.front();
                    sh.ring.pop_front();
                    rpc->error =
                        std::make_exception_ptr(ThreadCancelled{});
                    rpc->done = true;
                    rpc->doneWait->wakeAll();
                    ++drained;
                }
            }
        }
        if (drained)
            img.machine().bump("gate.ept.shutdownDrained", drained);
        serverThreads.clear();
        vms.clear();
    }

    void
    crossCall(Image &img, int from, int to, const GatePolicy &policy,
              const std::string &calleeLib, const char *fnName,
              double workMult, const std::function<void()> &body) override
    {
        submit(img, from, to, policy, calleeLib, fnName, workMult,
               &body, 1);
    }

    void
    crossCallBatch(Image &img, int from, int to,
                   const GatePolicy &policy,
                   const std::string &calleeLib, const char *fnName,
                   double workMult, const std::function<void()> *bodies,
                   std::size_t count) override
    {
        // One ring slot and one doorbell carry the whole vector; the
        // caller blocks once for all the calls and the server walks
        // the slot's body list in order.
        submit(img, from, to, policy, calleeLib, fnName, workMult,
               bodies, count);
    }

    ForgedRpcOutcome
    injectForgedRpc(Image &img, int to, const std::string &calleeLib,
                    const char *fnName,
                    const std::function<void()> &body) override
    {
        auto &m = img.machine();
        if (to < 0 || static_cast<std::size_t>(to) >= vms.size() ||
            vms[static_cast<std::size_t>(to)].shards.empty())
            return ForgedRpcOutcome::NoRing;
        Scheduler &sched = img.scheduler();
        panic_if(!sched.current(),
                 "forged RPC injection requires a thread context");
        auto &vm = vms[static_cast<std::size_t>(to)];
        auto &sh =
            vm.shards[static_cast<std::size_t>(m.activeCore()) %
                      vm.shards.size()];

        // A compromised compartment writing the shared ring memory:
        // the slot lands behind every caller-side gate check (deny,
        // rate, checkEntry) — only the server's own re-validation
        // stands between it and the VM.
        bool executed = false;
        std::function<void()> probe = [&] {
            executed = true;
            body();
        };
        Rpc rpc;
        rpc.bodies = &probe;
        rpc.count = 1;
        rpc.calleeLib = &calleeLib;
        rpc.fnName = fnName;
        WaitQueue doneWait(sched);
        rpc.doneWait = &doneWait;
        sh.ring.push_back(&rpc);
        m.bump("gate.ept.forgedRpcs");
        sh.serverIdle->wakeOne();
        sh.lastDoorbell = m.cycles();
        while (!rpc.done)
            doneWait.wait();
        // The slot's error (CfiViolation on rejection, or whatever the
        // payload raised) is absorbed: the adversary reads an outcome,
        // not an exception.
        if (executed)
            return ForgedRpcOutcome::Executed;
        m.bump("gate.ept.forgedRejected");
        return ForgedRpcOutcome::Rejected;
    }

    bool
    injectSpuriousDoorbell(Image &img, int to) override
    {
        auto &m = img.machine();
        if (to < 0 || static_cast<std::size_t>(to) >= vms.size() ||
            vms[static_cast<std::size_t>(to)].shards.empty())
            return false;
        auto &vm = vms[static_cast<std::size_t>(to)];
        auto &sh =
            vm.shards[static_cast<std::size_t>(m.activeCore()) %
                      vm.shards.size()];
        // A replayed interrupt with no slot behind it: the woken
        // server observes an empty ring and re-idles (counted so the
        // scorecard can assert the wake was absorbed, not serviced).
        m.bump("gate.ept.spuriousDoorbells");
        sh.serverIdle->wakeOne();
        return true;
    }

    void
    policyChanged(Image &img) override
    {
        // The server pool is sized to demand; demand is bounded by the
        // inbound edges' rate budgets. After a swap that throttles a
        // VM's inbound edges, elastic servers grown for the old (open)
        // regime would idle out only after their full retirement
        // grace. Flag the shard for fast retirement and wake them: a
        // woken elastic server that finds its ring empty under the
        // tightened budget retires immediately instead of re-arming
        // its grace timer.
        auto &m = img.machine();
        int n = static_cast<int>(img.compartmentCount());
        for (int vmId = 0; vmId < n; ++vmId) {
            auto &vm = vms[static_cast<std::size_t>(vmId)];
            if (vm.shards.empty())
                continue;
            bool throttledInbound = false;
            for (int from = 0; from < n; ++from)
                if (from != vmId && img.policyFor(from, vmId).rate)
                    throttledInbound = true;
            if (!throttledInbound)
                continue;
            std::size_t woken = 0;
            for (auto &sh : vm.shards) {
                int base =
                    img.compartmentAt(static_cast<std::size_t>(vmId))
                        .spec.servers;
                if (static_cast<int>(sh.pool.size()) > base) {
                    sh.fastRetire = true;
                    woken += sh.serverIdle->wakeAll();
                }
            }
            if (woken)
                m.bump("gate.ept.policyResizes", woken);
        }
    }

  private:
    void
    submit(Image &img, int from, int to, const GatePolicy &policy,
           const std::string &calleeLib, const char *fnName,
           double workMult, const std::function<void()> *bodies,
           std::size_t count)
    {
        auto &m = img.machine();
        Scheduler &sched = img.scheduler();
        Thread *caller = sched.current();
        panic_if(!caller, "EPT RPC gate requires a thread context");

        auto &vm = vms[static_cast<std::size_t>(to)];
        panic_if(vm.shards.empty(),
                 "EPT RPC routed to a compartment without a VM");
        // Core-local shard: the caller enqueues on its own core's
        // ring, so concurrent crossings from different cores into the
        // same VM proceed independently.
        auto &sh =
            vm.shards[static_cast<std::size_t>(m.activeCore()) %
                      vm.shards.size()];

        // Doorbell coalescing under back-pressure (`coalesce:` key):
        // a submission that finds requests already queued within the
        // window of the last doorbell skips the ring notify — the
        // earlier doorbell's server is still draining this ring and
        // will reach the new slot (entries are only queued behind a
        // rung doorbell, so the chain never strands a request).
        bool coalesced = policy.coalesce && !sh.ring.empty() &&
                         m.cycles() - sh.lastDoorbell <= policy.coalesce;

        // Caller side: place the "function pointer" and arguments in
        // the predefined shared area (paper 4.2) and wait. The entry
        // leg is the request marshalling + doorbell; the response
        // unmarshalling is charged when the RPC completes (also when
        // it completes by raising — the error unwinds back through
        // the same shared area). A policy waiving the return-side
        // scrub skips the register save/zero the caller would
        // otherwise redo when the RPC completes. A batched submission
        // marshals each extra call into the next slot of the same
        // request for a per-slot cost.
        Cycles entryCost = m.timing.eptGate - m.timing.eptReturn;
        if (count > 1)
            entryCost += static_cast<Cycles>(count - 1) *
                         m.timing.batchSlot;
        if (coalesced) {
            entryCost -= std::min(entryCost, m.timing.eptDoorbell);
            m.bump("gate.coalesced");
        }
        m.consume(entryCost);
        Cycles returnCost = m.timing.eptReturn;
        if (!policy.scrubReturn) {
            returnCost -= std::min(returnCost, m.timing.registerSaveZero);
            m.bump("gate.ept.noscrub");
        }
        m.bump("gate.ept");
        for (std::size_t i = 0; i < count; ++i)
            img.noteCrossing(from, to);
        ReturnCharge rc(m, returnCost, policy.scrubReturn);

        Rpc rpc;
        rpc.bodies = bodies;
        rpc.count = count;
        rpc.calleeLib = &calleeLib;
        rpc.fnName = fnName;
        rpc.workMult = workMult;
        rpc.stackSharing = policy.stackSharing;
        WaitQueue doneWait(sched);
        rpc.doneWait = &doneWait;

        sh.ring.push_back(&rpc);
        // Ring-depth high-water mark: the deepest any shard's request
        // ring ever got (pool pressure; ROADMAP "EPT server pool
        // sizing"). The machine counter tracks the max across VMs and
        // survives reboots, so it only ratchets upward.
        if (sh.ring.size() > sh.ringHighWater) {
            sh.ringHighWater = sh.ring.size();
            std::uint64_t cur = m.counter("gate.ept.ringDepth");
            if (sh.ringHighWater > cur)
                m.bump("gate.ept.ringDepth", sh.ringHighWater - cur);
        }
        // Elastic growth: if every server in the shard is busy
        // (running or blocked inside an RPC body) and requests are
        // queueing, add a server up to the cap so blocked bodies
        // can't starve the boundary.
        int idle = static_cast<int>(sh.pool.size()) - sh.busy;
        if (static_cast<int>(sh.ring.size()) > idle &&
            static_cast<int>(sh.pool.size()) < poolCap(img, to)) {
            spawnServer(img, static_cast<std::size_t>(to),
                        static_cast<std::size_t>(m.activeCore()) %
                            vm.shards.size(),
                        /*elastic=*/true);
            m.bump("gate.ept.elasticSpawns");
        }
        if (!coalesced) {
            sh.serverIdle->wakeOne();
            sh.lastDoorbell = m.cycles();
        }

        while (!rpc.done)
            doneWait.wait();
        if (rpc.error)
            std::rethrow_exception(rpc.error);
    }

    struct Rpc
    {
        /** The calls this slot carries: `count` bodies, run in order
         *  (one for a plain crossing, the whole vector for a batch). */
        const std::function<void()> *bodies = nullptr;
        std::size_t count = 1;
        const std::string *calleeLib = nullptr;
        const char *fnName = nullptr;
        double workMult = 1.0;
        /** The crossing boundary's stack-sharing policy: governs the
         *  layout of the server thread's stack in the VM. */
        StackSharing stackSharing = StackSharing::Dss;
        bool done = false;
        std::exception_ptr error;
        WaitQueue *doneWait = nullptr;
    };

    /** One core's slice of a VM's RPC machinery. */
    struct Shard
    {
        std::deque<Rpc *> ring; ///< the shared-memory request ring
        std::unique_ptr<WaitQueue> serverIdle;
        std::vector<Thread *> pool; ///< this shard's server threads
        int busy = 0;               ///< servers inside an RPC body
        std::size_t ringHighWater = 0;
        /** When this shard's doorbell last rang (coalescing window). */
        Cycles lastDoorbell = 0;
        /** A policy swap throttled this VM's inbound edges: elastic
         *  servers retire on their first idle observation instead of
         *  riding out the full grace period. */
        bool fastRetire = false;
    };

    struct Vm
    {
        /** Core-sharded rings/pools; indexed by the caller's core. */
        std::vector<Shard> shards;
    };

    /** Per-shard elastic ceiling: at least the configured base size. */
    int
    poolCap(Image &img, int vmId)
    {
        return std::max(
            img.compartmentAt(static_cast<std::size_t>(vmId))
                .spec.servers,
            maxServersPerVm);
    }

    void
    spawnServer(Image &img, std::size_t vmId, std::size_t shardIdx,
                bool elastic)
    {
        Scheduler &sched = img.scheduler();
        auto &vm = vms[vmId];
        auto &sh = vm.shards[shardIdx];
        std::string name = "ept-vm" + std::to_string(vmId);
        if (vm.shards.size() > 1)
            name += "-c" + std::to_string(shardIdx);
        name += "-rpc" + std::to_string(sh.pool.size());
        // Pinned to the shard's core: the server must drain the ring
        // its callers fill, and the work-stealer must not migrate it.
        Thread *t = sched.spawnOn(
            static_cast<int>(shardIdx), std::move(name),
            [this, &img, vmId, shardIdx, elastic] {
                serverLoop(img, vmId, shardIdx, elastic);
            });
        t->currentCompartment = static_cast<int>(vmId);
        t->pkru = img.compartmentAt(vmId).domain;
        // Server threads execute inside the VM: its private (keyless)
        // memory is mapped for them and nothing else's.
        t->vm = static_cast<int>(vmId);
        sh.pool.push_back(t);
        serverThreads.push_back(t);
    }

    void
    serverLoop(Image &img, std::size_t vmId, std::size_t shardIdx,
               bool elastic)
    {
        auto &m = img.machine();
        auto &sh = vms[vmId].shards[shardIdx];
        while (!stopping) {
            if (sh.ring.empty()) {
                // Busy-wait in the paper; cooperatively idle here (the
                // MONITOR/MWAIT variant it also describes). Elastic
                // servers idle with a deadline: one that sees no work
                // for the grace period retires, shrinking the pool
                // back towards its configured base size.
                if (elastic) {
                    bool woken = img.scheduler().blockFor(
                        *sh.serverIdle, elasticRetireNs);
                    if ((!woken || sh.fastRetire) && sh.ring.empty() &&
                        !stopping) {
                        auto &pool = sh.pool;
                        pool.erase(std::remove(pool.begin(), pool.end(),
                                               img.scheduler().current()),
                                   pool.end());
                        if (static_cast<int>(pool.size()) <=
                            img.compartmentAt(vmId).spec.servers)
                            sh.fastRetire = false;
                        m.bump("gate.ept.elasticRetires");
                        return;
                    }
                } else {
                    sh.serverIdle->wait();
                }
                continue;
            }
            Rpc *rpc = sh.ring.front();
            sh.ring.pop_front();

            // The RPC server checks the function is a legal API entry
            // point before executing it (paper 4.2). Image::checkEntry
            // validated against the registry; re-validate defensively.
            if (!img.registry().isEntryPoint(*rpc->calleeLib,
                                             rpc->fnName)) {
                rpc->error = std::make_exception_ptr(CfiViolation(
                    std::string("EPT RPC to illegal entry point ") +
                    *rpc->calleeLib + "." + rpc->fnName));
            } else {
                m.consume(m.timing.pollDispatch);
                // Entering the VM: the server dispatches from a clean
                // register file (the entry half of the RPC marshal).
                m.scrubScratch();
                // The server thread's stack in the VM follows the
                // crossing boundary's stack-sharing policy (frames
                // the RPC body opens resolve to it).
                Thread *self = img.scheduler().current();
                if (self)
                    img.simStackFor(self->id(),
                                    static_cast<int>(vmId),
                                    rpc->stackSharing);
                ++sh.busy;
                try {
                    WorkMultGuard guard(m, rpc->workMult);
                    // A batched slot carries several calls, run in
                    // order under one dispatch (the per-slot cost was
                    // charged by the submitter). An exception from
                    // any body aborts the rest of the batch and
                    // travels back as the slot's single error.
                    for (std::size_t i = 0; i < rpc->count; ++i)
                        rpc->bodies[i]();
                } catch (...) {
                    rpc->error = std::current_exception();
                }
                --sh.busy;
            }
            rpc->done = true;
            rpc->doneWait->wakeAll();
        }
    }

    std::vector<Vm> vms;
    std::vector<Thread *> serverThreads;
    bool stopping = false;
};

/**
 * CHERI sketch backend (paper 4.3): CInvoke-style inline transitions
 * with sentry-capability entry enforcement. Cost modelled as the full
 * MPK gate (register + capability save/clear dominate, as in 4.3's
 * description); no published latency exists to calibrate against.
 */
class CheriBackend : public IsolationBackend
{
  public:
    Mechanism mechanism() const override { return Mechanism::Cheri; }
    const char *name() const override { return "cheri(sketch)"; }
    bool checksEntryPoints() const override { return true; }

    void boot(Image &) override {}
    void shutdown(Image &) override {}

    void
    crossCall(Image &img, int from, int to, const GatePolicy &policy,
              const std::string &, const char *, double workMult,
              const std::function<void()> &body) override
    {
        auto &m = img.machine();
        // Capability + register clear dominates; the return-side clear
        // can be waived by an asymmetric policy like the MPK gate's.
        // Entry leg carries the extra capability save; the return leg
        // mirrors the full MPK gate's.
        m.consume(m.timing.registerSaveZero +
                  (m.timing.mpkDssGate - m.timing.mpkDssReturn));
        Cycles returnCost = m.timing.mpkDssReturn;
        if (!policy.scrubReturn)
            returnCost -= std::min(returnCost, m.timing.registerSaveZero);
        m.bump("gate.cheri");
        m.scrubScratch();
        // The callee's sim stack follows this boundary's
        // stack-sharing policy, as on the MPK gates.
        Thread *t = img.scheduler().current();
        if (t)
            img.simStackFor(t->id(), to, policy.stackSharing);
        img.noteCrossing(from, to);
        ReturnCharge rc(m, returnCost, policy.scrubReturn);
        DomainTransition dt(img, to, workMult);
        body();
    }

    void
    crossCallBatch(Image &img, int from, int to,
                   const GatePolicy &policy, const std::string &,
                   const char *, double workMult,
                   const std::function<void()> *bodies,
                   std::size_t count) override
    {
        // One CInvoke entry and one return-side clear for the whole
        // vector, each extra call paying only the slot-dispatch cost
        // (the sentry check covers the shared entry point once).
        auto &m = img.machine();
        m.consume(m.timing.registerSaveZero +
                  (m.timing.mpkDssGate - m.timing.mpkDssReturn));
        Cycles returnCost = m.timing.mpkDssReturn;
        if (!policy.scrubReturn)
            returnCost -= std::min(returnCost, m.timing.registerSaveZero);
        m.bump("gate.cheri");
        m.scrubScratch();
        if (count > 1)
            m.consume(static_cast<Cycles>(count - 1) *
                      m.timing.batchSlot);
        Thread *t = img.scheduler().current();
        if (t)
            img.simStackFor(t->id(), to, policy.stackSharing);
        for (std::size_t i = 0; i < count; ++i)
            img.noteCrossing(from, to);
        ReturnCharge rc(m, returnCost, policy.scrubReturn);
        DomainTransition dt(img, to, workMult);
        for (std::size_t i = 0; i < count; ++i)
            bodies[i]();
    }
};

/** Baseline: page-table isolation via Linux syscalls (Figure 10 PT2). */
class LinuxPtBackend : public IsolationBackend
{
  public:
    explicit LinuxPtBackend(bool kpti = true) : kpti(kpti) {}

    Mechanism mechanism() const override { return Mechanism::LinuxPt; }
    const char *name() const override { return "linux-pt"; }

    void boot(Image &) override {}
    void shutdown(Image &) override {}

    void
    crossCall(Image &img, int from, int to, const GatePolicy &,
              const std::string &, const char *, double workMult,
              const std::function<void()> &body) override
    {
        auto &m = img.machine();
        m.consume(kpti ? m.timing.syscallKpti : m.timing.syscallNoKpti);
        m.bump("gate.syscall");
        img.noteCrossing(from, to);
        // The kernel return path sanitizes the scratch registers, as
        // on a real syscall boundary.
        ReturnCharge rc(m, 0, /*scrub=*/true);
        DomainTransition dt(img, to, workMult);
        body();
    }

  private:
    bool kpti;
};

/** Baseline: seL4/Genode microkernel IPC (Figure 10 PT3). */
class Sel4IpcBackend : public IsolationBackend
{
  public:
    Mechanism mechanism() const override { return Mechanism::Sel4Ipc; }
    const char *name() const override { return "sel4-ipc"; }
    bool checksEntryPoints() const override { return true; }

    void boot(Image &) override {}
    void shutdown(Image &) override {}

    void
    crossCall(Image &img, int from, int to, const GatePolicy &,
              const std::string &, const char *, double workMult,
              const std::function<void()> &body) override
    {
        auto &m = img.machine();
        m.consume(m.timing.sel4Ipc);
        m.bump("gate.sel4ipc");
        img.noteCrossing(from, to);
        // IPC replies carry only the message registers; everything
        // else comes back zeroed.
        ReturnCharge rc(m, 0, /*scrub=*/true);
        DomainTransition dt(img, to, workMult);
        body();
    }
};

/**
 * Baseline: CubicleOS — MPK emulated with pkey_mprotect syscalls from
 * linuxu plus the trap-and-map shared-window mechanism (paper 6.4: the
 * transitions are orders of magnitude more expensive than real MPK
 * gates, and every newly touched shared object faults once).
 */
class CubicleMpkBackend : public IsolationBackend
{
  public:
    Mechanism mechanism() const override { return Mechanism::CubicleMpk; }
    const char *name() const override { return "cubicle-mpk"; }

    void boot(Image &) override { callCount = 0; }
    void shutdown(Image &) override {}

    void
    crossCall(Image &img, int from, int to, const GatePolicy &,
              const std::string &, const char *, double workMult,
              const std::function<void()> &body) override
    {
        auto &m = img.machine();
        // Two pkey_mprotect syscalls per transition (open + close the
        // window); every other crossing touches a not-yet-mapped shared
        // object and takes the trap-and-map fault.
        m.consume(2 * m.timing.pkeyMprotect);
        if (++callCount % 2 == 0)
            m.consume(m.timing.trapAndMapFault);
        m.bump("gate.cubicle");
        img.noteCrossing(from, to);
        DomainTransition dt(img, to, workMult);
        body();
    }

  private:
    std::uint64_t callCount = 0;
};

} // namespace

std::unique_ptr<IsolationBackend>
makeBackend(Mechanism m)
{
    switch (m) {
      case Mechanism::None:
        return std::make_unique<NoneBackend>();
      case Mechanism::IntelMpk:
        return std::make_unique<MpkBackend>();
      case Mechanism::VmEpt:
        return std::make_unique<EptBackend>();
      case Mechanism::Cheri:
        return std::make_unique<CheriBackend>();
      case Mechanism::LinuxPt:
        return std::make_unique<LinuxPtBackend>();
      case Mechanism::Sel4Ipc:
        return std::make_unique<Sel4IpcBackend>();
      case Mechanism::CubicleMpk:
        return std::make_unique<CubicleMpkBackend>();
    }
    fatal("unhandled mechanism");
}

} // namespace flexos
