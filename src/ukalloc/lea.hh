/**
 * @file
 * Lea-style allocator (dlmalloc family) — the allocator CubicleOS links
 * (paper 6.4, which observes it beats TLSF on the SQLite workload).
 *
 * Boundary-tag chunks with PINUSE/CINUSE bits, 64 exact-fit small bins
 * with a bin bitmap, a sorted large-chunk list, a designated-victim chunk
 * (the remainder of the most recent split, tried first), and a wilderness
 * "top" chunk. The designated victim gives very cheap repeated same-size
 * alloc/free cycles, which is exactly the SQLite pattern.
 */

#ifndef FLEXOS_UKALLOC_LEA_HH
#define FLEXOS_UKALLOC_LEA_HH

#include <cstdint>
#include <memory>

#include "ukalloc/allocator.hh"

namespace flexos {

/**
 * dlmalloc-style allocator over a fixed arena.
 */
class LeaAllocator : public Allocator
{
  public:
    explicit LeaAllocator(std::size_t arenaSize);
    LeaAllocator(void *arena, std::size_t arenaSize);
    ~LeaAllocator() override;

    void *alloc(std::size_t size) override;
    void free(void *p) override;
    std::size_t blockSize(const void *p) const override;
    const char *name() const override { return "lea"; }

    void *arenaBase() const { return arena; }
    std::size_t arenaSize() const { return arenaBytes; }

    /** Walk the heap checking invariants; panics on corruption. */
    void checkConsistency() const;

  private:
    struct Chunk;

    static constexpr unsigned smallBinCount = 64;
    static constexpr std::size_t minChunkSize = 32;
    static constexpr std::size_t maxSmallSize =
        minChunkSize + (smallBinCount - 1) * allocAlign;

    void init();
    unsigned binIndex(std::size_t chunkSize) const;
    void insertChunk(Chunk *c, std::uint64_t &steps);
    void unlinkChunk(Chunk *c, std::uint64_t &steps);
    void *finishAlloc(Chunk *c, std::size_t need, std::uint64_t &steps);
    void setFooter(Chunk *c);

    std::unique_ptr<char[]> owned;
    char *arena = nullptr;
    std::size_t arenaBytes = 0;

    std::uint64_t binMap = 0;
    Chunk *bins[smallBinCount] = {};
    Chunk *largeHead = nullptr; ///< sorted ascending by size
    Chunk *dv = nullptr;        ///< designated victim
    Chunk *top = nullptr;       ///< wilderness chunk
};

} // namespace flexos

#endif // FLEXOS_UKALLOC_LEA_HH
