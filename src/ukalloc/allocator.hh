/**
 * @file
 * Allocator interface for compartment heaps.
 *
 * Every compartment owns at least one allocator instance over a private
 * arena; one more instance serves the shared heap (paper 4.1). Allocators
 * charge their *actual* internal work (search/split/coalesce steps) to the
 * virtual clock, so allocator-behaviour differences between systems (e.g.
 * TLSF vs. the Lea allocator, paper 6.4) emerge from the implementations.
 */

#ifndef FLEXOS_UKALLOC_ALLOCATOR_HH
#define FLEXOS_UKALLOC_ALLOCATOR_HH

#include <cstddef>
#include <cstdint>

namespace flexos {

/** Live statistics kept by every allocator. */
struct AllocStats
{
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t failed = 0;
    /** Internal work steps performed (used for cycle charging). */
    std::uint64_t steps = 0;
    std::size_t liveBytes = 0;
    std::size_t peakBytes = 0;
};

/**
 * Abstract heap allocator over a fixed arena.
 */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /**
     * Allocate size bytes, 16-byte aligned.
     * @return nullptr when the arena is exhausted.
     */
    virtual void *alloc(std::size_t size) = 0;

    /** Release a block previously returned by alloc(). */
    virtual void free(void *p) = 0;

    /** Usable size of an allocated block (>= requested). */
    virtual std::size_t blockSize(const void *p) const = 0;

    /** Allocator family name for reports. */
    virtual const char *name() const = 0;

    const AllocStats &stats() const { return stats_; }

  protected:
    /** Record one operation's step count and charge the virtual clock. */
    void charge(std::uint64_t steps);

    AllocStats stats_;
};

/** Standard allocation alignment (Unikraft uses 16 on x86-64). */
inline constexpr std::size_t allocAlign = 16;

/** Round up to the allocation alignment. */
constexpr std::size_t
alignUp(std::size_t n)
{
    return (n + allocAlign - 1) & ~(allocAlign - 1);
}

} // namespace flexos

#endif // FLEXOS_UKALLOC_ALLOCATOR_HH
