/**
 * @file
 * TLSF (two-level segregated fit) allocator — Unikraft's default
 * general-purpose allocator (Masmano et al., ECRTS'04).
 *
 * O(1) malloc and free: a first-level bitmap indexes power-of-two size
 * classes, a second-level bitmap subdivides each class linearly, and each
 * (fl, sl) bucket heads a doubly-linked free list. Blocks carry boundary
 * tags (physical-neighbour links) for immediate coalescing.
 */

#ifndef FLEXOS_UKALLOC_TLSF_HH
#define FLEXOS_UKALLOC_TLSF_HH

#include <cstdint>
#include <memory>

#include "ukalloc/allocator.hh"

namespace flexos {

/**
 * TLSF allocator over a caller-provided or self-owned arena.
 */
class TlsfAllocator : public Allocator
{
  public:
    /** Build over an owned arena of arenaSize bytes. */
    explicit TlsfAllocator(std::size_t arenaSize);

    /** Build over external storage (e.g. a compartment heap region). */
    TlsfAllocator(void *arena, std::size_t arenaSize);

    ~TlsfAllocator() override;

    void *alloc(std::size_t size) override;
    void free(void *p) override;
    std::size_t blockSize(const void *p) const override;
    const char *name() const override { return "tlsf"; }

    /** Arena base (for region registration by the image). */
    void *arenaBase() const { return arena; }
    std::size_t arenaSize() const { return arenaBytes; }

    /** Walk the heap checking invariants; panics on corruption. */
    void checkConsistency() const;

  private:
    struct Block;

    static constexpr unsigned slCountLog2 = 4;          // 16 subclasses
    static constexpr unsigned slCount = 1u << slCountLog2;
    static constexpr unsigned flMax = 32;               // up to 4 GiB
    static constexpr std::size_t smallThreshold = 256;  // linear classes

    void init();
    void mapping(std::size_t size, unsigned &fl, unsigned &sl) const;
    void mappingSearch(std::size_t size, unsigned &fl, unsigned &sl,
                       std::uint64_t &steps) const;
    Block *findSuitable(unsigned &fl, unsigned &sl,
                        std::uint64_t &steps) const;
    void insertFree(Block *b, std::uint64_t &steps);
    void removeFree(Block *b, std::uint64_t &steps);
    Block *splitBlock(Block *b, std::size_t size, std::uint64_t &steps);
    Block *mergePrev(Block *b, std::uint64_t &steps);
    Block *mergeNext(Block *b, std::uint64_t &steps);

    std::unique_ptr<char[]> owned;
    char *arena = nullptr;
    std::size_t arenaBytes = 0;

    std::uint32_t flBitmap = 0;
    std::uint32_t slBitmap[flMax] = {};
    Block *freeLists[flMax][slCount] = {};
};

} // namespace flexos

#endif // FLEXOS_UKALLOC_TLSF_HH
