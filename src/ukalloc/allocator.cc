#include "ukalloc/allocator.hh"

#include "machine/machine.hh"

namespace flexos {

void
Allocator::charge(std::uint64_t steps)
{
    stats_.steps += steps;
    if (Machine::hasCurrent()) {
        auto &m = Machine::current();
        m.consume(m.timing.allocBase + steps * m.timing.allocStep);
    }
}

} // namespace flexos
