#include "ukalloc/tlsf.hh"

#include <bit>
#include <cstring>
#include <set>

#include "base/logging.hh"

namespace flexos {

namespace {

constexpr std::size_t freeFlag = 0x1;
constexpr std::size_t flagMask = 0x1;

/** Index of the most significant set bit. @pre v != 0 */
unsigned
msbIndex(std::size_t v)
{
    return 63 - std::countl_zero(static_cast<std::uint64_t>(v));
}

} // namespace

/**
 * Block header. 'size' covers the whole block including this header.
 * Free blocks additionally thread through (nextFree, prevFree), stored in
 * the payload area, which bounds the minimum block size.
 */
struct TlsfAllocator::Block
{
    Block *prevPhys;
    std::size_t sizeAndFlags;

    // Valid only while free:
    Block *nextFree;
    Block *prevFree;

    std::size_t size() const { return sizeAndFlags & ~flagMask; }
    bool isFree() const { return sizeAndFlags & freeFlag; }
    void setSize(std::size_t s) { sizeAndFlags = s | (sizeAndFlags & flagMask); }
    void markFree() { sizeAndFlags |= freeFlag; }
    void markUsed() { sizeAndFlags &= ~freeFlag; }

    Block *
    nextPhys()
    {
        return reinterpret_cast<Block *>(
            reinterpret_cast<char *>(this) + size());
    }

    void *payload() { return reinterpret_cast<char *>(this) + headerSize; }

    static constexpr std::size_t headerSize = 2 * sizeof(void *);

    static Block *
    fromPayload(void *p)
    {
        return reinterpret_cast<Block *>(
            static_cast<char *>(p) - headerSize);
    }
};

namespace {
constexpr std::size_t minBlockSize = 48; // header + two list links, aligned
} // namespace

TlsfAllocator::TlsfAllocator(std::size_t arenaSize)
    : owned(new char[arenaSize]), arena(owned.get()), arenaBytes(arenaSize)
{
    init();
}

TlsfAllocator::TlsfAllocator(void *arenaMem, std::size_t arenaSize)
    : arena(static_cast<char *>(arenaMem)), arenaBytes(arenaSize)
{
    init();
}

TlsfAllocator::~TlsfAllocator() = default;

void
TlsfAllocator::init()
{
    fatal_if(arenaBytes < 4 * minBlockSize, "TLSF arena too small");

    // Align the arena window.
    auto base = reinterpret_cast<std::uintptr_t>(arena);
    std::uintptr_t aligned = (base + allocAlign - 1) & ~(allocAlign - 1);
    std::size_t usable =
        (arenaBytes - (aligned - base)) & ~(allocAlign - 1);

    // Layout: [ first free block ........ ][ sentinel header ]
    auto *first = reinterpret_cast<Block *>(aligned);
    std::size_t sentinelSize = alignUp(Block::headerSize);
    first->prevPhys = nullptr;
    first->sizeAndFlags = (usable - sentinelSize) | freeFlag;

    Block *sentinel = first->nextPhys();
    sentinel->prevPhys = first;
    sentinel->sizeAndFlags = 0; // used, size 0: terminates coalescing

    std::uint64_t steps = 0;
    insertFree(first, steps);
}

void
TlsfAllocator::mapping(std::size_t size, unsigned &fl, unsigned &sl) const
{
    if (size < smallThreshold) {
        fl = 0;
        sl = static_cast<unsigned>(size / (smallThreshold / slCount));
    } else {
        unsigned msb = msbIndex(size);
        fl = msb - msbIndex(smallThreshold) + 1;
        sl = static_cast<unsigned>(
            (size >> (msb - slCountLog2)) - slCount);
    }
    panic_if(fl >= flMax || sl >= slCount, "TLSF mapping out of range");
}

void
TlsfAllocator::mappingSearch(std::size_t size, unsigned &fl, unsigned &sl,
                             std::uint64_t &steps) const
{
    if (size >= smallThreshold) {
        // Round up so any block in the found bucket is large enough.
        size += (std::size_t(1) << (msbIndex(size) - slCountLog2)) - 1;
    }
    ++steps;
    mapping(size, fl, sl);
}

TlsfAllocator::Block *
TlsfAllocator::findSuitable(unsigned &fl, unsigned &sl,
                            std::uint64_t &steps) const
{
    ++steps;
    std::uint32_t slMap = slBitmap[fl] & (~0u << sl);
    if (!slMap) {
        std::uint32_t flMap =
            (fl + 1 < flMax) ? (flBitmap & (~0u << (fl + 1))) : 0;
        if (!flMap)
            return nullptr; // out of memory
        fl = std::countr_zero(flMap);
        slMap = slBitmap[fl];
        ++steps;
    }
    panic_if(!slMap, "TLSF bitmap inconsistency");
    sl = std::countr_zero(slMap);
    return freeLists[fl][sl];
}

void
TlsfAllocator::insertFree(Block *b, std::uint64_t &steps)
{
    unsigned fl, sl;
    mapping(b->size(), fl, sl);
    b->markFree();
    b->prevFree = nullptr;
    b->nextFree = freeLists[fl][sl];
    if (b->nextFree)
        b->nextFree->prevFree = b;
    freeLists[fl][sl] = b;
    flBitmap |= 1u << fl;
    slBitmap[fl] |= 1u << sl;
    steps += 2;
}

void
TlsfAllocator::removeFree(Block *b, std::uint64_t &steps)
{
    unsigned fl, sl;
    mapping(b->size(), fl, sl);
    if (b->prevFree)
        b->prevFree->nextFree = b->nextFree;
    else
        freeLists[fl][sl] = b->nextFree;
    if (b->nextFree)
        b->nextFree->prevFree = b->prevFree;
    if (!freeLists[fl][sl]) {
        slBitmap[fl] &= ~(1u << sl);
        if (!slBitmap[fl])
            flBitmap &= ~(1u << fl);
    }
    steps += 2;
}

TlsfAllocator::Block *
TlsfAllocator::splitBlock(Block *b, std::size_t size, std::uint64_t &steps)
{
    if (b->size() < size + minBlockSize)
        return nullptr; // remainder too small, keep whole block

    std::size_t restSize = b->size() - size;
    b->setSize(size);

    Block *rest = b->nextPhys();
    rest->prevPhys = b;
    rest->sizeAndFlags = restSize | freeFlag;
    rest->nextPhys()->prevPhys = rest;
    ++steps;
    return rest;
}

TlsfAllocator::Block *
TlsfAllocator::mergePrev(Block *b, std::uint64_t &steps)
{
    Block *prev = b->prevPhys;
    if (!prev || !prev->isFree())
        return b;
    removeFree(prev, steps);
    prev->setSize(prev->size() + b->size());
    prev->nextPhys()->prevPhys = prev;
    ++steps;
    return prev;
}

TlsfAllocator::Block *
TlsfAllocator::mergeNext(Block *b, std::uint64_t &steps)
{
    Block *next = b->nextPhys();
    if (!next->isFree())
        return b;
    removeFree(next, steps);
    b->setSize(b->size() + next->size());
    b->nextPhys()->prevPhys = b;
    ++steps;
    return b;
}

void *
TlsfAllocator::alloc(std::size_t size)
{
    std::uint64_t steps = 0;
    std::size_t need = alignUp(size) + Block::headerSize;
    if (need < minBlockSize)
        need = minBlockSize;

    unsigned fl, sl;
    mappingSearch(need, fl, sl, steps);
    Block *b = findSuitable(fl, sl, steps);
    if (!b) {
        ++stats_.failed;
        charge(steps);
        return nullptr;
    }

    removeFree(b, steps);
    Block *rest = splitBlock(b, need, steps);
    if (rest)
        insertFree(rest, steps);
    b->markUsed();

    ++stats_.allocs;
    stats_.liveBytes += b->size();
    if (stats_.liveBytes > stats_.peakBytes)
        stats_.peakBytes = stats_.liveBytes;
    charge(steps);
    return b->payload();
}

void
TlsfAllocator::free(void *p)
{
    if (!p)
        return;
    std::uint64_t steps = 0;
    Block *b = Block::fromPayload(p);
    panic_if(b->isFree(), "TLSF double free of ", p);

    ++stats_.frees;
    stats_.liveBytes -= b->size();

    b->markFree();
    b = mergeNext(b, steps);
    b = mergePrev(b, steps);
    insertFree(b, steps);
    charge(steps);
}

std::size_t
TlsfAllocator::blockSize(const void *p) const
{
    const Block *b = Block::fromPayload(const_cast<void *>(p));
    return b->size() - Block::headerSize;
}

void
TlsfAllocator::checkConsistency() const
{
    // Gather all free-listed blocks.
    std::set<const Block *> freeSet;
    for (unsigned fl = 0; fl < flMax; ++fl) {
        for (unsigned sl = 0; sl < slCount; ++sl) {
            for (Block *b = freeLists[fl][sl]; b; b = b->nextFree) {
                panic_if(!b->isFree(), "used block on free list");
                unsigned mfl, msl;
                mapping(b->size(), mfl, msl);
                panic_if(mfl != fl || msl != sl,
                         "block in wrong TLSF bucket");
                freeSet.insert(b);
            }
        }
    }

    // Walk the physical chain.
    auto base = reinterpret_cast<std::uintptr_t>(arena);
    std::uintptr_t aligned = (base + allocAlign - 1) & ~(allocAlign - 1);
    const Block *b = reinterpret_cast<const Block *>(aligned);
    const Block *prev = nullptr;
    bool prevFree = false;
    while (b->size() != 0) {
        panic_if(b->prevPhys != prev, "broken physical chain");
        panic_if(prevFree && b->isFree(), "uncoalesced free neighbours");
        panic_if(b->isFree() && !freeSet.count(b),
                 "free block missing from free lists");
        prevFree = b->isFree();
        prev = b;
        b = const_cast<Block *>(b)->nextPhys();
    }
}

} // namespace flexos
