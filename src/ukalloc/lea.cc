#include "ukalloc/lea.hh"

#include <bit>
#include <set>

#include "base/logging.hh"

namespace flexos {

namespace {

constexpr std::size_t cinuse = 0x1; ///< this chunk is in use
constexpr std::size_t pinuse = 0x2; ///< the previous chunk is in use
constexpr std::size_t flagMask = cinuse | pinuse;

} // namespace

/**
 * Boundary-tag chunk. 'prevSize' is the *footer of the previous chunk*:
 * it is only valid when the previous chunk is free (PINUSE clear), the
 * classic dlmalloc overlay trick.
 */
struct LeaAllocator::Chunk
{
    std::size_t prevSize;
    std::size_t head;

    // Free-list links, valid while free:
    Chunk *fd;
    Chunk *bk;

    std::size_t size() const { return head & ~flagMask; }
    bool inUse() const { return head & cinuse; }
    bool prevInUse() const { return head & pinuse; }

    void
    setSize(std::size_t s)
    {
        head = s | (head & flagMask);
    }

    Chunk *
    next()
    {
        return reinterpret_cast<Chunk *>(
            reinterpret_cast<char *>(this) + size());
    }

    Chunk *
    prev()
    {
        panic_if(prevInUse(), "prev() on chunk with PINUSE");
        return reinterpret_cast<Chunk *>(
            reinterpret_cast<char *>(this) - prevSize);
    }

    void *payload() { return reinterpret_cast<char *>(this) + overhead; }

    static constexpr std::size_t overhead = 2 * sizeof(std::size_t);

    static Chunk *
    fromPayload(void *p)
    {
        return reinterpret_cast<Chunk *>(
            static_cast<char *>(p) - overhead);
    }
};

LeaAllocator::LeaAllocator(std::size_t arenaSize)
    : owned(new char[arenaSize]), arena(owned.get()), arenaBytes(arenaSize)
{
    init();
}

LeaAllocator::LeaAllocator(void *arenaMem, std::size_t arenaSize)
    : arena(static_cast<char *>(arenaMem)), arenaBytes(arenaSize)
{
    init();
}

LeaAllocator::~LeaAllocator() = default;

void
LeaAllocator::init()
{
    fatal_if(arenaBytes < 8 * minChunkSize, "Lea arena too small");

    auto base = reinterpret_cast<std::uintptr_t>(arena);
    std::uintptr_t aligned = (base + allocAlign - 1) & ~(allocAlign - 1);
    std::size_t usable = (arenaBytes - (aligned - base)) & ~(allocAlign - 1);

    // Layout: [ top chunk ......................... ][ fence header ]
    std::size_t fenceSize = alignUp(Chunk::overhead);
    top = reinterpret_cast<Chunk *>(aligned);
    top->head = (usable - fenceSize) | pinuse; // free, prev "in use"

    Chunk *fence = top->next();
    fence->head = 0 | cinuse; // size 0, in use: stops coalescing
    fence->prevSize = top->size();
}

unsigned
LeaAllocator::binIndex(std::size_t chunkSize) const
{
    return static_cast<unsigned>((chunkSize - minChunkSize) / allocAlign);
}

void
LeaAllocator::setFooter(Chunk *c)
{
    c->next()->prevSize = c->size();
}

void
LeaAllocator::insertChunk(Chunk *c, std::uint64_t &steps)
{
    ++steps;
    std::size_t sz = c->size();
    if (sz <= maxSmallSize) {
        unsigned idx = binIndex(sz);
        c->fd = bins[idx];
        c->bk = nullptr;
        if (c->fd)
            c->fd->bk = c;
        bins[idx] = c;
        binMap |= std::uint64_t(1) << idx;
    } else {
        // Keep the large list sorted ascending by size.
        Chunk *at = largeHead;
        Chunk *prev = nullptr;
        while (at && at->size() < sz) {
            prev = at;
            at = at->fd;
            ++steps;
        }
        c->fd = at;
        c->bk = prev;
        if (at)
            at->bk = c;
        if (prev)
            prev->fd = c;
        else
            largeHead = c;
    }
}

void
LeaAllocator::unlinkChunk(Chunk *c, std::uint64_t &steps)
{
    ++steps;
    std::size_t sz = c->size();
    if (sz <= maxSmallSize) {
        unsigned idx = binIndex(sz);
        if (c->bk)
            c->bk->fd = c->fd;
        else
            bins[idx] = c->fd;
        if (c->fd)
            c->fd->bk = c->bk;
        if (!bins[idx])
            binMap &= ~(std::uint64_t(1) << idx);
    } else {
        if (c->bk)
            c->bk->fd = c->fd;
        else
            largeHead = c->fd;
        if (c->fd)
            c->fd->bk = c->bk;
    }
}

/**
 * Mark c (of at least 'need' bytes) used, splitting the remainder into
 * the designated victim when large enough.
 */
void *
LeaAllocator::finishAlloc(Chunk *c, std::size_t need, std::uint64_t &steps)
{
    std::size_t rest = c->size() - need;
    if (rest >= minChunkSize) {
        c->setSize(need);
        Chunk *r = c->next();
        r->head = rest | pinuse; // free; previous (c) becomes used below
        setFooter(r);

        // The remainder becomes the new designated victim; the previous
        // victim, if any, retires into a regular bin.
        if (dv)
            insertChunk(dv, steps);
        dv = r;
        ++steps;
    }
    c->head |= cinuse;
    Chunk *n = c->next();
    n->head |= pinuse;

    ++stats_.allocs;
    stats_.liveBytes += c->size();
    if (stats_.liveBytes > stats_.peakBytes)
        stats_.peakBytes = stats_.liveBytes;
    charge(steps);
    return c->payload();
}

void *
LeaAllocator::alloc(std::size_t size)
{
    std::uint64_t steps = 0;
    std::size_t need = alignUp(size) + Chunk::overhead;
    if (need < minChunkSize)
        need = minChunkSize;

    if (need <= maxSmallSize) {
        // Exact-fit small bin.
        unsigned idx = binIndex(need);
        std::uint64_t map = binMap >> idx;
        ++steps;
        if (map & 1) {
            Chunk *c = bins[idx];
            unlinkChunk(c, steps);
            return finishAlloc(c, need, steps);
        }

        // Designated victim next: the common fast path.
        if (dv && dv->size() >= need) {
            Chunk *c = dv;
            dv = nullptr;
            return finishAlloc(c, need, steps);
        }

        // Any larger small bin via the bitmap.
        if (map >> 1) {
            unsigned next = idx + 1 + std::countr_zero(map >> 1);
            Chunk *c = bins[next];
            unlinkChunk(c, steps);
            return finishAlloc(c, need, steps);
        }
    } else if (dv && dv->size() >= need) {
        Chunk *c = dv;
        dv = nullptr;
        return finishAlloc(c, need, steps);
    }

    // Best fit from the sorted large list (first fit == best fit).
    for (Chunk *c = largeHead; c; c = c->fd) {
        ++steps;
        if (c->size() >= need) {
            unlinkChunk(c, steps);
            return finishAlloc(c, need, steps);
        }
    }

    // Carve from the wilderness.
    if (top && top->size() >= need + minChunkSize) {
        Chunk *c = top;
        std::size_t rest = c->size() - need;
        c->setSize(need);
        Chunk *newTop = c->next();
        newTop->head = rest | pinuse;
        setFooter(newTop);
        top = newTop;
        c->head |= cinuse;

        ++stats_.allocs;
        stats_.liveBytes += c->size();
        if (stats_.liveBytes > stats_.peakBytes)
            stats_.peakBytes = stats_.liveBytes;
        charge(steps + 1);
        return c->payload();
    }

    ++stats_.failed;
    charge(steps);
    return nullptr;
}

void
LeaAllocator::free(void *p)
{
    if (!p)
        return;
    std::uint64_t steps = 0;
    Chunk *c = Chunk::fromPayload(p);
    panic_if(!c->inUse(), "Lea double free of ", p);

    ++stats_.frees;
    stats_.liveBytes -= c->size();
    c->head &= ~cinuse;

    bool wasDv = false;

    // Coalesce with the previous chunk.
    if (!c->prevInUse()) {
        Chunk *pr = c->prev();
        if (pr == dv) {
            dv = nullptr;
            wasDv = true;
        } else if (pr == top) {
            // Top is always the last chunk; cannot precede c.
            panic("top chunk found before a freed chunk");
        } else {
            unlinkChunk(pr, steps);
        }
        pr->setSize(pr->size() + c->size());
        c = pr;
        ++steps;
    }

    // Coalesce with the next chunk (or merge into top).
    Chunk *n = c->next();
    if (n == top) {
        c->setSize(c->size() + top->size());
        c->head &= ~cinuse;
        top = c;
        setFooter(top);
        if (wasDv)
            dv = nullptr;
        charge(steps + 1);
        return;
    }
    if (!n->inUse()) {
        if (n == dv) {
            dv = nullptr;
            wasDv = true;
        } else {
            unlinkChunk(n, steps);
        }
        c->setSize(c->size() + n->size());
        ++steps;
    }

    setFooter(c);
    c->next()->head &= ~pinuse;

    if (wasDv) {
        dv = c; // the merged block inherits designated-victim status
        ++steps;
    } else {
        insertChunk(c, steps);
    }
    charge(steps);
}

std::size_t
LeaAllocator::blockSize(const void *p) const
{
    const Chunk *c = Chunk::fromPayload(const_cast<void *>(p));
    return c->size() - Chunk::overhead;
}

void
LeaAllocator::checkConsistency() const
{
    // Collect every chunk tracked as free.
    std::set<const Chunk *> freeSet;
    for (unsigned i = 0; i < smallBinCount; ++i) {
        for (Chunk *c = bins[i]; c; c = c->fd) {
            panic_if(c->inUse(), "used chunk in small bin");
            panic_if(binIndex(c->size()) != i, "chunk in wrong bin");
            freeSet.insert(c);
        }
    }
    std::size_t prevSz = 0;
    for (Chunk *c = largeHead; c; c = c->fd) {
        panic_if(c->inUse(), "used chunk in large list");
        panic_if(c->size() < prevSz, "large list not sorted");
        prevSz = c->size();
        freeSet.insert(c);
    }
    if (dv)
        freeSet.insert(dv);
    if (top)
        freeSet.insert(top);

    // Physical walk.
    auto base = reinterpret_cast<std::uintptr_t>(arena);
    std::uintptr_t aligned = (base + allocAlign - 1) & ~(allocAlign - 1);
    const Chunk *c = reinterpret_cast<const Chunk *>(aligned);
    bool prevUse = true;
    while (c->size() != 0) {
        panic_if(c->prevInUse() != prevUse, "PINUSE bit inconsistent");
        if (!c->inUse()) {
            panic_if(!freeSet.count(c), "orphan free chunk");
            panic_if(const_cast<Chunk *>(c)->next()->prevSize != c->size(),
                     "bad footer");
        }
        prevUse = c->inUse();
        c = const_cast<Chunk *>(c)->next();
    }
}

} // namespace flexos
