/**
 * @file
 * Region map: the simulated machine's view of protected memory.
 *
 * Real MPK tags page-table entries with protection keys. This model tags
 * *regions* (heaps, stacks, per-compartment static sections, shared
 * windows) instead: every byte of memory that belongs to a compartment is
 * registered here with its key, and the MMU check consults this map.
 * Host memory that is not registered is outside the isolation model
 * (simulator-internal state) and is never checked.
 */

#ifndef FLEXOS_MACHINE_MEMMAP_HH
#define FLEXOS_MACHINE_MEMMAP_HH

#include <cstdint>
#include <map>
#include <string>

#include "machine/pkru.hh"

namespace flexos {

/** A contiguous key-tagged or VM-private memory region. */
struct MemRegion
{
    std::uintptr_t base = 0;
    std::size_t size = 0;
    ProtKey key = 0;
    /**
     * Owning VM for EPT-compartment memory, or -1 for key-tagged
     * regions. A VM-private region is unmapped outside its VM: the
     * access check compares the machine's active VM token instead of
     * the PKRU, and the region consumes no protection key.
     */
    int vmOwner = -1;
    std::string name;

    bool
    contains(std::uintptr_t addr) const
    {
        return addr >= base && addr < base + size;
    }
};

/**
 * Sorted, non-overlapping set of regions with point lookup.
 */
class MemoryMap
{
  public:
    /** Register a region. @return the region id (its base). */
    void add(const void *base, std::size_t size, ProtKey key,
             std::string name);

    /** Register a VM-private region (unmapped outside VM `vmOwner`). */
    void addVmPrivate(const void *base, std::size_t size, int vmOwner,
                      std::string name);

    /** Remove the region starting exactly at base. */
    void remove(const void *base);

    /** Re-tag an existing region with a new key (pkey_mprotect analog). */
    void retag(const void *base, ProtKey key);

    /** Find the region covering p, or nullptr if unregistered. */
    const MemRegion *find(const void *p) const;

    /**
     * First region overlapping [p, p+size), or nullptr. Unlike find(),
     * this sees regions the access merely extends into — an access
     * starting in unregistered memory that runs into a registered
     * region is still reported.
     */
    const MemRegion *findOverlap(const void *p, std::size_t size) const;

    /**
     * Visit every region overlapping [p, p+size) in address order.
     * Fn is called as fn(const MemRegion &).
     */
    template <typename Fn>
    void
    forEachOverlap(const void *p, std::size_t size, Fn &&fn) const
    {
        auto addr = reinterpret_cast<std::uintptr_t>(p);
        auto end = addr + size;
        auto it = regions.upper_bound(addr);
        if (it != regions.begin()) {
            auto prev = std::prev(it);
            if (prev->second.base + prev->second.size > addr)
                fn(prev->second);
        }
        for (; it != regions.end() && it->second.base < end; ++it)
            fn(it->second);
    }

    /** Number of registered regions. */
    std::size_t count() const { return regions.size(); }

    /** Drop everything (image teardown). */
    void clear() { regions.clear(); }

  private:
    /** Keyed by base address. */
    std::map<std::uintptr_t, MemRegion> regions;
};

} // namespace flexos

#endif // FLEXOS_MACHINE_MEMMAP_HH
