/**
 * @file
 * The timing model: the single source of truth for every cycle cost charged
 * by the simulation.
 *
 * Calibration. The gate-latency entries are taken directly from the paper's
 * Figure 11b microbenchmark (Intel Xeon Silver 4114 @ 2.2 GHz): function
 * call 2, MPK light gate 62, MPK DSS gate 108, EPT RPC gate 462, Linux
 * syscall 470 (KPTI) / 146 (no KPTI). Costs the paper does not report
 * directly are derived from its macrobenchmarks and noted inline.
 */

#ifndef FLEXOS_MACHINE_TIMING_HH
#define FLEXOS_MACHINE_TIMING_HH

#include <cstdint>

namespace flexos {

/** Virtual CPU cycles. */
using Cycles = std::uint64_t;

/**
 * Cycle cost table for the simulated machine.
 *
 * All costs are end-to-end (round trip) unless stated otherwise. Workload
 * code charges these through Machine::consume(); backends charge the gate
 * entries on every domain transition.
 */
struct TimingModel
{
    /** Simulated core frequency, GHz (paper testbed: Xeon 4114 @ 2.2). */
    double cpuGhz = 2.2;

    /** @name Gate latencies (Figure 11b). @{ */
    /** Plain function call (same compartment). */
    Cycles functionCall = 2;
    /** MPK gate sharing stack+registers (ERIM-style): raw wrpkru pair. */
    Cycles mpkLightGate = 62;
    /** Full MPK gate: register save/zero + PKRU switch + stack switch. */
    Cycles mpkDssGate = 108;
    /**
     * EPT backend RPC marshalling cost. The end-to-end gate latency
     * additionally pays two cooperative context switches plus the RPC
     * server dispatch, totalling the paper's 462-cycle round trip:
     * 192 + 2*contextSwitch(120) + pollDispatch(30) = 462.
     */
    Cycles eptGate = 192;
    /** Linux syscall round trip with KPTI enabled. */
    Cycles syscallKpti = 470;
    /** Linux syscall round trip without KPTI. */
    Cycles syscallNoKpti = 146;
    /** @} */

    /** @name Derived / decomposed gate components. @{ */
    /** One raw wrpkru instruction (light gate ~= 2x wrpkru + call). */
    Cycles wrpkru = 28;
    /** Register set save + clear + argument reload (full MPK gate). */
    Cycles registerSaveZero = 26;
    /** Per-thread per-compartment call-stack switch via stack registry. */
    Cycles stackSwitch = 20;
    /**
     * Caller-side entry-point validation forced by a boundary policy
     * (`validate: true`): one hash-table probe of the callee's export
     * table, comparable to the RPC server's dispatch check.
     */
    Cycles entryValidate = 18;
    /**
     * Per-slot dispatch cost of one extra call riding a vectored
     * crossing (`batch: N`): argument marshalling into the next slot
     * plus the callee-side dispatch, with the domain transition
     * amortized over the whole batch.
     */
    Cycles batchSlot = 6;
    /**
     * The doorbell component of an EPT submission: the ring notify
     * (VMCALL-style kick) that wakes an idle server. Coalesced
     * submissions under back-pressure skip exactly this term.
     */
    Cycles eptDoorbell = 24;
    /** @} */

    /**
     * @name Return-leg gate costs.
     * Each Figure 11b round trip decomposes into an entry and a return
     * leg charged per direction; entry = round trip - return, so the
     * totals above stay exact. The return leg of the full MPK gate is
     * registerSaveZero (scrub on the way out) + stackSwitch back to the
     * caller stack; `scrub: false` drops the registerSaveZero term.
     * @{
     */
    /** Light MPK gate return: the second wrpkru + return sequence. */
    Cycles mpkLightReturn = 30;
    /** Full MPK gate return: scrub + stack switch back. */
    Cycles mpkDssReturn = 46;
    /** EPT RPC return: response marshalling + caller-side unpack. */
    Cycles eptReturn = 64;
    /** @} */

    /**
     * @name SMP costs (N-core simulation).
     * A crossing into a compartment whose working set was last touched
     * by another core pays a cache/TLB migration penalty; cross-core
     * wakeups pay an IPI. Calibrated against inter-core cache-line
     * transfer latencies on the paper's Xeon 4114 testbed (~100-200
     * cycles per line, a few lines of hot state per event).
     * @{
     */
    /** Inter-processor interrupt: send + remote receipt + EOI. */
    Cycles ipi = 600;
    /** Compartment state migration when a crossing changes cores. */
    Cycles crossCoreMigration = 250;
    /** Run-queue steal: migrating a ready thread to the idle core. */
    Cycles stealMigration = 250;
    /** @} */

    /** @name Baseline OS crossing costs (derived from Figure 10). @{ */
    /**
     * seL4/Genode IPC round trip. Derived: seL4 PT3 runs the SQLite
     * benchmark ~3.1x slower than FlexOS MPK3 on the same crossing count.
     */
    Cycles sel4Ipc = 980;
    /**
     * CubicleOS domain transition: pkey_mprotect syscall pair through the
     * linuxu layer ("orders of magnitude more expensive", paper 6.4);
     * derived from CubicleOS MPK3 ~14.7x FlexOS MPK3.
     */
    Cycles pkeyMprotect = 2850;
    /** CubicleOS trap-and-map: page fault + map on first shared access. */
    Cycles trapAndMapFault = 4050;
    /** @} */

    /** @name Memory and allocator costs. @{ */
    /** One internal allocator step (bitmap scan, list unlink, split...). */
    Cycles allocStep = 12;
    /** Fixed entry cost of a heap allocator call. */
    Cycles allocBase = 40;
    /** Stack (and DSS) allocation: one push, constant (Figure 11a). */
    Cycles stackAlloc = 2;
    /**
     * Copy cost, cycles per 16-byte chunk moved. Calibrated so the
     * network data plane lands in the paper's Figure 9 range (the
     * Xeon 4114 testbed peaks around 4 Gb/s for iPerf over lwIP —
     * several copies plus checksumming per byte across the stack).
     */
    Cycles copyPer16B = 10;
    /** Checksum cost: cycles per 16-byte chunk summed. */
    Cycles csumPer16B = 8;
    /**
     * Filesystem block copy cost per 16-byte chunk: ramfs block moves
     * are single cache-warm memcpys, far cheaper than the multi-hop
     * network data plane.
     */
    Cycles fsCopyPer16B = 2;
    /** @} */

    /** @name Device / kernel path fixed costs. @{ */
    /** NIC enqueue/dequeue of one frame (descriptor handling). */
    Cycles nicFrame = 90;
    /** Per-packet protocol processing base (headers, demux). */
    Cycles packetProc = 160;
    /** Scheduler context switch (cooperative). */
    Cycles contextSwitch = 120;
    /** VFS operation base cost (path resolution per component etc.). */
    Cycles vfsOpBase = 110;
    /** ramfs per-op base cost. */
    Cycles ramfsOpBase = 60;
    /** Interrupt/poll dispatch. */
    Cycles pollDispatch = 30;
    /** @} */

    /**
     * @name Software-hardening overheads, percent extra work on the
     * instrumented component (paper 4.5 bundle: stack protector + UBSan +
     * KASan; combined ~= 2.5x, consistent with Figure 6 where hardening
     * the Redis application alone costs 42% of end-to-end throughput).
     * @{
     */
    unsigned hardenStackProtectorPct = 8;
    unsigned hardenUbsanPct = 32;
    unsigned hardenKasanPct = 110;
    unsigned hardenCfiPct = 15;
    unsigned hardenAsanPct = 95;
    /** @} */
};

} // namespace flexos

#endif // FLEXOS_MACHINE_TIMING_HH
