#include "machine/machine.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace flexos {

namespace {

/** Active machine; single-host-thread model, so a plain static works. */
Machine *currentMachine = nullptr;

std::string
describeFault(const void *addr, ProtKey key, AccessType at,
              const std::string &region)
{
    std::ostringstream oss;
    oss << "protection fault: "
        << (at == AccessType::Write ? "write"
            : at == AccessType::Read ? "read" : "exec")
        << " to " << addr << " in region '" << region << "' (key "
        << int(key) << ") denied by PKRU";
    return oss.str();
}

} // namespace

ProtectionFault::ProtectionFault(const void *addr, ProtKey key,
                                 AccessType at, const std::string &region)
    : std::runtime_error(describeFault(addr, key, at, region)),
      addr(addr), key(key), access(at), region(region)
{
}

Machine::Machine(TimingModel tm, unsigned cores) : timing(tm)
{
    panic_if(cores == 0, "a machine needs at least one core");
    cores_.resize(cores);
}

Machine::~Machine() = default;

double
Machine::seconds() const
{
    return static_cast<double>(cycleCount) / (timing.cpuGhz * 1e9);
}

std::uint64_t
Machine::nanoseconds() const
{
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(cycleCount) / timing.cpuGhz));
}

void
Machine::setActiveCore(int core)
{
    panic_if(core < 0 || unsigned(core) >= cores_.size(), "core ", core,
             " out of range (machine has ", cores_.size(), ")");
    if (core == active_)
        return;

    CoreContext &prev = cores_[active_];
    prev.cycleCount = cycleCount;
    prev.pkru = pkru;
    prev.currentVm = currentVm;
    prev.workMultiplier = workMultiplier;
    prev.chargingEnabled = chargingEnabled;
    prev.scratch = scratch;

    const CoreContext &next = cores_[core];
    cycleCount = next.cycleCount;
    pkru = next.pkru;
    currentVm = next.currentVm;
    workMultiplier = next.workMultiplier;
    chargingEnabled = next.chargingEnabled;
    scratch = next.scratch;
    active_ = core;
}

Cycles
Machine::coreCycles(int core) const
{
    panic_if(core < 0 || unsigned(core) >= cores_.size(), "core ", core,
             " out of range (machine has ", cores_.size(), ")");
    return core == active_ ? cycleCount : cores_[core].cycleCount;
}

Cycles
Machine::wallCycles() const
{
    Cycles wall = cycleCount;
    for (int c = 0; c < int(cores_.size()); ++c)
        wall = std::max(wall, coreCycles(c));
    return wall;
}

double
Machine::wallSeconds() const
{
    return static_cast<double>(wallCycles()) / (timing.cpuGhz * 1e9);
}

void
Machine::advanceCoreTo(int core, Cycles target)
{
    Cycles now = coreCycles(core);
    if (target <= now)
        return;
    chargeCore(core, target - now);
    bump("machine.idleCycles", target - now);
}

void
Machine::chargeCore(int core, Cycles c)
{
    if (core == active_)
        cycleCount += c;
    else
        cores_[core].cycleCount += c;
}

void
Machine::checkAccess(const void *p, std::size_t size, AccessType at)
{
    if (enforcement == Enforcement::Off)
        return;

    // Every registered region the access touches must be permitted;
    // real paging faults on the first offending page even when the
    // access *starts* in unregistered (or permitted) memory and only
    // extends into a denied region. Unregistered bytes are
    // simulator-internal and pass. VM-private regions (EPT key
    // virtualization) bypass the PKRU entirely: they are mapped only
    // inside their owning VM's second-level page tables.
    const MemRegion *denied = nullptr;
    memMap.forEachOverlap(p, size, [&](const MemRegion &r) {
        if (denied)
            return;
        bool ok = r.vmOwner >= 0 ? currentVm == r.vmOwner
                                 : pkru.permits(r.key, at);
        if (!ok)
            denied = &r;
    });
    if (!denied)
        return;

    ++violations;
    bump("mmu.violations");
    if (enforcement == Enforcement::Enforcing)
        throw ProtectionFault(p, denied->key, at, denied->name);
}

void
Machine::bump(const std::string &counter, std::uint64_t n)
{
    stats[counter] += n;
}

std::uint64_t
Machine::counter(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? 0 : it->second;
}

const std::map<std::string, std::uint64_t> &
Machine::counters() const
{
    return stats;
}

Machine &
Machine::current()
{
    panic_if(!currentMachine, "no MachineScope installed");
    return *currentMachine;
}

bool
Machine::hasCurrent()
{
    return currentMachine != nullptr;
}

MachineScope::MachineScope(Machine &m) : saved(currentMachine)
{
    currentMachine = &m;
}

MachineScope::~MachineScope()
{
    currentMachine = saved;
}

} // namespace flexos
