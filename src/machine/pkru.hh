/**
 * @file
 * Model of Intel MPK protection keys and the per-thread PKRU register.
 *
 * MPK tags each page with one of 16 protection keys; the PKRU register
 * holds two bits per key: AD (access disable) and WD (write disable). On
 * every access the MMU compares the target page's key against PKRU. This
 * header models the register and the key arithmetic exactly; the paging
 * granularity is replaced by the region map (see memmap.hh).
 */

#ifndef FLEXOS_MACHINE_PKRU_HH
#define FLEXOS_MACHINE_PKRU_HH

#include <cstdint>
#include <initializer_list>

#include "base/logging.hh"

namespace flexos {

/** A protection key, 0..15 as in Intel MPK. */
using ProtKey = std::uint8_t;

/** Number of protection keys offered by the MPK model. */
inline constexpr unsigned numProtKeys = 16;

/** Kinds of memory access checked by the MMU. */
enum class AccessType { Read, Write, Exec };

/**
 * The PKRU register value: bit (2k) = AD for key k, bit (2k+1) = WD.
 * A key permits reads iff AD=0 and writes iff AD=0 and WD=0.
 */
class Pkru
{
  public:
    /** All keys denied (the safe reset state for gate transitions). */
    static constexpr std::uint32_t denyAllValue = 0xffffffffu;

    /** All keys allowed (the no-isolation configuration). */
    static constexpr std::uint32_t allowAllValue = 0x00000000u;

    Pkru() : value_(allowAllValue) {}
    explicit Pkru(std::uint32_t raw) : value_(raw) {}

    /** Construct a register allowing exactly the given keys (R+W). */
    static Pkru
    allowing(std::initializer_list<ProtKey> keys)
    {
        Pkru p(denyAllValue);
        for (ProtKey k : keys)
            p.allow(k);
        return p;
    }

    /** Raw 32-bit register value. */
    std::uint32_t value() const { return value_; }

    /** Grant read+write on a key. */
    void
    allow(ProtKey key)
    {
        checkKey(key);
        value_ &= ~(0x3u << (2 * key));
    }

    /** Grant read-only on a key (AD=0, WD=1). */
    void
    allowReadOnly(ProtKey key)
    {
        checkKey(key);
        value_ &= ~(0x3u << (2 * key));
        value_ |= 0x2u << (2 * key);
    }

    /** Revoke all access on a key. */
    void
    deny(ProtKey key)
    {
        checkKey(key);
        value_ |= 0x3u << (2 * key);
    }

    /** Whether this register value permits the given access on a key. */
    bool
    permits(ProtKey key, AccessType at) const
    {
        checkKey(key);
        bool ad = value_ & (0x1u << (2 * key));
        bool wd = value_ & (0x2u << (2 * key));
        switch (at) {
          case AccessType::Read:
          case AccessType::Exec:
            // MPK does not restrict instruction fetches; Exec passes the
            // PKRU check (W^X / CFI handle execution, paper 4.1).
            return at == AccessType::Exec ? true : !ad;
          case AccessType::Write:
            return !ad && !wd;
        }
        return false;
    }

    bool operator==(const Pkru &o) const = default;

  private:
    static void
    checkKey(ProtKey key)
    {
        panic_if(key >= numProtKeys, "protection key ", int(key),
                 " out of range");
    }

    std::uint32_t value_;
};

} // namespace flexos

#endif // FLEXOS_MACHINE_PKRU_HH
