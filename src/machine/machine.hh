/**
 * @file
 * The simulated machine: virtual cycle clock, MMU (region map + PKRU
 * check), enforcement policy, and event counters.
 *
 * Everything in the repository executes against exactly one Machine at a
 * time (runs are single-threaded and deterministic). Deep substrate code
 * reaches the active machine through Machine::current(), installed with a
 * MachineScope RAII guard by images and test fixtures.
 */

#ifndef FLEXOS_MACHINE_MACHINE_HH
#define FLEXOS_MACHINE_MACHINE_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "machine/memmap.hh"
#include "machine/pkru.hh"
#include "machine/timing.hh"

namespace flexos {

/**
 * Raised when an access violates the current PKRU/key configuration and
 * enforcement is on; the analogue of the MPK page fault (paper 4.1).
 */
class ProtectionFault : public std::runtime_error
{
  public:
    ProtectionFault(const void *addr, ProtKey key, AccessType at,
                    const std::string &region);

    const void *addr;
    ProtKey key;
    AccessType access;
    std::string region;
};

/** What the MMU does on a key-permission mismatch. */
enum class Enforcement
{
    Off,        ///< No checks at all (pure timing runs).
    Permissive, ///< Count violations but let them pass (porting workflow).
    Enforcing,  ///< Raise ProtectionFault (deployed image).
};

/**
 * One core's architectural execution state. The Machine's public
 * members (clock, PKRU, VM token, work multiplier) act as the *active*
 * core's register file; setActiveCore() banks them here and loads the
 * target core's saved state, so all single-core call sites keep working
 * unchanged and a 1-core machine never swaps at all.
 */
struct CoreContext
{
    Cycles cycleCount = 0;
    Pkru pkru;
    int currentVm = -1;
    double workMultiplier = 1.0;
    bool chargingEnabled = true;
    std::array<std::uint64_t, 8> scratch{};
};

/**
 * The simulated machine.
 */
class Machine
{
  public:
    explicit Machine(TimingModel tm = TimingModel{}, unsigned cores = 1);
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** @name Virtual time. @{ */
    /** Charge c cycles of work to the virtual clock. */
    void
    consume(Cycles c)
    {
        if (chargingEnabled)
            cycleCount += applyMultiplier(c);
    }
    /** Charge a per-byte cost in 16-byte chunks (copies, checksums). */
    void
    consumePerByte(std::size_t bytes, Cycles per16)
    {
        if (chargingEnabled)
            cycleCount += applyMultiplier((bytes + 15) / 16 * per16);
    }

    /**
     * Advance the clock through a stall: time spent *waiting* (e.g. a
     * rate-limited gate back-pressuring until its token bucket
     * refills), not executing — so the work multiplier does not apply.
     * Stalled time is accounted separately in `machine.stallCycles`.
     */
    void
    stall(Cycles c)
    {
        if (!chargingEnabled)
            return;
        cycleCount += c;
        bump("machine.stallCycles", c);
        bump("machine.stallCycles.core" + std::to_string(active_), c);
    }

    /**
     * Work multiplier applied to every charge; call gates set it to the
     * target compartment's software-hardening factor (paper 4.5: KASan,
     * UBSan etc. instrument the component's own execution). 1.0 = none.
     */
    double workMultiplier = 1.0;

    /**
     * Whether consume() advances the clock. The scheduler clears this
     * while "free-running" threads execute: load generators standing in
     * for the paper's client machines (which run on separate cores and
     * do not count towards server-side time).
     */
    bool chargingEnabled = true;
    /** Cycles elapsed on the active core since construction. */
    Cycles cycles() const { return cycleCount; }
    /** Virtual wall-clock seconds on the active core. */
    double seconds() const;
    /** Virtual nanoseconds on the active core. */
    std::uint64_t nanoseconds() const;
    /** @} */

    /** @name SMP: per-core execution contexts. @{ */
    /** Number of simulated cores (fixed at construction, >= 1). */
    unsigned coreCount() const { return unsigned(cores_.size()); }

    /** The core whose register file the public members mirror. */
    int activeCore() const { return active_; }

    /**
     * Bank the public register window into the active core's context
     * and load core's saved state. Called by the scheduler on every
     * dispatch; a no-op when core is already active (always, on a
     * 1-core machine — preserving single-core behaviour exactly).
     */
    void setActiveCore(int core);

    /** A core's virtual clock (the window for the active core). */
    Cycles coreCycles(int core) const;

    /** Aggregate wall clock: the furthest-ahead core's clock. */
    Cycles wallCycles() const;
    /** Wall-clock seconds at the model frequency. */
    double wallSeconds() const;

    /**
     * Jump a core's clock forward to target (no-op if already past):
     * idle time waiting for work or a cross-core event, charged
     * without the work multiplier and tallied in machine.idleCycles.
     */
    void advanceCoreTo(int core, Cycles target);

    /** Charge cycles directly to a core (active or banked). */
    void chargeCore(int core, Cycles c);
    /** @} */

    /** @name MMU. @{ */
    /** The machine's region map (compartment heaps, stacks, sections). */
    MemoryMap memMap;

    /** Current PKRU value (the running thread's; swapped by the sched). */
    Pkru pkru;

    /**
     * VM whose second-level page tables are active, or -1 outside any
     * VM (key virtualization: EPT compartments are modelled as
     * "unmapped outside their VM" instead of key-tagged, so they don't
     * consume PKRU keys). Swapped alongside pkru by the scheduler and
     * the gates' domain transitions.
     */
    int currentVm = -1;

    /**
     * MMU access check: every registered region overlapping
     * [p, p+size) must carry a key the current PKRU permits; the first
     * denied region faults per the enforcement mode. Unregistered
     * memory is simulator-internal and always passes.
     */
    void checkAccess(const void *p, std::size_t size, AccessType at);

    Enforcement enforcement = Enforcement::Enforcing;

    /** Number of violations observed (Permissive mode keeps counting). */
    std::uint64_t violations = 0;
    /** @} */

    /** @name Scratch registers. @{ */
    /**
     * The active core's caller-saved scratch register file. Gates
     * scrub it on hardened entries and on return legs whose policy
     * keeps `scrub: true`; anything a compartment leaves behind
     * otherwise survives the crossing — the register side channel the
     * adversary suite's info-leak probes measure (paper 4.2: DSS
     * save/restore vs. the light gate's bare jump).
     */
    std::array<std::uint64_t, 8> scratch{};

    /** Zero the scratch file (the gate's register scrub). */
    void scrubScratch() { scratch.fill(0); }
    /** @} */

    /** @name Statistics. @{ */
    /** Bump a named event counter (gate crossings, faults, RPCs...). */
    void bump(const std::string &counter, std::uint64_t n = 1);
    std::uint64_t counter(const std::string &name) const;
    const std::map<std::string, std::uint64_t> &counters() const;
    /** @} */

    /** The timing model in force. */
    TimingModel timing;

    /** The machine the current thread of execution runs against. */
    static Machine &current();

    /** Whether a machine scope is installed. */
    static bool hasCurrent();

  private:
    friend class MachineScope;

    Cycles
    applyMultiplier(Cycles c) const
    {
        if (workMultiplier == 1.0)
            return c;
        return static_cast<Cycles>(static_cast<double>(c) *
                                   workMultiplier);
    }

    Cycles cycleCount = 0;
    std::map<std::string, std::uint64_t> stats;

    /** Banked register files; cores_[active_] is stale while active. */
    std::vector<CoreContext> cores_;
    int active_ = 0;
};

/**
 * RAII guard installing a Machine as Machine::current(). Scopes nest.
 */
class MachineScope
{
  public:
    explicit MachineScope(Machine &m);
    ~MachineScope();

    MachineScope(const MachineScope &) = delete;
    MachineScope &operator=(const MachineScope &) = delete;

  private:
    Machine *saved;
};

/** Convenience: charge cycles to the current machine. */
inline void
consumeCycles(Cycles c)
{
    Machine::current().consume(c);
}

} // namespace flexos

#endif // FLEXOS_MACHINE_MACHINE_HH
