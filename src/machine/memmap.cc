#include "machine/memmap.hh"

#include "base/logging.hh"

namespace flexos {

void
MemoryMap::add(const void *base, std::size_t size, ProtKey key,
               std::string name)
{
    panic_if(size == 0, "empty region '", name, "'");
    auto addr = reinterpret_cast<std::uintptr_t>(base);

    // Reject overlap with the predecessor and successor regions.
    auto it = regions.upper_bound(addr);
    if (it != regions.begin()) {
        auto prev = std::prev(it);
        panic_if(prev->second.base + prev->second.size > addr,
                 "region '", name, "' overlaps '", prev->second.name, "'");
    }
    if (it != regions.end()) {
        panic_if(addr + size > it->second.base,
                 "region '", name, "' overlaps '", it->second.name, "'");
    }

    regions.emplace(addr,
                    MemRegion{addr, size, key, -1, std::move(name)});
}

void
MemoryMap::addVmPrivate(const void *base, std::size_t size, int vmOwner,
                        std::string name)
{
    panic_if(vmOwner < 0, "VM-private region needs an owner");
    add(base, size, 0, std::move(name));
    regions[reinterpret_cast<std::uintptr_t>(base)].vmOwner = vmOwner;
}

void
MemoryMap::remove(const void *base)
{
    auto addr = reinterpret_cast<std::uintptr_t>(base);
    auto it = regions.find(addr);
    panic_if(it == regions.end(), "removing unknown region");
    regions.erase(it);
}

void
MemoryMap::retag(const void *base, ProtKey key)
{
    auto addr = reinterpret_cast<std::uintptr_t>(base);
    auto it = regions.find(addr);
    panic_if(it == regions.end(), "retagging unknown region");
    it->second.key = key;
}

const MemRegion *
MemoryMap::find(const void *p) const
{
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    auto it = regions.upper_bound(addr);
    if (it == regions.begin())
        return nullptr;
    --it;
    return it->second.contains(addr) ? &it->second : nullptr;
}

const MemRegion *
MemoryMap::findOverlap(const void *p, std::size_t size) const
{
    const MemRegion *first = nullptr;
    forEachOverlap(p, size, [&](const MemRegion &r) {
        if (!first)
            first = &r;
    });
    return first;
}

} // namespace flexos
