#include "net/proto.hh"

namespace flexos {

std::uint16_t
inetChecksum(const std::uint8_t *data, std::size_t len, std::uint32_t seed)
{
    std::uint32_t sum = seed;
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += static_cast<std::uint32_t>(data[i] << 8 | data[i + 1]);
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i] << 8);
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

namespace {

/** TCP/UDP pseudo-header checksum seed. */
std::uint32_t
pseudoSeed(std::uint32_t srcIp, std::uint32_t dstIp, std::uint8_t proto,
           std::size_t l4Len)
{
    std::uint32_t sum = 0;
    sum += srcIp >> 16;
    sum += srcIp & 0xffff;
    sum += dstIp >> 16;
    sum += dstIp & 0xffff;
    sum += proto;
    sum += static_cast<std::uint32_t>(l4Len);
    return sum;
}

} // namespace

void
Ip4Header::serialize(std::uint8_t *p) const
{
    p[0] = 0x45; // version 4, IHL 5
    p[1] = 0;    // DSCP/ECN
    putBe16(p + 2, totalLen);
    putBe16(p + 4, id);
    putBe16(p + 6, 0); // flags/fragment offset
    p[8] = ttl;
    p[9] = protocol;
    putBe16(p + 10, 0); // checksum placeholder
    putBe32(p + 12, src);
    putBe32(p + 16, dst);
    putBe16(p + 10, inetChecksum(p, wireSize));
}

bool
Ip4Header::parse(const std::uint8_t *p, std::size_t len)
{
    if (len < wireSize || (p[0] >> 4) != 4 || (p[0] & 0xf) != 5)
        return false;
    if (inetChecksum(p, wireSize) != 0)
        return false;
    totalLen = getBe16(p + 2);
    id = getBe16(p + 4);
    ttl = p[8];
    protocol = p[9];
    src = getBe32(p + 12);
    dst = getBe32(p + 16);
    return totalLen >= wireSize && totalLen <= len;
}

void
TcpHeader::serialize(std::uint8_t *p, std::uint32_t srcIp,
                     std::uint32_t dstIp, const std::uint8_t *payload,
                     std::size_t payloadLen) const
{
    putBe16(p, srcPort);
    putBe16(p + 2, dstPort);
    putBe32(p + 4, seq);
    putBe32(p + 8, ack);
    p[12] = 5 << 4; // data offset: 5 words
    p[13] = flags;
    putBe16(p + 14, window);
    putBe16(p + 16, 0); // checksum placeholder
    putBe16(p + 18, 0); // urgent pointer

    std::uint32_t seed = pseudoSeed(srcIp, dstIp, Ip4Header::protoTcp,
                                    wireSize + payloadLen);
    // Checksum covers header then payload; fold header first (even size).
    std::uint32_t sum = seed;
    for (std::size_t i = 0; i < wireSize; i += 2)
        sum += static_cast<std::uint32_t>(p[i] << 8 | p[i + 1]);
    std::uint16_t csum = inetChecksum(payload, payloadLen, sum);
    putBe16(p + 16, csum);
}

bool
TcpHeader::parse(const std::uint8_t *p, std::size_t segmentLen,
                 std::uint32_t srcIp, std::uint32_t dstIp)
{
    if (segmentLen < wireSize)
        return false;
    std::uint32_t seed = pseudoSeed(srcIp, dstIp, Ip4Header::protoTcp,
                                    segmentLen);
    if (inetChecksum(p, segmentLen, seed) != 0)
        return false;
    srcPort = getBe16(p);
    dstPort = getBe16(p + 2);
    seq = getBe32(p + 4);
    ack = getBe32(p + 8);
    flags = p[13];
    window = getBe16(p + 14);
    return (p[12] >> 4) == 5;
}

void
UdpHeader::serialize(std::uint8_t *p) const
{
    putBe16(p, srcPort);
    putBe16(p + 2, dstPort);
    putBe16(p + 4, length);
    putBe16(p + 6, 0); // checksum optional in IPv4; we leave it zero
}

bool
UdpHeader::parse(const std::uint8_t *p, std::size_t len)
{
    if (len < wireSize)
        return false;
    srcPort = getBe16(p);
    dstPort = getBe16(p + 2);
    length = getBe16(p + 4);
    return length >= wireSize && length <= len;
}

} // namespace flexos
