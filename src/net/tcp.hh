/**
 * @file
 * lwip-like TCP/IP stack: blocking sockets over the simulated NIC.
 *
 * Implements real TCP machinery — three-way handshake, cumulative ACKs,
 * flow control with advertised windows, out-of-order reassembly,
 * retransmission with exponential backoff, zero-window probing and
 * graceful FIN teardown — enough for the workloads the paper evaluates
 * (Redis, Nginx, iPerf) to run over realistic packet exchanges, and to
 * survive the loss/reorder property tests.
 */

#ifndef FLEXOS_NET_TCP_HH
#define FLEXOS_NET_TCP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "net/nic.hh"
#include "net/proto.hh"
#include "uksched/scheduler.hh"
#include "uktime/clock.hh"

namespace flexos {

class NetStack;

/**
 * A TCP socket (also used as the listener object). All calls block the
 * calling fiber cooperatively; the stack's poller thread drives protocol
 * progress.
 */
class TcpSocket
{
  public:
    enum class State
    {
        Closed,
        Listen,
        SynSent,
        SynRcvd,
        Established,
        FinWait1,
        FinWait2,
        CloseWait,
        LastAck,
    };

    /** Maximum segment payload. */
    static constexpr std::size_t mss = 1400;
    /** Send/receive buffer capacity. */
    static constexpr std::size_t bufMax = 64 * 1024;

    /**
     * Send n bytes; blocks while the send buffer is full.
     * @return n, or -1 if the connection failed.
     */
    long send(const void *buf, std::size_t n);

    /**
     * Receive up to n bytes; blocks until data, EOF or error.
     * @return bytes read; 0 on orderly EOF; -1 on error.
     */
    long recv(void *buf, std::size_t n);

    /** Accept one established connection (listener sockets only). */
    TcpSocket *accept();

    /** Flush outstanding data and send FIN. */
    void close();

    /** Hard reset without the FIN handshake (test hook). */
    void abort();

    State state() const { return st; }
    bool established() const { return st == State::Established; }
    bool hasError() const { return errored; }
    std::uint16_t localPort() const { return lPort; }
    std::uint16_t remotePort() const { return rPort; }
    std::uint32_t remoteIp() const { return rIp; }

    /** Bytes immediately available to recv(). */
    std::size_t available() const { return rcvBuf.size(); }

    /** Established connections waiting in accept() (listeners only). */
    std::size_t pendingAccepts() const { return acceptQueue.size(); }

    /** True once the peer sent FIN and the buffer may still drain. */
    bool peerHasClosed() const { return peerClosed; }

  private:
    friend class NetStack;

    explicit TcpSocket(NetStack &stack);

    void handleSegment(const TcpHeader &h, const std::uint8_t *payload,
                       std::size_t len);
    void handleAck(const TcpHeader &h);
    void handleData(const TcpHeader &h, const std::uint8_t *payload,
                    std::size_t len);
    void handleFin(const TcpHeader &h, std::size_t payloadLen);
    void transmit();
    void sendControl(std::uint8_t flags);
    void sendDataSegment(std::uint32_t seq, const std::uint8_t *data,
                         std::size_t len);
    void armRetransmit();
    void cancelRetransmit();
    void onRetransmitTimeout();
    void enterEstablished();
    void failConnection();
    void maybeSendWindowUpdate();
    std::uint16_t advertisedWindow() const;
    std::size_t dataInFlight() const;

    NetStack &stack;

    State st = State::Closed;
    bool errored = false;

    std::uint16_t lPort = 0;
    std::uint16_t rPort = 0;
    std::uint32_t rIp = 0;

    // Send side.
    std::uint32_t iss = 0;
    std::uint32_t sndUna = 0;
    std::uint32_t sndNxt = 0;
    std::deque<std::uint8_t> sndQueue; ///< in-flight + unsent bytes
    std::size_t flightData = 0;        ///< in-flight data bytes
    std::uint32_t peerWindow = bufMax;
    bool synInFlight = false;
    bool finQueued = false;
    bool finInFlight = false;
    bool finAcked = false;
    std::uint32_t finSeq = 0;

    // Receive side.
    std::uint32_t rcvNxt = 0;
    std::deque<std::uint8_t> rcvBuf;
    std::map<std::uint32_t, std::vector<std::uint8_t>> outOfOrder;
    bool peerClosed = false;
    std::uint16_t lastAdvWindow = 0xffff;

    // Retransmission.
    std::uint64_t rtxTimer = 0; ///< live timer id, 0 if unarmed
    std::uint64_t rtoNs = 0;

    // Blocking support.
    WaitQueue readers;
    WaitQueue writers;
    WaitQueue connectWait;

    // Listener state.
    std::deque<TcpSocket *> acceptQueue;
    WaitQueue acceptWait;
    TcpSocket *parent = nullptr; ///< listener that spawned us
};

/**
 * A host's network stack instance: demultiplexing, socket lifetime,
 * timers and the poller thread.
 */
class NetStack
{
  public:
    NetStack(Machine &m, Scheduler &s, NicEndpoint &nic,
             std::uint32_t ipAddr);
    ~NetStack();

    NetStack(const NetStack &) = delete;
    NetStack &operator=(const NetStack &) = delete;

    /** Open a listening socket on a port. */
    TcpSocket *listen(std::uint16_t port);

    /** Actively connect; blocks until established or failed. */
    TcpSocket *connect(std::uint32_t dstIp, std::uint16_t dstPort);

    /** Process all pending frames and due timers once. @return work done */
    bool pollOnce();

    /**
     * Spawn the poller fiber. It loops pollOnce() + yield until stop().
     */
    void startPoller(const std::string &name = "netpoll");

    /** Ask the poller to exit (it observes the flag at its next loop). */
    void stop() { stopping = true; }

    std::uint32_t ip() const { return ipAddr; }
    Machine &machine() { return mach; }
    Scheduler &scheduler() { return sched; }
    TimerQueue &timerQueue() { return timers; }

    /** Base retransmission timeout (virtual ns); tests shrink it. */
    std::uint64_t baseRtoNs = 200'000'000; // 200 ms

  private:
    friend class TcpSocket;

    struct FlowKey
    {
        std::uint16_t localPort;
        std::uint32_t remoteIp;
        std::uint16_t remotePort;

        bool
        operator<(const FlowKey &o) const
        {
            if (localPort != o.localPort)
                return localPort < o.localPort;
            if (remoteIp != o.remoteIp)
                return remoteIp < o.remoteIp;
            return remotePort < o.remotePort;
        }
    };

    void handleFrame(NetBuf frame);
    void sendSegment(TcpSocket &sock, std::uint8_t flags,
                     std::uint32_t seq, const std::uint8_t *payload,
                     std::size_t len);
    TcpSocket *makeSocket();
    void registerFlow(TcpSocket *s);
    void unregisterFlow(TcpSocket *s);
    std::uint16_t ephemeralPort();
    std::uint32_t pickIss();

    Machine &mach;
    Scheduler &sched;
    NicEndpoint &nic;
    std::uint32_t ipAddr;
    TimerQueue timers;

    std::vector<std::unique_ptr<TcpSocket>> sockets;
    std::map<FlowKey, TcpSocket *> flows;
    std::map<std::uint16_t, TcpSocket *> listeners;
    std::uint16_t nextEphemeral = 49152;
    std::uint32_t issCounter = 1000;
    bool stopping = false;
};

} // namespace flexos

#endif // FLEXOS_NET_TCP_HH
