/**
 * @file
 * lwip-like TCP/IP stack: blocking sockets over the simulated NIC.
 *
 * Implements real TCP machinery — three-way handshake, cumulative ACKs,
 * flow control with advertised windows, out-of-order reassembly,
 * retransmission with exponential backoff, zero-window probing and
 * graceful FIN teardown — enough for the workloads the paper evaluates
 * (Redis, Nginx, iPerf) to run over realistic packet exchanges, and to
 * survive the loss/reorder property tests.
 */

#ifndef FLEXOS_NET_TCP_HH
#define FLEXOS_NET_TCP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/nic.hh"
#include "net/proto.hh"
#include "uksched/scheduler.hh"
#include "uktime/clock.hh"

namespace flexos {

class NetStack;

/**
 * A TCP socket (also used as the listener object). All calls block the
 * calling fiber cooperatively; the stack's poller thread drives protocol
 * progress.
 */
class TcpSocket
{
  public:
    enum class State
    {
        Closed,
        Listen,
        SynSent,
        SynRcvd,
        Established,
        FinWait1,
        FinWait2,
        CloseWait,
        LastAck,
    };

    /** Maximum segment payload. */
    static constexpr std::size_t mss = 1400;
    /** Send/receive buffer capacity. */
    static constexpr std::size_t bufMax = 64 * 1024;
    /** Default listener backlog (embryonic + accept-ready children). */
    static constexpr std::size_t defaultBacklog = 128;

    /**
     * Send n bytes; blocks while the send buffer is full.
     * @return n, or -1 if the connection failed.
     */
    long send(const void *buf, std::size_t n);

    /**
     * Receive up to n bytes; blocks until data, EOF or error.
     * @return bytes read; 0 on orderly EOF; -1 on error.
     */
    long recv(void *buf, std::size_t n);

    /** Accept one established connection (listener sockets only). */
    TcpSocket *accept();

    /** Flush outstanding data and send FIN. */
    void close();

    /** Hard reset without the FIN handshake (test hook). */
    void abort();

    State state() const { return st; }
    bool established() const { return st == State::Established; }
    bool hasError() const { return errored; }
    std::uint16_t localPort() const { return lPort; }
    std::uint16_t remotePort() const { return rPort; }
    std::uint32_t remoteIp() const { return rIp; }

    /** Bytes immediately available to recv(). */
    std::size_t available() const { return rcvBuf.size(); }

    /** Established connections waiting in accept() (listeners only). */
    std::size_t pendingAccepts() const { return acceptQueue.size(); }

    /** True once the peer sent FIN and the buffer may still drain. */
    bool peerHasClosed() const { return peerClosed; }

    /** Bytes currently parked in the out-of-order reassembly queue. */
    std::size_t oooQueuedBytes() const { return oooBytes; }

    /**
     * Cap on out-of-order reassembly memory. When exceeded, the
     * segments farthest from rcvNxt are evicted (the peer retransmits
     * them); tests shrink this to exercise eviction.
     */
    std::size_t oooLimit = bufMax;

  private:
    friend class NetStack;

    explicit TcpSocket(NetStack &stack);

    void handleSegment(const TcpHeader &h, NetBufView payload);
    void handleAck(const TcpHeader &h);
    void handleData(const TcpHeader &h, NetBufView payload);
    void deliverInOrder(NetBufView payload);
    void drainOutOfOrder();
    void stashOutOfOrder(std::uint32_t seq, NetBufView payload);
    void enforceOooBound();
    void handleFin(const TcpHeader &h, std::size_t payloadLen);
    void transmit();
    void sendControl(std::uint8_t flags);
    void sendDataSegment(std::uint32_t seq, const std::uint8_t *data,
                         std::size_t len);
    void armRetransmit();
    void cancelRetransmit();
    void onRetransmitTimeout();
    void enterEstablished();
    void enterClosed();
    void leaveSynBacklog();
    void failConnection();
    void maybeSendWindowUpdate();
    std::uint16_t advertisedWindow() const;
    std::size_t dataInFlight() const;

    NetStack &stack;

    State st = State::Closed;
    bool errored = false;

    std::uint16_t lPort = 0;
    std::uint16_t rPort = 0;
    std::uint32_t rIp = 0;

    // Send side.
    std::uint32_t iss = 0;
    std::uint32_t sndUna = 0;
    std::uint32_t sndNxt = 0;
    std::deque<std::uint8_t> sndQueue; ///< in-flight + unsent bytes
    std::size_t flightData = 0;        ///< in-flight data bytes
    std::uint32_t peerWindow = bufMax;
    bool synInFlight = false;
    bool finQueued = false;
    bool finInFlight = false;
    bool finAcked = false;
    std::uint32_t finSeq = 0;

    // Receive side. The out-of-order queue holds pairwise-disjoint
    // segments keyed by sequence number, all beyond rcvNxt; oooBytes
    // tracks their total size against oooLimit. Ordering uses
    // wraparound-aware sequence comparison — a valid strict weak
    // ordering because all stashed segments lie within half the
    // sequence space of each other (bounded by window + oooLimit) —
    // so lower_bound/eviction stay correct across a 2^32 wrap.
    struct SeqOrder
    {
        bool
        operator()(std::uint32_t a, std::uint32_t b) const
        {
            return seqLt(a, b);
        }
    };
    std::uint32_t rcvNxt = 0;
    std::deque<std::uint8_t> rcvBuf;
    std::map<std::uint32_t, std::vector<std::uint8_t>, SeqOrder>
        outOfOrder;
    std::size_t oooBytes = 0;
    bool peerClosed = false;
    std::uint16_t lastAdvWindow = 0xffff;

    // Retransmission.
    std::uint64_t rtxTimer = 0; ///< live timer id, 0 if unarmed
    std::uint64_t rtoNs = 0;

    // Blocking support.
    WaitQueue readers;
    WaitQueue writers;
    WaitQueue connectWait;

    // Listener state. backlog bounds embryonic (SYN-received) plus
    // accept-ready children; SYNs beyond it are dropped and the client
    // retries.
    std::deque<TcpSocket *> acceptQueue;
    WaitQueue acceptWait;
    std::size_t backlog = defaultBacklog;
    std::size_t embryonic = 0;   ///< children still in SynRcvd
    bool inSynBacklog = false;   ///< this child occupies a backlog slot
    bool flowRegistered = false; ///< present in the stack's flow table
    TcpSocket *parent = nullptr; ///< listener that spawned us
};

/**
 * A host's network stack instance: demultiplexing, socket lifetime,
 * timers and the poller thread.
 */
class NetStack
{
  public:
    NetStack(Machine &m, Scheduler &s, NicEndpoint &nic,
             std::uint32_t ipAddr);
    ~NetStack();

    NetStack(const NetStack &) = delete;
    NetStack &operator=(const NetStack &) = delete;

    /**
     * Open a listening socket on a port. backlog bounds the number of
     * not-yet-accepted children (embryonic + accept-ready); excess SYNs
     * are dropped and recovered by the client's SYN retransmission.
     */
    TcpSocket *listen(std::uint16_t port,
                      std::size_t backlog = TcpSocket::defaultBacklog);

    /** Actively connect; blocks until established or failed. */
    TcpSocket *connect(std::uint32_t dstIp, std::uint16_t dstPort);

    /** Process all pending frames and due timers once. @return work done */
    bool pollOnce();

    /**
     * Drain one RX queue (and, on queue 0, the timer wheel). The
     * per-core pollers of an RSS-enabled stack each call this with
     * their own queue so no two cores touch the same ring.
     * @return work done
     */
    bool pollQueue(std::size_t q);

    /**
     * Pull up to max frames off one RX queue without processing them —
     * the driver half of the batched receive path. A poller living
     * outside the lwip compartment fetches a burst here, then pushes
     * every frame through handleRxFrame() behind a single vectored
     * gate crossing. Charges one pollDispatch like pollQueue(); frames
     * come back in ring order, and RSS steers all of a flow's segments
     * to one queue, so per-flow TCP ordering is preserved.
     */
    std::vector<NetBuf> fetchBurst(std::size_t q, std::size_t max);

    /** Process one fetched frame (protocol half of the batched path). */
    void handleRxFrame(NetBuf frame);

    /**
     * True if the timer wheel has a deadline at or before now — a
     * charge-free driver-side peek so a batched poller only crosses
     * into lwip for timer work when something is actually due. May be
     * spuriously true for a cancelled-but-unreaped timer; the crossing
     * then fires nothing, which is harmless.
     */
    bool timersDue() const;

    /** Fire due timers (the protocol half of timersDue). @return fired */
    std::size_t pollTimers();

    /**
     * Configure RSS flow steering on the NIC: `queues` RX queues, one
     * per serving core, with arriving TCP frames hashed over their
     * 4-tuple so every connection's segments land on one queue (and
     * therefore one core) deterministically.
     */
    void enableRss(std::size_t queues);

    /** RX queues after enableRss (1 before). */
    std::size_t rxQueueCount() const { return rssQueues; }

    /**
     * Frames pending in queue q's RX ring right now — the runtime
     * policy controller's backlog probe (batch-width adaptation).
     */
    std::size_t rxBacklog(std::size_t q) const { return nic.pendingIn(q); }

    /** The RX queue this socket's inbound segments steer to. */
    std::size_t rssQueueOf(const TcpSocket &s) const;

    /** Toeplitz-style RSS hash of a flow 4-tuple (deterministic). */
    static std::uint32_t rssHash(std::uint32_t srcIp,
                                 std::uint16_t srcPort,
                                 std::uint32_t dstIp,
                                 std::uint16_t dstPort);

    /** Hash an arriving frame's TCP 4-tuple (0 for non-TCP frames). */
    static std::size_t steerFrame(const NetBuf &frame);

    /**
     * Block the calling poller until its RX queue sees a frame, the
     * next timer deadline (queue 0 polls the timer wheel) or a
     * heartbeat elapses — the NAPI idiom: poll while there is work,
     * sleep on the interrupt line otherwise.
     */
    void waitQueueActivity(std::size_t q);

    /** Wake every poller blocked in waitQueueActivity (shutdown). */
    void wakePollers();

    /**
     * Spawn the poller fiber. It loops pollOnce() + yield until stop().
     */
    void startPoller(const std::string &name = "netpoll");

    /** Ask the poller to exit (it observes the flag at its next loop). */
    void stop() { stopping = true; }

    std::uint32_t ip() const { return ipAddr; }
    Machine &machine() { return mach; }
    Scheduler &scheduler() { return sched; }
    TimerQueue &timerQueue() { return timers; }

    /** Active entries in the flow table (established + handshaking). */
    std::size_t flowCount() const { return flows.size(); }

    /** Base retransmission timeout (virtual ns); tests shrink it. */
    std::uint64_t baseRtoNs = 200'000'000; // 200 ms

  private:
    friend class TcpSocket;

    struct FlowKey
    {
        std::uint16_t localPort;
        std::uint32_t remoteIp;
        std::uint16_t remotePort;

        bool
        operator==(const FlowKey &o) const
        {
            return localPort == o.localPort && remoteIp == o.remoteIp &&
                   remotePort == o.remotePort;
        }
    };

    struct FlowKeyHash
    {
        std::size_t
        operator()(const FlowKey &k) const
        {
            std::uint64_t v = (std::uint64_t(k.localPort) << 48) ^
                              (std::uint64_t(k.remotePort) << 32) ^
                              k.remoteIp;
            // 64-bit mix (splitmix64 finalizer).
            v ^= v >> 30;
            v *= 0xbf58476d1ce4e5b9ull;
            v ^= v >> 27;
            v *= 0x94d049bb133111ebull;
            v ^= v >> 31;
            return static_cast<std::size_t>(v);
        }
    };

    void handleFrame(NetBuf frame);
    void sendSegment(TcpSocket &sock, std::uint8_t flags,
                     std::uint32_t seq, const std::uint8_t *payload,
                     std::size_t len);
    TcpSocket *makeSocket();
    void registerFlow(TcpSocket *s);
    void unregisterFlow(TcpSocket *s);
    std::uint16_t ephemeralPort();
    std::uint32_t pickIss();

    Machine &mach;
    Scheduler &sched;
    NicEndpoint &nic;
    std::uint32_t ipAddr;
    TimerQueue timers;

    std::vector<std::unique_ptr<TcpSocket>> sockets;
    std::unordered_map<FlowKey, TcpSocket *, FlowKeyHash> flows;
    std::unordered_map<std::uint16_t, TcpSocket *> listeners;
    std::uint16_t nextEphemeral = 49152;
    std::uint32_t issCounter = 1000;
    std::size_t rssQueues = 1;
    /** One wait per RX queue; frames arriving wake the matching one. */
    std::vector<std::unique_ptr<WaitQueue>> queueWaits;
    bool stopping = false;
};

} // namespace flexos

#endif // FLEXOS_NET_TCP_HH
