#include "net/tcp.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace flexos {

TcpSocket::TcpSocket(NetStack &s)
    : stack(s), readers(s.sched), writers(s.sched), connectWait(s.sched),
      acceptWait(s.sched)
{
    rtoNs = s.baseRtoNs;
}

std::uint16_t
TcpSocket::advertisedWindow() const
{
    std::size_t used = rcvBuf.size();
    std::size_t free = used >= bufMax ? 0 : bufMax - used;
    return static_cast<std::uint16_t>(std::min<std::size_t>(free, 0xffff));
}

std::size_t
TcpSocket::dataInFlight() const
{
    return flightData;
}

long
TcpSocket::send(const void *buf, std::size_t n)
{
    panic_if(st == State::Listen, "send() on a listening socket");
    const auto *p = static_cast<const std::uint8_t *>(buf);
    std::size_t done = 0;
    while (done < n) {
        if (errored)
            return -1;
        if (st != State::Established && st != State::CloseWait)
            return done ? static_cast<long>(done) : -1;
        if (sndQueue.size() >= bufMax) {
            writers.wait();
            continue;
        }
        std::size_t room = bufMax - sndQueue.size();
        std::size_t chunk = std::min(room, n - done);
        sndQueue.insert(sndQueue.end(), p + done, p + done + chunk);
        stack.mach.consumePerByte(chunk, stack.mach.timing.copyPer16B);
        done += chunk;
        transmit();
    }
    return static_cast<long>(done);
}

long
TcpSocket::recv(void *buf, std::size_t n)
{
    panic_if(st == State::Listen, "recv() on a listening socket");
    while (rcvBuf.empty()) {
        if (errored)
            return -1;
        if (peerClosed || st == State::Closed)
            return 0; // orderly EOF
        readers.wait();
    }
    std::size_t got = std::min(n, rcvBuf.size());
    auto *out = static_cast<std::uint8_t *>(buf);
    std::copy(rcvBuf.begin(), rcvBuf.begin() + got, out);
    rcvBuf.erase(rcvBuf.begin(), rcvBuf.begin() + got);
    stack.mach.consumePerByte(got, stack.mach.timing.copyPer16B);
    maybeSendWindowUpdate();
    return static_cast<long>(got);
}

void
TcpSocket::maybeSendWindowUpdate()
{
    // If the window we last advertised was effectively closed and space
    // has reopened, tell the peer or it will stall on a zero window.
    if (lastAdvWindow < mss && advertisedWindow() >= mss &&
        st == State::Established)
        sendControl(tcpAck);
}

TcpSocket *
TcpSocket::accept()
{
    panic_if(st != State::Listen, "accept() on a non-listening socket");
    while (acceptQueue.empty())
        acceptWait.wait();
    TcpSocket *child = acceptQueue.front();
    acceptQueue.pop_front();
    return child;
}

void
TcpSocket::close()
{
    if (st == State::Listen || st == State::Closed)
        return;
    if (errored) {
        st = State::Closed;
        return;
    }
    finQueued = true;
    transmit();
}

void
TcpSocket::abort()
{
    sendControl(tcpRst);
    failConnection();
}

void
TcpSocket::failConnection()
{
    errored = true;
    st = State::Closed;
    cancelRetransmit();
    readers.wakeAll();
    writers.wakeAll();
    connectWait.wakeAll();
}

void
TcpSocket::enterEstablished()
{
    st = State::Established;
    synInFlight = false;
    connectWait.wakeAll();
    if (parent) {
        parent->acceptQueue.push_back(this);
        parent->acceptWait.wakeOne();
    }
}

void
TcpSocket::handleSegment(const TcpHeader &h, const std::uint8_t *payload,
                         std::size_t len)
{
    stack.mach.consume(stack.mach.timing.packetProc);

    if (h.flags & tcpRst) {
        failConnection();
        return;
    }

    switch (st) {
      case State::SynSent:
        if ((h.flags & (tcpSyn | tcpAck)) == (tcpSyn | tcpAck) &&
            h.ack == iss + 1) {
            rcvNxt = h.seq + 1;
            sndUna = h.ack;
            peerWindow = h.window;
            enterEstablished();
            sendControl(tcpAck);
            cancelRetransmit();
        }
        return;

      case State::SynRcvd:
        if (h.flags & tcpAck && h.ack == iss + 1) {
            sndUna = h.ack;
            peerWindow = h.window;
            cancelRetransmit();
            enterEstablished();
            // Fall through to data processing: the ACK may carry data.
            if (len)
                handleData(h, payload, len);
        }
        return;

      case State::Established:
      case State::FinWait1:
      case State::FinWait2:
      case State::CloseWait:
      case State::LastAck:
        if (h.flags & tcpAck)
            handleAck(h);
        if (len)
            handleData(h, payload, len);
        if (h.flags & tcpFin)
            handleFin(h, len);
        transmit();
        return;

      case State::Closed:
      case State::Listen:
        return;
    }
}

void
TcpSocket::handleAck(const TcpHeader &h)
{
    peerWindow = h.window;
    if (!seqLt(sndUna, h.ack) || !seqLe(h.ack, sndNxt))
        return; // duplicate or out-of-range ACK

    std::uint32_t acked = h.ack - sndUna;
    std::size_t dataAcked =
        std::min<std::size_t>(acked, dataInFlight());
    sndQueue.erase(sndQueue.begin(),
                   sndQueue.begin() + static_cast<long>(dataAcked));
    flightData -= dataAcked;
    sndUna = h.ack;
    if (finInFlight && seqLt(finSeq, h.ack)) {
        finAcked = true;
        finInFlight = false;
        if (st == State::FinWait1)
            st = peerClosed ? State::Closed : State::FinWait2;
        else if (st == State::LastAck)
            st = State::Closed;
    }
    writers.wakeAll();

    // Reset the retransmission clock on forward progress.
    cancelRetransmit();
    rtoNs = stack.baseRtoNs;
    if (dataInFlight() > 0 || finInFlight || synInFlight)
        armRetransmit();
}

void
TcpSocket::handleData(const TcpHeader &h, const std::uint8_t *payload,
                      std::size_t len)
{
    stack.mach.consumePerByte(len, stack.mach.timing.csumPer16B);

    if (h.seq == rcvNxt) {
        rcvBuf.insert(rcvBuf.end(), payload, payload + len);
        stack.mach.consumePerByte(len, stack.mach.timing.copyPer16B);
        rcvNxt += static_cast<std::uint32_t>(len);

        // Merge any out-of-order segments that are now contiguous.
        for (auto it = outOfOrder.begin(); it != outOfOrder.end();) {
            std::uint32_t segSeq = it->first;
            auto &seg = it->second;
            std::uint32_t segEnd =
                segSeq + static_cast<std::uint32_t>(seg.size());
            if (seqLe(segEnd, rcvNxt)) {
                it = outOfOrder.erase(it); // fully duplicate
                continue;
            }
            if (seqLe(segSeq, rcvNxt)) {
                std::size_t skip = rcvNxt - segSeq;
                rcvBuf.insert(rcvBuf.end(), seg.begin() + skip, seg.end());
                rcvNxt = segEnd;
                it = outOfOrder.erase(it);
                continue;
            }
            break; // still a gap
        }
        readers.wakeAll();
    } else if (seqLt(rcvNxt, h.seq)) {
        // Future segment: stash for reassembly.
        outOfOrder.emplace(h.seq,
                           std::vector<std::uint8_t>(payload, payload + len));
        stack.mach.bump("tcp.outOfOrder");
    } else {
        stack.mach.bump("tcp.duplicates");
    }
    sendControl(tcpAck);
}

void
TcpSocket::handleFin(const TcpHeader &h, std::size_t payloadLen)
{
    std::uint32_t finPos = h.seq + static_cast<std::uint32_t>(payloadLen);
    if (finPos != rcvNxt)
        return; // FIN beyond a gap; wait for retransmission
    rcvNxt += 1;
    peerClosed = true;
    readers.wakeAll();
    sendControl(tcpAck);
    if (st == State::Established)
        st = State::CloseWait;
    else if (st == State::FinWait1 && finAcked)
        st = State::Closed;
    else if (st == State::FinWait2)
        st = State::Closed;
}

void
TcpSocket::transmit()
{
    if (st != State::Established && st != State::CloseWait &&
        st != State::FinWait1 && st != State::LastAck)
        return;

    while (true) {
        std::size_t unsent = sndQueue.size() - dataInFlight();
        if (unsent == 0)
            break;
        std::size_t inFlight = dataInFlight();
        std::size_t allowed =
            peerWindow > inFlight ? peerWindow - inFlight : 0;
        if (allowed == 0)
            break; // window closed; probe timer will take over
        std::size_t chunk = std::min({unsent, allowed, mss});

        // Gather the chunk from the deque (it is not contiguous).
        std::vector<std::uint8_t> seg(chunk);
        std::copy(sndQueue.begin() + static_cast<long>(inFlight),
                  sndQueue.begin() + static_cast<long>(inFlight + chunk),
                  seg.begin());
        sendDataSegment(sndNxt, seg.data(), chunk);
        sndNxt += static_cast<std::uint32_t>(chunk);
        flightData += chunk;
        armRetransmit();
    }

    // Emit the FIN once all queued data has been handed to the wire.
    if (finQueued && !finInFlight && !finAcked &&
        sndQueue.size() - dataInFlight() == 0 && dataInFlight() == 0) {
        finSeq = sndNxt;
        sendControl(tcpFin | tcpAck);
        sndNxt += 1;
        finInFlight = true;
        finQueued = false;
        st = (st == State::CloseWait) ? State::LastAck : State::FinWait1;
        armRetransmit();
    }
}

void
TcpSocket::sendControl(std::uint8_t flags)
{
    std::uint32_t seq = (flags & tcpSyn) ? iss : sndNxt;
    stack.sendSegment(*this, flags, seq, nullptr, 0);
    lastAdvWindow = advertisedWindow();
}

void
TcpSocket::sendDataSegment(std::uint32_t seq, const std::uint8_t *data,
                           std::size_t len)
{
    stack.sendSegment(*this, tcpAck | tcpPsh, seq, data, len);
    lastAdvWindow = advertisedWindow();
}

void
TcpSocket::armRetransmit()
{
    if (rtxTimer)
        return;
    rtxTimer = stack.timers.arm(rtoNs, [this] { onRetransmitTimeout(); });
}

void
TcpSocket::cancelRetransmit()
{
    if (rtxTimer) {
        stack.timers.cancel(rtxTimer);
        rtxTimer = 0;
    }
}

void
TcpSocket::onRetransmitTimeout()
{
    rtxTimer = 0;
    if (st == State::Closed)
        return;

    stack.mach.bump("tcp.retransmits");
    if (synInFlight) {
        stack.sendSegment(*this, st == State::SynRcvd
                                     ? std::uint8_t(tcpSyn | tcpAck)
                                     : std::uint8_t(tcpSyn),
                          iss, nullptr, 0);
    } else if (dataInFlight() > 0) {
        std::size_t chunk = std::min(dataInFlight(), mss);
        std::vector<std::uint8_t> seg(sndQueue.begin(),
                                      sndQueue.begin() +
                                          static_cast<long>(chunk));
        sendDataSegment(sndUna, seg.data(), chunk);
    } else if (finInFlight) {
        stack.sendSegment(*this, tcpFin | tcpAck, finSeq, nullptr, 0);
    } else if (sndQueue.size() > 0 && peerWindow == 0) {
        sendControl(tcpAck); // zero-window probe
    } else {
        return; // nothing outstanding
    }

    rtoNs = std::min<std::uint64_t>(rtoNs * 2, 4'000'000'000ull);
    armRetransmit();
}

NetStack::NetStack(Machine &m, Scheduler &s, NicEndpoint &nicEnd,
                   std::uint32_t ip)
    : mach(m), sched(s), nic(nicEnd), ipAddr(ip), timers(m)
{
}

NetStack::~NetStack() = default;

TcpSocket *
NetStack::makeSocket()
{
    sockets.push_back(std::unique_ptr<TcpSocket>(new TcpSocket(*this)));
    return sockets.back().get();
}

void
NetStack::registerFlow(TcpSocket *s)
{
    FlowKey key{s->lPort, s->rIp, s->rPort};
    panic_if(flows.count(key), "duplicate TCP flow");
    flows[key] = s;
}

void
NetStack::unregisterFlow(TcpSocket *s)
{
    flows.erase(FlowKey{s->lPort, s->rIp, s->rPort});
}

std::uint16_t
NetStack::ephemeralPort()
{
    return nextEphemeral++;
}

std::uint32_t
NetStack::pickIss()
{
    issCounter += 64000;
    return issCounter;
}

TcpSocket *
NetStack::listen(std::uint16_t port)
{
    fatal_if(listeners.count(port), "port ", port, " already listening");
    TcpSocket *s = makeSocket();
    s->st = TcpSocket::State::Listen;
    s->lPort = port;
    listeners[port] = s;
    return s;
}

TcpSocket *
NetStack::connect(std::uint32_t dstIp, std::uint16_t dstPort)
{
    TcpSocket *s = makeSocket();
    s->lPort = ephemeralPort();
    s->rIp = dstIp;
    s->rPort = dstPort;
    s->iss = pickIss();
    s->sndUna = s->iss;
    s->sndNxt = s->iss + 1;
    s->synInFlight = true;
    s->st = TcpSocket::State::SynSent;
    registerFlow(s);
    sendSegment(*s, tcpSyn, s->iss, nullptr, 0);
    s->armRetransmit();

    while (s->st == TcpSocket::State::SynSent)
        s->connectWait.wait();
    return s->established() ? s : nullptr;
}

void
NetStack::sendSegment(TcpSocket &sock, std::uint8_t flags,
                      std::uint32_t seq, const std::uint8_t *payload,
                      std::size_t len)
{
    mach.consume(mach.timing.packetProc);
    mach.consumePerByte(len, mach.timing.csumPer16B);
    mach.bump("tcp.segmentsOut");

    NetBuf frame;
    if (len)
        frame.append(payload, len);

    TcpHeader tcp;
    tcp.srcPort = sock.lPort;
    tcp.dstPort = sock.rPort;
    tcp.seq = seq;
    tcp.ack = sock.rcvNxt;
    tcp.flags = flags;
    tcp.window = sock.advertisedWindow();
    std::uint8_t *tcpAt = frame.push(TcpHeader::wireSize);
    tcp.serialize(tcpAt, ipAddr, sock.rIp, tcpAt + TcpHeader::wireSize,
                  len);

    Ip4Header ip;
    ip.totalLen = static_cast<std::uint16_t>(Ip4Header::wireSize +
                                             TcpHeader::wireSize + len);
    ip.protocol = Ip4Header::protoTcp;
    ip.src = ipAddr;
    ip.dst = sock.rIp;
    ip.serialize(frame.push(Ip4Header::wireSize));

    EthHeader eth{};
    eth.etherType = EthHeader::typeIp4;
    eth.serialize(frame.push(EthHeader::wireSize));

    nic.transmit(std::move(frame));
}

void
NetStack::handleFrame(NetBuf frame)
{
    EthHeader eth;
    if (frame.size() < EthHeader::wireSize)
        return;
    eth.parse(frame.data());
    if (eth.etherType != EthHeader::typeIp4)
        return;
    frame.pull(EthHeader::wireSize);

    Ip4Header ip;
    if (!ip.parse(frame.data(), frame.size())) {
        mach.bump("ip.badHeader");
        return;
    }
    if (ip.dst != ipAddr) {
        mach.bump("ip.notMine");
        return;
    }
    if (ip.protocol != Ip4Header::protoTcp)
        return;
    frame.pull(Ip4Header::wireSize);
    std::size_t segLen = ip.totalLen - Ip4Header::wireSize;
    if (segLen > frame.size()) {
        mach.bump("ip.truncated");
        return;
    }

    TcpHeader tcp;
    if (!tcp.parse(frame.data(), segLen, ip.src, ip.dst)) {
        mach.bump("tcp.badChecksum");
        return;
    }
    const std::uint8_t *payload = frame.data() + TcpHeader::wireSize;
    std::size_t payloadLen = segLen - TcpHeader::wireSize;

    // Exact flow match first.
    auto it = flows.find(FlowKey{tcp.dstPort, ip.src, tcp.srcPort});
    if (it != flows.end()) {
        it->second->handleSegment(tcp, payload, payloadLen);
        return;
    }

    // New connection to a listener?
    auto lit = listeners.find(tcp.dstPort);
    if (lit != listeners.end() && (tcp.flags & tcpSyn) &&
        !(tcp.flags & tcpAck)) {
        TcpSocket *child = makeSocket();
        child->lPort = tcp.dstPort;
        child->rIp = ip.src;
        child->rPort = tcp.srcPort;
        child->parent = lit->second;
        child->iss = pickIss();
        child->sndUna = child->iss;
        child->sndNxt = child->iss + 1;
        child->rcvNxt = tcp.seq + 1;
        child->peerWindow = tcp.window;
        child->synInFlight = true;
        child->st = TcpSocket::State::SynRcvd;
        registerFlow(child);
        sendSegment(*child, tcpSyn | tcpAck, child->iss, nullptr, 0);
        child->armRetransmit();
        return;
    }

    mach.bump("tcp.noMatch");
}

bool
NetStack::pollOnce()
{
    bool worked = false;
    mach.consume(mach.timing.pollDispatch);
    while (auto f = nic.receive()) {
        handleFrame(std::move(*f));
        worked = true;
    }
    if (timers.poll() > 0)
        worked = true;
    return worked;
}

void
NetStack::startPoller(const std::string &name)
{
    stopping = false;
    sched.spawn(name, [this] {
        while (!stopping) {
            pollOnce();
            sched.yield();
        }
    });
}

} // namespace flexos
