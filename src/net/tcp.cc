#include "net/tcp.hh"

#include <algorithm>
#include <cstring>

#include "base/logging.hh"

namespace flexos {

TcpSocket::TcpSocket(NetStack &s)
    : stack(s), readers(s.sched), writers(s.sched), connectWait(s.sched),
      acceptWait(s.sched)
{
    rtoNs = s.baseRtoNs;
}

std::uint16_t
TcpSocket::advertisedWindow() const
{
    std::size_t used = rcvBuf.size();
    std::size_t free = used >= bufMax ? 0 : bufMax - used;
    return static_cast<std::uint16_t>(std::min<std::size_t>(free, 0xffff));
}

std::size_t
TcpSocket::dataInFlight() const
{
    return flightData;
}

long
TcpSocket::send(const void *buf, std::size_t n)
{
    panic_if(st == State::Listen, "send() on a listening socket");
    const auto *p = static_cast<const std::uint8_t *>(buf);
    std::size_t done = 0;
    while (done < n) {
        if (errored)
            return -1;
        if (st != State::Established && st != State::CloseWait)
            return done ? static_cast<long>(done) : -1;
        if (sndQueue.size() >= bufMax) {
            writers.wait();
            continue;
        }
        std::size_t room = bufMax - sndQueue.size();
        std::size_t chunk = std::min(room, n - done);
        sndQueue.insert(sndQueue.end(), p + done, p + done + chunk);
        stack.mach.consumePerByte(chunk, stack.mach.timing.copyPer16B);
        done += chunk;
        transmit();
    }
    return static_cast<long>(done);
}

long
TcpSocket::recv(void *buf, std::size_t n)
{
    panic_if(st == State::Listen, "recv() on a listening socket");
    while (rcvBuf.empty()) {
        if (errored)
            return -1;
        if (peerClosed || st == State::Closed)
            return 0; // orderly EOF
        readers.wait();
    }
    std::size_t got = std::min(n, rcvBuf.size());
    auto *out = static_cast<std::uint8_t *>(buf);
    std::copy(rcvBuf.begin(), rcvBuf.begin() + got, out);
    rcvBuf.erase(rcvBuf.begin(), rcvBuf.begin() + got);
    stack.mach.consumePerByte(got, stack.mach.timing.copyPer16B);
    maybeSendWindowUpdate();
    return static_cast<long>(got);
}

void
TcpSocket::maybeSendWindowUpdate()
{
    // If the window we last advertised was effectively closed and space
    // has reopened, tell the peer or it will stall on a zero window.
    if (lastAdvWindow < mss && advertisedWindow() >= mss &&
        st == State::Established)
        sendControl(tcpAck);
}

TcpSocket *
TcpSocket::accept()
{
    panic_if(st != State::Listen, "accept() on a non-listening socket");
    while (acceptQueue.empty())
        acceptWait.wait();
    TcpSocket *child = acceptQueue.front();
    acceptQueue.pop_front();
    return child;
}

void
TcpSocket::close()
{
    if (st == State::Listen || st == State::Closed)
        return;
    if (errored) {
        st = State::Closed;
        return;
    }
    finQueued = true;
    transmit();
}

void
TcpSocket::abort()
{
    sendControl(tcpRst);
    failConnection();
}

void
TcpSocket::failConnection()
{
    errored = true;
    st = State::Closed;
    leaveSynBacklog();
    stack.unregisterFlow(this);
    cancelRetransmit();
    readers.wakeAll();
    writers.wakeAll();
    connectWait.wakeAll();
}

void
TcpSocket::leaveSynBacklog()
{
    if (parent && inSynBacklog) {
        panic_if(parent->embryonic == 0, "listener backlog underflow");
        --parent->embryonic;
        inSynBacklog = false;
    }
}

void
TcpSocket::enterEstablished()
{
    st = State::Established;
    synInFlight = false;
    connectWait.wakeAll();
    leaveSynBacklog();
    if (parent) {
        parent->acceptQueue.push_back(this);
        parent->acceptWait.wakeOne();
    }
}

void
TcpSocket::enterClosed()
{
    st = State::Closed;
    stack.unregisterFlow(this);
    readers.wakeAll();
}

void
TcpSocket::handleSegment(const TcpHeader &h, NetBufView payload)
{
    stack.mach.consume(stack.mach.timing.packetProc);

    if (h.flags & tcpRst) {
        failConnection();
        return;
    }

    switch (st) {
      case State::SynSent:
        if ((h.flags & (tcpSyn | tcpAck)) == (tcpSyn | tcpAck) &&
            h.ack == iss + 1) {
            rcvNxt = h.seq + 1;
            sndUna = h.ack;
            peerWindow = h.window;
            enterEstablished();
            sendControl(tcpAck);
            cancelRetransmit();
        }
        return;

      case State::SynRcvd:
        if (h.flags & tcpAck && h.ack == iss + 1) {
            sndUna = h.ack;
            peerWindow = h.window;
            cancelRetransmit();
            enterEstablished();
            // Fall through to data processing: the ACK may carry data.
            if (!payload.empty())
                handleData(h, payload);
        }
        return;

      case State::Established:
      case State::FinWait1:
      case State::FinWait2:
      case State::CloseWait:
      case State::LastAck:
        if (h.flags & tcpAck)
            handleAck(h);
        if (!payload.empty())
            handleData(h, payload);
        if (h.flags & tcpFin)
            handleFin(h, payload.size());
        transmit();
        return;

      case State::Closed:
      case State::Listen:
        return;
    }
}

void
TcpSocket::handleAck(const TcpHeader &h)
{
    peerWindow = h.window;
    if (!seqLt(sndUna, h.ack) || !seqLe(h.ack, sndNxt))
        return; // duplicate or out-of-range ACK

    std::uint32_t acked = h.ack - sndUna;
    std::size_t dataAcked =
        std::min<std::size_t>(acked, dataInFlight());
    sndQueue.erase(sndQueue.begin(),
                   sndQueue.begin() + static_cast<long>(dataAcked));
    flightData -= dataAcked;
    sndUna = h.ack;
    if (finInFlight && seqLt(finSeq, h.ack)) {
        finAcked = true;
        finInFlight = false;
        if (st == State::FinWait1) {
            if (peerClosed)
                enterClosed();
            else
                st = State::FinWait2;
        } else if (st == State::LastAck) {
            enterClosed();
        }
    }
    writers.wakeAll();

    // Reset the retransmission clock on forward progress.
    cancelRetransmit();
    rtoNs = stack.baseRtoNs;
    if (dataInFlight() > 0 || finInFlight || synInFlight)
        armRetransmit();
}

void
TcpSocket::handleData(const TcpHeader &h, NetBufView payload)
{
    stack.mach.consumePerByte(payload.size(),
                              stack.mach.timing.csumPer16B);

    std::uint32_t seq = h.seq;
    std::uint32_t end = seq + static_cast<std::uint32_t>(payload.size());

    // Entirely before rcvNxt: a true duplicate, nothing new to keep.
    if (seqLe(end, rcvNxt)) {
        stack.mach.bump("tcp.duplicates");
        sendControl(tcpAck);
        return;
    }

    // Partial overlap with already-delivered data (e.g. a retransmit
    // that grew): trim the stale head and keep the new tail.
    if (seqLt(seq, rcvNxt)) {
        payload.pull(rcvNxt - seq);
        seq = rcvNxt;
        stack.mach.bump("tcp.partialOverlaps");
    }

    if (seq == rcvNxt) {
        deliverInOrder(payload);
        drainOutOfOrder();
        readers.wakeAll();
    } else {
        stashOutOfOrder(seq, payload);
    }
    sendControl(tcpAck);
}

void
TcpSocket::deliverInOrder(NetBufView payload)
{
    rcvBuf.insert(rcvBuf.end(), payload.begin(), payload.end());
    stack.mach.consumePerByte(payload.size(),
                              stack.mach.timing.copyPer16B);
    rcvNxt += static_cast<std::uint32_t>(payload.size());
}

void
TcpSocket::drainOutOfOrder()
{
    // Deliver any stashed segments that became contiguous. Segments may
    // still straddle rcvNxt when an in-order retransmit covered part of
    // a stashed range; trim those rather than re-delivering bytes.
    for (auto it = outOfOrder.begin(); it != outOfOrder.end();) {
        std::uint32_t segSeq = it->first;
        auto &seg = it->second;
        std::uint32_t segEnd =
            segSeq + static_cast<std::uint32_t>(seg.size());
        panic_if(oooBytes < seg.size(), "ooo byte accounting underflow");
        if (seqLe(segEnd, rcvNxt)) {
            oooBytes -= seg.size();
            it = outOfOrder.erase(it); // fully duplicate
            continue;
        }
        if (seqLe(segSeq, rcvNxt)) {
            std::size_t skip = rcvNxt - segSeq;
            rcvBuf.insert(rcvBuf.end(), seg.begin() + skip, seg.end());
            stack.mach.consumePerByte(seg.size() - skip,
                                      stack.mach.timing.copyPer16B);
            rcvNxt = segEnd;
            oooBytes -= seg.size();
            it = outOfOrder.erase(it);
            continue;
        }
        break; // still a gap
    }
}

void
TcpSocket::stashOutOfOrder(std::uint32_t seq, NetBufView payload)
{
    // Insert the segment keeping the queue's invariant: stored segments
    // are pairwise disjoint and all beyond rcvNxt. Where the new bytes
    // overlap stored ones, the stored copy wins (it is identical data);
    // only the uncovered gaps are copied in.
    std::size_t added = 0;

    // Clip against the nearest predecessor.
    auto it = outOfOrder.lower_bound(seq);
    if (it != outOfOrder.begin()) {
        auto prev = std::prev(it);
        std::uint32_t prevEnd =
            prev->first + static_cast<std::uint32_t>(prev->second.size());
        std::uint32_t end =
            seq + static_cast<std::uint32_t>(payload.size());
        if (seqLt(seq, prevEnd)) {
            if (seqLe(end, prevEnd)) {
                stack.mach.bump("tcp.duplicates");
                return; // fully inside an existing segment
            }
            payload.pull(prevEnd - seq);
            seq = prevEnd;
        }
    }

    // Walk the successors, filling only the gaps between them.
    while (!payload.empty()) {
        it = outOfOrder.lower_bound(seq);
        std::uint32_t end =
            seq + static_cast<std::uint32_t>(payload.size());
        if (it == outOfOrder.end() || seqLe(end, it->first)) {
            outOfOrder.emplace(
                seq,
                std::vector<std::uint8_t>(payload.begin(), payload.end()));
            added += payload.size();
            break;
        }
        if (seqLt(seq, it->first)) {
            std::size_t gap = it->first - seq;
            outOfOrder.emplace(seq,
                               std::vector<std::uint8_t>(
                                   payload.begin(), payload.begin() + gap));
            added += gap;
            payload.pull(gap);
            seq = it->first;
        }
        // Skip the bytes the existing segment already holds.
        std::size_t covered =
            std::min<std::size_t>(it->second.size(), payload.size());
        payload.pull(covered);
        seq += static_cast<std::uint32_t>(covered);
    }

    if (added) {
        oooBytes += added;
        stack.mach.consumePerByte(added, stack.mach.timing.copyPer16B);
        stack.mach.bump("tcp.outOfOrder");
        stack.mach.bump("tcp.oooBytes", added);
        enforceOooBound();
    } else {
        stack.mach.bump("tcp.duplicates");
    }
}

void
TcpSocket::enforceOooBound()
{
    // Evict whole segments farthest from rcvNxt first: they are the
    // least likely to become deliverable soon, and the peer's
    // retransmission machinery restores them once the window advances.
    while (oooBytes > oooLimit && !outOfOrder.empty()) {
        auto last = std::prev(outOfOrder.end());
        std::size_t n = last->second.size();
        oooBytes -= n;
        outOfOrder.erase(last);
        stack.mach.bump("tcp.oooEvicted", n);
    }
}

void
TcpSocket::handleFin(const TcpHeader &h, std::size_t payloadLen)
{
    std::uint32_t finPos = h.seq + static_cast<std::uint32_t>(payloadLen);
    if (finPos != rcvNxt)
        return; // FIN beyond a gap; wait for retransmission
    rcvNxt += 1;
    peerClosed = true;
    readers.wakeAll();
    sendControl(tcpAck);
    if (st == State::Established)
        st = State::CloseWait;
    else if (st == State::FinWait1 && finAcked)
        enterClosed();
    else if (st == State::FinWait2)
        enterClosed();
}

void
TcpSocket::transmit()
{
    if (st != State::Established && st != State::CloseWait &&
        st != State::FinWait1 && st != State::LastAck)
        return;

    while (true) {
        std::size_t unsent = sndQueue.size() - dataInFlight();
        if (unsent == 0)
            break;
        std::size_t inFlight = dataInFlight();
        std::size_t allowed =
            peerWindow > inFlight ? peerWindow - inFlight : 0;
        if (allowed == 0)
            break; // window closed; probe timer will take over
        std::size_t chunk = std::min({unsent, allowed, mss});

        // Gather the chunk from the deque (it is not contiguous).
        std::vector<std::uint8_t> seg(chunk);
        std::copy(sndQueue.begin() + static_cast<long>(inFlight),
                  sndQueue.begin() + static_cast<long>(inFlight + chunk),
                  seg.begin());
        sendDataSegment(sndNxt, seg.data(), chunk);
        sndNxt += static_cast<std::uint32_t>(chunk);
        flightData += chunk;
        armRetransmit();
    }

    // Emit the FIN once all queued data has been handed to the wire.
    if (finQueued && !finInFlight && !finAcked &&
        sndQueue.size() - dataInFlight() == 0 && dataInFlight() == 0) {
        finSeq = sndNxt;
        sendControl(tcpFin | tcpAck);
        sndNxt += 1;
        finInFlight = true;
        finQueued = false;
        st = (st == State::CloseWait) ? State::LastAck : State::FinWait1;
        armRetransmit();
    }
}

void
TcpSocket::sendControl(std::uint8_t flags)
{
    std::uint32_t seq = (flags & tcpSyn) ? iss : sndNxt;
    stack.sendSegment(*this, flags, seq, nullptr, 0);
    lastAdvWindow = advertisedWindow();
}

void
TcpSocket::sendDataSegment(std::uint32_t seq, const std::uint8_t *data,
                           std::size_t len)
{
    stack.sendSegment(*this, tcpAck | tcpPsh, seq, data, len);
    lastAdvWindow = advertisedWindow();
}

void
TcpSocket::armRetransmit()
{
    if (rtxTimer)
        return;
    rtxTimer = stack.timers.arm(rtoNs, [this] { onRetransmitTimeout(); });
}

void
TcpSocket::cancelRetransmit()
{
    if (rtxTimer) {
        stack.timers.cancel(rtxTimer);
        rtxTimer = 0;
    }
}

void
TcpSocket::onRetransmitTimeout()
{
    rtxTimer = 0;
    if (st == State::Closed)
        return;

    stack.mach.bump("tcp.retransmits");
    if (synInFlight) {
        stack.sendSegment(*this, st == State::SynRcvd
                                     ? std::uint8_t(tcpSyn | tcpAck)
                                     : std::uint8_t(tcpSyn),
                          iss, nullptr, 0);
    } else if (dataInFlight() > 0) {
        std::size_t chunk = std::min(dataInFlight(), mss);
        std::vector<std::uint8_t> seg(sndQueue.begin(),
                                      sndQueue.begin() +
                                          static_cast<long>(chunk));
        sendDataSegment(sndUna, seg.data(), chunk);
    } else if (finInFlight) {
        stack.sendSegment(*this, tcpFin | tcpAck, finSeq, nullptr, 0);
    } else if (sndQueue.size() > 0 && peerWindow == 0) {
        sendControl(tcpAck); // zero-window probe
    } else {
        return; // nothing outstanding
    }

    rtoNs = std::min<std::uint64_t>(rtoNs * 2, 4'000'000'000ull);
    armRetransmit();
}

NetStack::NetStack(Machine &m, Scheduler &s, NicEndpoint &nicEnd,
                   std::uint32_t ip)
    : mach(m), sched(s), nic(nicEnd), ipAddr(ip), timers(m)
{
    // Size the flow table for hundreds of concurrent connections up
    // front so the hot demux path never rehashes mid-burst.
    flows.reserve(512);
    queueWaits.push_back(std::make_unique<WaitQueue>(sched));
    // The interrupt line: a frame landing in queue q wakes that
    // queue's blocked poller (no-op while pollers busy-poll).
    nic.onArrive = [this](std::size_t q) {
        queueWaits[q % queueWaits.size()]->wakeAll();
    };
}

NetStack::~NetStack()
{
    nic.onArrive = nullptr;
}

TcpSocket *
NetStack::makeSocket()
{
    sockets.push_back(std::unique_ptr<TcpSocket>(new TcpSocket(*this)));
    return sockets.back().get();
}

void
NetStack::registerFlow(TcpSocket *s)
{
    FlowKey key{s->lPort, s->rIp, s->rPort};
    panic_if(flows.count(key), "duplicate TCP flow");
    flows[key] = s;
    s->flowRegistered = true;
}

void
NetStack::unregisterFlow(TcpSocket *s)
{
    if (!s->flowRegistered)
        return;
    flows.erase(FlowKey{s->lPort, s->rIp, s->rPort});
    s->flowRegistered = false;
}

std::uint16_t
NetStack::ephemeralPort()
{
    // Stay in the IANA dynamic range even after 16-bit wraparound.
    if (nextEphemeral < 49152)
        nextEphemeral = 49152;
    return nextEphemeral++;
}

std::uint32_t
NetStack::pickIss()
{
    issCounter += 64000;
    return issCounter;
}

TcpSocket *
NetStack::listen(std::uint16_t port, std::size_t backlog)
{
    fatal_if(listeners.count(port), "port ", port, " already listening");
    TcpSocket *s = makeSocket();
    s->st = TcpSocket::State::Listen;
    s->lPort = port;
    s->backlog = backlog ? backlog : 1;
    listeners[port] = s;
    return s;
}

TcpSocket *
NetStack::connect(std::uint32_t dstIp, std::uint16_t dstPort)
{
    TcpSocket *s = makeSocket();
    // Pick an ephemeral port whose 4-tuple is not in use (long-lived
    // flows may still hold earlier ports after a wraparound).
    std::uint16_t port = ephemeralPort();
    for (unsigned tries = 0;
         flows.count(FlowKey{port, dstIp, dstPort}) && tries < 16384;
         ++tries)
        port = ephemeralPort();
    s->lPort = port;
    s->rIp = dstIp;
    s->rPort = dstPort;
    s->iss = pickIss();
    s->sndUna = s->iss;
    s->sndNxt = s->iss + 1;
    s->synInFlight = true;
    s->st = TcpSocket::State::SynSent;
    registerFlow(s);
    sendSegment(*s, tcpSyn, s->iss, nullptr, 0);
    s->armRetransmit();

    while (s->st == TcpSocket::State::SynSent)
        s->connectWait.wait();
    return s->established() ? s : nullptr;
}

void
NetStack::sendSegment(TcpSocket &sock, std::uint8_t flags,
                      std::uint32_t seq, const std::uint8_t *payload,
                      std::size_t len)
{
    mach.consume(mach.timing.packetProc);
    mach.consumePerByte(len, mach.timing.csumPer16B);
    mach.bump("tcp.segmentsOut");

    NetBuf frame;
    if (len)
        frame.append(payload, len);

    TcpHeader tcp;
    tcp.srcPort = sock.lPort;
    tcp.dstPort = sock.rPort;
    tcp.seq = seq;
    tcp.ack = sock.rcvNxt;
    tcp.flags = flags;
    tcp.window = sock.advertisedWindow();
    std::uint8_t *tcpAt = frame.push(TcpHeader::wireSize);
    tcp.serialize(tcpAt, ipAddr, sock.rIp, tcpAt + TcpHeader::wireSize,
                  len);

    Ip4Header ip;
    ip.totalLen = static_cast<std::uint16_t>(Ip4Header::wireSize +
                                             TcpHeader::wireSize + len);
    ip.protocol = Ip4Header::protoTcp;
    ip.src = ipAddr;
    ip.dst = sock.rIp;
    ip.serialize(frame.push(Ip4Header::wireSize));

    EthHeader eth{};
    eth.etherType = EthHeader::typeIp4;
    eth.serialize(frame.push(EthHeader::wireSize));

    nic.transmit(std::move(frame));
}

void
NetStack::handleFrame(NetBuf frame)
{
    EthHeader eth;
    if (frame.size() < EthHeader::wireSize)
        return;
    eth.parse(frame.data());
    if (eth.etherType != EthHeader::typeIp4)
        return;
    frame.pull(EthHeader::wireSize);

    Ip4Header ip;
    if (!ip.parse(frame.data(), frame.size())) {
        mach.bump("ip.badHeader");
        return;
    }
    if (ip.dst != ipAddr) {
        mach.bump("ip.notMine");
        return;
    }
    if (ip.protocol != Ip4Header::protoTcp)
        return;
    frame.pull(Ip4Header::wireSize);
    std::size_t segLen = ip.totalLen - Ip4Header::wireSize;
    if (segLen < TcpHeader::wireSize || segLen > frame.size()) {
        mach.bump("ip.truncated");
        return;
    }

    // From here on the frame is handed down as views; the NetBuf stays
    // alive (and unmoved) for the whole segment-processing call chain,
    // so no payload bytes are copied until they land in a socket buffer.
    NetBufView seg = frame.view(0, segLen);
    TcpHeader tcp;
    if (!tcp.parse(seg.data(), seg.size(), ip.src, ip.dst)) {
        mach.bump("tcp.badChecksum");
        return;
    }
    NetBufView payload = seg.sub(TcpHeader::wireSize);

    // Exact flow match first.
    auto it = flows.find(FlowKey{tcp.dstPort, ip.src, tcp.srcPort});
    if (it != flows.end()) {
        it->second->handleSegment(tcp, payload);
        return;
    }

    // New connection to a listener?
    auto lit = listeners.find(tcp.dstPort);
    if (lit != listeners.end() && (tcp.flags & tcpSyn) &&
        !(tcp.flags & tcpAck)) {
        TcpSocket *listener = lit->second;
        if (listener->acceptQueue.size() + listener->embryonic >=
            listener->backlog) {
            // Backlog full: drop the SYN; the client's retransmission
            // retries once the queue drains.
            mach.bump("tcp.backlogDrops");
            return;
        }
        TcpSocket *child = makeSocket();
        child->lPort = tcp.dstPort;
        child->rIp = ip.src;
        child->rPort = tcp.srcPort;
        child->parent = listener;
        child->inSynBacklog = true;
        ++listener->embryonic;
        child->iss = pickIss();
        child->sndUna = child->iss;
        child->sndNxt = child->iss + 1;
        child->rcvNxt = tcp.seq + 1;
        child->peerWindow = tcp.window;
        child->synInFlight = true;
        child->st = TcpSocket::State::SynRcvd;
        registerFlow(child);
        sendSegment(*child, tcpSyn | tcpAck, child->iss, nullptr, 0);
        child->armRetransmit();
        return;
    }

    mach.bump("tcp.noMatch");
}

bool
NetStack::pollOnce()
{
    bool worked = false;
    mach.consume(mach.timing.pollDispatch);
    while (auto f = nic.receive()) {
        handleFrame(std::move(*f));
        worked = true;
    }
    if (timers.poll() > 0)
        worked = true;
    return worked;
}

bool
NetStack::pollQueue(std::size_t q)
{
    bool worked = false;
    mach.consume(mach.timing.pollDispatch);
    while (auto f = nic.receiveQueue(q)) {
        handleFrame(std::move(*f));
        worked = true;
    }
    // The timer wheel is stack-global (retransmits, probes): exactly
    // one poller — queue 0's — drives it, so timers never fire twice.
    if (q == 0 && timers.poll() > 0)
        worked = true;
    return worked;
}

std::vector<NetBuf>
NetStack::fetchBurst(std::size_t q, std::size_t max)
{
    std::vector<NetBuf> burst;
    mach.consume(mach.timing.pollDispatch);
    while (burst.size() < max) {
        auto f = nic.receiveQueue(q);
        if (!f)
            break;
        burst.push_back(std::move(*f));
    }
    return burst;
}

void
NetStack::handleRxFrame(NetBuf frame)
{
    handleFrame(std::move(frame));
}

bool
NetStack::timersDue() const
{
    return timers.nextDeadlineNs() <= mach.nanoseconds();
}

std::size_t
NetStack::pollTimers()
{
    return timers.poll();
}

std::uint32_t
NetStack::rssHash(std::uint32_t srcIp, std::uint16_t srcPort,
                  std::uint32_t dstIp, std::uint16_t dstPort)
{
    // Multiplicative fold of the 4-tuple. The per-field multipliers
    // are odd, so consecutive ephemeral ports step the hash by an odd
    // constant and rotate through any power-of-two queue count without
    // clumping — the property admins tune Toeplitz keys for, here by
    // construction. Deterministic and trivially reproducible in tests.
    std::uint32_t v = srcPort * 0x9e3779b1u + dstPort * 0x85ebca77u +
                      srcIp * 0xc2b2ae3du + dstIp * 0x27d4eb2fu;
    return v;
}

std::size_t
NetStack::steerFrame(const NetBuf &frame)
{
    // Raw header peek — no checksum work: the real NIC's RSS engine
    // hashes header fields straight off the wire before any protocol
    // validation happens.
    const std::uint8_t *p = frame.data();
    std::size_t n = frame.size();
    constexpr std::size_t need =
        EthHeader::wireSize + Ip4Header::wireSize + 4;
    if (n < need || getBe16(p + 12) != EthHeader::typeIp4)
        return 0;
    const std::uint8_t *ip = p + EthHeader::wireSize;
    if ((ip[0] >> 4) != 4 || ip[9] != Ip4Header::protoTcp)
        return 0;
    std::uint32_t src = getBe32(ip + 12);
    std::uint32_t dst = getBe32(ip + 16);
    const std::uint8_t *tcp = ip + Ip4Header::wireSize;
    return rssHash(src, getBe16(tcp), dst, getBe16(tcp + 2));
}

void
NetStack::enableRss(std::size_t queues)
{
    rssQueues = queues ? queues : 1;
    while (queueWaits.size() < rssQueues)
        queueWaits.push_back(std::make_unique<WaitQueue>(sched));
    nic.configureRss(rssQueues,
                     [](const NetBuf &f) { return steerFrame(f); });
}

void
NetStack::waitQueueActivity(std::size_t q)
{
    if (nic.pendingIn(q % nic.queueCount()) > 0)
        return;
    // Sleep at most until the next timer deadline (queue 0 owns the
    // wheel) and never longer than a heartbeat, so stuck peers and
    // shutdown flags are still observed in bounded virtual time.
    std::uint64_t waitNs = 1'000'000; // 1 ms heartbeat
    if (q == 0 && !timers.empty()) {
        std::uint64_t now = mach.nanoseconds();
        std::uint64_t due = timers.nextDeadlineNs();
        waitNs = due > now ? std::min(waitNs, due - now) : 1;
    }
    sched.blockFor(*queueWaits[q % queueWaits.size()], waitNs);
}

void
NetStack::wakePollers()
{
    for (auto &w : queueWaits)
        w->wakeAll();
}

std::size_t
NetStack::rssQueueOf(const TcpSocket &s) const
{
    if (rssQueues <= 1)
        return 0;
    // Inbound orientation: frames arriving for this socket carry the
    // peer as source and us as destination.
    return rssHash(s.remoteIp(), s.remotePort(), ipAddr,
                   s.localPort()) %
           rssQueues;
}

void
NetStack::startPoller(const std::string &name)
{
    stopping = false;
    sched.spawn(name, [this] {
        while (!stopping) {
            pollOnce();
            sched.yield();
        }
    });
}

} // namespace flexos
