#include "net/nic.hh"

namespace flexos {

Link::Link()
{
    a.peer = &b;
    b.peer = &a;
}

void
NicEndpoint::transmit(NetBuf frame)
{
    if (Machine::hasCurrent()) {
        auto &m = Machine::current();
        m.consume(m.timing.nicFrame);
        m.bump("nic.tx");
    }
    if (peer->rxFilter && !peer->rxFilter(frame)) {
        if (Machine::hasCurrent())
            Machine::current().bump("nic.dropped");
        return;
    }
    peer->rxQueue.push_back(std::move(frame));
}

std::optional<NetBuf>
NicEndpoint::receive()
{
    if (rxQueue.empty())
        return std::nullopt;
    if (Machine::hasCurrent()) {
        auto &m = Machine::current();
        m.consume(m.timing.nicFrame);
        m.bump("nic.rx");
    }
    NetBuf f = std::move(rxQueue.front());
    rxQueue.pop_front();
    return f;
}

} // namespace flexos
