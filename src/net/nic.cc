#include "net/nic.hh"

#include <algorithm>

namespace flexos {

Link::Link()
{
    a.peer = &b;
    b.peer = &a;
}

std::size_t
NicEndpoint::steerTo(const NetBuf &frame) const
{
    if (!steer || rxQueues.size() <= 1)
        return 0;
    return steer(frame) % rxQueues.size();
}

void
NicEndpoint::configureRss(std::size_t queues, SteerFn steerFn)
{
    if (queues == 0)
        queues = 1;
    steer = std::move(steerFn);
    std::vector<std::deque<NetBuf>> old = std::move(rxQueues);
    rxQueues.assign(queues, {});
    // Re-steer anything already queued so no frame is stranded in a
    // queue index that no longer exists (or now belongs to another
    // flow's poller).
    for (auto &q : old)
        for (auto &f : q)
            rxQueues[steerTo(f)].push_back(std::move(f));
}

void
NicEndpoint::transmit(NetBuf frame)
{
    if (Machine::hasCurrent()) {
        auto &m = Machine::current();
        m.consume(m.timing.nicFrame);
        m.bump("nic.tx");
    }
    if (peer->rxFilter && !peer->rxFilter(frame)) {
        if (Machine::hasCurrent())
            Machine::current().bump("nic.dropped");
        return;
    }
    std::size_t q = peer->steerTo(frame);
    if (q != 0 && Machine::hasCurrent())
        Machine::current().bump("nic.steered");
    peer->rxQueues[q].push_back(std::move(frame));
    if (peer->onArrive)
        peer->onArrive(q);
}

std::size_t
NicEndpoint::pending() const
{
    std::size_t n = 0;
    for (const auto &q : rxQueues)
        n += q.size();
    return n;
}

std::optional<NetBuf>
NicEndpoint::receiveQueue(std::size_t q)
{
    auto &rx = rxQueues[q];
    if (rx.empty())
        return std::nullopt;
    if (Machine::hasCurrent()) {
        auto &m = Machine::current();
        m.consume(m.timing.nicFrame);
        m.bump("nic.rx");
    }
    NetBuf f = std::move(rx.front());
    rx.pop_front();
    return f;
}

std::optional<NetBuf>
NicEndpoint::receive()
{
    for (std::size_t q = 0; q < rxQueues.size(); ++q)
        if (!rxQueues[q].empty())
            return receiveQueue(q);
    return std::nullopt;
}

} // namespace flexos
