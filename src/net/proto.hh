/**
 * @file
 * Wire formats: Ethernet II, IPv4 and TCP headers, with real big-endian
 * serialization and the Internet ones'-complement checksum.
 */

#ifndef FLEXOS_NET_PROTO_HH
#define FLEXOS_NET_PROTO_HH

#include <cstdint>
#include <cstring>

namespace flexos {

/** @name Big-endian accessors. @{ */
inline void
putBe16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

inline void
putBe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint16_t
getBe16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}

inline std::uint32_t
getBe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) << 24 |
           static_cast<std::uint32_t>(p[1]) << 16 |
           static_cast<std::uint32_t>(p[2]) << 8 |
           static_cast<std::uint32_t>(p[3]);
}
/** @} */

/** Ethernet II header. */
struct EthHeader
{
    static constexpr std::size_t wireSize = 14;
    static constexpr std::uint16_t typeIp4 = 0x0800;

    std::uint8_t dst[6];
    std::uint8_t src[6];
    std::uint16_t etherType;

    void
    serialize(std::uint8_t *p) const
    {
        std::memcpy(p, dst, 6);
        std::memcpy(p + 6, src, 6);
        putBe16(p + 12, etherType);
    }

    void
    parse(const std::uint8_t *p)
    {
        std::memcpy(dst, p, 6);
        std::memcpy(src, p + 6, 6);
        etherType = getBe16(p + 12);
    }
};

/** IPv4 header (no options). */
struct Ip4Header
{
    static constexpr std::size_t wireSize = 20;
    static constexpr std::uint8_t protoTcp = 6;
    static constexpr std::uint8_t protoUdp = 17;

    std::uint16_t totalLen = 0;
    std::uint16_t id = 0;
    std::uint8_t ttl = 64;
    std::uint8_t protocol = protoTcp;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;

    void serialize(std::uint8_t *p) const;

    /** @return false if the version/checksum is invalid. */
    bool parse(const std::uint8_t *p, std::size_t len);
};

/** TCP flag bits. */
enum TcpFlags : std::uint8_t
{
    tcpFin = 0x01,
    tcpSyn = 0x02,
    tcpRst = 0x04,
    tcpPsh = 0x08,
    tcpAck = 0x10,
};

/** TCP header (no options). */
struct TcpHeader
{
    static constexpr std::size_t wireSize = 20;

    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t seq = 0;
    std::uint32_t ack = 0;
    std::uint8_t flags = 0;
    std::uint16_t window = 0;

    void serialize(std::uint8_t *p, std::uint32_t srcIp,
                   std::uint32_t dstIp, const std::uint8_t *payload,
                   std::size_t payloadLen) const;

    /** @return false if the checksum fails. */
    bool parse(const std::uint8_t *p, std::size_t segmentLen,
               std::uint32_t srcIp, std::uint32_t dstIp);
};

/** UDP header. */
struct UdpHeader
{
    static constexpr std::size_t wireSize = 8;

    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint16_t length = 0;

    void serialize(std::uint8_t *p) const;
    bool parse(const std::uint8_t *p, std::size_t len);
};

/** Internet checksum (RFC 1071) over a byte range. */
std::uint16_t inetChecksum(const std::uint8_t *data, std::size_t len,
                           std::uint32_t seed = 0);

/** Render an IPv4 address for diagnostics. */
inline std::uint32_t
makeIp(unsigned a, unsigned b, unsigned c, unsigned d)
{
    return static_cast<std::uint32_t>(a) << 24 |
           static_cast<std::uint32_t>(b) << 16 |
           static_cast<std::uint32_t>(c) << 8 | static_cast<std::uint32_t>(d);
}

/** @name TCP sequence-number arithmetic (mod 2^32). @{ */
inline bool
seqLt(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) < 0;
}

inline bool
seqLe(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b) <= 0;
}
/** @} */

} // namespace flexos

#endif // FLEXOS_NET_PROTO_HH
