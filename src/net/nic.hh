/**
 * @file
 * Simulated point-to-point NIC link.
 *
 * Two endpoints, each with an RX queue; transmitting on one endpoint
 * enqueues at the peer. A fault injector can drop, duplicate or reorder
 * frames (used by the TCP property tests). Frame handling charges the
 * NIC descriptor cost.
 */

#ifndef FLEXOS_NET_NIC_HH
#define FLEXOS_NET_NIC_HH

#include <deque>
#include <functional>
#include <optional>

#include "machine/machine.hh"
#include "net/netbuf.hh"

namespace flexos {

class Link;

/**
 * One end of a link.
 */
class NicEndpoint
{
  public:
    /** Transmit a frame to the peer endpoint. */
    void transmit(NetBuf frame);

    /** Pop the next received frame, if any. */
    std::optional<NetBuf> receive();

    /** Frames waiting in the RX queue. */
    std::size_t pending() const { return rxQueue.size(); }

    /**
     * Fault injector applied to frames *arriving* at this endpoint.
     * Return false to drop the frame. May stash frames to reorder.
     */
    std::function<bool(NetBuf &)> rxFilter;

  private:
    friend class Link;

    NicEndpoint() = default;

    NicEndpoint *peer = nullptr;
    std::deque<NetBuf> rxQueue;
};

/**
 * A full-duplex link joining two endpoints.
 */
class Link
{
  public:
    Link();

    NicEndpoint &endA() { return a; }
    NicEndpoint &endB() { return b; }

  private:
    NicEndpoint a;
    NicEndpoint b;
};

} // namespace flexos

#endif // FLEXOS_NET_NIC_HH
