/**
 * @file
 * Simulated point-to-point NIC link.
 *
 * Two endpoints, each with one or more RX queues; transmitting on one
 * endpoint enqueues at the peer, steered to a queue by the peer's
 * RSS hash when multi-queue is configured (single queue 0 otherwise).
 * A fault injector can drop, duplicate or reorder frames (used by the
 * TCP property tests). Frame handling charges the NIC descriptor cost.
 */

#ifndef FLEXOS_NET_NIC_HH
#define FLEXOS_NET_NIC_HH

#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "machine/machine.hh"
#include "net/netbuf.hh"

namespace flexos {

class Link;

/**
 * One end of a link.
 */
class NicEndpoint
{
  public:
    /** RSS indirection: maps an arriving frame to a queue index
     *  (taken modulo the queue count). */
    using SteerFn = std::function<std::size_t(const NetBuf &)>;

    /** Transmit a frame to the peer endpoint. */
    void transmit(NetBuf frame);

    /** Pop the next received frame from any queue (lowest first). */
    std::optional<NetBuf> receive();

    /** Pop the next received frame of one RX queue, if any. */
    std::optional<NetBuf> receiveQueue(std::size_t q);

    /** Frames waiting across all RX queues. */
    std::size_t pending() const;

    /** Frames waiting in one RX queue. */
    std::size_t
    pendingIn(std::size_t q) const
    {
        return rxQueues[q].size();
    }

    /** Number of RX queues (1 until configureRss). */
    std::size_t queueCount() const { return rxQueues.size(); }

    /**
     * Reconfigure this endpoint with `queues` RX queues steered by
     * `steerFn` (RSS). Frames already queued are re-steered. A null
     * steerFn sends everything to queue 0.
     */
    void configureRss(std::size_t queues, SteerFn steerFn);

    /**
     * Fault injector applied to frames *arriving* at this endpoint.
     * Return false to drop the frame. May stash frames to reorder.
     */
    std::function<bool(NetBuf &)> rxFilter;

    /**
     * Arrival notification (the interrupt line): invoked with the RX
     * queue index after a frame lands. Lets an event-driven poller
     * block instead of busy-spinning on an empty ring.
     */
    std::function<void(std::size_t)> onArrive;

  private:
    friend class Link;

    NicEndpoint() : rxQueues(1) {}

    /** The queue an arriving frame steers to. */
    std::size_t steerTo(const NetBuf &frame) const;

    NicEndpoint *peer = nullptr;
    std::vector<std::deque<NetBuf>> rxQueues;
    SteerFn steer;
};

/**
 * A full-duplex link joining two endpoints.
 */
class Link
{
  public:
    Link();

    NicEndpoint &endA() { return a; }
    NicEndpoint &endB() { return b; }

  private:
    NicEndpoint a;
    NicEndpoint b;
};

} // namespace flexos

#endif // FLEXOS_NET_NIC_HH
