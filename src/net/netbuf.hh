/**
 * @file
 * NetBuf: a packet buffer with headroom, in the spirit of Unikraft's
 * uknetbuf / lwIP's pbuf. Payload is written once; protocol layers
 * prepend their headers into the headroom without copying.
 */

#ifndef FLEXOS_NET_NETBUF_HH
#define FLEXOS_NET_NETBUF_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/logging.hh"

namespace flexos {

/**
 * A single frame buffer. Capacity is fixed at construction; data occupies
 * [dataOff, dataOff + dataLen) within the storage.
 */
class NetBuf
{
  public:
    /** Standard Ethernet-ish frame capacity with headroom. */
    static constexpr std::size_t defaultCapacity = 2048;
    static constexpr std::size_t defaultHeadroom = 64;

    explicit NetBuf(std::size_t capacity = defaultCapacity,
                    std::size_t headroom = defaultHeadroom)
        : storage(capacity), dataOff(headroom), dataLen(0)
    {
        panic_if(headroom > capacity, "headroom exceeds capacity");
    }

    /** Pointer to the first data byte. */
    std::uint8_t *data() { return storage.data() + dataOff; }
    const std::uint8_t *data() const { return storage.data() + dataOff; }

    /** Bytes of live data. */
    std::size_t size() const { return dataLen; }

    /** Remaining headroom for prepending headers. */
    std::size_t headroom() const { return dataOff; }

    /** Remaining tailroom for appending payload. */
    std::size_t
    tailroom() const
    {
        return storage.size() - dataOff - dataLen;
    }

    /** Prepend n bytes (header push). @return pointer to the new front */
    std::uint8_t *
    push(std::size_t n)
    {
        panic_if(n > dataOff, "netbuf headroom exhausted");
        dataOff -= n;
        dataLen += n;
        return data();
    }

    /** Drop n bytes from the front (header pull). */
    void
    pull(std::size_t n)
    {
        panic_if(n > dataLen, "netbuf pull beyond data");
        dataOff += n;
        dataLen -= n;
    }

    /** Append payload bytes at the tail. */
    void
    append(const void *src, std::size_t n)
    {
        panic_if(n > tailroom(), "netbuf tailroom exhausted");
        std::memcpy(storage.data() + dataOff + dataLen, src, n);
        dataLen += n;
    }

    /** Extend the tail by n uninitialized bytes and return its start. */
    std::uint8_t *
    extend(std::size_t n)
    {
        panic_if(n > tailroom(), "netbuf tailroom exhausted");
        std::uint8_t *p = storage.data() + dataOff + dataLen;
        dataLen += n;
        return p;
    }

  private:
    std::vector<std::uint8_t> storage;
    std::size_t dataOff;
    std::size_t dataLen;
};

} // namespace flexos

#endif // FLEXOS_NET_NETBUF_HH
