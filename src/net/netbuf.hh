/**
 * @file
 * NetBuf: a packet buffer with headroom, in the spirit of Unikraft's
 * uknetbuf / lwIP's pbuf. Payload is written once; protocol layers
 * prepend their headers into the headroom without copying.
 *
 * NetBufView is the zero-copy companion: a non-owning [ptr, len) window
 * into a NetBuf (or any byte range) that protocol layers pass down the
 * receive path instead of raw pointer+length pairs. Views are cheap to
 * slice and trim, so reassembly can clip overlapping segments without
 * copying them first.
 */

#ifndef FLEXOS_NET_NETBUF_HH
#define FLEXOS_NET_NETBUF_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "base/logging.hh"

namespace flexos {

/**
 * A non-owning view of a contiguous byte range inside a NetBuf. The
 * underlying buffer must outlive the view; the receive path upholds
 * this by keeping the frame alive for the duration of segment
 * processing.
 */
class NetBufView
{
  public:
    constexpr NetBufView() = default;
    constexpr NetBufView(const std::uint8_t *p, std::size_t n)
        : ptr(p), len(n)
    {
    }

    const std::uint8_t *data() const { return ptr; }
    std::size_t size() const { return len; }
    bool empty() const { return len == 0; }

    const std::uint8_t *begin() const { return ptr; }
    const std::uint8_t *end() const { return ptr + len; }

    std::uint8_t
    operator[](std::size_t i) const
    {
        panic_if(i >= len, "netbuf view index out of range");
        return ptr[i];
    }

    /** Sub-view of [off, off + n); n is clamped to the remainder. */
    NetBufView
    sub(std::size_t off, std::size_t n = SIZE_MAX) const
    {
        panic_if(off > len, "netbuf view slice beyond data");
        return NetBufView(ptr + off, std::min(n, len - off));
    }

    /** Drop n bytes from the front (header pull). */
    void
    pull(std::size_t n)
    {
        panic_if(n > len, "netbuf view pull beyond data");
        ptr += n;
        len -= n;
    }

    /** Drop n bytes from the back (trailer trim). */
    void
    trimBack(std::size_t n)
    {
        panic_if(n > len, "netbuf view trim beyond data");
        len -= n;
    }

  private:
    const std::uint8_t *ptr = nullptr;
    std::size_t len = 0;
};

/**
 * A single frame buffer. Capacity is fixed at construction; data occupies
 * [dataOff, dataOff + dataLen) within the storage.
 *
 * Move semantics are explicit: the moved-from buffer is left empty
 * (size() == 0, headroom() == 0) rather than with stale offsets over an
 * emptied vector, so accidentally reusing it panics cleanly instead of
 * corrupting the heap.
 */
class NetBuf
{
  public:
    /** Standard Ethernet-ish frame capacity with headroom. */
    static constexpr std::size_t defaultCapacity = 2048;
    static constexpr std::size_t defaultHeadroom = 64;

    explicit NetBuf(std::size_t capacity = defaultCapacity,
                    std::size_t headroom = defaultHeadroom)
        : storage(capacity), dataOff(headroom), dataLen(0)
    {
        panic_if(headroom > capacity, "headroom exceeds capacity");
    }

    NetBuf(const NetBuf &) = default;
    NetBuf &operator=(const NetBuf &) = default;

    NetBuf(NetBuf &&other) noexcept
        : storage(std::move(other.storage)), dataOff(other.dataOff),
          dataLen(other.dataLen)
    {
        other.dataOff = 0;
        other.dataLen = 0;
    }

    NetBuf &
    operator=(NetBuf &&other) noexcept
    {
        if (this != &other) {
            storage = std::move(other.storage);
            dataOff = other.dataOff;
            dataLen = other.dataLen;
            other.dataOff = 0;
            other.dataLen = 0;
        }
        return *this;
    }

    /**
     * Return the buffer to its freshly-constructed state: no data,
     * headroom restored (clamped to the capacity). Useful for reusing a
     * buffer — including a moved-from one, which has zero capacity until
     * reallocated elsewhere.
     */
    void
    reset(std::size_t headroom = defaultHeadroom)
    {
        dataOff = std::min(headroom, storage.size());
        dataLen = 0;
    }

    /** Pointer to the first data byte. */
    std::uint8_t *data() { return storage.data() + dataOff; }
    const std::uint8_t *data() const { return storage.data() + dataOff; }

    /** Bytes of live data. */
    std::size_t size() const { return dataLen; }

    /** Total storage capacity (0 for a moved-from buffer). */
    std::size_t capacity() const { return storage.size(); }

    /** Remaining headroom for prepending headers. */
    std::size_t headroom() const { return dataOff; }

    /** Remaining tailroom for appending payload. */
    std::size_t
    tailroom() const
    {
        return storage.size() - dataOff - dataLen;
    }

    /** Non-owning view of the live data. */
    NetBufView view() const { return NetBufView(data(), dataLen); }

    /** Non-owning view of [off, off + n) within the live data. */
    NetBufView
    view(std::size_t off, std::size_t n = SIZE_MAX) const
    {
        return view().sub(off, n);
    }

    /** Prepend n bytes (header push). @return pointer to the new front */
    std::uint8_t *
    push(std::size_t n)
    {
        panic_if(n > dataOff, "netbuf headroom exhausted");
        dataOff -= n;
        dataLen += n;
        return data();
    }

    /** Drop n bytes from the front (header pull). */
    void
    pull(std::size_t n)
    {
        panic_if(n > dataLen, "netbuf pull beyond data");
        dataOff += n;
        dataLen -= n;
    }

    /** Append payload bytes at the tail. */
    void
    append(const void *src, std::size_t n)
    {
        panic_if(n > tailroom(), "netbuf tailroom exhausted");
        std::memcpy(storage.data() + dataOff + dataLen, src, n);
        dataLen += n;
    }

    /** Extend the tail by n uninitialized bytes and return its start. */
    std::uint8_t *
    extend(std::size_t n)
    {
        panic_if(n > tailroom(), "netbuf tailroom exhausted");
        std::uint8_t *p = storage.data() + dataOff + dataLen;
        dataLen += n;
        return p;
    }

  private:
    std::vector<std::uint8_t> storage;
    std::size_t dataOff;
    std::size_t dataLen;
};

} // namespace flexos

#endif // FLEXOS_NET_NETBUF_HH
