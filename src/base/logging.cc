#include "base/logging.hh"

#include <cstdio>

namespace flexos {
namespace detail {

namespace {

std::string
locate(const char *file, int line, const char *kind, const std::string &msg)
{
    std::ostringstream oss;
    oss << kind << ": " << msg << " @ " << file << ":" << line;
    return oss.str();
}

} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::string full = locate(file, line, "panic", msg);
    std::fprintf(stderr, "%s\n", full.c_str());
    throw PanicError(full);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::string full = locate(file, line, "fatal", msg);
    std::fprintf(stderr, "%s\n", full.c_str());
    throw FatalError(full);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "warn: %s @ %s:%d\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace flexos
