/**
 * @file
 * Logging and error-reporting primitives (gem5-style).
 *
 * panic()  — an internal invariant was violated: a bug in this code base.
 * fatal()  — the user asked for something impossible (bad configuration).
 * warn()   — something is off but the run can continue.
 * inform() — neutral status for the user.
 */

#ifndef FLEXOS_BASE_LOGGING_HH
#define FLEXOS_BASE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace flexos {

/** Exception carrying a panic (internal bug) report. */
class PanicError : public std::runtime_error
{
  public:
    explicit PanicError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception carrying a fatal (user error) report. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

} // namespace flexos

/** Report an internal bug and abort the computation (throws PanicError). */
#define panic(...)                                                          \
    ::flexos::detail::panicImpl(__FILE__, __LINE__,                         \
        ::flexos::detail::formatMessage(__VA_ARGS__))

/** Report an unusable user configuration (throws FatalError). */
#define fatal(...)                                                          \
    ::flexos::detail::fatalImpl(__FILE__, __LINE__,                         \
        ::flexos::detail::formatMessage(__VA_ARGS__))

/** Report a recoverable anomaly. */
#define warn(...)                                                           \
    ::flexos::detail::warnImpl(__FILE__, __LINE__,                          \
        ::flexos::detail::formatMessage(__VA_ARGS__))

/** Report neutral status. */
#define inform(...)                                                         \
    ::flexos::detail::informImpl(::flexos::detail::formatMessage(__VA_ARGS__))

/** panic() unless the given invariant condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

/** fatal() unless the given user-facing condition holds. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // FLEXOS_BASE_LOGGING_HH
