/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * All randomness in the repository flows through this generator so that
 * every simulation run is exactly reproducible from its seed.
 */

#ifndef FLEXOS_BASE_RNG_HH
#define FLEXOS_BASE_RNG_HH

#include <cstdint>

namespace flexos {

/**
 * SplitMix64 generator. Tiny state, excellent statistical behaviour for
 * workload generation; not cryptographic.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @pre bound > 0 */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state;
};

} // namespace flexos

#endif // FLEXOS_BASE_RNG_HH
