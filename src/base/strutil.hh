/**
 * @file
 * Small string helpers shared across the code base.
 */

#ifndef FLEXOS_BASE_STRUTIL_HH
#define FLEXOS_BASE_STRUTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace flexos {

/** Strip leading/trailing whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string> split(std::string_view s, char delim);

/** Split on any run of whitespace; empty fields are dropped. */
std::vector<std::string> splitWs(std::string_view s);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True if s ends with the given suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** Parse a decimal integer; returns false on malformed input. */
bool parseInt(std::string_view s, long &out);

/** Join items with a separator. */
std::string join(const std::vector<std::string> &items, std::string_view sep);

} // namespace flexos

#endif // FLEXOS_BASE_STRUTIL_HH
