#include "base/strutil.hh"

#include <cctype>
#include <cstdlib>

namespace flexos {

std::string
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
splitWs(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, long &out)
{
    std::string tmp = trim(s);
    if (tmp.empty())
        return false;
    char *end = nullptr;
    long v = std::strtol(tmp.c_str(), &end, 10);
    if (end != tmp.c_str() + tmp.size())
        return false;
    out = v;
    return true;
}

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += sep;
        out += items[i];
    }
    return out;
}

} // namespace flexos
