#include "runtime/controller.hh"

#include <algorithm>

#include "base/logging.hh"

namespace flexos {

PolicyController::PolicyController(Image &image, ControllerConfig config)
    : img(image), cfg(config)
{
    // Enroll the opted-in boundaries. A `deny:` edge never enrolls —
    // deny is a least-privilege statement, and the controller must
    // not be able to open a channel the configuration closed.
    int n = static_cast<int>(img.compartmentCount());
    for (int f = 0; f < n; ++f) {
        for (int t = 0; t < n; ++t) {
            if (f == t)
                continue;
            const GatePolicy &pol = img.policyFor(f, t);
            if (!pol.adaptive || pol.deny)
                continue;
            EdgeState st;
            st.baseline = pol;
            st.batch = std::max<std::uint64_t>(pol.batch, 1);
            edges.emplace(std::make_pair(f, t), st);
        }
    }
    prevStats = img.snapshotStats();
    for (const auto &[pair, stat] : img.boundaryStats())
        prevCrossings[pair] = stat.count;
}

PolicyController::~PolicyController()
{
    stop();
}

void
PolicyController::start()
{
    if (thread)
        return;
    stopping = false;
    thread = img.scheduler().spawn("policy-controller", [this] {
        while (!stopping) {
            img.scheduler().sleepNs(cfg.epoch);
            if (stopping)
                break;
            step();
        }
    });
    // Control-plane work models a management core outside the measured
    // guest: it must neither be charged to the workload nor hold the
    // run queues non-empty while sleeping between epochs.
    thread->freeRunning = true;
}

void
PolicyController::stop()
{
    if (!thread)
        return;
    stopping = true;
    if (thread->state() != Thread::State::Finished)
        img.scheduler().cancel(thread);
    thread = nullptr;
}

void
PolicyController::record(const std::string &rule, const std::string &edge,
                         int level)
{
    traceRing.push_back({epochCount, rule, edge, level});
    if (traceRing.size() > traceCapacity)
        traceRing.pop_front();
    img.machine().bump("controller.trace");
}

GatePolicy
PolicyController::policyAt(const EdgeState &st) const
{
    GatePolicy p = st.baseline;
    p.batch = st.batch;
    if (st.level >= 1) {
        // Impose a crossing budget of one storm threshold per epoch —
        // or the configured budget if it was already tighter. Stall
        // first: back-pressure is recoverable, failure is not.
        std::uint64_t budget = cfg.stormThreshold;
        if (p.rate)
            budget = std::min(p.rate, budget);
        p.rate = budget;
        p.rateWindow = cfg.epoch;
        p.overflow = RateOverflow::Stall;
    }
    if (st.level >= 2)
        p.overflow = RateOverflow::Fail;
    if (st.level >= 3) {
        p.validateEntry = true;
        p.validateReturn = true;
    }
    if (st.denyHardened) {
        // The offender probed a denied edge: treat its writable
        // channels as attacker-facing — full DSS gate, validated
        // entry, scrubbed returns.
        p.flavor = MpkGateFlavor::Dss;
        p.validateEntry = true;
        p.scrubReturn = true;
    }
    return p;
}

bool
PolicyController::step()
{
    Machine &mach = img.machine();
    ++epochCount;
    mach.bump("controller.epochs");

    // Windowed sample: everything below reasons about THIS epoch's
    // activity, never the monotonic totals (satellite: counter-reset
    // semantics — snapshot and difference, don't reset).
    Image::StatsSnapshot snap = img.snapshotStats();
    Image::StatsSnapshot delta = Image::statsDelta(prevStats, snap);
    prevStats = std::move(snap);

    std::map<std::pair<int, int>, std::uint64_t> crossed;
    for (const auto &[pair, stat] : img.boundaryStats()) {
        std::uint64_t prev = prevCrossings[pair];
        if (stat.count > prev)
            crossed[pair] = stat.count - prev;
        prevCrossings[pair] = stat.count;
    }

    const auto &comps = img.config().compartments;
    auto nameOf = [&](int i) {
        return comps[static_cast<std::size_t>(i)].name;
    };

    // Deny witnesses first: an offender caught probing a closed edge
    // this epoch gets its outgoing adaptive edges hardened before the
    // storm/relax pass below reasons about them.
    int n = static_cast<int>(comps.size());
    for (int f = 0; f < n; ++f) {
        bool offender = false;
        for (int t = 0; t < n; ++t) {
            if (f == t)
                continue;
            auto it =
                delta.find("gate.denied." + nameOf(f) + "->" + nameOf(t));
            if (it != delta.end() && it->second >= cfg.denyAlert) {
                offender = true;
                mach.bump("controller.alerts");
            }
        }
        if (!offender)
            continue;
        for (auto &[pair, st] : edges) {
            if (pair.first != f || st.denyHardened)
                continue;
            st.denyHardened = true;
            st.calm = 0;
            mach.bump("controller.tightens");
            record("deny-harden",
                   nameOf(pair.first) + "->" + nameOf(pair.second), -1);
        }
    }

    // Storm / calm pass, with hysteresis: a single quiet epoch never
    // relaxes anything, and any storm resets the calm streak.
    for (auto &[pair, st] : edges) {
        auto it = crossed.find(pair);
        std::uint64_t count = it == crossed.end() ? 0 : it->second;
        if (count > cfg.stormThreshold) {
            st.calm = 0;
            if (st.level < 3) {
                ++st.level;
                mach.bump("controller.tightens");
                record("tighten",
                       nameOf(pair.first) + "->" + nameOf(pair.second),
                       st.level);
            }
        } else if (st.level > 0 || st.denyHardened) {
            if (++st.calm >= cfg.calmEpochs) {
                if (st.level > 0)
                    --st.level;
                else
                    st.denyHardened = false;
                st.calm = 0;
                mach.bump("controller.relaxes");
                record("relax",
                       nameOf(pair.first) + "->" + nameOf(pair.second),
                       st.level);
            }
        }
    }

    // NAPI-style batch-width adaptation: widen while the NIC backlog
    // outruns the burst width, narrow back toward the configured
    // width once the queue drains.
    if (queueDepthProbe) {
        std::uint64_t depth = queueDepthProbe();
        for (auto &[pair, st] : edges) {
            std::uint64_t floor =
                std::max<std::uint64_t>(st.baseline.batch, 1);
            if (depth > cfg.queueHigh && st.batch < maxBatchWidth) {
                st.batch = std::min<std::uint64_t>(
                    maxBatchWidth, std::max<std::uint64_t>(2, st.batch * 2));
                mach.bump("gate.batchWidthChanges");
                record("batch",
                       nameOf(pair.first) + "->" + nameOf(pair.second),
                       static_cast<int>(st.batch));
            } else if (depth == 0 && st.batch > floor) {
                st.batch = std::max(floor, st.batch / 2);
                mach.bump("gate.batchWidthChanges");
                record("batch",
                       nameOf(pair.first) + "->" + nameOf(pair.second),
                       static_cast<int>(st.batch));
            }
        }
    }

    // Materialize: rebuild each enrolled edge's policy from its state
    // and swap only if some cell actually changed (an unchanged matrix
    // must stay bit-identical to no swap — the pin the static model
    // relies on).
    GateMatrix next = img.gateMatrix();
    bool changed = false;
    for (const auto &[pair, st] : edges) {
        GatePolicy want = policyAt(st);
        if (!(want == img.policyFor(pair.first, pair.second))) {
            next.set(pair.first, pair.second, want);
            changed = true;
        }
    }
    if (!changed)
        return false;
    bool swapped = img.swapGateMatrix(std::move(next));
    if (swapped)
        record("swap", "", 0);
    return swapped;
}

} // namespace flexos
