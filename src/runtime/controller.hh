/**
 * @file
 * Runtime policy controller: the online half of the FlexOS safety
 * story. The build-time toolchain picks a gate matrix for the traffic
 * it can predict; this control plane watches the per-boundary counters
 * the gates already maintain and adapts the matrix — through
 * Image::swapGateMatrix's quiesced epoch flips — when observed
 * behaviour diverges from the configuration's assumptions.
 *
 * The controller is deliberately conservative:
 *  - it only ever touches boundaries that opted in (`adaptive: true`);
 *  - `deny:` edges are never relaxed online (a deny is a least-
 *    privilege statement, not a performance knob);
 *  - every tightening step is reversible, and relaxation only walks
 *    back toward the *configured* policy, never past it;
 *  - a swap that would change nothing is elided entirely, so images
 *    with no adaptive boundary are bit-identical to the static model.
 */

#ifndef FLEXOS_RUNTIME_CONTROLLER_HH
#define FLEXOS_RUNTIME_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "core/image.hh"

namespace flexos {

/**
 * Samples an image's boundary counters on a fixed virtual-time epoch
 * and applies policy deltas through quiesced gate-matrix swaps.
 *
 * Rules evaluated each epoch, per adaptive boundary:
 *
 *  - **Gate storm** (tighten): more crossings in the window than
 *    `storm_threshold` escalates the edge one level —
 *      level 1: impose a crossing-rate budget of the threshold per
 *               epoch (overflow: stall — back-pressure, not failure);
 *      level 2: overflow becomes fail (the storm persists through
 *               back-pressure, so the caller is misbehaving);
 *      level 3: entry and return validation are forced on (treat the
 *               edge as attacker-facing).
 *
 *  - **Calm caller** (relax): a tightened edge whose caller stayed
 *    under the threshold for `calm_epochs` consecutive epochs steps
 *    one level back toward its configured policy. Hysteresis: any
 *    storm resets the calm streak.
 *
 *  - **Deny witness** (alert + harden): `deny_alert` or more denied
 *    crossings on any edge in one window raises an alert and forces
 *    DSS flavour + entry validation onto the offender's *outgoing*
 *    adaptive edges (its writable channels) — the deny edge itself is
 *    already as tight as policy gets and is never modified.
 *
 *  - **Batch width** (NAPI-style): with a queue-depth probe installed,
 *    a backlog above `queue_high` doubles the adaptive edges' `batch:`
 *    width (cap 16); an idle probe halves it back toward the
 *    configured width. Each applied change counts in
 *    `gate.batchWidthChanges`.
 *
 * Counters: controller.epochs, controller.tightens, controller.relaxes,
 * controller.alerts, gate.batchWidthChanges (plus matrix.swaps /
 * matrix.epoch from the swap path itself).
 */
class PolicyController
{
  public:
    /** Hard cap for adaptive `batch:` widening. */
    static constexpr std::uint64_t maxBatchWidth = 16;

    /** Entries the decision trace retains (oldest evicted first). */
    static constexpr std::size_t traceCapacity = 256;

    /**
     * One controller decision, timestamped by epoch: the
     * observability record benches dump so containment timelines can
     * be *plotted* from the rule firings rather than inferred from
     * counter deltas. `level` is the edge's escalation level after
     * the decision (deny-hardening reports level -1: it is an
     * orthogonal bit, not a ladder rung).
     */
    struct TraceEntry
    {
        std::uint64_t epoch = 0;
        std::string rule; ///< tighten | relax | deny-harden | batch | swap
        std::string edge; ///< "from->to", or "" for image-wide events
        int level = 0;
    };

    PolicyController(Image &img, ControllerConfig cfg);
    ~PolicyController();

    PolicyController(const PolicyController &) = delete;
    PolicyController &operator=(const PolicyController &) = delete;

    /**
     * Optional NIC backlog probe (frames pending across RX queues).
     * Installed by the deployment; when absent the batch-width rule
     * is inert.
     */
    std::function<std::uint64_t()> queueDepthProbe;

    /**
     * Spawn the sampling thread: sleeps `epoch` virtual ns, runs
     * step(), repeats. The thread is free-running (control-plane work
     * models a host core outside the measured guest).
     */
    void start();

    /** Stop and join the sampling thread. */
    void stop();

    /**
     * Evaluate one epoch now, in the calling context: sample the
     * counter window, run every rule, and apply the resulting matrix
     * through a quiesced swap. Exposed for tests and driver-context
     * closed loops; start() calls it on the sampling cadence.
     * @return true if a swap was applied (some policy changed).
     */
    bool step();

    /** Epochs evaluated so far. */
    std::uint64_t epochs() const { return epochCount; }

    /** The decision trace ring (`controller.trace` counts entries). */
    const std::deque<TraceEntry> &trace() const { return traceRing; }

  private:
    /** Append to the trace ring, evicting the oldest past capacity. */
    void record(const std::string &rule, const std::string &edge,
                int level);
    /** Per-adaptive-boundary escalation state. */
    struct EdgeState
    {
        GatePolicy baseline;      ///< the configured (build-time) policy
        int level = 0;            ///< 0 = baseline .. 3 = max escalation
        std::uint64_t calm = 0;   ///< consecutive under-threshold epochs
        bool denyHardened = false; ///< deny-witness DSS+validate applied
        std::uint64_t batch = 1;  ///< current adaptive batch width
    };

    /** Re-derive an edge's policy from its baseline and state. */
    GatePolicy policyAt(const EdgeState &st) const;

    Image &img;
    ControllerConfig cfg;
    Thread *thread = nullptr;
    bool stopping = false;
    std::uint64_t epochCount = 0;

    std::map<std::pair<int, int>, EdgeState> edges;
    /** Previous epoch's counter snapshot (windowed deltas). */
    Image::StatsSnapshot prevStats;
    /** Previous epoch's per-boundary crossing totals. */
    std::map<std::pair<int, int>, std::uint64_t> prevCrossings;
    /** Bounded decision trace (see TraceEntry). */
    std::deque<TraceEntry> traceRing;
};

} // namespace flexos

#endif // FLEXOS_RUNTIME_CONTROLLER_HH
