/**
 * @file
 * uktime: the time micro-library (virtual clock + timer queue).
 *
 * One of the components compartmentalized in the paper's SQLite
 * experiment (Figure 10, MPK3/PT3 isolate the time subsystem). It shares
 * no data with the outside world (Table 1: 0 shared variables), which is
 * why its port took 10 minutes in the paper.
 */

#ifndef FLEXOS_UKTIME_CLOCK_HH
#define FLEXOS_UKTIME_CLOCK_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "machine/machine.hh"

namespace flexos {

/**
 * Virtual wall clock over the machine cycle counter.
 */
class Clock
{
  public:
    explicit Clock(Machine &m) : mach(m) {}

    /** Monotonic nanoseconds since machine start. */
    std::uint64_t
    monotonicNs() const
    {
        return mach.nanoseconds();
    }

    /** Monotonic microseconds. */
    std::uint64_t monotonicUs() const { return monotonicNs() / 1000; }

    /** Seconds as a double (for reports). */
    double seconds() const { return mach.seconds(); }

  private:
    Machine &mach;
};

/**
 * Deadline-ordered timer queue; polled by whoever owns it (the network
 * stack polls it on every loop iteration for TCP retransmissions).
 */
class TimerQueue
{
  public:
    using Callback = std::function<void()>;

    explicit TimerQueue(Machine &m) : mach(m) {}

    /** Arm a timer; returns an id usable with cancel(). */
    std::uint64_t
    arm(std::uint64_t delayNs, Callback cb)
    {
        std::uint64_t id = nextId++;
        pending.push(Entry{mach.nanoseconds() + delayNs, id,
                           std::move(cb)});
        return id;
    }

    /** Cancel a timer by id (no-op if already fired). */
    void cancel(std::uint64_t id) { cancelled.push_back(id); }

    /** Fire every timer whose deadline has passed. @return fired count */
    std::size_t
    poll()
    {
        std::size_t fired = 0;
        while (!pending.empty() &&
               pending.top().deadlineNs <= mach.nanoseconds()) {
            Entry e = pending.top();
            pending.pop();
            if (isCancelled(e.id))
                continue;
            e.cb();
            ++fired;
        }
        return fired;
    }

    /** Nanoseconds until the next live deadline, or UINT64_MAX. */
    std::uint64_t
    nextDeadlineNs() const
    {
        return pending.empty() ? UINT64_MAX : pending.top().deadlineNs;
    }

    bool empty() const { return pending.empty(); }

  private:
    struct Entry
    {
        std::uint64_t deadlineNs;
        std::uint64_t id;
        Callback cb;
    };

    struct Order
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return a.deadlineNs > b.deadlineNs;
        }
    };

    bool
    isCancelled(std::uint64_t id)
    {
        for (auto it = cancelled.begin(); it != cancelled.end(); ++it) {
            if (*it == id) {
                cancelled.erase(it);
                return true;
            }
        }
        return false;
    }

    Machine &mach;
    std::priority_queue<Entry, std::vector<Entry>, Order> pending;
    std::vector<std::uint64_t> cancelled;
    std::uint64_t nextId = 1;
};

} // namespace flexos

#endif // FLEXOS_UKTIME_CLOCK_HH
