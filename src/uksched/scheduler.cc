#include "uksched/scheduler.hh"

#include <algorithm>
#include <exception>

#include "base/logging.hh"

// AddressSanitizer must be told about ucontext fiber switches or it
// attributes fiber stacks to the host thread, producing false
// stack-buffer-overflow reports (e.g. on exception unwinds inside a
// fiber). The annotations are no-ops without ASan.
#if defined(__SANITIZE_ADDRESS__)
#define FLEXOS_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FLEXOS_ASAN_FIBERS 1
#endif
#endif

#ifdef FLEXOS_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace flexos {

namespace {

/** Scheduler whose thread is currently starting (single host thread). */
Scheduler *activeScheduler = nullptr; // flexos: shared

#ifdef FLEXOS_ASAN_FIBERS
/** Host (scheduler) stack bounds, learned on the first fiber entry. */
const void *hostStackBottom = nullptr; // flexos: shared
std::size_t hostStackSize = 0;         // flexos: shared
/** The scheduler context's saved ASan fake stack. */
void *schedFakeStack = nullptr; // flexos: shared

void
asanEnterFiber(void *fiberFakeStack)
{
    __sanitizer_finish_switch_fiber(fiberFakeStack, &hostStackBottom,
                                    &hostStackSize);
}

void
asanLeaveFiber(void **fiberFakeStackSave)
{
    __sanitizer_start_switch_fiber(fiberFakeStackSave, hostStackBottom,
                                   hostStackSize);
}
#endif

} // namespace

Thread::Thread(int id, std::string name, Entry entry,
               std::size_t stackBytes)
    : id_(id), name_(std::move(name)), entry(std::move(entry)),
      stack(stackBytes)
{
}

Scheduler::Scheduler(Machine &m) : mach(m)
{
    runQueues.resize(m.coreCount());
    coreDispatches.assign(m.coreCount(), 0);
}

Scheduler::~Scheduler()
{
    cancelAll();
}

void
Scheduler::cancelAll()
{
    // Unwind every unfinished fiber so its locals are destroyed rather
    // than abandoned with the stack (which LeakSanitizer rightly
    // reports). Each started fiber is resumed with `cancelling` set;
    // its next suspension point throws ThreadCancelled through the
    // fiber's frames. Owners whose fibers hold locals with non-trivial
    // destructors (gate state, DSS frames) should call this while the
    // rest of the world is still alive; the destructor's own call is a
    // last-resort backstop where only Machine and the threads are
    // guaranteed live. Backend hooks are disabled either way.
    onSwitch = nullptr;
    onThreadCreate = nullptr;
    onPreSuspend = nullptr;
    exitListeners.clear();
    for (auto &t : threads)
        cancel(t.get());
}

int
Scheduler::addThreadExitListener(std::function<void(Thread &)> fn)
{
    int id = nextListenerId++;
    exitListeners.emplace_back(id, std::move(fn));
    return id;
}

void
Scheduler::removeThreadExitListener(int id)
{
    for (auto it = exitListeners.begin(); it != exitListeners.end();
         ++it) {
        if (it->first == id) {
            exitListeners.erase(it);
            return;
        }
    }
}

void
Scheduler::notifyThreadExit(Thread &t)
{
    // Listener order: most-recently registered first, and robust
    // against a listener unregistering others from within the call.
    for (std::size_t i = exitListeners.size(); i-- > 0;) {
        if (i >= exitListeners.size())
            continue;
        exitListeners[i].second(t);
    }
}

void
Scheduler::cancel(Thread *t)
{
    panic_if(running, "Scheduler::cancel from inside a fiber");
    if (t->state_ == Thread::State::Finished)
        return;
    if (!t->started_) {
        t->state_ = Thread::State::Finished; // nothing on its stack
        notifyThreadExit(*t);
        return;
    }
    bool wasCancelling = cancelling;
    cancelling = true;
    // A fiber may swallow the cancellation with catch(...) and
    // suspend again; bound the retries to avoid livelock.
    for (int tries = 0;
         t->state_ != Thread::State::Finished && tries < 8; ++tries)
        switchTo(t);
    cancelling = wasCancelling;
}

Thread *
Scheduler::spawn(std::string name, Thread::Entry entry,
                 std::size_t stackBytes)
{
    int core = int(spawnRR++ % runQueues.size());
    return spawnOn(core, std::move(name), std::move(entry), stackBytes,
                   /*pinned=*/false);
}

Thread *
Scheduler::spawnOn(int core, std::string name, Thread::Entry entry,
                   std::size_t stackBytes, bool pinned)
{
    panic_if(core < 0 || unsigned(core) >= runQueues.size(), "core ",
             core, " out of range (machine has ", runQueues.size(), ")");
    auto t = std::unique_ptr<Thread>(
        new Thread(nextId++, std::move(name), std::move(entry),
                   stackBytes));
    Thread *raw = t.get();
    threads.push_back(std::move(t));
    raw->core = core;
    raw->pinned = pinned;

    getcontext(&raw->ctx);
    raw->ctx.uc_stack.ss_sp = raw->stack.data();
    raw->ctx.uc_stack.ss_size = raw->stack.size();
    raw->ctx.uc_link = nullptr;
    makecontext(&raw->ctx, &Scheduler::trampoline, 0);

    // Backend hook: e.g. the MPK backend assigns the thread its initial
    // protection domain and builds its per-compartment stack registry.
    if (onThreadCreate)
        onThreadCreate(*raw);

    runQueues[core].push_back(raw);
    return raw;
}

void
Scheduler::pin(Thread *t, int core)
{
    panic_if(core < 0 || unsigned(core) >= runQueues.size(), "core ",
             core, " out of range (machine has ", runQueues.size(), ")");
    if (t->core != core && t->state_ == Thread::State::Ready) {
        auto &q = runQueues[t->core];
        auto it = std::find(q.begin(), q.end(), t);
        if (it != q.end()) {
            q.erase(it);
            runQueues[core].push_back(t);
        }
    }
    t->core = core;
    t->pinned = true;
}

void
Scheduler::trampoline()
{
#ifdef FLEXOS_ASAN_FIBERS
    asanEnterFiber(nullptr); // first entry: no fake stack to restore
#endif
    panic_if(!activeScheduler, "thread started without a scheduler");
    activeScheduler->threadMain();
}

void
Scheduler::threadMain()
{
    Thread *self = running;
    self->started_ = true;
    try {
        self->entry();
    } catch (const ThreadCancelled &) {
        // Scheduler teardown unwound this fiber; not an error.
    } catch (const std::exception &e) {
        self->error_ = e.what();
    } catch (...) {
        self->error_ = "unknown exception";
    }
    self->state_ = Thread::State::Finished;
    // Per-thread teardown (still on this fiber's stack, so listeners
    // may not suspend): images reap the thread's simulated stacks here.
    notifyThreadExit(*self);
    for (Thread *j : self->joiners)
        wake(j);
    self->joiners.clear();
#ifdef FLEXOS_ASAN_FIBERS
    // Dying fiber: null save slot tells ASan to free its fake stack.
    __sanitizer_start_switch_fiber(nullptr, hostStackBottom,
                                   hostStackSize);
#endif
    swapcontext(&self->ctx, &schedCtx);
    panic("resumed a finished thread");
}

void
Scheduler::switchTo(Thread *t)
{
    // Bank the outgoing core's register window and make the thread's
    // home core the machine's active context (no-op on 1 core).
    mach.setActiveCore(t->core);

    Thread *prev = running;
    running = t;
    t->state_ = Thread::State::Running;
    ++switchCount;
    ++coreDispatches[static_cast<std::size_t>(t->core)];
    if (!t->freeRunning)
        mach.consume(mach.timing.contextSwitch);
    mach.chargingEnabled = !t->freeRunning;

    // Install the incoming thread's protection domain and hardening
    // multiplier, then give the backend hook a chance to extend the
    // switch (stack registry etc.).
    mach.pkru = t->pkru;
    mach.currentVm = t->vm;
    mach.workMultiplier = t->workMult;
    if (onSwitch)
        onSwitch(prev, t);

    Scheduler *prevActive = activeScheduler;
    activeScheduler = this;
#ifdef FLEXOS_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&schedFakeStack, t->stack.data(),
                                   t->stack.size());
#endif
    swapcontext(&schedCtx, &t->ctx);
#ifdef FLEXOS_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(schedFakeStack, nullptr, nullptr);
#endif
    activeScheduler = prevActive;

    // Back in the scheduler (TCB): run unrestricted and charged. This
    // also covers threads that returned without passing switchOut() —
    // they bypass the running=nullptr reset, so clear the stale
    // pointer here.
    if (running == t && t->state_ == Thread::State::Finished)
        running = nullptr;
    mach.pkru = Pkru(Pkru::allowAllValue);
    mach.currentVm = -1;
    mach.chargingEnabled = true;
    mach.workMultiplier = 1.0;
}

void
Scheduler::switchOut()
{
    Thread *self = running;
    panic_if(!self, "switchOut outside a thread");
    // Save the thread's protection-domain state; the scheduler itself
    // runs with an unrestricted PKRU (it is TCB).
    self->pkru = mach.pkru;
    self->vm = mach.currentVm;
    self->workMult = mach.workMultiplier;
    running = nullptr;
    mach.pkru = Pkru(Pkru::allowAllValue);
    mach.currentVm = -1;
    mach.chargingEnabled = true;
    mach.workMultiplier = 1.0;
#ifdef FLEXOS_ASAN_FIBERS
    asanLeaveFiber(&self->asanFakeStack);
#endif
    swapcontext(&self->ctx, &schedCtx);
#ifdef FLEXOS_ASAN_FIBERS
    asanEnterFiber(self->asanFakeStack);
#endif
    if (cancelling)
        throw ThreadCancelled{};
}

bool
Scheduler::anyQueued() const
{
    for (const auto &q : runQueues) {
        if (!q.empty())
            return true;
    }
    return false;
}

void
Scheduler::pruneStale()
{
    // Queue entries can outlive their thread's readiness (cancel()
    // finishes a queued thread in place); drop them before the idle
    // checks below so a queue of corpses doesn't look like work.
    for (auto &q : runQueues) {
        q.erase(std::remove_if(q.begin(), q.end(),
                               [](Thread *t) {
                                   return t->state() !=
                                          Thread::State::Ready;
                               }),
                q.end());
    }
}

bool
Scheduler::serviceSleepers(bool mayAdvanceClock)
{
    bool woke = false;
    while (!sleepers.empty()) {
        SleeperEntry e = sleepers.top();
        // An entry is live while its generation matches the thread's
        // current arming and the thread is still in the armed state:
        // Sleeping for sleepNs(), Blocked for blockFor(). Anything
        // else (woken early, cancelled, re-armed) is a stale copy.
        bool live = e.gen == e.t->sleepGen &&
                    (e.t->state_ == Thread::State::Sleeping ||
                     (e.t->state_ == Thread::State::Blocked &&
                      e.t->timedWaitQueue));
        if (!live) {
            sleepers.pop();
            continue;
        }
        bool due = e.at <= mach.wallCycles();
        if (!due && mayAdvanceClock && !anyQueued()) {
            // Event-driven idle: everything is waiting, so the next
            // wakeup defines the passage of time. The woken thread
            // carries its deadline in readyAtCycles; dispatch jumps
            // its core's clock forward to it.
            due = true;
            mach.bump("sched.idleJumps");
        }
        if (!due)
            break;
        sleepers.pop();
        Thread *t = e.t;
        if (t->state_ == Thread::State::Sleeping) {
            t->state_ = Thread::State::Ready;
            t->readyAtCycles = e.at;
            runQueues[t->core].push_back(t);
            woke = true;
        } else if (t->state_ == Thread::State::Blocked &&
                   t->timedWaitQueue) {
            // blockFor() timeout: leave the wait queue empty-handed.
            auto &ws = t->timedWaitQueue->waiters;
            auto it = std::find(ws.begin(), ws.end(), t);
            if (it != ws.end())
                ws.erase(it);
            t->timedOut = true;
            t->state_ = Thread::State::Ready;
            t->readyAtCycles = e.at;
            runQueues[t->core].push_back(t);
            woke = true;
        }
    }
    return woke;
}

void
Scheduler::stealWork()
{
    unsigned n = unsigned(runQueues.size());
    if (n < 2)
        return;
    for (unsigned thief = 0; thief < n; ++thief) {
        if (!runQueues[thief].empty())
            continue;
        // Steal from the most loaded queue that can spare a thread.
        unsigned victim = n;
        std::size_t most = 1;
        for (unsigned v = 0; v < n; ++v) {
            if (runQueues[v].size() > most) {
                victim = v;
                most = runQueues[v].size();
            }
        }
        if (victim == n)
            continue;
        auto &vq = runQueues[victim];
        // Newest-first: the oldest entries are about to run hot on the
        // victim; the tail has waited least and migrates cheapest.
        for (auto it = vq.rbegin(); it != vq.rend(); ++it) {
            Thread *t = *it;
            if (t->pinned || t->state_ != Thread::State::Ready)
                continue;
            vq.erase(std::next(it).base());
            t->core = int(thief);
            // The thread was living on the victim's timeline; it
            // cannot start on the thief before the moment it left.
            t->readyAtCycles = std::max(
                t->readyAtCycles, mach.coreCycles(int(victim)));
            mach.chargeCore(int(thief), mach.timing.stealMigration);
            mach.bump("sched.steals");
            runQueues[thief].push_back(t);
            break;
        }
    }
}

bool
Scheduler::dispatchOne()
{
    unsigned n = unsigned(runQueues.size());

    // Pass 1: round-robin across cores, dispatching the first thread
    // already due on its own core's clock.
    for (unsigned i = 0; i < n; ++i) {
        unsigned c = (nextDispatchCore + i) % n;
        for (Thread *t : runQueues[c]) {
            if (t->readyAtCycles > mach.coreCycles(int(c)))
                continue;
            auto &q = runQueues[c];
            q.erase(std::find(q.begin(), q.end(), t));
            nextDispatchCore = (c + 1) % n;
            switchTo(t);
            return true;
        }
    }

    // Pass 2: only future-ready work remains (cross-core wakes or
    // idle-jump sleepers). The earliest event wins; its core idles
    // forward to the event time.
    Thread *next = nullptr;
    for (unsigned c = 0; c < n; ++c) {
        for (Thread *t : runQueues[c]) {
            if (!next || t->readyAtCycles < next->readyAtCycles)
                next = t;
        }
    }
    if (!next)
        return false;
    auto &q = runQueues[next->core];
    q.erase(std::find(q.begin(), q.end(), next));
    mach.advanceCoreTo(next->core, next->readyAtCycles);
    nextDispatchCore = (unsigned(next->core) + 1) % n;
    switchTo(next);
    return true;
}

bool
Scheduler::run()
{
    while (true) {
        pruneStale();
        serviceSleepers(true);
        stealWork();
        if (!dispatchOne())
            break;
    }

    for (const auto &t : threads) {
        if (t->state_ != Thread::State::Finished)
            return false; // blocked threads remain: deadlock
    }
    return true;
}

bool
Scheduler::runUntil(const std::function<bool()> &pred,
                    std::uint64_t maxSwitches)
{
    std::uint64_t budget = maxSwitches;
    while (!pred()) {
        if (budget-- == 0)
            return false;
        pruneStale();
        serviceSleepers(true);
        stealWork();
        if (!dispatchOne())
            return false;
    }
    return true;
}

void
Scheduler::preSuspend(Thread *self)
{
    if (onPreSuspend && !cancelling)
        onPreSuspend(*self);
}

void
Scheduler::yield()
{
    Thread *self = running;
    panic_if(!self, "yield outside a thread");
    preSuspend(self);
    self->state_ = Thread::State::Ready;
    runQueues[self->core].push_back(self);
    switchOut();
}

void
Scheduler::block(WaitQueue &q)
{
    Thread *self = running;
    panic_if(!self, "block outside a thread");
    preSuspend(self);
    self->state_ = Thread::State::Blocked;
    q.waiters.push_back(self);
    switchOut();
}

void
Scheduler::sleepNs(std::uint64_t ns)
{
    Thread *self = running;
    panic_if(!self, "sleep outside a thread");
    preSuspend(self);
    self->state_ = Thread::State::Sleeping;
    self->wakeAtCycles =
        mach.cycles() +
        static_cast<std::uint64_t>(static_cast<double>(ns) *
                                   mach.timing.cpuGhz);
    sleepers.push({self->wakeAtCycles, ++self->sleepGen, self});
    switchOut();
}

bool
Scheduler::blockFor(WaitQueue &q, std::uint64_t ns)
{
    Thread *self = running;
    panic_if(!self, "blockFor outside a thread");
    preSuspend(self);
    self->state_ = Thread::State::Blocked;
    q.waiters.push_back(self);
    self->wakeAtCycles =
        mach.cycles() +
        static_cast<std::uint64_t>(static_cast<double>(ns) *
                                   mach.timing.cpuGhz);
    self->timedWaitQueue = &q;
    self->timedOut = false;
    sleepers.push({self->wakeAtCycles, ++self->sleepGen, self});
    switchOut();
    self->timedWaitQueue = nullptr;
    ++self->sleepGen; // retire the timeout entry if woken normally
    return !self->timedOut;
}

void
Scheduler::join(Thread *t)
{
    Thread *self = running;
    panic_if(!self, "join outside a thread");
    panic_if(t == self, "thread joining itself");
    preSuspend(self);
    if (t->state_ == Thread::State::Finished)
        return;
    t->joiners.push_back(self);
    self->state_ = Thread::State::Blocked;
    switchOut();
}

void
Scheduler::wake(Thread *t)
{
    if (t->state_ != Thread::State::Blocked)
        return;
    // Cross-core wakeup: the waker pays an IPI, and the wakee cannot
    // observe the event before the waker's clock reads now — stamp
    // readyAtCycles so the target core idles forward if it is behind.
    // Free-running threads live outside the timing model: they neither
    // pay nor transfer clock causality in either direction.
    bool timedWaker = running && !running->freeRunning;
    if (timedWaker && !t->freeRunning && running->core != t->core) {
        mach.consume(mach.timing.ipi);
        mach.bump("sched.ipis");
    }
    t->state_ = Thread::State::Ready;
    t->readyAtCycles = (timedWaker && !t->freeRunning)
                           ? mach.cycles()
                           : mach.coreCycles(t->core);
    runQueues[t->core].push_back(t);
}

std::uint64_t
Scheduler::dispatchesOn(int core) const
{
    panic_if(core < 0 ||
                 static_cast<std::size_t>(core) >= coreDispatches.size(),
             "core ", core, " out of range");
    return coreDispatches[static_cast<std::size_t>(core)];
}

bool
Scheduler::coreHasRunnable(int core) const
{
    panic_if(core < 0 ||
                 static_cast<std::size_t>(core) >= runQueues.size(),
             "core ", core, " out of range");
    for (const Thread *t : runQueues[static_cast<std::size_t>(core)]) {
        if (t->state() == Thread::State::Ready)
            return true;
    }
    return false;
}

bool
Scheduler::hasLiveThreads() const
{
    for (const auto &t : threads) {
        if (t->state_ != Thread::State::Finished)
            return true;
    }
    return false;
}

Thread *
WaitQueue::wakeOne()
{
    while (!waiters.empty()) {
        Thread *t = waiters.front();
        waiters.pop_front();
        if (t->state() == Thread::State::Blocked) {
            sched.wake(t);
            return t;
        }
    }
    return nullptr;
}

std::size_t
WaitQueue::wakeAll()
{
    std::size_t n = 0;
    while (wakeOne())
        ++n;
    return n;
}

void
Mutex::lock()
{
    Thread *self = sched.current();
    panic_if(!self, "Mutex::lock outside a thread");
    panic_if(owner == self, "recursive Mutex::lock");
    while (owner)
        waiters.wait();
    owner = self;
}

void
Mutex::unlock()
{
    panic_if(owner != sched.current(), "unlock by non-owner");
    owner = nullptr;
    waiters.wakeOne();
}

bool
Mutex::tryLock()
{
    Thread *self = sched.current();
    panic_if(!self, "Mutex::tryLock outside a thread");
    if (owner)
        return false;
    owner = self;
    return true;
}

bool
Mutex::heldByCaller() const
{
    return owner && owner == sched.current();
}

void
Semaphore::post()
{
    ++count;
    waiters.wakeOne();
}

void
Semaphore::wait()
{
    while (count == 0)
        waiters.wait();
    --count;
}

bool
Semaphore::tryWait()
{
    if (count == 0)
        return false;
    --count;
    return true;
}

} // namespace flexos
