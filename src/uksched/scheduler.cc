#include "uksched/scheduler.hh"

#include <exception>

#include "base/logging.hh"

// AddressSanitizer must be told about ucontext fiber switches or it
// attributes fiber stacks to the host thread, producing false
// stack-buffer-overflow reports (e.g. on exception unwinds inside a
// fiber). The annotations are no-ops without ASan.
#if defined(__SANITIZE_ADDRESS__)
#define FLEXOS_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FLEXOS_ASAN_FIBERS 1
#endif
#endif

#ifdef FLEXOS_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace flexos {

namespace {

/** Scheduler whose thread is currently starting (single host thread). */
Scheduler *activeScheduler = nullptr;

#ifdef FLEXOS_ASAN_FIBERS
/** Host (scheduler) stack bounds, learned on the first fiber entry. */
const void *hostStackBottom = nullptr;
std::size_t hostStackSize = 0;
/** The scheduler context's saved ASan fake stack. */
void *schedFakeStack = nullptr;

void
asanEnterFiber(void *fiberFakeStack)
{
    __sanitizer_finish_switch_fiber(fiberFakeStack, &hostStackBottom,
                                    &hostStackSize);
}

void
asanLeaveFiber(void **fiberFakeStackSave)
{
    __sanitizer_start_switch_fiber(fiberFakeStackSave, hostStackBottom,
                                   hostStackSize);
}
#endif

} // namespace

Thread::Thread(int id, std::string name, Entry entry,
               std::size_t stackBytes)
    : id_(id), name_(std::move(name)), entry(std::move(entry)),
      stack(stackBytes)
{
}

Scheduler::Scheduler(Machine &m) : mach(m)
{
}

Scheduler::~Scheduler()
{
    cancelAll();
}

void
Scheduler::cancelAll()
{
    // Unwind every unfinished fiber so its locals are destroyed rather
    // than abandoned with the stack (which LeakSanitizer rightly
    // reports). Each started fiber is resumed with `cancelling` set;
    // its next suspension point throws ThreadCancelled through the
    // fiber's frames. Owners whose fibers hold locals with non-trivial
    // destructors (gate state, DSS frames) should call this while the
    // rest of the world is still alive; the destructor's own call is a
    // last-resort backstop where only Machine and the threads are
    // guaranteed live. Backend hooks are disabled either way.
    onSwitch = nullptr;
    onThreadCreate = nullptr;
    exitListeners.clear();
    for (auto &t : threads)
        cancel(t.get());
}

int
Scheduler::addThreadExitListener(std::function<void(Thread &)> fn)
{
    int id = nextListenerId++;
    exitListeners.emplace_back(id, std::move(fn));
    return id;
}

void
Scheduler::removeThreadExitListener(int id)
{
    for (auto it = exitListeners.begin(); it != exitListeners.end();
         ++it) {
        if (it->first == id) {
            exitListeners.erase(it);
            return;
        }
    }
}

void
Scheduler::notifyThreadExit(Thread &t)
{
    // Listener order: most-recently registered first, and robust
    // against a listener unregistering others from within the call.
    for (std::size_t i = exitListeners.size(); i-- > 0;) {
        if (i >= exitListeners.size())
            continue;
        exitListeners[i].second(t);
    }
}

void
Scheduler::cancel(Thread *t)
{
    panic_if(running, "Scheduler::cancel from inside a fiber");
    if (t->state_ == Thread::State::Finished)
        return;
    if (!t->started_) {
        t->state_ = Thread::State::Finished; // nothing on its stack
        notifyThreadExit(*t);
        return;
    }
    bool wasCancelling = cancelling;
    cancelling = true;
    // A fiber may swallow the cancellation with catch(...) and
    // suspend again; bound the retries to avoid livelock.
    for (int tries = 0;
         t->state_ != Thread::State::Finished && tries < 8; ++tries)
        switchTo(t);
    cancelling = wasCancelling;
}

Thread *
Scheduler::spawn(std::string name, Thread::Entry entry,
                 std::size_t stackBytes)
{
    auto t = std::unique_ptr<Thread>(
        new Thread(nextId++, std::move(name), std::move(entry),
                   stackBytes));
    Thread *raw = t.get();
    threads.push_back(std::move(t));

    getcontext(&raw->ctx);
    raw->ctx.uc_stack.ss_sp = raw->stack.data();
    raw->ctx.uc_stack.ss_size = raw->stack.size();
    raw->ctx.uc_link = nullptr;
    makecontext(&raw->ctx, &Scheduler::trampoline, 0);

    // Backend hook: e.g. the MPK backend assigns the thread its initial
    // protection domain and builds its per-compartment stack registry.
    if (onThreadCreate)
        onThreadCreate(*raw);

    runQueue.push_back(raw);
    return raw;
}

void
Scheduler::trampoline()
{
#ifdef FLEXOS_ASAN_FIBERS
    asanEnterFiber(nullptr); // first entry: no fake stack to restore
#endif
    panic_if(!activeScheduler, "thread started without a scheduler");
    activeScheduler->threadMain();
}

void
Scheduler::threadMain()
{
    Thread *self = running;
    self->started_ = true;
    try {
        self->entry();
    } catch (const ThreadCancelled &) {
        // Scheduler teardown unwound this fiber; not an error.
    } catch (const std::exception &e) {
        self->error_ = e.what();
    } catch (...) {
        self->error_ = "unknown exception";
    }
    self->state_ = Thread::State::Finished;
    // Per-thread teardown (still on this fiber's stack, so listeners
    // may not suspend): images reap the thread's simulated stacks here.
    notifyThreadExit(*self);
    for (Thread *j : self->joiners)
        wake(j);
    self->joiners.clear();
#ifdef FLEXOS_ASAN_FIBERS
    // Dying fiber: null save slot tells ASan to free its fake stack.
    __sanitizer_start_switch_fiber(nullptr, hostStackBottom,
                                   hostStackSize);
#endif
    swapcontext(&self->ctx, &schedCtx);
    panic("resumed a finished thread");
}

void
Scheduler::switchTo(Thread *t)
{
    Thread *prev = running;
    running = t;
    t->state_ = Thread::State::Running;
    ++switchCount;
    if (!t->freeRunning)
        mach.consume(mach.timing.contextSwitch);
    mach.chargingEnabled = !t->freeRunning;

    // Install the incoming thread's protection domain and hardening
    // multiplier, then give the backend hook a chance to extend the
    // switch (stack registry etc.).
    mach.pkru = t->pkru;
    mach.currentVm = t->vm;
    mach.workMultiplier = t->workMult;
    if (onSwitch)
        onSwitch(prev, t);

    Scheduler *prevActive = activeScheduler;
    activeScheduler = this;
#ifdef FLEXOS_ASAN_FIBERS
    __sanitizer_start_switch_fiber(&schedFakeStack, t->stack.data(),
                                   t->stack.size());
#endif
    swapcontext(&schedCtx, &t->ctx);
#ifdef FLEXOS_ASAN_FIBERS
    __sanitizer_finish_switch_fiber(schedFakeStack, nullptr, nullptr);
#endif
    activeScheduler = prevActive;

    // Back in the scheduler (TCB): run unrestricted and charged. This
    // also covers threads that returned without passing switchOut() —
    // they bypass the running=nullptr reset, so clear the stale
    // pointer here.
    if (running == t && t->state_ == Thread::State::Finished)
        running = nullptr;
    mach.pkru = Pkru(Pkru::allowAllValue);
    mach.currentVm = -1;
    mach.chargingEnabled = true;
    mach.workMultiplier = 1.0;
}

void
Scheduler::switchOut()
{
    Thread *self = running;
    panic_if(!self, "switchOut outside a thread");
    // Save the thread's protection-domain state; the scheduler itself
    // runs with an unrestricted PKRU (it is TCB).
    self->pkru = mach.pkru;
    self->vm = mach.currentVm;
    self->workMult = mach.workMultiplier;
    running = nullptr;
    mach.pkru = Pkru(Pkru::allowAllValue);
    mach.currentVm = -1;
    mach.chargingEnabled = true;
    mach.workMultiplier = 1.0;
#ifdef FLEXOS_ASAN_FIBERS
    asanLeaveFiber(&self->asanFakeStack);
#endif
    swapcontext(&self->ctx, &schedCtx);
#ifdef FLEXOS_ASAN_FIBERS
    asanEnterFiber(self->asanFakeStack);
#endif
    if (cancelling)
        throw ThreadCancelled{};
}

bool
Scheduler::serviceSleepers(bool mayAdvanceClock)
{
    bool woke = false;
    while (!sleepers.empty()) {
        Thread *t = sleepers.top();
        if (t->wakeAtCycles <= mach.cycles()) {
            sleepers.pop();
            if (t->state_ == Thread::State::Sleeping) {
                t->state_ = Thread::State::Ready;
                runQueue.push_back(t);
            }
            woke = true;
            continue;
        }
        if (mayAdvanceClock && runQueue.empty()) {
            // Event-driven idle: jump the clock to the next wakeup.
            mach.consume(t->wakeAtCycles - mach.cycles());
            mach.bump("sched.idleJumps");
            continue;
        }
        break;
    }
    return woke;
}

bool
Scheduler::run()
{
    while (true) {
        serviceSleepers(true);
        if (runQueue.empty())
            break;
        Thread *t = runQueue.front();
        runQueue.pop_front();
        if (t->state_ != Thread::State::Ready)
            continue;
        switchTo(t);
    }

    for (const auto &t : threads) {
        if (t->state_ != Thread::State::Finished)
            return false; // blocked threads remain: deadlock
    }
    return true;
}

bool
Scheduler::runUntil(const std::function<bool()> &pred,
                    std::uint64_t maxSwitches)
{
    std::uint64_t budget = maxSwitches;
    while (!pred()) {
        if (budget-- == 0)
            return false;
        serviceSleepers(true);
        if (runQueue.empty())
            return false;
        Thread *t = runQueue.front();
        runQueue.pop_front();
        if (t->state_ != Thread::State::Ready)
            continue;
        switchTo(t);
    }
    return true;
}

void
Scheduler::yield()
{
    Thread *self = running;
    panic_if(!self, "yield outside a thread");
    self->state_ = Thread::State::Ready;
    runQueue.push_back(self);
    switchOut();
}

void
Scheduler::block(WaitQueue &q)
{
    Thread *self = running;
    panic_if(!self, "block outside a thread");
    self->state_ = Thread::State::Blocked;
    q.waiters.push_back(self);
    switchOut();
}

void
Scheduler::sleepNs(std::uint64_t ns)
{
    Thread *self = running;
    panic_if(!self, "sleep outside a thread");
    self->state_ = Thread::State::Sleeping;
    self->wakeAtCycles =
        mach.cycles() +
        static_cast<std::uint64_t>(static_cast<double>(ns) *
                                   mach.timing.cpuGhz);
    sleepers.push(self);
    switchOut();
}

void
Scheduler::join(Thread *t)
{
    Thread *self = running;
    panic_if(!self, "join outside a thread");
    panic_if(t == self, "thread joining itself");
    if (t->state_ == Thread::State::Finished)
        return;
    t->joiners.push_back(self);
    self->state_ = Thread::State::Blocked;
    switchOut();
}

void
Scheduler::wake(Thread *t)
{
    if (t->state_ != Thread::State::Blocked)
        return;
    t->state_ = Thread::State::Ready;
    runQueue.push_back(t);
}

bool
Scheduler::hasLiveThreads() const
{
    for (const auto &t : threads) {
        if (t->state_ != Thread::State::Finished)
            return true;
    }
    return false;
}

Thread *
WaitQueue::wakeOne()
{
    while (!waiters.empty()) {
        Thread *t = waiters.front();
        waiters.pop_front();
        if (t->state() == Thread::State::Blocked) {
            sched.wake(t);
            return t;
        }
    }
    return nullptr;
}

std::size_t
WaitQueue::wakeAll()
{
    std::size_t n = 0;
    while (wakeOne())
        ++n;
    return n;
}

void
Mutex::lock()
{
    Thread *self = sched.current();
    panic_if(!self, "Mutex::lock outside a thread");
    panic_if(owner == self, "recursive Mutex::lock");
    while (owner)
        waiters.wait();
    owner = self;
}

void
Mutex::unlock()
{
    panic_if(owner != sched.current(), "unlock by non-owner");
    owner = nullptr;
    waiters.wakeOne();
}

bool
Mutex::tryLock()
{
    Thread *self = sched.current();
    panic_if(!self, "Mutex::tryLock outside a thread");
    if (owner)
        return false;
    owner = self;
    return true;
}

bool
Mutex::heldByCaller() const
{
    return owner && owner == sched.current();
}

void
Semaphore::post()
{
    ++count;
    waiters.wakeOne();
}

void
Semaphore::wait()
{
    while (count == 0)
        waiters.wait();
    --count;
}

bool
Semaphore::tryWait()
{
    if (count == 0)
        return false;
    --count;
    return true;
}

} // namespace flexos
