/**
 * @file
 * uksched: the cooperative scheduler micro-library.
 *
 * All simulated concurrency (application threads, EPT RPC server pools,
 * network pollers) runs as ucontext fibers multiplexed on the single host
 * thread, round-robin, switching only at explicit yield/block points.
 * This makes every run deterministic and lets the virtual clock be exact.
 *
 * The scheduler is part of FlexOS' trusted computing base (paper 3.3) and
 * exposes the backend hook API of paper 3.2: isolation backends register
 * thread-creation and context-switch hooks (e.g. the MPK backend swaps
 * the PKRU register and the per-compartment stack registry on switch).
 */

#ifndef FLEXOS_UKSCHED_SCHEDULER_HH
#define FLEXOS_UKSCHED_SCHEDULER_HH

#include <ucontext.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "machine/machine.hh"

namespace flexos {

class Scheduler;
class WaitQueue;

/**
 * Thrown inside a fiber at its next suspension point when the scheduler
 * is tearing down, unwinding the fiber's stack so its locals are
 * destroyed instead of abandoned. Deliberately not a std::exception so
 * application-level catch(const std::exception&) handlers cannot
 * swallow it.
 */
struct ThreadCancelled
{
};

/**
 * A cooperative thread (fiber).
 */
class Thread
{
  public:
    using Entry = std::function<void()>;

    enum class State { Ready, Running, Blocked, Sleeping, Finished };

    int id() const { return id_; }
    const std::string &name() const { return name_; }
    State state() const { return state_; }

    /** Error text if the thread terminated with an exception. */
    const std::string &error() const { return error_; }
    bool failed() const { return !error_.empty(); }

    /** Saved protection-key register (swapped by the MPK switch hook). */
    Pkru pkru;

    /**
     * VM the thread executes in (-1 outside any VM): threads living in
     * an EPT compartment see its VM-private memory, which is unmapped
     * for everyone else (key virtualization). Swapped like pkru.
     */
    int vm = -1;

    /**
     * Compartment the thread is currently executing in; maintained by
     * call gates. Compartment 0 is the default compartment.
     */
    int currentCompartment = 0;

    /** Saved hardening work multiplier (swapped on context switch). */
    double workMult = 1.0;

    /** Opaque per-thread backend state (e.g. MPK stack registry). */
    std::shared_ptr<void> backendData;

    /**
     * Free-running threads execute without charging virtual cycles;
     * used for client-side load generators (the paper pins clients to
     * dedicated host cores that never bottleneck the measurement).
     */
    bool freeRunning = false;

    /** Core the thread runs on (its run-queue home). */
    int core = 0;

    /**
     * Pinned threads never migrate: work stealing skips them and
     * Scheduler::pin() is the only way to move them. Used for per-core
     * NIC pollers and EPT servers whose state is core-sharded.
     */
    bool pinned = false;

  private:
    friend class Scheduler;

    Thread(int id, std::string name, Entry entry, std::size_t stackBytes);

    int id_;
    std::string name_;
    State state_ = State::Ready;
    std::string error_;
    Entry entry;
    ucontext_t ctx;
    std::vector<char> stack;
    std::uint64_t wakeAtCycles = 0;
    /**
     * Earliest cycle (on the thread's own core) it may run: stamped
     * with the waker's clock so cross-core wakeups stay causal, and
     * with the wake deadline for sleepers woken by an idle jump.
     */
    std::uint64_t readyAtCycles = 0;
    /** Generation counter invalidating stale sleeper-heap entries. */
    std::uint64_t sleepGen = 0;
    /** Wait queue a blockFor() caller sits in (null otherwise). */
    WaitQueue *timedWaitQueue = nullptr;
    /** Whether the last blockFor() ended by timeout. */
    bool timedOut = false;
    std::vector<Thread *> joiners;
    void *asanFakeStack = nullptr; ///< ASan fiber-switch save slot
    bool started_ = false;         ///< has ever run on its own stack
};

/**
 * Cooperative scheduler over a Machine's virtual clocks: one run queue
 * per simulated core, round-robin across cores and FIFO within one,
 * with work stealing for unpinned threads. Cross-core wakeups charge an
 * IPI and stamp the wakee with the waker's clock so causality holds
 * across per-core timelines. On a 1-core machine this degenerates to
 * exactly the original single-queue round-robin.
 */
class Scheduler
{
  public:
    explicit Scheduler(Machine &m);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** @name Backend hook API (paper 3.2). @{ */
    /** Called after a thread object is created, before it first runs. */
    std::function<void(Thread &)> onThreadCreate;
    /** Called on every switch; prev may be null (scheduler entry). */
    std::function<void(Thread *prev, Thread *next)> onSwitch;
    /**
     * Called at the top of every voluntary suspension (yield, block,
     * blockFor, sleep, join) while the thread is still Running, before
     * its state changes. Images hook this to flush a thread's pending
     * deferred gate batch on the core that queued it — only suspended
     * threads can be stolen or woken cross-core, so firing here
     * guarantees no batch ever rides a migration. The hook may itself
     * suspend (the flush can block on an RPC); re-entry sees the
     * flushed state and is a no-op. Cleared by cancelAll() alongside
     * the other hooks so teardown unwinding never runs gate work.
     */
    std::function<void(Thread &)> onPreSuspend;
    /** @} */

    /** @name Thread-exit listeners. @{ */
    /**
     * Register fn to run once whenever a thread finishes (returns,
     * fails, or is cancelled), on the dying fiber's own stack. Images
     * hook this to reap per-thread resources (simulated compartment
     * stacks). Multiple listeners may coexist (several images on one
     * scheduler); each must unregister with the returned id before its
     * captured state dies. @return the listener id.
     */
    int addThreadExitListener(std::function<void(Thread &)> fn);

    /** Remove a listener by id (no-op for unknown/already-removed). */
    void removeThreadExitListener(int id);
    /** @} */

    /**
     * Create a thread; it becomes runnable immediately. Unpinned
     * threads are placed round-robin across the machine's cores (on a
     * 1-core machine that is always core 0) and may later be migrated
     * by work stealing.
     */
    Thread *spawn(std::string name, Thread::Entry entry,
                  std::size_t stackBytes = 256 * 1024);

    /**
     * Create a thread on a specific core. Pinned (the default) means
     * work stealing will never migrate it — per-core pollers and
     * core-sharded backend servers rely on this.
     */
    Thread *spawnOn(int core, std::string name, Thread::Entry entry,
                    std::size_t stackBytes = 256 * 1024,
                    bool pinned = true);

    /**
     * Pin a thread to a core, migrating its run-queue entry if it is
     * currently ready. Used by flow-steering drivers to home a
     * connection's worker on the core its RSS queue is polled from.
     */
    void pin(Thread *t, int core);

    /**
     * Run until no thread is Ready or Sleeping.
     * @return true if every thread finished; false if only Blocked
     *         threads remain (deadlock — the caller decides what to do).
     */
    bool run();

    /**
     * Run until pred() holds, checked after every thread switch-out.
     * @return true if the predicate was met, false if execution dried up.
     */
    bool runUntil(const std::function<bool()> &pred,
                  std::uint64_t maxSwitches = 50'000'000);

    /** @name Calls made from inside threads. @{ */
    /** Cooperatively give up the CPU (stay runnable). */
    void yield();
    /** Block the calling thread on a wait queue. */
    void block(WaitQueue &q);
    /**
     * Block on a wait queue with a timeout of ns virtual nanoseconds.
     * @return true if woken through the queue, false on timeout (the
     *         thread has been removed from the queue).
     */
    bool blockFor(WaitQueue &q, std::uint64_t ns);
    /** Sleep the calling thread for ns virtual nanoseconds. */
    void sleepNs(std::uint64_t ns);
    /** Wait for another thread to finish. */
    void join(Thread *t);
    /** @} */

    /** Make a blocked thread runnable. */
    void wake(Thread *t);

    /**
     * Cancel and unwind every unfinished fiber (their next suspension
     * point throws ThreadCancelled). Called automatically on
     * destruction; owners should call it earlier, while objects the
     * fibers' locals reference are still alive.
     */
    void cancelAll();

    /**
     * Cancel and unwind one fiber: it is resumed with the cancellation
     * flag set so its next suspension point throws ThreadCancelled.
     * Unlike cancelAll() the backend hooks stay installed — per-thread
     * teardown (onThreadExit) still runs. Must be called from the
     * scheduler context, not from inside a fiber.
     */
    void cancel(Thread *t);

    /** The thread currently executing, or null in the scheduler itself. */
    Thread *current() { return running; }

    /** The machine this scheduler drives. */
    Machine &machine() { return mach; }

    /** Number of context switches performed. */
    std::uint64_t switches() const { return switchCount; }

    /**
     * Dispatches onto one core since boot: every switchTo() of a
     * thread homed there counts. A dispatch is a policy-safe point —
     * the thread passed through the scheduler — so quiesced epoch
     * swaps (Image::swapGateMatrix) use the counter as the per-core
     * acknowledgement that a core has observed the new state.
     */
    std::uint64_t dispatchesOn(int core) const;

    /** Whether a core's run queue holds a Ready thread right now. */
    bool coreHasRunnable(int core) const;

    /** Threads that have been spawned and not yet destroyed. */
    std::size_t threadCount() const { return threads.size(); }

    /** True if any non-finished thread exists. */
    bool hasLiveThreads() const;

  private:
    friend class WaitQueue;

    void switchTo(Thread *t);
    void switchOut();

    /** Fire the pre-suspension hook (batch flush) unless tearing down. */
    void preSuspend(Thread *self);
    void threadMain();
    static void trampoline();

    /** Move due sleepers to their run queues; force-wake if all idle. */
    bool serviceSleepers(bool mayAdvanceClock);

    /** Drop run-queue entries whose thread is no longer Ready. */
    void pruneStale();

    /** Migrate ready unpinned threads from loaded cores to idle ones. */
    void stealWork();

    /**
     * Dispatch one thread: round-robin over cores, preferring work
     * that is already due on its core's clock; otherwise idle-jump the
     * core owning the earliest future-ready thread.
     * @return false if no Ready thread is queued anywhere.
     */
    bool dispatchOne();

    /** Whether any core's run queue is non-empty. */
    bool anyQueued() const;

    void notifyThreadExit(Thread &t);

    Machine &mach;
    std::vector<std::unique_ptr<Thread>> threads;
    /** One run queue per machine core. */
    std::vector<std::deque<Thread *>> runQueues;
    /** Per-core dispatch counters (epoch-ack safe points). */
    std::vector<std::uint64_t> coreDispatches;
    std::vector<std::pair<int, std::function<void(Thread &)>>>
        exitListeners;
    int nextListenerId = 1;

    /**
     * Sleeper-heap entry: a copy of the deadline plus the arming
     * generation, so entries orphaned by an early wake (or re-armed
     * sleeps) are recognised as stale and dropped.
     */
    struct SleeperEntry
    {
        std::uint64_t at;
        std::uint64_t gen;
        Thread *t;
    };
    struct SleeperOrder
    {
        bool
        operator()(const SleeperEntry &a, const SleeperEntry &b) const
        {
            return a.at > b.at;
        }
    };
    std::priority_queue<SleeperEntry, std::vector<SleeperEntry>,
                        SleeperOrder>
        sleepers;

    unsigned spawnRR = 0;         ///< round-robin core for spawn()
    unsigned nextDispatchCore = 0; ///< round-robin dispatch cursor

    Thread *running = nullptr;
    ucontext_t schedCtx;
    int nextId = 1;
    std::uint64_t switchCount = 0;
    bool cancelling = false; ///< teardown: suspension points throw
};

/**
 * A queue of blocked threads (the primitive under mutexes, semaphores,
 * socket waits and RPC rings).
 */
class WaitQueue
{
  public:
    explicit WaitQueue(Scheduler &s) : sched(s) {}

    /** Block the calling thread until woken. */
    void wait() { sched.block(*this); }

    /** Wake the longest-waiting thread, if any. @return woken thread */
    Thread *wakeOne();

    /** Wake everyone. @return number woken */
    std::size_t wakeAll();

    bool empty() const { return waiters.empty(); }
    std::size_t size() const { return waiters.size(); }

  private:
    friend class Scheduler;

    Scheduler &sched;
    std::deque<Thread *> waiters;
};

/** Cooperative mutex. */
class Mutex
{
  public:
    explicit Mutex(Scheduler &s) : sched(s), waiters(s) {}

    void lock();
    void unlock();
    bool tryLock();
    bool heldByCaller() const;

  private:
    Scheduler &sched;
    Thread *owner = nullptr;
    WaitQueue waiters;
};

/** RAII lock guard for Mutex. */
class LockGuard
{
  public:
    explicit LockGuard(Mutex &m) : mtx(m) { mtx.lock(); }
    ~LockGuard() { mtx.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mtx;
};

/** Counting semaphore. */
class Semaphore
{
  public:
    Semaphore(Scheduler &s, unsigned initial = 0)
        : sched(s), waiters(s), count(initial)
    {
    }

    void post();
    void wait();
    bool tryWait();
    unsigned value() const { return count; }

  private:
    Scheduler &sched;
    WaitQueue waiters;
    unsigned count;
};

} // namespace flexos

#endif // FLEXOS_UKSCHED_SCHEDULER_HH
