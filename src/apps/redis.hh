/**
 * @file
 * libredis: a Redis-like key-value server speaking RESP2 over the TCP
 * stack, plus a redis-benchmark-style load generator.
 *
 * Implements the commands the paper's evaluation drives (GET/SET plus
 * the usual helpers) over an open-addressing hash table, with
 * per-command work charged to the virtual clock so configuration
 * effects (gates, hardening) dominate exactly as on real hardware.
 */

#ifndef FLEXOS_APPS_REDIS_HH
#define FLEXOS_APPS_REDIS_HH

#include <optional>
#include <string>
#include <vector>

#include "apps/libc.hh"

namespace flexos {

/** A parsed RESP request: command + arguments. */
using RespCommand = std::vector<std::string>;

/**
 * Incremental RESP2 protocol parser (arrays of bulk strings).
 */
class RespParser
{
  public:
    /** Feed bytes; complete commands accumulate in commands(). */
    void feed(const char *data, std::size_t n);

    /** Pop the next complete command, if any. */
    std::optional<RespCommand> next();

    /** Parse/feed errors (protocol violations). */
    bool errored() const { return hasError; }

    /** @name RESP serialization helpers. @{ */
    static std::string simpleString(const std::string &s);
    static std::string error(const std::string &msg);
    static std::string integer(long v);
    static std::string bulkString(const std::string &s);
    static std::string nil();
    static std::string command(const RespCommand &cmd);
    /** @} */

  private:
    bool parseOne();

    std::string buf;
    std::vector<RespCommand> ready;
    bool hasError = false;
};

/**
 * Open-addressing (linear probing) string hash table — the dict.
 */
class RedisDict
{
  public:
    explicit RedisDict(std::size_t initialBuckets = 1024);

    void set(const std::string &key, const std::string &value);
    const std::string *get(const std::string &key) const;
    bool del(const std::string &key);
    std::size_t size() const { return used; }
    void clear();

  private:
    struct Slot
    {
        std::string key;
        std::string value;
        enum class State : std::uint8_t { Empty, Used, Tombstone } state =
            State::Empty;
    };

    std::size_t probe(const std::string &key, bool forInsert) const;
    void grow();
    void consumeCyclesIfAny() const;
    static std::uint64_t hashKey(const std::string &key);

    std::vector<Slot> slots;
    std::size_t used = 0;
};

/**
 * The Redis server: accepts connections, parses pipelined commands,
 * executes them against the dict, replies.
 */
class RedisServer
{
  public:
    RedisServer(LibcApi &libc, std::uint16_t port = 6379);

    /** Spawn the server (accept loop) in libredis' compartment. */
    void start();

    /** Ask the loops to wind down after the next command. */
    void stop() { stopping = true; }

    std::uint64_t commandsServed() const { return served; }
    RedisDict &dict() { return db; }

  private:
    void acceptLoop();
    void serveConnection(TcpSocket *conn);
    std::string execute(const RespCommand &cmd);

    LibcApi &libc;
    std::uint16_t port;
    RedisDict db;
    bool stopping = false;
    std::uint64_t served = 0;
};

/**
 * redis-benchmark-style client: pipelined GETs against a preloaded
 * keyspace, measuring requests per second of virtual time. Runs as
 * free-running threads (client cycles are not charged, as in the
 * paper's separate client cores). With connections > 1 the request
 * budget is split over that many parallel connections, each served by
 * its own thread-per-connection fiber on the server.
 */
struct RedisBenchmarkResult
{
    std::uint64_t requests = 0;
    double seconds = 0;
    double requestsPerSec = 0;
    unsigned connections = 1;
};

RedisBenchmarkResult runRedisGetBenchmark(Image &img, LibcApi &serverLibc,
                                          NetStack &clientStack,
                                          std::uint64_t requests,
                                          unsigned pipeline = 8,
                                          unsigned keyCount = 100,
                                          std::uint16_t port = 6379,
                                          unsigned connections = 1);

} // namespace flexos

#endif // FLEXOS_APPS_REDIS_HH
