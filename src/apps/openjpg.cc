/**
 * @file
 * The example untrusted parser (paper 3.0): a simulated libopenjpg
 * image decoder. The examples isolate this library in its own
 * compartment and plant exploits in it (examples/isolate_vulnerable);
 * this translation unit gives the library a real source file for the
 * static analyses to walk.
 *
 * The porting is deliberately incomplete: `lastDecodeState` is a
 * mutable global that is neither registered shared in the library
 * registry nor `flexos: dss`/`flexos: shared`-annotated, so a
 * compartmentalized image leaks it across the boundary — the exact
 * shared-data escape the boundary auditor (tools/boundary_audit)
 * reports as `escaping-shared-datum`. Do not annotate it: it is the
 * seeded violation the audit tests and docs build on.
 */

#include <cstddef>
#include <cstdint>

namespace flexos {
namespace openjpg {

/** Decoded-image summary the simulated decoder produces. */
struct DecodeResult
{
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::uint32_t checksum = 0;
    bool ok = false;
};

namespace {

/** Decodes attempted since boot (a ported, registered counter). */
std::uint64_t decodeCalls = 0; // flexos: shared

/**
 * Scratch state of the most recent decode. Mutable, unregistered,
 * unannotated: this is the datum that escapes the compartment.
 */
DecodeResult lastDecodeState;

} // namespace

/**
 * Simulated decode_image entry point: parse a header, fold the
 * payload into a checksum. Matches the registry's entry point for
 * libopenjpg; examples drive it through Image::gate.
 */
DecodeResult
decodeImage(const std::uint8_t *data, std::size_t len)
{
    ++decodeCalls;
    DecodeResult r;
    if (len < 8 || data == nullptr) {
        lastDecodeState = r;
        return r;
    }
    r.width = static_cast<std::uint32_t>(data[0]) |
              static_cast<std::uint32_t>(data[1]) << 8;
    r.height = static_cast<std::uint32_t>(data[2]) |
               static_cast<std::uint32_t>(data[3]) << 8;
    std::uint32_t sum = 0;
    for (std::size_t i = 4; i < len; ++i)
        sum = sum * 131 + data[i];
    r.checksum = sum;
    r.ok = r.width > 0 && r.height > 0;
    lastDecodeState = r;
    return r;
}

/** The escape in action: any compartment can read the last result. */
const DecodeResult &
lastDecode()
{
    return lastDecodeState;
}

/** Total decode_image invocations (the registered counter). */
std::uint64_t
decodeCount()
{
    return decodeCalls;
}

} // namespace openjpg
} // namespace flexos
