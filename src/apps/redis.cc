#include "apps/redis.hh"

#include <cstring>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace flexos {

// --------------------------------------------------------------- parser

void
RespParser::feed(const char *data, std::size_t n)
{
    buf.append(data, n);
    while (parseOne()) {
    }
}

bool
RespParser::parseOne()
{
    if (buf.empty() || hasError)
        return false;
    if (buf[0] != '*') {
        hasError = true;
        return false;
    }
    std::size_t pos = buf.find("\r\n");
    if (pos == std::string::npos)
        return false;
    long nArgs;
    if (!parseInt(buf.substr(1, pos - 1), nArgs) || nArgs < 0 ||
        nArgs > 1024) {
        hasError = true;
        return false;
    }

    RespCommand cmd;
    std::size_t at = pos + 2;
    for (long i = 0; i < nArgs; ++i) {
        if (at >= buf.size() || buf[at] != '$') {
            if (at >= buf.size())
                return false; // incomplete
            hasError = true;
            return false;
        }
        std::size_t lenEnd = buf.find("\r\n", at);
        if (lenEnd == std::string::npos)
            return false;
        long len;
        if (!parseInt(buf.substr(at + 1, lenEnd - at - 1), len) ||
            len < 0 || len > 512 * 1024) {
            hasError = true;
            return false;
        }
        std::size_t dataStart = lenEnd + 2;
        if (dataStart + static_cast<std::size_t>(len) + 2 > buf.size())
            return false; // incomplete
        cmd.push_back(buf.substr(dataStart, static_cast<std::size_t>(len)));
        at = dataStart + static_cast<std::size_t>(len) + 2;
    }

    buf.erase(0, at);
    ready.push_back(std::move(cmd));
    return true;
}

std::optional<RespCommand>
RespParser::next()
{
    if (ready.empty())
        return std::nullopt;
    RespCommand cmd = std::move(ready.front());
    ready.erase(ready.begin());
    return cmd;
}

std::string
RespParser::simpleString(const std::string &s)
{
    return "+" + s + "\r\n";
}

std::string
RespParser::error(const std::string &msg)
{
    return "-ERR " + msg + "\r\n";
}

std::string
RespParser::integer(long v)
{
    return ":" + std::to_string(v) + "\r\n";
}

std::string
RespParser::bulkString(const std::string &s)
{
    return "$" + std::to_string(s.size()) + "\r\n" + s + "\r\n";
}

std::string
RespParser::nil()
{
    return "$-1\r\n";
}

std::string
RespParser::command(const RespCommand &cmd)
{
    std::string out = "*" + std::to_string(cmd.size()) + "\r\n";
    for (const std::string &arg : cmd)
        out += bulkString(arg);
    return out;
}

// ----------------------------------------------------------------- dict

RedisDict::RedisDict(std::size_t initialBuckets)
    : slots(initialBuckets)
{
}

std::uint64_t
RedisDict::hashKey(const std::string &key)
{
    // FNV-1a.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::size_t
RedisDict::probe(const std::string &key, bool forInsert) const
{
    std::size_t mask = slots.size() - 1;
    std::size_t i = hashKey(key) & mask;
    std::size_t firstTombstone = SIZE_MAX;
    for (std::size_t step = 0; step <= mask; ++step) {
        const Slot &s = slots[i];
        if (s.state == Slot::State::Empty)
            return (forInsert && firstTombstone != SIZE_MAX)
                       ? firstTombstone
                       : i;
        if (s.state == Slot::State::Tombstone) {
            if (firstTombstone == SIZE_MAX)
                firstTombstone = i;
        } else if (s.key == key) {
            return i;
        }
        i = (i + 1) & mask;
    }
    return forInsert ? firstTombstone : SIZE_MAX;
}

void
RedisDict::grow()
{
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.size() * 2, Slot{});
    used = 0;
    for (Slot &s : old) {
        if (s.state == Slot::State::Used)
            set(std::move(s.key), std::move(s.value));
    }
}

void
RedisDict::set(const std::string &key, const std::string &value)
{
    if ((used + 1) * 4 >= slots.size() * 3) // load factor 0.75
        grow();
    consumeCyclesIfAny();
    std::size_t i = probe(key, true);
    panic_if(i == SIZE_MAX, "dict probe failed");
    Slot &s = slots[i];
    if (s.state != Slot::State::Used)
        ++used;
    s.key = key;
    s.value = value;
    s.state = Slot::State::Used;
}

const std::string *
RedisDict::get(const std::string &key) const
{
    consumeCyclesIfAny();
    std::size_t i = probe(key, false);
    if (i == SIZE_MAX || slots[i].state != Slot::State::Used)
        return nullptr;
    return &slots[i].value;
}

bool
RedisDict::del(const std::string &key)
{
    consumeCyclesIfAny();
    std::size_t i = probe(key, false);
    if (i == SIZE_MAX || slots[i].state != Slot::State::Used)
        return false;
    slots[i].state = Slot::State::Tombstone;
    slots[i].key.clear();
    slots[i].value.clear();
    --used;
    return true;
}

void
RedisDict::clear()
{
    std::fill(slots.begin(), slots.end(), Slot{});
    used = 0;
}

// ---------------------------------------------------------------- server

namespace {

/** Modelled dict operation cost (hash + probe + compare). */
constexpr Cycles dictOpCost = 60;
/** Modelled per-command parse/dispatch cost. */
constexpr Cycles commandCost = 120;

} // namespace

void
RedisDict::consumeCyclesIfAny() const
{
    if (Machine::hasCurrent())
        Machine::current().consume(dictOpCost);
}

RedisServer::RedisServer(LibcApi &libcApi, std::uint16_t serverPort)
    : libc(libcApi), port(serverPort)
{
}

void
RedisServer::start()
{
    libc.image().spawnIn("libredis", "redis-accept",
                         [this] { acceptLoop(); });
}

void
RedisServer::acceptLoop()
{
    TcpSocket *listener = libc.listen(port);
    while (!stopping) {
        TcpSocket *conn = libc.accept(listener);
        if (!conn)
            break;
        // One cooperative worker per connection, as Unikraft threads.
        libc.image().spawnIn("libredis", "redis-conn",
                             [this, conn] { serveConnection(conn); });
    }
}

void
RedisServer::serveConnection(TcpSocket *conn)
{
    RespParser parser;
    char buf[4096];
    while (!stopping) {
        long n = libc.recv(conn, buf, sizeof(buf));
        if (n <= 0)
            break;
        parser.feed(buf, static_cast<std::size_t>(n));
        if (parser.errored()) {
            std::string err = RespParser::error("protocol error");
            libc.send(conn, err.data(), err.size());
            break;
        }
        std::string replies;
        while (auto cmd = parser.next()) {
            // Thread-per-connection: the shared dict is guarded by a
            // scheduler mutex — Redis' scheduler-heavy hot path (6.1).
            libc.lock();
            try {
                replies += execute(*cmd);
            } catch (const HardeningViolation &v) {
                // Hardening reports surface as protocol errors instead
                // of silently corrupting state.
                libc.unlock();
                replies += RespParser::error(v.what());
                continue;
            }
            libc.unlock();
        }
        if (!replies.empty())
            libc.send(conn, replies.data(), replies.size());
    }
    libc.closeSocket(conn);
}

std::string
RedisServer::execute(const RespCommand &cmd)
{
    consumeCycles(commandCost);
    ++served;
    if (cmd.empty())
        return RespParser::error("empty command");
    std::string op = toLower(cmd[0]);

    if (op == "ping")
        return RespParser::simpleString("PONG");
    if (op == "set" && cmd.size() == 3) {
        db.set(cmd[1], cmd[2]);
        return RespParser::simpleString("OK");
    }
    if (op == "get" && cmd.size() == 2) {
        const std::string *v = db.get(cmd[1]);
        return v ? RespParser::bulkString(*v) : RespParser::nil();
    }
    if (op == "del" && cmd.size() >= 2) {
        long removed = 0;
        for (std::size_t i = 1; i < cmd.size(); ++i)
            removed += db.del(cmd[i]) ? 1 : 0;
        return RespParser::integer(removed);
    }
    if (op == "exists" && cmd.size() == 2)
        return RespParser::integer(db.get(cmd[1]) ? 1 : 0);
    if (op == "incr" && cmd.size() == 2) {
        const std::string *v = db.get(cmd[1]);
        long cur = 0;
        if (v && !parseInt(*v, cur))
            return RespParser::error("value is not an integer");
        // Hardening instrumentation point: checked increment.
        long next =
            libc.hardening().add<long>(cur, 1);
        db.set(cmd[1], std::to_string(next));
        return RespParser::integer(next);
    }
    if (op == "flushall") {
        db.clear();
        return RespParser::simpleString("OK");
    }
    if (op == "dbsize")
        return RespParser::integer(static_cast<long>(db.size()));
    return RespParser::error("unknown command '" + cmd[0] + "'");
}

// ------------------------------------------------------------ benchmark

namespace {

/** One benchmark connection: pipelined GETs for its request share. */
void
redisGetWorker(NetStack &clientStack, std::uint32_t serverIp,
               std::uint16_t port, std::uint64_t requests,
               unsigned pipeline, unsigned keyCount,
               std::uint64_t &gotReplies, char &done)
{
    TcpSocket *s = clientStack.connect(serverIp, port);
    panic_if(!s, "redis-benchmark could not connect");

    char buf[8192];
    std::uint64_t sent = 0, replies = 0;
    std::string reply;
    while (replies < requests) {
        while (sent < requests && sent - replies < pipeline) {
            std::string cmd = RespParser::command(
                {"GET", "key:" + std::to_string(sent % keyCount)});
            s->send(cmd.data(), cmd.size());
            ++sent;
        }
        long n = s->recv(buf, sizeof(buf));
        if (n <= 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
        // Count complete bulk-string replies.
        std::size_t at;
        while ((at = reply.find("\r\n")) != std::string::npos) {
            if (reply[0] != '$')
                break;
            long len;
            if (!parseInt(reply.substr(1, at - 1), len))
                break;
            std::size_t total =
                at + 2 +
                (len >= 0 ? static_cast<std::size_t>(len) + 2 : 0);
            if (reply.size() < total)
                break;
            reply.erase(0, total);
            ++replies;
            ++gotReplies;
        }
    }
    s->close();
    done = 1;
}

} // namespace

RedisBenchmarkResult
runRedisGetBenchmark(Image &img, LibcApi &serverLibc,
                     NetStack &clientStack, std::uint64_t requests,
                     unsigned pipeline, unsigned keyCount,
                     std::uint16_t port, unsigned connections)
{
    panic_if(connections == 0, "benchmark needs at least one connection");
    Scheduler &sched = img.scheduler();
    Machine &mach = img.machine();

    RedisServer server(serverLibc, port);
    server.start();

    std::uint64_t gotReplies = 0;
    Cycles startCycles = 0;
    bool preloaded = false;
    std::vector<char> workerDone(connections, 0);

    // Preload the keyspace over a dedicated connection, then fan the
    // measured GET load out over `connections` parallel connections.
    Thread *loader = sched.spawn("redis-preload", [&] {
        TcpSocket *s =
            clientStack.connect(serverLibc.netstack()->ip(), port);
        panic_if(!s, "redis-benchmark could not connect");
        for (unsigned k = 0; k < keyCount; ++k) {
            std::string cmd = RespParser::command(
                {"SET", "key:" + std::to_string(k),
                 "value-" + std::to_string(k)});
            s->send(cmd.data(), cmd.size());
        }
        // Drain the SET replies ("+OK\r\n" each).
        std::size_t expect = keyCount * 5;
        char buf[8192];
        std::size_t drained = 0;
        while (drained < expect) {
            long n = s->recv(buf, sizeof(buf));
            if (n <= 0)
                return;
            drained += static_cast<std::size_t>(n);
        }
        s->close();

        // Wall clock, not this core's clock: the workers spread
        // across cores and each advances its own (see iperf.cc).
        startCycles = mach.wallCycles();
        preloaded = true;
        std::uint32_t ip = serverLibc.netstack()->ip();
        for (unsigned c = 0; c < connections; ++c) {
            std::uint64_t share = requests / connections +
                                  (c < requests % connections ? 1 : 0);
            char &done = workerDone[c];
            Thread *w = sched.spawn(
                "redis-bench-" + std::to_string(c),
                [&, ip, share] {
                    redisGetWorker(clientStack, ip, port, share,
                                   pipeline, keyCount, gotReplies,
                                   done);
                });
            w->freeRunning = true; // client cores are not measured
        }
    });
    loader->freeRunning = true;

    auto allDone = [&] {
        if (!preloaded)
            return false;
        for (char d : workerDone)
            if (!d)
                return false;
        return true;
    };
    bool ok = sched.runUntil(allDone, 200'000'000);
    panic_if(!ok, "redis benchmark did not complete");
    Cycles endCycles = mach.wallCycles(); // before teardown work
    server.stop();
    // Drain: every client closed its connection, so a few more rounds
    // let the per-connection server fibers observe EOF and unwind
    // (reclaiming their parser state) instead of being abandoned
    // mid-recv.
    sched.runUntil([] { return false; }, 20'000);

    RedisBenchmarkResult res;
    res.requests = gotReplies;
    res.connections = connections;
    res.seconds = static_cast<double>(endCycles - startCycles) /
                  (mach.timing.cpuGhz * 1e9);
    res.requestsPerSec =
        res.seconds > 0 ? static_cast<double>(res.requests) / res.seconds
                        : 0;
    return res;
}

} // namespace flexos
