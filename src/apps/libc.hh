/**
 * @file
 * newlib: the libc facade ported applications link against.
 *
 * Every OS service an application touches flows through here, and every
 * call is made through FLEXOS call gates — first into newlib, then into
 * the owning kernel component (lwip, vfscore, uktime, uksched). When
 * the configuration co-locates those components the gates collapse into
 * plain calls; when it isolates them, the crossings (and the paper's
 * communication-pattern effects, 6.1) appear automatically.
 *
 * Blocking socket calls also gate into uksched for the block + wakeup
 * pair, reproducing the scheduler-heavy pattern that makes isolating
 * uksched expensive for Redis (43%) but cheap for Nginx (6%).
 */

#ifndef FLEXOS_APPS_LIBC_HH
#define FLEXOS_APPS_LIBC_HH

#include <string>

#include "core/image.hh"
#include "net/tcp.hh"
#include "uktime/clock.hh"
#include "vfs/vfs.hh"

namespace flexos {

/**
 * The POSIX-ish API handed to an application library.
 */
class LibcApi
{
  public:
    /**
     * @param img the image this app runs in
     * @param net network stack (may be null for disk-only apps)
     * @param vfs filesystem (may be null for network-only apps)
     */
    LibcApi(Image &img, NetStack *net, Vfs *vfs);

    /** @name Sockets (app -> newlib -> lwip [-> uksched]). @{ */
    TcpSocket *listen(std::uint16_t port);
    TcpSocket *accept(TcpSocket *listener);
    TcpSocket *connect(std::uint32_t ip, std::uint16_t port);
    long recv(TcpSocket *s, void *buf, std::size_t n);
    long send(TcpSocket *s, const void *buf, std::size_t n);
    void closeSocket(TcpSocket *s);
    /** @} */

    /** @name Files (app -> newlib -> vfscore). @{ */
    int open(const std::string &path, unsigned flags);
    int close(int fd);
    long read(int fd, void *buf, std::size_t n);
    long write(int fd, const void *buf, std::size_t n);
    long pread(int fd, void *buf, std::size_t n, std::uint64_t off);
    long pwrite(int fd, const void *buf, std::size_t n,
                std::uint64_t off);
    long lseek(int fd, long off, SeekWhence whence);
    int fsync(int fd);
    int ftruncate(int fd, std::uint64_t size);
    int unlink(const std::string &path);
    int stat(const std::string &path, VfsStat &out);
    /** @} */

    /** @name Time (app -> newlib -> uktime). @{ */
    std::uint64_t clockNs();
    /** @} */

    /** @name Scheduler services (app -> uksched). @{ */
    /** Cooperative yield through the scheduler component. */
    void yield();
    /** Mutex acquire/release (thread-per-connection servers). */
    void lock();
    void unlock();
    /** @} */

    /** @name Memory (compartment-local allocator; no crossing). @{ */
    void *malloc(std::size_t n);
    void free(void *p);
    /** @} */

    /** The hardening context of the caller's compartment. */
    const HardeningContext &hardening() const;

    Image &image() { return img; }
    NetStack *netstack() { return net; }

  private:
    /** One scheduler interaction (block or wakeup) through a gate. */
    void schedTouch(const char *what);

    Image &img;
    NetStack *net;
    Vfs *vfs;

    /** Modelled per-call work inside newlib itself (arg shuffling,
     *  errno handling, small copies). */
    static constexpr Cycles newlibWork = 30;
    /** Modelled scheduler work per block/wakeup interaction. */
    static constexpr Cycles schedWork = 90;
};

} // namespace flexos

#endif // FLEXOS_APPS_LIBC_HH
