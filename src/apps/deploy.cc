#include "apps/deploy.hh"

#include "base/logging.hh"
#include "net/proto.hh"

namespace flexos {

Deployment::Deployment(const std::string &configText, DeployOptions opts)
    : reg(LibraryRegistry::standard())
{
    init(SafetyConfig::parse(configText), opts);
}

Deployment::Deployment(SafetyConfig cfg, DeployOptions opts)
    : reg(LibraryRegistry::standard())
{
    init(std::move(cfg), opts);
}

void
Deployment::init(SafetyConfig cfg, const DeployOptions &opts)
{
    // The config's `cores:` knob sizes the machine; everything below
    // (scheduler run queues, NIC RSS queues, EPT server shards) scales
    // off Machine::coreCount().
    mach = std::make_unique<Machine>(opts.timing,
                                     cfg.cores ? cfg.cores : 1);
    scope = std::make_unique<MachineScope>(*mach);
    sched = std::make_unique<Scheduler>(*mach);
    tc = std::make_unique<Toolchain>(reg);

    cfg.heapBytes = opts.heapBytes;
    cfg.sharedHeapBytes = opts.sharedHeapBytes;
    img = tc->build(*mach, *sched, cfg);

    if (opts.withNet) {
        link = std::make_unique<Link>();
        serverNet = std::make_unique<NetStack>(*mach, *sched,
                                               link->endA(),
                                               makeIp(10, 0, 0, 1));
        clientNet = std::make_unique<NetStack>(*mach, *sched,
                                               link->endB(),
                                               makeIp(10, 0, 0, 2));
        // The client stack models the benchmark machine: its timers
        // must fire promptly relative to server virtual time.
        clientNet->baseRtoNs = 5'000'000;
        serverNet->baseRtoNs = 5'000'000;
        // Multi-core server: RSS steers each connection's frames to
        // one core's RX queue (the client stack models a separate
        // load-generator box and stays single-queue).
        if (mach->coreCount() > 1 &&
            img->config().steering == NicSteering::Rss)
            serverNet->enableRss(mach->coreCount());
    }

    if (opts.withFs) {
        // Filesystem storage comes from the fs compartment's allocator
        // (vfscore+ramfs are one component, paper 4.4) — or a Lea
        // instance for the CubicleOS baseline.
        Allocator *fsAlloc = nullptr;
        if (opts.fsAllocator == DeployOptions::FsAllocator::Lea) {
            leaFsAlloc =
                std::make_unique<LeaAllocator>(16 * 1024 * 1024);
            fsAlloc = leaFsAlloc.get();
        } else {
            bool fsInImage = false;
            for (const auto &[lib, comp] : img->config().libraries)
                if (lib == "vfscore")
                    fsInImage = true;
            if (fsInImage)
                fsAlloc = &img->heapOf("vfscore");
        }
        fsRoot = makeRamfs(fsAlloc);
        fs = std::make_unique<Vfs>(fsRoot);
    }

    libcApi = std::make_unique<LibcApi>(*img, serverNet.get(), fs.get());
}

Deployment::~Deployment()
{
    stop();
    // Unwind any still-blocked fibers while the whole world (image,
    // network stacks, backends) is alive: their locals may hold
    // DSS frames and gate state whose destructors touch it.
    if (sched)
        sched->cancelAll();
    // Teardown order matters: the filesystem returns its blocks to the
    // vfscore compartment's allocator, so it must die before the image;
    // the image (backend threads, regions) before scheduler and scope.
    libcApi.reset();
    fs.reset();
    fsRoot.reset();
    img.reset();
    sched.reset();
    scope.reset();
}

void
Deployment::start()
{
    if (!serverNet || pollersRunning)
        return;
    stopPollers = false;

    // The server-side pollers are lwip code: they run in lwip's
    // compartment so their packet work is charged (and hardened)
    // there. One poller per RX queue, each pinned to its queue's core
    // (queue q's flows are serviced by core q — the RSS contract).
    bool lwipInImage = false;
    for (const auto &[lib, comp] : img->config().libraries)
        if (lib == "lwip")
            lwipInImage = true;
    std::size_t queues = serverNet->rxQueueCount();
    for (std::size_t q = 0; q < queues; ++q) {
        auto pollBody = [this, q] {
            while (!stopPollers) {
                if (serverNet->pollQueue(q))
                    sched->yield();
                else
                    serverNet->waitQueueActivity(q);
            }
        };
        std::string name = queues > 1
                               ? "lwip-poll-q" + std::to_string(q)
                               : "lwip-poll";
        Thread *t = lwipInImage
                        ? img->spawnIn("lwip", name, pollBody)
                        : sched->spawn(name, pollBody);
        sched->pin(t, static_cast<int>(q % mach->coreCount()));
    }

    // The client poller models the load-generator machine: free, and
    // event-driven like the server pollers — a spinning free thread
    // would keep the run queues non-empty forever and starve the
    // scheduler's idle jumps that fire timers.
    Thread *cp = sched->spawn("client-poll", [this] {
        while (!stopPollers) {
            if (clientNet->pollOnce())
                sched->yield();
            else
                clientNet->waitQueueActivity(0);
        }
    });
    cp->freeRunning = true;
    pollersRunning = true;
}

void
Deployment::stop()
{
    if (!pollersRunning)
        return;
    stopPollers = true;
    // Kick blocked pollers and give everyone a chance to observe the
    // flag and exit.
    if (serverNet)
        serverNet->wakePollers();
    if (clientNet)
        clientNet->wakePollers();
    sched->runUntil([] { return false; }, 256);
    pollersRunning = false;
}

void
Deployment::writeFile(const std::string &path, const std::string &content)
{
    panic_if(!fs, "deployment has no filesystem");
    // Create parent directories as needed (single level is enough for
    // the bundled workloads).
    auto slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0)
        fs->mkdir(path.substr(0, slash));
    int fd = fs->open(path, oCreat | oWrOnly | oTrunc);
    panic_if(fd < 0, "cannot create ", path);
    fs->write(fd, content.data(), content.size());
    fs->close(fd);
}

} // namespace flexos
