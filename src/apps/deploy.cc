#include "apps/deploy.hh"

#include "base/logging.hh"
#include "net/proto.hh"

namespace flexos {

Deployment::Deployment(const std::string &configText, DeployOptions opts)
    : reg(LibraryRegistry::standard())
{
    init(SafetyConfig::parse(configText), opts);
}

Deployment::Deployment(SafetyConfig cfg, DeployOptions opts)
    : reg(LibraryRegistry::standard())
{
    init(std::move(cfg), opts);
}

void
Deployment::init(SafetyConfig cfg, const DeployOptions &opts)
{
    // The config's `cores:` knob sizes the machine; everything below
    // (scheduler run queues, NIC RSS queues, EPT server shards) scales
    // off Machine::coreCount().
    mach = std::make_unique<Machine>(opts.timing,
                                     cfg.cores ? cfg.cores : 1);
    scope = std::make_unique<MachineScope>(*mach);
    sched = std::make_unique<Scheduler>(*mach);
    tc = std::make_unique<Toolchain>(reg);

    cfg.heapBytes = opts.heapBytes;
    cfg.sharedHeapBytes = opts.sharedHeapBytes;
    img = tc->build(*mach, *sched, cfg);

    if (opts.withNet) {
        link = std::make_unique<Link>();
        serverNet = std::make_unique<NetStack>(*mach, *sched,
                                               link->endA(),
                                               makeIp(10, 0, 0, 1));
        clientNet = std::make_unique<NetStack>(*mach, *sched,
                                               link->endB(),
                                               makeIp(10, 0, 0, 2));
        // The client stack models the benchmark machine: its timers
        // must fire promptly relative to server virtual time.
        clientNet->baseRtoNs = 5'000'000;
        serverNet->baseRtoNs = 5'000'000;
        // Multi-core server: RSS steers each connection's frames to
        // one core's RX queue (the client stack models a separate
        // load-generator box and stays single-queue).
        if (mach->coreCount() > 1 &&
            img->config().steering == NicSteering::Rss)
            serverNet->enableRss(mach->coreCount());
    }

    if (opts.withFs) {
        // Filesystem storage comes from the fs compartment's allocator
        // (vfscore+ramfs are one component, paper 4.4) — or a Lea
        // instance for the CubicleOS baseline.
        Allocator *fsAlloc = nullptr;
        if (opts.fsAllocator == DeployOptions::FsAllocator::Lea) {
            leaFsAlloc =
                std::make_unique<LeaAllocator>(16 * 1024 * 1024);
            fsAlloc = leaFsAlloc.get();
        } else {
            bool fsInImage = false;
            for (const auto &[lib, comp] : img->config().libraries)
                if (lib == "vfscore")
                    fsInImage = true;
            if (fsInImage)
                fsAlloc = &img->heapOf("vfscore");
        }
        fsRoot = makeRamfs(fsAlloc);
        fs = std::make_unique<Vfs>(fsRoot);
    }

    libcApi = std::make_unique<LibcApi>(*img, serverNet.get(), fs.get());

    // The control plane is opt-in: a `controller:` section builds one,
    // wired to the server NIC's RX backlog (the batch-width rule's
    // probe). It starts sampling with the pollers in start().
    if (img->config().controller) {
        controller = std::make_unique<PolicyController>(
            *img, *img->config().controller);
        if (serverNet) {
            NetStack *net = serverNet.get();
            controller->queueDepthProbe = [net] {
                std::size_t depth = 0;
                for (std::size_t q = 0; q < net->rxQueueCount(); ++q)
                    depth = std::max(depth, net->rxBacklog(q));
                return static_cast<std::uint64_t>(depth);
            };
        }
    }
}

Deployment::~Deployment()
{
    stop();
    // Unwind any still-blocked fibers while the whole world (image,
    // network stacks, backends) is alive: their locals may hold
    // DSS frames and gate state whose destructors touch it.
    if (sched)
        sched->cancelAll();
    // Teardown order matters: the filesystem returns its blocks to the
    // vfscore compartment's allocator, so it must die before the image;
    // the image (backend threads, regions) before scheduler and scope.
    controller.reset();
    libcApi.reset();
    fs.reset();
    fsRoot.reset();
    img.reset();
    sched.reset();
    scope.reset();
}

void
Deployment::start()
{
    if (!serverNet || pollersRunning)
        return;
    stopPollers = false;

    // The server-side pollers are lwip code: they run in lwip's
    // compartment so their packet work is charged (and hardened)
    // there. One poller per RX queue, each pinned to its queue's core
    // (queue q's flows are serviced by core q — the RSS contract).
    bool lwipInImage = false;
    for (const auto &[lib, comp] : img->config().libraries)
        if (lib == "lwip")
            lwipInImage = true;

    // Vectored RX: when the boundary from the default compartment into
    // lwip carries a `batch:` width, the pollers instead run on the
    // driver side of the gate — fetch a burst of frames off the ring,
    // then push the whole burst through ONE crossing into lwip
    // (entry point rx_burst), one body per frame. Frames cross in
    // ring order and RSS pins each flow to one queue, so per-flow
    // TCP ordering is unchanged; an empty burst still parks the
    // poller on the queue's interrupt line (the NAPI idiom).
    std::uint64_t rxBatch = 1;
    bool rxAdaptive = false;
    int rxFrom = 0, rxTo = 0;
    if (lwipInImage) {
        rxFrom = static_cast<int>(img->config().defaultCompartment());
        rxTo = img->compartmentIndexOf("lwip");
        if (rxFrom != rxTo) {
            const GatePolicy &pol = img->policyFor(rxFrom, rxTo);
            rxBatch = std::max<std::uint64_t>(pol.batch, 1);
            // An adaptive RX boundary under a controller may have its
            // `batch:` width widened between epochs: take the batched
            // poller even at width 1 (vcycle-identical there) so the
            // widened width takes effect without re-plumbing pollers.
            rxAdaptive = pol.adaptive && controller != nullptr;
        }
    }

    std::size_t queues = serverNet->rxQueueCount();
    for (std::size_t q = 0; q < queues; ++q) {
        std::function<void()> pollBody;
        if (rxBatch > 1 || rxAdaptive) {
            int from = rxFrom, to = rxTo;
            pollBody = [this, q, from, to] {
                std::vector<std::function<void()>> bodies;
                std::vector<NetBuf> burst;
                while (!stopPollers) {
                    // Re-read the boundary's width every burst: the
                    // controller's epoch swaps retune it online
                    // (NAPI-style widening under backlog).
                    auto width = static_cast<std::size_t>(
                        std::max<std::uint64_t>(
                            img->policyFor(from, to).batch, 1));
                    burst = serverNet->fetchBurst(q, width);
                    bool worked = !burst.empty();
                    if (!burst.empty()) {
                        bodies.clear();
                        for (auto &f : burst)
                            bodies.push_back([this, &f] {
                                serverNet->handleRxFrame(std::move(f));
                            });
                        img->gateBatch("lwip", "rx_burst", bodies);
                    }
                    // The timer wheel stays with queue 0's poller;
                    // the due-ness peek is driver-side so idle loops
                    // never pay a crossing just to find nothing due.
                    if (q == 0 && serverNet->timersDue()) {
                        img->gate("lwip", "timer_poll", [this] {
                            serverNet->pollTimers();
                        });
                        worked = true;
                    }
                    if (worked)
                        sched->yield();
                    else
                        serverNet->waitQueueActivity(q);
                }
            };
        } else {
            pollBody = [this, q] {
                while (!stopPollers) {
                    if (serverNet->pollQueue(q))
                        sched->yield();
                    else
                        serverNet->waitQueueActivity(q);
                }
            };
        }
        std::string name = queues > 1
                               ? "lwip-poll-q" + std::to_string(q)
                               : "lwip-poll";
        Thread *t = lwipInImage && rxBatch == 1 && !rxAdaptive
                        ? img->spawnIn("lwip", name, pollBody)
                        : sched->spawn(name, pollBody);
        sched->pin(t, static_cast<int>(q % mach->coreCount()));
    }

    // The client poller models the load-generator machine: free, and
    // event-driven like the server pollers — a spinning free thread
    // would keep the run queues non-empty forever and starve the
    // scheduler's idle jumps that fire timers.
    Thread *cp = sched->spawn("client-poll", [this] {
        while (!stopPollers) {
            if (clientNet->pollOnce())
                sched->yield();
            else
                clientNet->waitQueueActivity(0);
        }
    });
    cp->freeRunning = true;
    if (controller)
        controller->start();
    pollersRunning = true;
}

void
Deployment::stop()
{
    if (!pollersRunning)
        return;
    if (controller)
        controller->stop();
    stopPollers = true;
    // Kick blocked pollers and give everyone a chance to observe the
    // flag and exit.
    if (serverNet)
        serverNet->wakePollers();
    if (clientNet)
        clientNet->wakePollers();
    sched->runUntil([] { return false; }, 256);
    pollersRunning = false;
}

void
Deployment::writeFile(const std::string &path, const std::string &content)
{
    panic_if(!fs, "deployment has no filesystem");
    // Create parent directories as needed (single level is enough for
    // the bundled workloads).
    auto slash = path.find_last_of('/');
    if (slash != std::string::npos && slash > 0)
        fs->mkdir(path.substr(0, slash));
    int fd = fs->open(path, oCreat | oWrOnly | oTrunc);
    panic_if(fd < 0, "cannot create ", path);
    fs->write(fd, content.data(), content.size());
    fs->close(fd);
}

} // namespace flexos
