#include "apps/libc.hh"

#include "base/logging.hh"
#include "core/dss.hh"

namespace flexos {

LibcApi::LibcApi(Image &image, NetStack *netstack, Vfs *filesystem)
    : img(image), net(netstack), vfs(filesystem)
{
}

void
LibcApi::schedTouch(const char *what)
{
    img.gate("uksched", what, [&] {
        consumeCycles(schedWork);
    });
}

TcpSocket *
LibcApi::listen(std::uint16_t port)
{
    panic_if(!net, "no network stack in this image");
    return img.gate("newlib", "socket_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("lwip", "listen", [&] { return net->listen(port); });
    });
}

TcpSocket *
LibcApi::accept(TcpSocket *listener)
{
    return img.gate("newlib", "socket_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("lwip", "accept", [&] {
            if (listener->pendingAccepts() == 0)
                schedTouch("thread_join"); // block until a SYN arrives
            TcpSocket *s = listener->accept();
            schedTouch("yield"); // wakeup path
            return s;
        });
    });
}

TcpSocket *
LibcApi::connect(std::uint32_t ip, std::uint16_t port)
{
    return img.gate("newlib", "socket_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("lwip", "connect",
                        [&] { return net->connect(ip, port); });
    });
}

long
LibcApi::recv(TcpSocket *s, void *buf, std::size_t n)
{
    return img.gate("newlib", "socket_call", [&] {
        consumeCycles(newlibWork);
        // Two stack variables cross the gate by reference (the length
        // and the status word) — `__shared` annotations in the port,
        // materialized per the configured stack-sharing strategy.
        DssFrame frame(img);
        long *sharedLen = frame.var<long>();
        int *sharedStatus = frame.var<int>();
        *frame.shadow(sharedLen) = static_cast<long>(n);
        *frame.shadow(sharedStatus) = 0;
        // Blocking happens at the application/libc level: the calling
        // thread parks in the scheduler until data arrives. (lwip does
        // not talk to the scheduler on this hot path — paper 6.1, the
        // "isolation for free" effect when grouping lwip with uksched.)
        if (s->available() == 0 && !s->peerHasClosed()) {
            schedTouch("sleep"); // enqueue on the wait queue
            schedTouch("yield"); // dispatch away
        }
        long got = img.gate("lwip", "recv",
                            [&] { return s->recv(buf, n); });
        schedTouch("yield"); // wakeup bookkeeping
        return got;
    });
}

long
LibcApi::send(TcpSocket *s, const void *buf, std::size_t n)
{
    return img.gate("newlib", "socket_call", [&] {
        consumeCycles(newlibWork);
        DssFrame frame(img);
        long *sharedLen = frame.var<long>();
        *frame.shadow(sharedLen) = static_cast<long>(n);
        return img.gate("lwip", "send",
                        [&] { return s->send(buf, n); });
    });
}

void
LibcApi::closeSocket(TcpSocket *s)
{
    img.gate("newlib", "socket_call", [&] {
        consumeCycles(newlibWork);
        img.gate("lwip", "close", [&] { s->close(); });
    });
}

int
LibcApi::open(const std::string &path, unsigned flags)
{
    panic_if(!vfs, "no filesystem in this image");
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "open",
                        [&] { return vfs->open(path, flags); });
    });
}

int
LibcApi::close(int fd)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "close", [&] { return vfs->close(fd); });
    });
}

long
LibcApi::read(int fd, void *buf, std::size_t n)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "read",
                        [&] { return vfs->read(fd, buf, n); });
    });
}

long
LibcApi::write(int fd, const void *buf, std::size_t n)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "write",
                        [&] { return vfs->write(fd, buf, n); });
    });
}

long
LibcApi::pread(int fd, void *buf, std::size_t n, std::uint64_t off)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "pread",
                        [&] { return vfs->pread(fd, buf, n, off); });
    });
}

long
LibcApi::pwrite(int fd, const void *buf, std::size_t n,
                std::uint64_t off)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "pwrite",
                        [&] { return vfs->pwrite(fd, buf, n, off); });
    });
}

long
LibcApi::lseek(int fd, long off, SeekWhence whence)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "lseek",
                        [&] { return vfs->lseek(fd, off, whence); });
    });
}

int
LibcApi::fsync(int fd)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "fsync", [&] { return vfs->fsync(fd); });
    });
}

int
LibcApi::ftruncate(int fd, std::uint64_t size)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "ftruncate",
                        [&] { return vfs->ftruncate(fd, size); });
    });
}

int
LibcApi::unlink(const std::string &path)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "unlink",
                        [&] { return vfs->unlink(path); });
    });
}

int
LibcApi::stat(const std::string &path, VfsStat &out)
{
    return img.gate("newlib", "fs_call", [&] {
        consumeCycles(newlibWork);
        return img.gate("vfscore", "stat",
                        [&] { return vfs->stat(path, out); });
    });
}

std::uint64_t
LibcApi::clockNs()
{
    return img.gate("newlib", "time_call", [&] {
        consumeCycles(newlibWork / 3);
        return img.gate("uktime", "clock_gettime", [&] {
            consumeCycles(20); // clock read + conversion
            return img.machine().nanoseconds();
        });
    });
}

void
LibcApi::yield()
{
    schedTouch("yield");
}

void
LibcApi::lock()
{
    schedTouch("mutex_lock");
}

void
LibcApi::unlock()
{
    schedTouch("mutex_unlock");
}

void *
LibcApi::malloc(std::size_t n)
{
    // Per-compartment allocator (paper 4.5): local fast path, no gate.
    Thread *t = img.scheduler().current();
    int comp = t ? t->currentCompartment : 0;
    return img.compartmentAt(static_cast<std::size_t>(comp)).heap->alloc(n);
}

void
LibcApi::free(void *p)
{
    Thread *t = img.scheduler().current();
    int comp = t ? t->currentCompartment : 0;
    img.compartmentAt(static_cast<std::size_t>(comp)).heap->free(p);
}

const HardeningContext &
LibcApi::hardening() const
{
    return img.currentHardening();
}

} // namespace flexos
