/**
 * @file
 * libiperf: the iPerf-style network throughput benchmark (paper 6.3).
 *
 * The server recv()s into a configurable buffer; the client pumps bulk
 * data from a free-running thread. Smaller receive buffers mean more
 * gate crossings per byte — the batching effect Figure 9 plots.
 *
 * The multi-flow variant drives N parallel connections through one
 * listener (thread-per-connection on the server, one free-running
 * client fiber per flow), exercising the stack's accept backlog and
 * flow table the way a loaded deployment would.
 */

#ifndef FLEXOS_APPS_IPERF_HH
#define FLEXOS_APPS_IPERF_HH

#include "apps/libc.hh"

namespace flexos {

/** Result of one iPerf run (aggregate over all flows). */
struct IperfResult
{
    std::uint64_t bytes = 0;
    double seconds = 0;
    double gbitPerSec = 0;
    unsigned flows = 1;
};

/**
 * Run an iPerf transfer of totalBytes with the given server-side
 * receive buffer size. The server runs in libiperf's compartment; the
 * client is free-running on the peer stack.
 */
IperfResult runIperf(Image &img, LibcApi &serverLibc,
                     NetStack &clientStack, std::uint64_t totalBytes,
                     std::size_t recvBufSize,
                     std::uint16_t port = 5201);

/**
 * Multi-flow iPerf: `flows` parallel connections, each transferring
 * bytesPerFlow. Aggregate goodput is measured from the first byte of
 * any flow to the completion of the last.
 */
IperfResult runIperfMulti(Image &img, LibcApi &serverLibc,
                          NetStack &clientStack,
                          std::uint64_t bytesPerFlow,
                          std::size_t recvBufSize, unsigned flows,
                          std::uint16_t port = 5201);

} // namespace flexos

#endif // FLEXOS_APPS_IPERF_HH
