/**
 * @file
 * libsqlite (minisql): a small SQL database engine in the architectural
 * image of SQLite — a pager with a rollback journal providing atomic
 * transactions over the VFS, a B+tree keyed by rowid, a catalog page,
 * and a SQL subset (CREATE TABLE / INSERT / SELECT / BEGIN / COMMIT /
 * ROLLBACK).
 *
 * Every page read/write/sync flows through the libc facade and thus
 * through the configured gates into vfscore — this is the
 * filesystem-intensive workload of the paper's Figure 10 (5000 INSERTs,
 * one transaction each).
 */

#ifndef FLEXOS_APPS_MINISQL_HH
#define FLEXOS_APPS_MINISQL_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "apps/libc.hh"

namespace flexos {
namespace minisql {

/** A SQL value: 64-bit integer or text. */
using Value = std::variant<std::int64_t, std::string>;

/** Render a value for result output. */
std::string valueToString(const Value &v);

/** One result row. */
using Row = std::vector<Value>;

/** Result of executing one statement. */
struct Result
{
    bool ok = true;
    std::string error;
    std::vector<std::string> columns;
    std::vector<Row> rows;
    std::int64_t rowsAffected = 0;
};

/** Fixed database page size (SQLite's classic default). */
inline constexpr std::size_t pageSize = 4096;

/**
 * The pager: page cache + rollback-journal transactions over a VFS
 * file (SQLite's atomic-commit design, abridged).
 */
class Pager
{
  public:
    Pager(LibcApi &libc, std::string path);
    ~Pager();

    /** Open the files; replays/rolls back a hot journal if present. */
    void open();
    void close();

    using PageBuf = std::array<std::uint8_t, pageSize>;

    /** Fetch a page for reading (cached). */
    PageBuf &get(std::uint32_t id);

    /** Fetch a page for writing: journals the pre-image in a txn. */
    PageBuf &getMutable(std::uint32_t id);

    /** Append a fresh zeroed page; returns its id. */
    std::uint32_t allocPage();

    std::uint32_t pageCount() const { return nPages; }

    /** @name Transactions (rollback journal). @{ */
    void begin();
    void commit();
    void rollback();
    bool inTransaction() const { return inTxn; }
    /** @} */

    /**
     * Test hook: flush dirty pages to disk but leave the journal hot,
     * simulating a writer that crashed mid-transaction (the paper's
     * crash-consistency scenario for rollback journals).
     */
    void commitDirtyForTest();

  private:
    void writeBack(std::uint32_t id);
    void journalPreImage(std::uint32_t id);

    LibcApi &libc;
    std::string path;
    std::string journalPath;
    int fd = -1;
    std::uint32_t nPages = 0;

    struct CachedPage
    {
        PageBuf data;
        bool dirty = false;
    };
    std::map<std::uint32_t, std::unique_ptr<CachedPage>> cache;

    bool inTxn = false;
    std::map<std::uint32_t, PageBuf> preImages; ///< journalled this txn
};

/**
 * B+tree over pager pages, mapping rowid -> serialized record.
 * Leaf cells are fixed-size slots (small-row optimization); internal
 * nodes hold separator keys and child pointers.
 */
class Btree
{
  public:
    /** Maximum serialized record size per row. */
    static constexpr std::size_t maxRecord = 110;

    Btree(Pager &pager, std::uint32_t rootPage);

    /** Create a fresh empty tree; returns its root page id. */
    static std::uint32_t create(Pager &pager);

    /** Insert a record under a strictly increasing or arbitrary key. */
    void insert(std::int64_t key, const std::uint8_t *rec,
                std::size_t len);

    /** Look up one key. @return record bytes or empty if absent */
    std::vector<std::uint8_t> find(std::int64_t key);

    /** In-order scan over all records. */
    void scan(const std::function<void(std::int64_t,
                                       const std::uint8_t *,
                                       std::size_t)> &fn);

    std::uint32_t root() const { return rootId; }

  private:
    struct SplitResult
    {
        bool split = false;
        std::int64_t sepKey = 0;
        std::uint32_t rightPage = 0;
    };

    SplitResult insertInto(std::uint32_t page, std::int64_t key,
                           const std::uint8_t *rec, std::size_t len);
    void scanPage(std::uint32_t page,
                  const std::function<void(std::int64_t,
                                           const std::uint8_t *,
                                           std::size_t)> &fn);

    Pager &pager;
    std::uint32_t rootId;
};

/** A table definition in the catalog. */
struct TableDef
{
    std::string name;
    std::vector<std::string> columns;
    std::vector<bool> isText; ///< per column: TEXT (else INTEGER)
    std::uint32_t rootPage = 0;
    std::int64_t nextRowid = 1;
};

/**
 * The database: catalog + SQL execution.
 */
class Database
{
  public:
    Database(LibcApi &libc, std::string path);
    ~Database();

    /** Open (or create) the database file. */
    void open();
    void close();

    /** Execute one SQL statement. */
    Result exec(const std::string &sql);

    bool isOpen() const { return opened; }

  private:
    Result createTable(const std::vector<std::string> &tokens);
    Result insertInto(const std::vector<std::string> &tokens);
    Result select(const std::vector<std::string> &tokens);
    Result beginTxn();
    Result commitTxn();
    Result rollbackTxn();

    TableDef *findTable(const std::string &name);
    void loadCatalog();
    void saveCatalog();

    LibcApi &libc;
    std::string path;
    std::unique_ptr<Pager> pager;
    std::vector<TableDef> tables;
    bool opened = false;
    bool explicitTxn = false;
};

/** Tokenize a SQL statement (uppercases keywords, keeps literals). */
std::vector<std::string> tokenize(const std::string &sql);

} // namespace minisql
} // namespace flexos

#endif // FLEXOS_APPS_MINISQL_HH
