#include "apps/http.hh"

#include "base/logging.hh"
#include "base/strutil.hh"

namespace flexos {

namespace {

/** Modelled per-request parse/dispatch cost. */
constexpr Cycles requestCost = 150;

} // namespace

void
HttpParser::feed(const char *data, std::size_t n)
{
    buf.append(data, n);
    std::size_t end;
    while ((end = buf.find("\r\n\r\n")) != std::string::npos) {
        std::string head = buf.substr(0, end);
        buf.erase(0, end + 4);

        std::vector<std::string> lines = split(head, '\n');
        if (lines.empty()) {
            hasError = true;
            return;
        }
        std::vector<std::string> parts = splitWs(trim(lines[0]));
        if (parts.size() != 3) {
            hasError = true;
            return;
        }
        HttpRequest req;
        req.method = parts[0];
        req.path = parts[1];
        req.version = parts[2];
        req.keepAlive = req.version == "HTTP/1.1";
        for (std::size_t i = 1; i < lines.size(); ++i) {
            std::string line = toLower(trim(lines[i]));
            if (line == "connection: close")
                req.keepAlive = false;
            else if (line == "connection: keep-alive")
                req.keepAlive = true;
        }
        ready.push_back(std::move(req));
    }
}

std::optional<HttpRequest>
HttpParser::next()
{
    if (ready.empty())
        return std::nullopt;
    HttpRequest req = std::move(ready.front());
    ready.erase(ready.begin());
    return req;
}

std::string
httpResponseHead(int status, const std::string &reason,
                 std::size_t contentLength, bool keepAlive)
{
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                       reason + "\r\n";
    head += "Server: flexos-nginx\r\n";
    head += "Content-Length: " + std::to_string(contentLength) + "\r\n";
    head += keepAlive ? "Connection: keep-alive\r\n"
                      : "Connection: close\r\n";
    head += "\r\n";
    return head;
}

HttpServer::HttpServer(LibcApi &libcApi, std::string root,
                       std::uint16_t serverPort)
    : libc(libcApi), docRoot(std::move(root)), port(serverPort)
{
}

void
HttpServer::start()
{
    libc.image().spawnIn("libnginx", "nginx-accept",
                         [this] { acceptLoop(); });
}

void
HttpServer::acceptLoop()
{
    TcpSocket *listener = libc.listen(port);
    while (!stopping) {
        TcpSocket *conn = libc.accept(listener);
        if (!conn)
            break;
        libc.image().spawnIn("libnginx", "nginx-conn",
                             [this, conn] { serveConnection(conn); });
    }
}

void
HttpServer::serveConnection(TcpSocket *conn)
{
    HttpParser parser;
    char buf[4096];
    bool keepAlive = true;
    while (!stopping && keepAlive) {
        long n = libc.recv(conn, buf, sizeof(buf));
        if (n <= 0)
            break;
        parser.feed(buf, static_cast<std::size_t>(n));
        if (parser.errored()) {
            std::string resp =
                httpResponseHead(400, "Bad Request", 0, false);
            libc.send(conn, resp.data(), resp.size());
            break;
        }
        std::string out;
        while (auto req = parser.next())
            out += handle(*req, keepAlive);
        if (!out.empty())
            libc.send(conn, out.data(), out.size());
    }
    libc.closeSocket(conn);
}

std::string
HttpServer::handle(const HttpRequest &req, bool &keepAlive)
{
    consumeCycles(requestCost);
    ++served;
    keepAlive = req.keepAlive;

    if (req.method != "GET" && req.method != "HEAD")
        return httpResponseHead(405, "Method Not Allowed", 0, keepAlive);

    // Path sanitization: no escapes from the document root.
    if (req.path.find("..") != std::string::npos)
        return httpResponseHead(403, "Forbidden", 0, keepAlive);
    std::string path = docRoot + (req.path == "/" ? "/index.html"
                                                  : req.path);

    VfsStat st;
    if (libc.stat(path, st) != vfsOk || st.type != VnodeType::Regular)
        return httpResponseHead(404, "Not Found", 0, keepAlive);

    std::string resp = httpResponseHead(
        200, "OK", static_cast<std::size_t>(st.size), keepAlive);
    if (req.method == "HEAD")
        return resp;

    int fd = libc.open(path, oRdOnly);
    if (fd < 0)
        return httpResponseHead(500, "Internal Server Error", 0,
                                keepAlive);
    char fileBuf[4096];
    long n;
    while ((n = libc.read(fd, fileBuf, sizeof(fileBuf))) > 0)
        resp.append(fileBuf, static_cast<std::size_t>(n));
    libc.close(fd);
    return resp;
}

HttpBenchmarkResult
runHttpBenchmark(Image &img, LibcApi &serverLibc, NetStack &clientStack,
                 std::uint64_t requests, const std::string &path,
                 unsigned pipeline, std::uint16_t port)
{
    Scheduler &sched = img.scheduler();
    Machine &mach = img.machine();

    HttpServer server(serverLibc, "/www", port);
    server.start();

    bool clientDone = false;
    std::uint64_t gotReplies = 0;
    Cycles startCycles = 0;

    Thread *client = sched.spawn("wrk", [&] {
        TcpSocket *s =
            clientStack.connect(serverLibc.netstack()->ip(), port);
        panic_if(!s, "wrk could not connect");

        std::string request = "GET " + path + " HTTP/1.1\r\n"
                              "Host: bench\r\n"
                              "Connection: keep-alive\r\n\r\n";
        // Wall clock, not this core's clock: on SMP the reply
        // loop and the servers run on different cores (see iperf.cc).
        startCycles = mach.wallCycles();
        std::uint64_t sent = 0;
        std::string reply;
        char buf[8192];
        while (gotReplies < requests) {
            while (sent < requests && sent - gotReplies < pipeline) {
                s->send(request.data(), request.size());
                ++sent;
            }
            long n = s->recv(buf, sizeof(buf));
            if (n <= 0)
                break;
            reply.append(buf, static_cast<std::size_t>(n));
            // Count complete responses by Content-Length framing.
            while (true) {
                std::size_t headEnd = reply.find("\r\n\r\n");
                if (headEnd == std::string::npos)
                    break;
                std::size_t clAt = reply.find("Content-Length: ");
                if (clAt == std::string::npos || clAt > headEnd)
                    break;
                long contentLen;
                std::size_t lineEnd = reply.find("\r\n", clAt);
                if (!parseInt(reply.substr(clAt + 16,
                                           lineEnd - clAt - 16),
                              contentLen))
                    break;
                std::size_t total =
                    headEnd + 4 + static_cast<std::size_t>(contentLen);
                if (reply.size() < total)
                    break;
                reply.erase(0, total);
                ++gotReplies;
            }
        }
        s->close();
        clientDone = true;
    });
    client->freeRunning = true;

    bool ok = sched.runUntil([&] { return clientDone; }, 200'000'000);
    panic_if(!ok, "http benchmark did not complete");
    server.stop();

    HttpBenchmarkResult res;
    res.requests = gotReplies;
    res.seconds = static_cast<double>(mach.wallCycles() - startCycles) /
                  (mach.timing.cpuGhz * 1e9);
    res.requestsPerSec =
        res.seconds > 0 ? static_cast<double>(res.requests) / res.seconds
                        : 0;
    return res;
}

} // namespace flexos
