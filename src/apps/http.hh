/**
 * @file
 * libnginx: an Nginx-like HTTP/1.1 static file server over the TCP
 * stack and the VFS, plus a wrk-style load generator.
 *
 * Unlike Redis, the HTTP hot path leans on vfscore (file reads) and
 * performs fewer scheduler interactions per request — the communication
 * pattern behind the paper's observation that isolating the scheduler
 * costs Nginx 6% vs. Redis' 43% (6.1).
 */

#ifndef FLEXOS_APPS_HTTP_HH
#define FLEXOS_APPS_HTTP_HH

#include <optional>
#include <string>

#include "apps/libc.hh"

namespace flexos {

/** A parsed HTTP request line + headers. */
struct HttpRequest
{
    std::string method;
    std::string path;
    std::string version;
    bool keepAlive = true;
};

/**
 * Incremental HTTP/1.1 request parser (GET/HEAD, no bodies).
 */
class HttpParser
{
  public:
    void feed(const char *data, std::size_t n);
    std::optional<HttpRequest> next();
    bool errored() const { return hasError; }

  private:
    std::string buf;
    std::vector<HttpRequest> ready;
    bool hasError = false;
};

/** Build an HTTP response head. */
std::string httpResponseHead(int status, const std::string &reason,
                             std::size_t contentLength, bool keepAlive);

/**
 * The HTTP server: serves files from the VFS document root.
 */
class HttpServer
{
  public:
    HttpServer(LibcApi &libc, std::string docRoot = "/www",
               std::uint16_t port = 80);

    void start();
    void stop() { stopping = true; }

    std::uint64_t requestsServed() const { return served; }

  private:
    void acceptLoop();
    void serveConnection(TcpSocket *conn);
    std::string handle(const HttpRequest &req, bool &keepAlive);

    LibcApi &libc;
    std::string docRoot;
    std::uint16_t port;
    bool stopping = false;
    std::uint64_t served = 0;
};

/** wrk-style benchmark result. */
struct HttpBenchmarkResult
{
    std::uint64_t requests = 0;
    double seconds = 0;
    double requestsPerSec = 0;
};

/**
 * Drive pipelined keep-alive GETs from a free-running client thread.
 */
HttpBenchmarkResult runHttpBenchmark(Image &img, LibcApi &serverLibc,
                                     NetStack &clientStack,
                                     std::uint64_t requests,
                                     const std::string &path = "/index.html",
                                     unsigned pipeline = 4,
                                     std::uint16_t port = 80);

} // namespace flexos

#endif // FLEXOS_APPS_HTTP_HH
