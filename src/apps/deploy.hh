/**
 * @file
 * Deployment: one fully wired FlexOS instance — machine, scheduler,
 * image built from a safety configuration, network stacks (server side
 * in the lwip compartment, client side free-running), a ramfs-backed
 * VFS, and the libc facade. The entry point users of this library
 * instantiate; every benchmark and example builds on it.
 */

#ifndef FLEXOS_APPS_DEPLOY_HH
#define FLEXOS_APPS_DEPLOY_HH

#include <memory>
#include <string>

#include "apps/libc.hh"
#include "core/toolchain.hh"
#include "runtime/controller.hh"
#include "ukalloc/lea.hh"
#include "vfs/ramfs.hh"

namespace flexos {

/** Knobs for a Deployment. */
struct DeployOptions
{
    bool withNet = true;
    bool withFs = true;
    TimingModel timing{};
    std::size_t heapBytes = 4 * 1024 * 1024;
    std::size_t sharedHeapBytes = 2 * 1024 * 1024;

    /**
     * Filesystem block allocator: the vfscore compartment's TLSF (the
     * Unikraft/FlexOS default) or a dedicated Lea allocator (what
     * CubicleOS links — paper 6.4).
     */
    enum class FsAllocator { Compartment, Lea } fsAllocator =
        FsAllocator::Compartment;
};

/**
 * A booted FlexOS deployment.
 */
class Deployment
{
  public:
    /** Build and boot from config text (the paper's YAML subset). */
    explicit Deployment(const std::string &configText,
                        DeployOptions opts = {});

    /** Build from an already parsed config. */
    Deployment(SafetyConfig cfg, DeployOptions opts);

    ~Deployment();

    Deployment(const Deployment &) = delete;
    Deployment &operator=(const Deployment &) = delete;

    /** Start the network pollers (no-op without networking). */
    void start();

    /** Stop pollers and wind the deployment down. */
    void stop();

    Machine &machine() { return *mach; }
    Scheduler &scheduler() { return *sched; }
    Image &image() { return *img; }
    LibcApi &libc() { return *libcApi; }
    Vfs &vfs() { return *fs; }
    NetStack &serverStack() { return *serverNet; }
    NetStack &clientStack() { return *clientNet; }
    Toolchain &toolchain() { return *tc; }

    /**
     * The NIC link between the stacks (endA = server side), or null
     * without networking. Exposed for fault/attack injection: the
     * adversary suite installs rxFilter drops here to starve the
     * reassembly queue.
     */
    Link *nicLink() { return link.get(); }

    /**
     * The runtime policy controller, present when the config has a
     * `controller:` section (null otherwise). Built wired to the
     * server NIC's backlog probe; started/stopped with the pollers.
     */
    PolicyController *policyController() { return controller.get(); }

    /** Write a file into the VFS (document roots, fixtures). */
    void writeFile(const std::string &path, const std::string &content);

  private:
    void init(SafetyConfig cfg, const DeployOptions &opts);

    std::unique_ptr<Machine> mach;
    std::unique_ptr<MachineScope> scope;
    std::unique_ptr<Scheduler> sched;
    LibraryRegistry reg;
    std::unique_ptr<Toolchain> tc;
    std::unique_ptr<Image> img;

    std::unique_ptr<Link> link;
    std::unique_ptr<NetStack> serverNet;
    std::unique_ptr<NetStack> clientNet;
    std::unique_ptr<LeaAllocator> leaFsAlloc;
    std::shared_ptr<RamfsNode> fsRoot;
    std::unique_ptr<Vfs> fs;
    std::unique_ptr<LibcApi> libcApi;
    std::unique_ptr<PolicyController> controller;

    bool pollersRunning = false;
    bool stopPollers = false;
};

} // namespace flexos

#endif // FLEXOS_APPS_DEPLOY_HH
