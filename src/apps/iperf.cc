#include "apps/iperf.hh"

#include <string>
#include <vector>

#include "base/logging.hh"

namespace flexos {

IperfResult
runIperfMulti(Image &img, LibcApi &serverLibc, NetStack &clientStack,
              std::uint64_t bytesPerFlow, std::size_t recvBufSize,
              unsigned flows, std::uint16_t port)
{
    panic_if(flows == 0, "iperf needs at least one flow");
    Scheduler &sched = img.scheduler();
    Machine &mach = img.machine();

    std::uint64_t received = 0;
    unsigned flowsDone = 0;
    Cycles startCycles = 0;
    bool firstByte = true;

    // Server: accept loop + one worker fiber per connection, all in
    // libiperf's compartment. Each worker is pinned to the core whose
    // RSS queue carries its connection, so the flow's packet
    // processing and its application work stay core-local.
    img.spawnIn("libiperf", "iperf-accept", [&, flows] {
        TcpSocket *listener = serverLibc.listen(port);
        for (unsigned i = 0; i < flows; ++i) {
            TcpSocket *conn = serverLibc.accept(listener);
            Thread *worker = img.spawnIn(
                "libiperf", "iperf-server-" + std::to_string(i),
                [&, conn] {
                    std::vector<char> buf(recvBufSize);
                    long n;
                    while ((n = serverLibc.recv(conn, buf.data(),
                                                buf.size())) > 0) {
                        if (firstByte) {
                            startCycles = mach.wallCycles();
                            firstByte = false;
                        }
                        received += static_cast<std::uint64_t>(n);
                    }
                    serverLibc.closeSocket(conn);
                    ++flowsDone;
                });
            NetStack *srv = serverLibc.netstack();
            sched.pin(worker,
                      static_cast<int>(srv->rssQueueOf(*conn) %
                                       mach.coreCount()));
        }
    });

    // Clients: one free-running pump per flow (the paper's client
    // machines do not count towards server-side time).
    for (unsigned i = 0; i < flows; ++i) {
        Thread *client = sched.spawn(
            "iperf-client-" + std::to_string(i), [&, bytesPerFlow] {
                TcpSocket *s = clientStack.connect(
                    serverLibc.netstack()->ip(), port);
                panic_if(!s, "iperf client could not connect");
                std::vector<char> chunk(16 * 1024, 'D');
                std::uint64_t sent = 0;
                while (sent < bytesPerFlow) {
                    std::size_t n = std::min<std::uint64_t>(
                        chunk.size(), bytesPerFlow - sent);
                    if (s->send(chunk.data(), n) < 0)
                        break;
                    sent += n;
                }
                s->close();
            });
        client->freeRunning = true;
    }

    bool ok = sched.runUntil([&] { return flowsDone == flows; },
                             500'000'000);
    panic_if(!ok, "iperf did not complete");

    IperfResult res;
    res.bytes = received;
    res.flows = flows;
    // Wall clock (the furthest-ahead core), not one core's clock: on
    // an SMP machine the aggregate ran for the wall interval while
    // every core worked in parallel — that is what throughput divides
    // by. Identical to cycles() on a 1-core machine.
    res.seconds =
        static_cast<double>(mach.wallCycles() - startCycles) /
        (mach.timing.cpuGhz * 1e9);
    res.gbitPerSec =
        res.seconds > 0
            ? static_cast<double>(res.bytes) * 8.0 / res.seconds / 1e9
            : 0;
    return res;
}

IperfResult
runIperf(Image &img, LibcApi &serverLibc, NetStack &clientStack,
         std::uint64_t totalBytes, std::size_t recvBufSize,
         std::uint16_t port)
{
    return runIperfMulti(img, serverLibc, clientStack, totalBytes,
                         recvBufSize, 1, port);
}

} // namespace flexos
