#include "apps/iperf.hh"

#include <vector>

#include "base/logging.hh"

namespace flexos {

IperfResult
runIperf(Image &img, LibcApi &serverLibc, NetStack &clientStack,
         std::uint64_t totalBytes, std::size_t recvBufSize,
         std::uint16_t port)
{
    Scheduler &sched = img.scheduler();
    Machine &mach = img.machine();

    std::uint64_t received = 0;
    bool serverDone = false;
    Cycles startCycles = 0;
    bool firstByte = true;

    img.spawnIn("libiperf", "iperf-server", [&] {
        TcpSocket *listener = serverLibc.listen(port);
        TcpSocket *conn = serverLibc.accept(listener);
        std::vector<char> buf(recvBufSize);
        long n;
        while ((n = serverLibc.recv(conn, buf.data(), buf.size())) > 0) {
            if (firstByte) {
                startCycles = mach.cycles();
                firstByte = false;
            }
            received += static_cast<std::uint64_t>(n);
        }
        serverLibc.closeSocket(conn);
        serverDone = true;
    });

    Thread *client = sched.spawn("iperf-client", [&] {
        TcpSocket *s =
            clientStack.connect(serverLibc.netstack()->ip(), port);
        panic_if(!s, "iperf client could not connect");
        std::vector<char> chunk(16 * 1024, 'D');
        std::uint64_t sent = 0;
        while (sent < totalBytes) {
            std::size_t n = std::min<std::uint64_t>(chunk.size(),
                                                    totalBytes - sent);
            if (s->send(chunk.data(), n) < 0)
                break;
            sent += n;
        }
        s->close();
    });
    client->freeRunning = true;

    bool ok = sched.runUntil([&] { return serverDone; }, 200'000'000);
    panic_if(!ok, "iperf did not complete");

    IperfResult res;
    res.bytes = received;
    res.seconds = static_cast<double>(mach.cycles() - startCycles) /
                  (mach.timing.cpuGhz * 1e9);
    res.gbitPerSec =
        res.seconds > 0
            ? static_cast<double>(res.bytes) * 8.0 / res.seconds / 1e9
            : 0;
    return res;
}

} // namespace flexos
