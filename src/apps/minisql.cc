#include "apps/minisql.hh"

#include <cctype>
#include <cstring>
#include <functional>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace flexos {
namespace minisql {

std::string
valueToString(const Value &v)
{
    if (std::holds_alternative<std::int64_t>(v))
        return std::to_string(std::get<std::int64_t>(v));
    return std::get<std::string>(v);
}

// ---------------------------------------------------------------- pager

Pager::Pager(LibcApi &libcApi, std::string dbPath)
    : libc(libcApi), path(std::move(dbPath)), journalPath(path + "-journal")
{
}

Pager::~Pager()
{
    if (fd >= 0)
        close();
}

void
Pager::open()
{
    // Hot-journal recovery (SQLite semantics): if a journal exists, the
    // previous transaction did not commit; roll the database back.
    VfsStat st;
    bool haveJournal = libc.stat(journalPath, st) == vfsOk;

    fd = libc.open(path, oCreat | oRdWr);
    fatal_if(fd < 0, "cannot open database '", path, "'");

    if (haveJournal) {
        int jfd = libc.open(journalPath, oRdOnly);
        if (jfd >= 0) {
            std::uint8_t hdr[8];
            std::uint64_t off = 0;
            while (libc.pread(jfd, hdr, 8, off) == 8) {
                std::uint32_t id;
                std::memcpy(&id, hdr, 4);
                PageBuf buf;
                if (libc.pread(jfd, buf.data(), pageSize, off + 8) !=
                    static_cast<long>(pageSize))
                    break;
                libc.pwrite(fd, buf.data(), pageSize,
                            static_cast<std::uint64_t>(id) * pageSize);
                off += 8 + pageSize;
            }
            libc.close(jfd);
            libc.fsync(fd);
        }
        libc.unlink(journalPath);
    }

    VfsStat dbSt;
    libc.stat(path, dbSt);
    nPages = static_cast<std::uint32_t>(dbSt.size / pageSize);
}

void
Pager::close()
{
    if (inTxn)
        rollback();
    for (auto &[id, page] : cache)
        if (page->dirty)
            writeBack(id);
    cache.clear();
    if (fd >= 0) {
        libc.close(fd);
        fd = -1;
    }
}

Pager::PageBuf &
Pager::get(std::uint32_t id)
{
    panic_if(id >= nPages, "page ", id, " out of range");
    auto it = cache.find(id);
    if (it == cache.end()) {
        auto page = std::make_unique<CachedPage>();
        long got = libc.pread(fd, page->data.data(), pageSize,
                              static_cast<std::uint64_t>(id) * pageSize);
        panic_if(got != static_cast<long>(pageSize),
                 "short page read");
        it = cache.emplace(id, std::move(page)).first;
    }
    return it->second->data;
}

Pager::PageBuf &
Pager::getMutable(std::uint32_t id)
{
    PageBuf &buf = get(id);
    if (inTxn)
        journalPreImage(id);
    cache[id]->dirty = true;
    return buf;
}

std::uint32_t
Pager::allocPage()
{
    std::uint32_t id = nPages++;
    auto page = std::make_unique<CachedPage>();
    page->data.fill(0);
    page->dirty = true;
    cache.emplace(id, std::move(page));
    // Extend the file so subsequent reads see the page.
    libc.pwrite(fd, cache[id]->data.data(), pageSize,
                static_cast<std::uint64_t>(id) * pageSize);
    return id;
}

void
Pager::journalPreImage(std::uint32_t id)
{
    if (preImages.count(id))
        return;
    preImages[id] = get(id);

    // Append [pageId, pre-image] to the journal and sync it before the
    // page may be overwritten in place — write-ahead of the rollback
    // data, as SQLite does.
    int jfd = libc.open(journalPath, oCreat | oWrOnly | oAppend);
    panic_if(jfd < 0, "cannot open journal");
    std::uint8_t hdr[8] = {};
    std::memcpy(hdr, &id, 4);
    libc.write(jfd, hdr, 8);
    libc.write(jfd, preImages[id].data(), pageSize);
    libc.fsync(jfd);
    libc.close(jfd);
}

void
Pager::begin()
{
    panic_if(inTxn, "nested transaction");
    inTxn = true;
    preImages.clear();
}

void
Pager::writeBack(std::uint32_t id)
{
    libc.pwrite(fd, cache[id]->data.data(), pageSize,
                static_cast<std::uint64_t>(id) * pageSize);
    cache[id]->dirty = false;
}

void
Pager::commit()
{
    panic_if(!inTxn, "commit outside transaction");
    // Flush dirty pages, sync the database, then drop the journal —
    // the journal's deletion is the commit point.
    for (auto &[id, page] : cache)
        if (page->dirty)
            writeBack(id);
    libc.fsync(fd);
    libc.unlink(journalPath);
    preImages.clear();
    inTxn = false;
}

void
Pager::commitDirtyForTest()
{
    panic_if(!inTxn, "crash-flush outside transaction");
    for (auto &[id, page] : cache)
        if (page->dirty)
            writeBack(id);
    // No journal unlink: the next open() finds it hot and rolls back.
    preImages.clear();
    inTxn = false;
}

void
Pager::rollback()
{
    panic_if(!inTxn, "rollback outside transaction");
    for (auto &[id, pre] : preImages) {
        cache[id]->data = pre;
        writeBack(id);
    }
    libc.fsync(fd);
    libc.unlink(journalPath);
    preImages.clear();
    inTxn = false;
}

// ---------------------------------------------------------------- btree

namespace {

/*
 * Page layout.
 *  byte 0: type (1 = leaf, 2 = internal)
 *  bytes 1-2: cell count (u16)
 *  Leaf cells: fixed slots of (key i64, len u16, data[maxRecord]).
 *  Internal: keys at fixed slots (i64) and children (u32), fanout K.
 */
constexpr std::uint8_t leafType = 1;
constexpr std::uint8_t internalType = 2;
constexpr std::size_t leafSlot = 8 + 2 + Btree::maxRecord; // 120 B
constexpr std::size_t leafMax = (pageSize - 3) / leafSlot; // 34 cells
constexpr std::size_t innerMax = (pageSize - 3 - 4) / 12;  // 341 keys

std::uint16_t
cellCount(const Pager::PageBuf &p)
{
    std::uint16_t n;
    std::memcpy(&n, p.data() + 1, 2);
    return n;
}

void
setCellCount(Pager::PageBuf &p, std::uint16_t n)
{
    std::memcpy(p.data() + 1, &n, 2);
}

std::int64_t
leafKey(const Pager::PageBuf &p, std::size_t i)
{
    std::int64_t k;
    std::memcpy(&k, p.data() + 3 + i * leafSlot, 8);
    return k;
}

std::uint8_t *
leafCell(Pager::PageBuf &p, std::size_t i)
{
    return p.data() + 3 + i * leafSlot;
}

std::int64_t
innerKey(const Pager::PageBuf &p, std::size_t i)
{
    std::int64_t k;
    std::memcpy(&k, p.data() + 3 + i * 12, 8);
    return k;
}

std::uint32_t
innerChild(const Pager::PageBuf &p, std::size_t i)
{
    // child i sits after key i-1; children interleaved at slot end.
    std::uint32_t c;
    std::memcpy(&c, p.data() + 3 + i * 12 + 8, 4);
    return c;
}

void
setInnerEntry(Pager::PageBuf &p, std::size_t i, std::int64_t key,
              std::uint32_t childAfter)
{
    std::memcpy(p.data() + 3 + i * 12, &key, 8);
    std::memcpy(p.data() + 3 + i * 12 + 8, &childAfter, 4);
}

std::uint32_t
innerFirstChild(const Pager::PageBuf &p)
{
    std::uint32_t c;
    std::memcpy(&c, p.data() + pageSize - 4, 4);
    return c;
}

void
setInnerFirstChild(Pager::PageBuf &p, std::uint32_t c)
{
    std::memcpy(p.data() + pageSize - 4, &c, 4);
}

} // namespace

Btree::Btree(Pager &p, std::uint32_t rootPage) : pager(p), rootId(rootPage)
{
}

std::uint32_t
Btree::create(Pager &pager)
{
    std::uint32_t id = pager.allocPage();
    Pager::PageBuf &p = pager.getMutable(id);
    p[0] = leafType;
    setCellCount(p, 0);
    return id;
}

Btree::SplitResult
Btree::insertInto(std::uint32_t page, std::int64_t key,
                  const std::uint8_t *rec, std::size_t len)
{
    Pager::PageBuf &p = pager.getMutable(page);
    std::uint16_t n = cellCount(p);

    if (p[0] == leafType) {
        // Find insert position (keys kept sorted).
        std::size_t pos = n;
        for (std::size_t i = 0; i < n; ++i) {
            if (leafKey(p, i) >= key) {
                pos = i;
                break;
            }
        }
        panic_if(pos < n && leafKey(p, pos) == key,
                 "duplicate rowid in btree");

        std::memmove(leafCell(p, pos + 1), leafCell(p, pos),
                     (n - pos) * leafSlot);
        std::uint8_t *cell = leafCell(p, pos);
        std::memcpy(cell, &key, 8);
        std::uint16_t len16 = static_cast<std::uint16_t>(len);
        std::memcpy(cell + 8, &len16, 2);
        std::memcpy(cell + 10, rec, len);
        setCellCount(p, ++n);

        if (n < leafMax)
            return {};

        // Split: upper half moves to a fresh right sibling.
        std::uint32_t rightId = pager.allocPage();
        Pager::PageBuf &r = pager.getMutable(rightId);
        // Re-fetch p: allocPage may have grown the cache, reference ok
        Pager::PageBuf &pl = pager.getMutable(page);
        r[0] = leafType;
        std::size_t half = n / 2;
        std::memcpy(r.data() + 3, leafCell(pl, half),
                    (n - half) * leafSlot);
        setCellCount(r, static_cast<std::uint16_t>(n - half));
        setCellCount(pl, static_cast<std::uint16_t>(half));
        std::int64_t sep;
        std::memcpy(&sep, r.data() + 3, 8);
        return {true, sep, rightId};
    }

    // Internal node: descend into the right child.
    panic_if(p[0] != internalType, "corrupt btree page");
    std::size_t idx = 0;
    while (idx < n && key >= innerKey(p, idx))
        ++idx;
    std::uint32_t child =
        idx == 0 ? innerFirstChild(p) : innerChild(p, idx - 1);
    SplitResult split = insertInto(child, key, rec, len);
    if (!split.split)
        return {};

    Pager::PageBuf &pi = pager.getMutable(page);
    n = cellCount(pi);
    // Insert (sepKey, rightPage) at idx.
    std::memmove(pi.data() + 3 + (idx + 1) * 12, pi.data() + 3 + idx * 12,
                 (n - idx) * 12);
    setInnerEntry(pi, idx, split.sepKey, split.rightPage);
    setCellCount(pi, ++n);

    if (n < innerMax)
        return {};

    // Split the internal node.
    std::uint32_t rightId = pager.allocPage();
    Pager::PageBuf &r = pager.getMutable(rightId);
    Pager::PageBuf &pl = pager.getMutable(page);
    r[0] = internalType;
    std::size_t half = n / 2;
    std::int64_t sep = innerKey(pl, half);
    setInnerFirstChild(r, innerChild(pl, half));
    std::memcpy(r.data() + 3, pl.data() + 3 + (half + 1) * 12,
                (n - half - 1) * 12);
    setCellCount(r, static_cast<std::uint16_t>(n - half - 1));
    setCellCount(pl, static_cast<std::uint16_t>(half));
    return {true, sep, rightId};
}

void
Btree::insert(std::int64_t key, const std::uint8_t *rec, std::size_t len)
{
    fatal_if(len > maxRecord, "record too large (", len, " > ",
             maxRecord, ")");
    SplitResult split = insertInto(rootId, key, rec, len);
    if (!split.split)
        return;

    // Grow a new root.
    std::uint32_t newRoot = pager.allocPage();
    Pager::PageBuf &r = pager.getMutable(newRoot);
    r[0] = internalType;
    setCellCount(r, 1);
    setInnerFirstChild(r, rootId);
    setInnerEntry(r, 0, split.sepKey, split.rightPage);
    rootId = newRoot;
}

std::vector<std::uint8_t>
Btree::find(std::int64_t key)
{
    std::uint32_t page = rootId;
    while (true) {
        Pager::PageBuf &p = pager.get(page);
        std::uint16_t n = cellCount(p);
        if (p[0] == leafType) {
            for (std::size_t i = 0; i < n; ++i) {
                if (leafKey(p, i) == key) {
                    std::uint8_t *cell = leafCell(p, i);
                    std::uint16_t len;
                    std::memcpy(&len, cell + 8, 2);
                    return std::vector<std::uint8_t>(cell + 10,
                                                     cell + 10 + len);
                }
            }
            return {};
        }
        std::size_t idx = 0;
        while (idx < n && key >= innerKey(p, idx))
            ++idx;
        page = idx == 0 ? innerFirstChild(p) : innerChild(p, idx - 1);
    }
}

void
Btree::scanPage(std::uint32_t page,
                const std::function<void(std::int64_t,
                                         const std::uint8_t *,
                                         std::size_t)> &fn)
{
    Pager::PageBuf &p = pager.get(page);
    std::uint16_t n = cellCount(p);
    if (p[0] == leafType) {
        for (std::size_t i = 0; i < n; ++i) {
            std::uint8_t *cell = leafCell(p, i);
            std::int64_t key;
            std::uint16_t len;
            std::memcpy(&key, cell, 8);
            std::memcpy(&len, cell + 8, 2);
            fn(key, cell + 10, len);
        }
        return;
    }
    scanPage(innerFirstChild(p), fn);
    for (std::size_t i = 0; i < n; ++i)
        scanPage(innerChild(p, i), fn);
}

void
Btree::scan(const std::function<void(std::int64_t, const std::uint8_t *,
                                     std::size_t)> &fn)
{
    scanPage(rootId, fn);
}

// ------------------------------------------------------------- database

std::vector<std::string>
tokenize(const std::string &sql)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < sql.size()) {
        char c = sql[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
        } else if (c == '\'') {
            std::string lit = "'";
            ++i;
            while (i < sql.size() && sql[i] != '\'')
                lit += sql[i++];
            ++i; // closing quote
            out.push_back(lit);
        } else if (std::isalpha(static_cast<unsigned char>(c)) ||
                   c == '_') {
            std::string word;
            while (i < sql.size() &&
                   (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                    sql[i] == '_'))
                word += sql[i++];
            // Keywords are case-insensitive; identifiers preserved.
            out.push_back(word);
        } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                   (c == '-' &&
                    i + 1 < sql.size() &&
                    std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
            std::string num;
            num += sql[i++];
            while (i < sql.size() &&
                   std::isdigit(static_cast<unsigned char>(sql[i])))
                num += sql[i++];
            out.push_back(num);
        } else {
            out.push_back(std::string(1, c));
            ++i;
        }
    }
    return out;
}

namespace {

bool
isKeyword(const std::string &tok, const char *kw)
{
    return toLower(tok) == toLower(kw);
}

/** Serialize a row: [ncols u8] then per column tag + payload. */
std::vector<std::uint8_t>
encodeRow(const Row &row)
{
    std::vector<std::uint8_t> out;
    out.push_back(static_cast<std::uint8_t>(row.size()));
    for (const Value &v : row) {
        if (std::holds_alternative<std::int64_t>(v)) {
            out.push_back(0);
            std::int64_t x = std::get<std::int64_t>(v);
            const auto *p = reinterpret_cast<const std::uint8_t *>(&x);
            out.insert(out.end(), p, p + 8);
        } else {
            const std::string &s = std::get<std::string>(v);
            out.push_back(1);
            std::uint16_t len = static_cast<std::uint16_t>(s.size());
            const auto *p = reinterpret_cast<const std::uint8_t *>(&len);
            out.insert(out.end(), p, p + 2);
            out.insert(out.end(), s.begin(), s.end());
        }
    }
    return out;
}

Row
decodeRow(const std::uint8_t *data, std::size_t len)
{
    Row row;
    std::size_t at = 1;
    std::uint8_t ncols = data[0];
    for (std::uint8_t i = 0; i < ncols && at < len; ++i) {
        std::uint8_t tag = data[at++];
        if (tag == 0) {
            std::int64_t x;
            std::memcpy(&x, data + at, 8);
            at += 8;
            row.emplace_back(x);
        } else {
            std::uint16_t slen;
            std::memcpy(&slen, data + at, 2);
            at += 2;
            row.emplace_back(std::string(
                reinterpret_cast<const char *>(data + at), slen));
            at += slen;
        }
    }
    return row;
}

Result
errorResult(const std::string &msg)
{
    Result r;
    r.ok = false;
    r.error = msg;
    return r;
}

} // namespace

Database::Database(LibcApi &libcApi, std::string dbPath)
    : libc(libcApi), path(std::move(dbPath))
{
}

Database::~Database()
{
    if (opened)
        close();
}

void
Database::open()
{
    pager = std::make_unique<Pager>(libc, path);
    pager->open();
    if (pager->pageCount() == 0) {
        // Fresh database: page 0 is the catalog page.
        std::uint32_t cat = pager->allocPage();
        panic_if(cat != 0, "catalog must be page 0");
        saveCatalog();
    } else {
        loadCatalog();
    }
    opened = true;
}

void
Database::close()
{
    if (pager) {
        if (pager->inTransaction())
            pager->rollback();
        saveCatalog();
        pager->close();
        pager.reset();
    }
    opened = false;
}

void
Database::loadCatalog()
{
    // Catalog page layout: textual, one table per line:
    //   name|rootPage|nextRowid|col:type,col:type,...
    tables.clear();
    Pager::PageBuf &p = pager->get(0);
    const char *text = reinterpret_cast<const char *>(p.data());
    std::size_t len = strnlen(text, pageSize);
    for (const std::string &line : split(std::string(text, len), '\n')) {
        if (trim(line).empty())
            continue;
        std::vector<std::string> parts = split(line, '|');
        if (parts.size() != 4)
            continue;
        TableDef def;
        def.name = parts[0];
        long root, next;
        parseInt(parts[1], root);
        parseInt(parts[2], next);
        def.rootPage = static_cast<std::uint32_t>(root);
        def.nextRowid = next;
        for (const std::string &col : split(parts[3], ',')) {
            if (col.empty())
                continue;
            std::vector<std::string> ct = split(col, ':');
            def.columns.push_back(ct[0]);
            def.isText.push_back(ct.size() > 1 && ct[1] == "T");
        }
        tables.push_back(std::move(def));
    }
}

void
Database::saveCatalog()
{
    std::string text;
    for (const TableDef &t : tables) {
        text += t.name + "|" + std::to_string(t.rootPage) + "|" +
                std::to_string(t.nextRowid) + "|";
        for (std::size_t i = 0; i < t.columns.size(); ++i) {
            if (i)
                text += ",";
            text += t.columns[i] + ":" + (t.isText[i] ? "T" : "I");
        }
        text += "\n";
    }
    fatal_if(text.size() >= pageSize, "catalog page overflow");
    Pager::PageBuf &p = pager->getMutable(0);
    p.fill(0);
    std::memcpy(p.data(), text.data(), text.size());
}

TableDef *
Database::findTable(const std::string &name)
{
    for (TableDef &t : tables)
        if (t.name == name)
            return &t;
    return nullptr;
}

Result
Database::exec(const std::string &sql)
{
    fatal_if(!opened, "database not open");
    std::vector<std::string> toks = tokenize(sql);
    if (!toks.empty() && toks.back() == ";")
        toks.pop_back();
    if (toks.empty())
        return errorResult("empty statement");

    // SQLite stamps transaction times; minisql reads the clock per
    // statement too, exercising the uktime component (Figure 10 MPK3).
    libc.clockNs();

    if (isKeyword(toks[0], "create"))
        return createTable(toks);
    if (isKeyword(toks[0], "insert"))
        return insertInto(toks);
    if (isKeyword(toks[0], "select"))
        return select(toks);
    if (isKeyword(toks[0], "begin"))
        return beginTxn();
    if (isKeyword(toks[0], "commit"))
        return commitTxn();
    if (isKeyword(toks[0], "rollback"))
        return rollbackTxn();
    return errorResult("unsupported statement '" + toks[0] + "'");
}

Result
Database::createTable(const std::vector<std::string> &toks)
{
    // CREATE TABLE name ( col type [, col type]* )
    if (toks.size() < 7 || !isKeyword(toks[1], "table") || toks[3] != "(")
        return errorResult("malformed CREATE TABLE");
    if (findTable(toks[2]))
        return errorResult("table '" + toks[2] + "' already exists");

    TableDef def;
    def.name = toks[2];
    std::size_t i = 4;
    while (i < toks.size() && toks[i] != ")") {
        if (toks[i] == ",") {
            ++i;
            continue;
        }
        if (i + 1 >= toks.size())
            return errorResult("malformed column definition");
        def.columns.push_back(toks[i]);
        def.isText.push_back(isKeyword(toks[i + 1], "text"));
        i += 2;
    }
    if (def.columns.empty())
        return errorResult("table needs at least one column");

    bool autoTxn = !pager->inTransaction();
    if (autoTxn)
        pager->begin();
    def.rootPage = Btree::create(*pager);
    tables.push_back(def);
    saveCatalog();
    if (autoTxn)
        pager->commit();

    Result r;
    r.rowsAffected = 0;
    return r;
}

Result
Database::insertInto(const std::vector<std::string> &toks)
{
    // INSERT INTO name VALUES ( v [, v]* )
    if (toks.size() < 7 || !isKeyword(toks[1], "into") ||
        !isKeyword(toks[3], "values") || toks[4] != "(")
        return errorResult("malformed INSERT");
    TableDef *t = findTable(toks[2]);
    if (!t)
        return errorResult("no such table '" + toks[2] + "'");

    Row row;
    std::size_t i = 5;
    while (i < toks.size() && toks[i] != ")") {
        if (toks[i] == ",") {
            ++i;
            continue;
        }
        const std::string &tok = toks[i];
        if (!tok.empty() && tok[0] == '\'')
            row.emplace_back(tok.substr(1));
        else {
            long v;
            if (!parseInt(tok, v))
                return errorResult("bad literal '" + tok + "'");
            row.emplace_back(static_cast<std::int64_t>(v));
        }
        ++i;
    }
    if (row.size() != t->columns.size())
        return errorResult("column count mismatch");

    // Hardening instrumentation point: checked rowid arithmetic.
    std::int64_t rowid =
        libc.hardening().add<std::int64_t>(t->nextRowid, 0);
    std::vector<std::uint8_t> rec = encodeRow(row);
    if (rec.size() > Btree::maxRecord)
        return errorResult("row too large");

    // Each statement outside an explicit transaction runs in its own —
    // the Figure 10 pressure pattern.
    bool autoTxn = !pager->inTransaction();
    if (autoTxn)
        pager->begin();
    Btree tree(*pager, t->rootPage);
    tree.insert(rowid, rec.data(), rec.size());
    t->rootPage = tree.root();
    t->nextRowid = rowid + 1;
    saveCatalog();
    if (autoTxn)
        pager->commit();

    Result r;
    r.rowsAffected = 1;
    return r;
}

Result
Database::select(const std::vector<std::string> &toks)
{
    // SELECT * FROM t [WHERE col = value]
    // SELECT COUNT ( * ) FROM t
    Result r;
    bool isCount = toks.size() > 1 && isKeyword(toks[1], "count");
    std::size_t fromAt = 0;
    for (std::size_t i = 1; i < toks.size(); ++i) {
        if (isKeyword(toks[i], "from")) {
            fromAt = i;
            break;
        }
    }
    if (fromAt == 0 || fromAt + 1 >= toks.size())
        return errorResult("malformed SELECT");
    TableDef *t = findTable(toks[fromAt + 1]);
    if (!t)
        return errorResult("no such table '" + toks[fromAt + 1] + "'");

    // Optional WHERE col = literal.
    int whereCol = -1;
    Value whereVal;
    if (fromAt + 2 < toks.size() &&
        isKeyword(toks[fromAt + 2], "where")) {
        if (fromAt + 5 >= toks.size() || toks[fromAt + 4] != "=")
            return errorResult("malformed WHERE");
        const std::string &col = toks[fromAt + 3];
        for (std::size_t c = 0; c < t->columns.size(); ++c)
            if (t->columns[c] == col)
                whereCol = static_cast<int>(c);
        if (whereCol < 0)
            return errorResult("no such column '" + col + "'");
        const std::string &lit = toks[fromAt + 5];
        if (!lit.empty() && lit[0] == '\'')
            whereVal = lit.substr(1);
        else {
            long v;
            if (!parseInt(lit, v))
                return errorResult("bad literal");
            whereVal = static_cast<std::int64_t>(v);
        }
    }

    r.columns = isCount ? std::vector<std::string>{"count"} : t->columns;
    std::int64_t count = 0;
    Btree tree(*pager, t->rootPage);
    tree.scan([&](std::int64_t, const std::uint8_t *rec,
                  std::size_t len) {
        Row row = decodeRow(rec, len);
        if (whereCol >= 0 &&
            row[static_cast<std::size_t>(whereCol)] != whereVal)
            return;
        ++count;
        if (!isCount)
            r.rows.push_back(std::move(row));
    });
    if (isCount)
        r.rows.push_back(Row{count});
    return r;
}

Result
Database::beginTxn()
{
    if (pager->inTransaction())
        return errorResult("transaction already open");
    pager->begin();
    explicitTxn = true;
    return Result{};
}

Result
Database::commitTxn()
{
    if (!pager->inTransaction())
        return errorResult("no transaction open");
    pager->commit();
    explicitTxn = false;
    return Result{};
}

Result
Database::rollbackTxn()
{
    if (!pager->inTransaction())
        return errorResult("no transaction open");
    pager->rollback();
    explicitTxn = false;
    loadCatalog(); // catalog may have been rolled back
    return Result{};
}

} // namespace minisql
} // namespace flexos
