#include "adversary/adversary.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/deploy.hh"
#include "base/logging.hh"
#include "core/hardening.hh"
#include "core/image.hh"
#include "machine/machine.hh"
#include "net/nic.hh"
#include "net/tcp.hh"
#include "uksched/scheduler.hh"

namespace flexos {
namespace adversary {

namespace {

std::string
hex16(std::uint64_t v)
{
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%04llx",
                  static_cast<unsigned long long>(v & 0xffff));
    return buf;
}

/** Permissiveness rank of a stack-sharing strategy (higher = looser). */
int
sharingRank(StackSharing s)
{
    switch (s) {
    case StackSharing::Heap:
        return 0;
    case StackSharing::Dss:
        return 1;
    case StackSharing::SharedStack:
        return 2;
    }
    return 0;
}

/**
 * The attack harness: one compromised compartment, a live deployment,
 * and the scenario catalogue. Scenarios run on attacker fibers spawned
 * inside the compromised compartment — every probe goes through the
 * same gates, MMU checks and backends legitimate code uses, so what
 * the scorecard measures is what the deployed mechanisms enforce.
 *
 * Must run in driver context (it drives the scheduler with runUntil).
 */
class Harness
{
  public:
    Harness(Deployment &d, const AttackOptions &o)
        : dep(d), img(d.image()), m(d.machine()), sched(d.scheduler()),
          opts(o), rng(o.seed)
    {
        attackerComp = compIndexOfLib(opts.attackerLib);
        fatal_if(attackerComp < 0, "adversary: attacker library '",
                 opts.attackerLib, "' is not in the configuration");
        attackerName = compName(attackerComp);
    }

    void illegalCrossings(std::vector<AttackResult> &out);
    void returnCorruption(std::vector<AttackResult> &out);
    void forgedDoorbells(std::vector<AttackResult> &out);
    void infoLeaks(std::vector<AttackResult> &out);
    void resourceAttacks(std::vector<AttackResult> &out);

  private:
    const std::string &
    compName(int c) const
    {
        return img.config()
            .compartments[static_cast<std::size_t>(c)]
            .name;
    }

    int
    compIndexOfLib(const std::string &lib) const
    {
        const SafetyConfig &cfg = img.config();
        for (const auto &[l, compName] : cfg.libraries) {
            if (l != lib)
                continue;
            for (std::size_t i = 0; i < cfg.compartments.size(); ++i)
                if (cfg.compartments[i].name == compName)
                    return static_cast<int>(i);
        }
        return -1;
    }

    /**
     * The library a scenario impersonates calls to in a target
     * compartment: the first configured non-TCB library living there
     * (TCB libraries may be replicated into the caller's compartment
     * under EPT, which would turn the probe into a local call and
     * misscore it). Empty if the compartment has no such library.
     */
    std::string
    repLibOf(int c) const
    {
        const SafetyConfig &cfg = img.config();
        const std::string &want = compName(c);
        std::string fallback;
        for (const auto &[lib, comp] : cfg.libraries) {
            if (comp != want)
                continue;
            if (!img.registry().get(lib).tcb)
                return lib;
            if (fallback.empty())
                fallback = lib;
        }
        return fallback;
    }

    /** First legal entry point of a library ("" if it exports none). */
    std::string
    entryOf(const std::string &lib) const
    {
        const auto &eps = img.registry().get(lib).entryPoints;
        return eps.empty() ? std::string() : *eps.begin();
    }

    /**
     * Whether the static call graph has an edge from the attacker's
     * compartment into `to` (some attacker-side library calls some
     * library configured there). Crossings outside this set are what
     * a ROP pivot must forge.
     */
    bool
    staticallyAdjacent(int to) const
    {
        const SafetyConfig &cfg = img.config();
        for (const auto &[lib, comp] : cfg.libraries) {
            if (comp != compName(attackerComp))
                continue;
            for (const std::string &callee :
                 img.registry().get(lib).callees) {
                for (const auto &[l2, c2] : cfg.libraries)
                    if (l2 == callee && c2 == compName(to))
                        return true;
            }
        }
        return false;
    }

    /**
     * Run fn on a fiber inside the compromised compartment and drive
     * the scheduler until it finishes. Fibers that wedge are cancelled
     * so one stuck scenario never hangs the scorecard.
     */
    bool
    runAsAttacker(const std::string &name, std::function<void()> fn)
    {
        bool done = false;
        Thread *t = img.spawnIn(opts.attackerLib, name,
                                [&done, fn = std::move(fn)] {
                                    fn();
                                    done = true;
                                });
        bool ok = sched.runUntil([&done] { return done; });
        if (!ok && t->state() != Thread::State::Finished)
            sched.cancel(t);
        return done;
    }

    /**
     * The loosest stack-sharing strategy any allowed inbound boundary
     * imposes on a victim compartment — the layout an attacker can
     * count on finding the victim's frames under.
     */
    StackSharing
    loosestSharingInto(int v) const
    {
        StackSharing s = img.stackSharingFor(v);
        int n = static_cast<int>(img.compartmentCount());
        for (int f = 0; f < n; ++f) {
            if (f == v)
                continue;
            const GatePolicy &p = img.policyFor(f, v);
            if (p.deny)
                continue;
            if (sharingRank(p.stackSharing) > sharingRank(s))
                s = p.stackSharing;
        }
        return s;
    }

    /**
     * Park a fiber in compartment `v` with its simulated stack built
     * under the loosest reachable sharing strategy, so attack fibers
     * can aim at a live victim frame. Returns false if the victim
     * never came up (no library to host it).
     */
    struct Victim
    {
        Thread *thread = nullptr;
        char *stackBase = nullptr; ///< private half of the sim stack
        StackSharing sharing = StackSharing::Dss;
        /** Secret the victim itself writes into its frame before
         *  parking (the plant must run *inside* the compartment: under
         *  EPT the stack is vm-private and nothing else can seed it). */
        std::size_t plantOffset = 0;
        std::uint64_t plantValue = 0;
        bool ready = false;
        bool release = false;
        bool finished = false;
    };

    bool
    parkVictim(int v, Victim &vic)
    {
        std::string vlib = repLibOf(v);
        if (vlib.empty())
            return false;
        vic.sharing = loosestSharingInto(v);
        vic.thread = img.spawnIn(
            vlib, "victim-" + compName(v), [this, v, &vic] {
                SimStack &vs = img.simStackFor(
                    sched.current()->id(), v, vic.sharing);
                vic.stackBase = vs.mem.get();
                img.store(reinterpret_cast<std::uint64_t *>(
                              vic.stackBase + vic.plantOffset),
                          vic.plantValue);
                vic.ready = true;
                while (!vic.release)
                    sched.yield();
                vic.finished = true;
            });
        sched.runUntil([&vic] { return vic.ready; });
        if (!vic.ready) {
            dismissVictim(vic);
            return false;
        }
        return true;
    }

    void
    dismissVictim(Victim &vic)
    {
        vic.release = true;
        sched.runUntil([&vic] { return vic.finished; });
        if (!vic.finished && vic.thread &&
            vic.thread->state() != Thread::State::Finished)
            sched.cancel(vic.thread);
    }

    /**
     * Mount one forged gate from the attacker fiber and classify what
     * stopped it (or didn't). The containment witnesses are the
     * counters the runtime controller alerts on, so a contained attack
     * here is also a visible attack there.
     */
    AttackResult
    mountGate(AttackClass cls, const std::string &scenario,
              const std::string &lib, const std::string &fnName, int to)
    {
        AttackResult r;
        r.cls = cls;
        r.scenario = scenario;
        std::string edge = attackerName + "->" + compName(to);
        bool executed = false;
        runAsAttacker("adv-gate", [&] {
            Cycles start = m.cycles();
            try {
                img.gate(lib, fnName.c_str(), [&] { executed = true; });
            } catch (const DeniedCrossing &) {
                r.outcome = Outcome::Contained;
                r.witness = "gate.denied." + edge;
                r.detectionCycles = m.cycles() - start;
            } catch (const ThrottledCrossing &) {
                r.outcome = Outcome::Partial;
                r.witness = "gate.throttled";
                r.detectionCycles = m.cycles() - start;
            } catch (const HardeningViolation &) {
                // Entry-point validation (CFI) refused the target.
                r.outcome = Outcome::Contained;
                r.witness = "gate.validate.reject." + edge;
                r.detectionCycles = m.cycles() - start;
            } catch (const ProtectionFault &) {
                r.outcome = Outcome::Contained;
                r.witness = "mmu.violations";
                r.detectionCycles = m.cycles() - start;
            }
        });
        if (executed) {
            r.outcome = Outcome::Breached;
            r.witness.clear();
            r.detectionCycles = 0;
        }
        return r;
    }

    Deployment &dep;
    Image &img;
    Machine &m;
    Scheduler &sched;
    AttackOptions opts;
    Rng rng;
    int attackerComp = -1;
    std::string attackerName;
};

void
Harness::illegalCrossings(std::vector<AttackResult> &out)
{
    int n = static_cast<int>(img.compartmentCount());
    for (int to = 0; to < n; ++to) {
        if (to == attackerComp)
            continue;
        std::string lib = repLibOf(to);
        if (lib.empty() || img.registry().get(lib).tcb)
            continue;
        std::string edge = attackerName + "->" + compName(to);

        // (a) Pivot to a *legal* entry point of a compartment the
        // static call graph says we never talk to. Least privilege
        // (deny) is the only thing standing between a compromised
        // compartment and every API the image exports.
        std::string entry = entryOf(lib);
        if (!staticallyAdjacent(to) && !entry.empty())
            out.push_back(mountGate(AttackClass::IllegalCrossing,
                                    "rop-cross:" + edge, lib, entry,
                                    to));

        // (b) Pivot into the middle of the callee: a gate aimed at a
        // symbol the library never exported. Entry-point validation
        // (or a backend that always checks) must refuse it; a
        // non-validating boundary executes the gadget.
        std::string gadget = "gadget_" + hex16(rng.next());
        out.push_back(mountGate(AttackClass::IllegalCrossing,
                                "rop-gadget:" + edge, lib, gadget, to));
    }
}

void
Harness::returnCorruption(std::vector<AttackResult> &out)
{
    int n = static_cast<int>(img.compartmentCount());
    for (int v = 0; v < n; ++v) {
        if (v == attackerComp)
            continue;
        AttackResult r;
        r.cls = AttackClass::ReturnCorruption;
        r.scenario = "ret-corrupt:" + compName(v);

        // The victim's frame holds a (simulated) return address in its
        // private stack half. DSS keeps that half under the victim's
        // key — only the shadow area is shared — so the write must
        // fault; a shared-stack boundary hands the attacker the frame.
        const std::uint64_t planted = 0x4e7addc0ffee0000ull;
        const std::uint64_t forged = 0xbadc0de000000000ull;
        Victim vic;
        vic.plantOffset = 256;
        vic.plantValue = planted;
        if (!parkVictim(v, vic)) {
            r.outcome = Outcome::NotApplicable;
            out.push_back(r);
            continue;
        }
        auto *slot = reinterpret_cast<std::uint64_t *>(
            vic.stackBase + 256);
        bool wrote = false;
        runAsAttacker("adv-smash", [&] {
            Cycles start = m.cycles();
            try {
                img.store(slot, forged);
                wrote = true;
            } catch (const ProtectionFault &) {
                r.witness = "mmu.violations";
                r.detectionCycles = m.cycles() - start;
            } catch (const HardeningViolation &) {
                r.witness = "hardening";
                r.detectionCycles = m.cycles() - start;
            }
        });
        r.outcome = wrote && *slot == forged ? Outcome::Breached
                                             : Outcome::Contained;
        if (r.outcome == Outcome::Breached) {
            r.witness.clear();
            r.detectionCycles = 0;
        }
        dismissVictim(vic);
        out.push_back(r);
    }
}

void
Harness::forgedDoorbells(std::vector<AttackResult> &out)
{
    int n = static_cast<int>(img.compartmentCount());
    bool anyRing = false;
    for (int v = 0; v < n; ++v) {
        if (v == attackerComp)
            continue;
        if (img.compartmentAt(static_cast<std::size_t>(v))
                .spec.mechanism != Mechanism::VmEpt)
            continue;
        std::string vlib = repLibOf(v);
        if (vlib.empty())
            continue;
        anyRing = true;
        IsolationBackend &be = img.backendFor(v);
        using FRO = IsolationBackend::ForgedRpcOutcome;

        // (a) Forged slot naming a gadget: the server's entry-point
        // re-validation is the last line once ring memory is writable.
        {
            AttackResult r;
            r.cls = AttackClass::ForgedDoorbell;
            r.scenario = "doorbell-gadget:" + compName(v);
            runAsAttacker("adv-ring", [&] {
                Cycles start = m.cycles();
                FRO oc = be.injectForgedRpc(img, v, vlib,
                                            "gadget_ring", [] {});
                r.detectionCycles = m.cycles() - start;
                switch (oc) {
                case FRO::Rejected:
                    r.outcome = Outcome::Contained;
                    r.witness = "gate.ept.forgedRejected";
                    break;
                case FRO::Executed:
                    r.outcome = Outcome::Breached;
                    r.witness.clear();
                    r.detectionCycles = 0;
                    break;
                case FRO::NoRing:
                    r.outcome = Outcome::NotApplicable;
                    break;
                }
            });
            out.push_back(r);
        }

        // (b) Replayed slot naming a *legal* entry point: server-side
        // validation passes by construction, so what the forgery
        // gained depends on whether the caller-side matrix would have
        // allowed the edge at all.
        {
            AttackResult r;
            r.cls = AttackClass::ForgedDoorbell;
            r.scenario = "doorbell-replay:" + compName(v);
            std::string entry = entryOf(vlib);
            if (entry.empty()) {
                r.outcome = Outcome::NotApplicable;
                out.push_back(r);
            } else {
                bool ran = false;
                runAsAttacker("adv-replay", [&] {
                    Cycles start = m.cycles();
                    FRO oc = be.injectForgedRpc(img, v, vlib,
                                                entry.c_str(),
                                                [&ran] { ran = true; });
                    r.detectionCycles = m.cycles() - start;
                    bool denied =
                        img.policyFor(attackerComp, v).deny;
                    if (oc == FRO::Executed && ran && denied) {
                        // The ring write bypassed a denied edge —
                        // bounded (only the exported API surface is
                        // reachable) but a real policy hole.
                        r.outcome = Outcome::Partial;
                        r.witness = "gate.ept.forgedRpcs";
                    } else if (oc == FRO::Executed) {
                        // Edge is allowed anyway: the forgery bought
                        // nothing a legitimate gate wouldn't.
                        r.outcome = Outcome::Contained;
                        r.witness = "gate.ept.forgedRpcs";
                    } else if (oc == FRO::Rejected) {
                        r.outcome = Outcome::Contained;
                        r.witness = "gate.ept.forgedRejected";
                    } else {
                        r.outcome = Outcome::NotApplicable;
                    }
                });
                out.push_back(r);
            }
        }

        // (c) Doorbell with no slot behind it: the server must absorb
        // the spurious wake (count it, not crash or spin).
        {
            AttackResult r;
            r.cls = AttackClass::ForgedDoorbell;
            r.scenario = "doorbell-spurious:" + compName(v);
            std::uint64_t before =
                m.counter("gate.ept.spuriousDoorbells");
            bool rang = false;
            runAsAttacker("adv-bell", [&] {
                Cycles start = m.cycles();
                rang = be.injectSpuriousDoorbell(img, v);
                r.detectionCycles = m.cycles() - start;
            });
            // Let the woken server run, find nothing, and re-sleep.
            sched.runUntil([] { return false; }, 200);
            if (!rang) {
                r.outcome = Outcome::NotApplicable;
            } else {
                r.outcome = Outcome::Contained;
                r.witness = "gate.ept.spuriousDoorbells";
                panic_if(m.counter("gate.ept.spuriousDoorbells") <=
                             before,
                         "spurious doorbell not witnessed");
            }
            out.push_back(r);
        }
    }
    if (!anyRing) {
        AttackResult r;
        r.cls = AttackClass::ForgedDoorbell;
        r.scenario = "doorbell";
        r.outcome = Outcome::NotApplicable;
        out.push_back(r);
    }
}

void
Harness::infoLeaks(std::vector<AttackResult> &out)
{
    int n = static_cast<int>(img.compartmentCount());
    for (int v = 0; v < n; ++v) {
        if (v == attackerComp)
            continue;
        std::string vlib = repLibOf(v);
        if (vlib.empty())
            continue;
        Compartment &vc = img.compartmentAt(static_cast<std::size_t>(v));

        // --- Scratch-register probe -----------------------------------
        // Secrets (among them a section pointer, i.e. the ASLR slide)
        // left in the scratch register file across a crossing. Gate
        // entry/return scrub legs are what stand between them and the
        // other side.
        {
            AttackResult r;
            r.cls = AttackClass::InfoLeak;
            const std::uint64_t base =
                0x5ec7e7ba5e000000ull ^ vc.layoutSlide;
            unsigned leaked = 0;
            const GatePolicy &fwd = img.policyFor(attackerComp, v);
            const GatePolicy &rev = img.policyFor(v, attackerComp);
            std::string ventry = entryOf(vlib);
            std::string aentry = entryOf(opts.attackerLib);
            if (!fwd.deny && !ventry.empty()) {
                // Call in, plant in callee context, read after return:
                // the return-side scrub leg is under test.
                r.scenario = "reg-probe:" + attackerName + "->" +
                             compName(v);
                runAsAttacker("adv-regprobe", [&] {
                    try {
                        img.gate(vlib, ventry.c_str(), [&] {
                            for (std::size_t i = 0; i < m.scratch.size();
                                 ++i)
                                m.scratch[i] = base + i;
                        });
                    } catch (const ThrottledCrossing &) {
                        return; // never crossed: nothing to read
                    }
                    for (std::size_t i = 0; i < m.scratch.size(); ++i)
                        if (m.scratch[i] == base + i)
                            ++leaked;
                });
            } else if (!rev.deny && !aentry.empty()) {
                // Victim calls into us; the entry-side scrub leg is
                // under test.
                r.scenario = "reg-probe:" + compName(v) + "->" +
                             attackerName;
                bool done = false;
                Thread *vt = img.spawnIn(
                    vlib, "victim-caller", [&] {
                        for (std::size_t i = 0; i < m.scratch.size();
                             ++i)
                            m.scratch[i] = base + i;
                        try {
                            img.gate(opts.attackerLib, aentry.c_str(),
                                     [&] {
                                         for (std::size_t i = 0;
                                              i < m.scratch.size(); ++i)
                                             if (m.scratch[i] ==
                                                 base + i)
                                                 ++leaked;
                                     });
                        } catch (const ThrottledCrossing &) {
                        }
                        done = true;
                    });
                sched.runUntil([&done] { return done; });
                if (!done && vt->state() != Thread::State::Finished)
                    sched.cancel(vt);
            } else {
                r.scenario = "reg-probe:" + attackerName + "<->" +
                             compName(v);
                r.outcome = Outcome::Contained;
                r.witness = "gate.denied (no channel)";
                out.push_back(r);
                leaked = 0;
            }
            if (!r.scenario.empty() &&
                r.witness != "gate.denied (no channel)") {
                if (leaked > 0) {
                    r.outcome = Outcome::Breached;
                    r.bitsLeaked = leaked * 64;
                    // Register 0 carried a section pointer: reading
                    // any slide-xored value back defeats the whole
                    // per-compartment ASLR budget at once.
                    r.entropyDefeated = vc.layoutEntropyBits;
                } else {
                    r.outcome = Outcome::Contained;
                    r.witness = "gate scrub leg";
                }
                out.push_back(r);
            }
        }

        // --- Stack scan -----------------------------------------------
        // Linear read sweep over the victim's private stack half,
        // hunting a planted secret (again slide-xored: finding it
        // also de-randomizes the compartment).
        {
            AttackResult r;
            r.cls = AttackClass::InfoLeak;
            r.scenario = "stack-scan:" + compName(v);
            const std::uint64_t secret =
                0x0de5c0de5ca90000ull ^ vc.layoutSlide;
            Victim vic;
            vic.plantOffset = 192;
            vic.plantValue = secret;
            if (!parkVictim(v, vic)) {
                r.outcome = Outcome::NotApplicable;
                out.push_back(r);
                continue;
            }
            bool found = false;
            runAsAttacker("adv-scan", [&] {
                Cycles start = m.cycles();
                try {
                    for (std::size_t off = 0;
                         off < SimStack::stackBytes;
                         off += sizeof(std::uint64_t)) {
                        auto *p =
                            reinterpret_cast<const std::uint64_t *>(
                                vic.stackBase + off);
                        if (img.load(p) == secret) {
                            found = true;
                            break;
                        }
                    }
                } catch (const ProtectionFault &) {
                    r.witness = "mmu.violations";
                    r.detectionCycles = m.cycles() - start;
                } catch (const HardeningViolation &) {
                    r.witness = "hardening";
                    r.detectionCycles = m.cycles() - start;
                }
            });
            if (found) {
                r.outcome = Outcome::Breached;
                r.bitsLeaked = 64;
                r.entropyDefeated = vc.layoutEntropyBits;
                r.witness.clear();
                r.detectionCycles = 0;
            } else {
                r.outcome = Outcome::Contained;
                if (r.witness.empty())
                    r.witness = "stack layout (nothing shared)";
            }
            dismissVictim(vic);
            out.push_back(r);
        }
    }
}

void
Harness::resourceAttacks(std::vector<AttackResult> &out)
{
    if (!opts.withNet || !dep.nicLink()) {
        AttackResult r;
        r.cls = AttackClass::Resource;
        r.scenario = "resource";
        r.outcome = Outcome::NotApplicable;
        out.push_back(r);
        return;
    }
    NetStack &srv = dep.serverStack();
    NetStack &cli = dep.clientStack();

    // --- Flow-table churn ---------------------------------------------
    // Rapid connect/abort cycles: contained when the server's flow
    // table returns to baseline (no leaked flow state per churned
    // connection).
    {
        AttackResult r;
        r.cls = AttackClass::Resource;
        r.scenario = "flow-churn";
        const std::uint16_t port = 9610;
        TcpSocket *lst = srv.listen(port, 16);
        std::size_t baseFlows = srv.flowCount();
        bool stopAccept = false;
        Thread *acceptor = sched.spawn("churn-acceptor", [&] {
            while (!stopAccept) {
                TcpSocket *c = lst->accept();
                if (!c)
                    break;
                c->abort();
            }
        });
        bool churnDone = false;
        Cycles start = m.cycles();
        Thread *client = sched.spawn("churn-client", [&] {
            for (int i = 0; i < 24; ++i) {
                TcpSocket *c = cli.connect(srv.ip(), port);
                if (c)
                    c->abort();
            }
            churnDone = true;
        });
        sched.runUntil([&churnDone] { return churnDone; });
        bool drained = sched.runUntil([&] {
            return srv.flowCount() <= baseFlows + 1;
        });
        r.outcome = churnDone && drained ? Outcome::Contained
                                         : Outcome::Breached;
        if (r.outcome == Outcome::Contained) {
            r.witness = "tcp flow reclaim";
            r.detectionCycles = m.cycles() - start;
        }
        stopAccept = true;
        if (client->state() != Thread::State::Finished)
            sched.cancel(client);
        if (acceptor->state() != Thread::State::Finished)
            sched.cancel(acceptor);
        lst->close();
        sched.runUntil([] { return false; }, 500);
        out.push_back(r);
    }

    // --- Out-of-order queue exhaustion --------------------------------
    // Drop one in-flight frame on the server NIC so everything behind
    // it lands out of order, then pour data in: the reassembly queue
    // must evict (tcp.oooEvicted) instead of growing without bound.
    {
        AttackResult r;
        r.cls = AttackClass::Resource;
        r.scenario = "ooo-exhaust";
        const std::uint16_t port = 9611;
        TcpSocket *lst = srv.listen(port, 8);
        TcpSocket *child = nullptr;
        TcpSocket *peer = nullptr;
        Thread *acc = sched.spawn("ooo-acceptor",
                                  [&] { child = lst->accept(); });
        Thread *con = sched.spawn("ooo-connector", [&] {
            peer = cli.connect(srv.ip(), port);
        });
        sched.runUntil([&] { return child && peer; });
        if (!child || !peer) {
            r.outcome = Outcome::NotApplicable;
            if (acc->state() != Thread::State::Finished)
                sched.cancel(acc);
            if (con->state() != Thread::State::Finished)
                sched.cancel(con);
            lst->close();
            out.push_back(r);
        } else {
            child->oooLimit = 2048;
            std::uint64_t evBase = m.counter("tcp.oooEvicted");
            NicEndpoint &srvNic = dep.nicLink()->endA();
            bool droppedOne = false;
            srvNic.rxFilter = [&droppedOne](NetBuf &f) {
                if (!droppedOne && f.size() > 600) {
                    droppedOne = true;
                    return false; // swallow one data frame
                }
                return true;
            };
            bool sendDone = false;
            Cycles start = m.cycles();
            Thread *sender = sched.spawn("ooo-sender", [&] {
                std::vector<char> buf(1024, 'A');
                for (int i = 0; i < 8; ++i)
                    peer->send(buf.data(), buf.size());
                sendDone = true;
            });
            bool evicted = sched.runUntil([&] {
                return m.counter("tcp.oooEvicted") > evBase;
            });
            r.detectionCycles = m.cycles() - start;
            bool bounded =
                child->oooQueuedBytes() <= child->oooLimit;
            if (!bounded)
                r.outcome = Outcome::Breached;
            else if (evicted) {
                r.outcome = Outcome::Contained;
                r.witness = "tcp.oooEvicted";
            } else {
                // Queue stayed bounded without needing eviction: the
                // attack fizzled against the window, still contained.
                r.outcome = Outcome::Contained;
                r.witness = "ooo bound";
            }
            srvNic.rxFilter = nullptr;
            sched.runUntil([&sendDone] { return sendDone; });
            if (sender->state() != Thread::State::Finished)
                sched.cancel(sender);
            peer->abort();
            child->abort();
            lst->close();
            sched.runUntil([] { return false; }, 500);
            out.push_back(r);
        }
    }

    // --- SYN flood (last: cancelled connects may strand client flows)
    // More handshakes than the listener backlog admits: containment is
    // the drop counter firing while the accept queue stays within the
    // configured bound.
    {
        AttackResult r;
        r.cls = AttackClass::Resource;
        r.scenario = "syn-flood";
        const std::uint16_t port = 9612;
        const std::size_t backlog = 2;
        TcpSocket *lst = srv.listen(port, backlog);
        std::uint64_t dropBase = m.counter("tcp.backlogDrops");
        std::vector<Thread *> flood;
        std::vector<TcpSocket *> floodSocks;
        Cycles start = m.cycles();
        for (int i = 0; i < 12; ++i)
            flood.push_back(
                sched.spawn("flood-" + std::to_string(i), [&] {
                    TcpSocket *c = cli.connect(srv.ip(), port);
                    if (c)
                        floodSocks.push_back(c);
                }));
        bool dropped = sched.runUntil([&] {
            return m.counter("tcp.backlogDrops") > dropBase;
        });
        r.detectionCycles = m.cycles() - start;
        bool boundHeld = lst->pendingAccepts() <= backlog;
        if (dropped && boundHeld) {
            r.outcome = Outcome::Contained;
            r.witness = "tcp.backlogDrops";
        } else if (boundHeld) {
            r.outcome = Outcome::Partial;
            r.witness = "backlog bound (no drop witnessed)";
        } else {
            r.outcome = Outcome::Breached;
            r.detectionCycles = 0;
        }
        for (Thread *t : flood)
            if (t->state() != Thread::State::Finished)
                sched.cancel(t);
        bool reaped = false;
        Thread *reaper = sched.spawn("flood-reaper", [&] {
            while (lst->pendingAccepts() > 0) {
                TcpSocket *c = lst->accept();
                if (!c)
                    break;
                c->abort();
            }
            reaped = true;
        });
        sched.runUntil([&reaped] { return reaped; }, 200'000);
        if (reaper->state() != Thread::State::Finished)
            sched.cancel(reaper);
        for (TcpSocket *c : floodSocks)
            c->abort();
        lst->close();
        sched.runUntil([] { return false; }, 500);
        out.push_back(r);
    }
}

} // namespace

const char *
attackClassName(AttackClass c)
{
    switch (c) {
    case AttackClass::IllegalCrossing:
        return "rop-crossing";
    case AttackClass::ReturnCorruption:
        return "ret-corrupt";
    case AttackClass::ForgedDoorbell:
        return "doorbell";
    case AttackClass::InfoLeak:
        return "info-leak";
    case AttackClass::Resource:
        return "resource";
    }
    return "?";
}

bool
parseAttackClass(const std::string &name, AttackClass &out)
{
    for (AttackClass c : allAttackClasses()) {
        if (name == attackClassName(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

const std::vector<AttackClass> &
allAttackClasses()
{
    static const std::vector<AttackClass> all = {
        AttackClass::IllegalCrossing, AttackClass::ReturnCorruption,
        AttackClass::ForgedDoorbell, AttackClass::InfoLeak,
        AttackClass::Resource,
    };
    return all;
}

const char *
outcomeName(Outcome o)
{
    switch (o) {
    case Outcome::Contained:
        return "contained";
    case Outcome::Partial:
        return "partial";
    case Outcome::Breached:
        return "breached";
    case Outcome::NotApplicable:
        return "n/a";
    }
    return "?";
}

std::size_t
AttackScorecard::contained() const
{
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(), [](const auto &r) {
            return r.outcome == Outcome::Contained;
        }));
}

std::size_t
AttackScorecard::partial() const
{
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(), [](const auto &r) {
            return r.outcome == Outcome::Partial;
        }));
}

std::size_t
AttackScorecard::breached() const
{
    return static_cast<std::size_t>(
        std::count_if(results.begin(), results.end(), [](const auto &r) {
            return r.outcome == Outcome::Breached;
        }));
}

unsigned
AttackScorecard::bitsLeaked() const
{
    unsigned total = 0;
    for (const AttackResult &r : results)
        total += r.bitsLeaked;
    return total;
}

unsigned
AttackScorecard::entropyDefeated() const
{
    unsigned total = 0;
    for (const AttackResult &r : results)
        total += r.entropyDefeated;
    return total;
}

bool
AttackScorecard::fullContainment() const
{
    return breached() == 0 && partial() == 0;
}

int
AttackScorecard::score() const
{
    return static_cast<int>(breached()) * 10 +
           static_cast<int>(partial()) * 3;
}

std::string
AttackScorecard::summary() const
{
    return std::to_string(results.size()) + " scenarios: " +
           std::to_string(contained()) + " contained, " +
           std::to_string(partial()) + " partial, " +
           std::to_string(breached()) + " breached (" +
           std::to_string(bitsLeaked()) + " bits leaked, " +
           std::to_string(entropyDefeated()) +
           " entropy bits defeated), score " + std::to_string(score());
}

AttackScorecard
runAttackClass(Deployment &dep, AttackClass cls,
               const AttackOptions &opts)
{
    Harness h(dep, opts);
    AttackScorecard card;
    switch (cls) {
    case AttackClass::IllegalCrossing:
        h.illegalCrossings(card.results);
        break;
    case AttackClass::ReturnCorruption:
        h.returnCorruption(card.results);
        break;
    case AttackClass::ForgedDoorbell:
        h.forgedDoorbells(card.results);
        break;
    case AttackClass::InfoLeak:
        h.infoLeaks(card.results);
        break;
    case AttackClass::Resource:
        h.resourceAttacks(card.results);
        break;
    }
    return card;
}

AttackScorecard
runScorecard(Deployment &dep, const AttackOptions &opts)
{
    Harness h(dep, opts);
    AttackScorecard card;
    h.illegalCrossings(card.results);
    h.returnCorruption(card.results);
    h.forgedDoorbells(card.results);
    h.infoLeaks(card.results);
    h.resourceAttacks(card.results);
    return card;
}

} // namespace adversary
} // namespace flexos
