/**
 * @file
 * Adversary simulation: the compromised-compartment attack harness.
 *
 * Everything else in the repository *specifies* least privilege
 * (the gate matrix), *audits* it statically (flexos::analysis) or
 * *adapts* it online (the policy controller); this subsystem attacks
 * it. One compartment is declared compromised and a structured
 * catalogue of attack scenarios is mounted from inside it against a
 * live deployment:
 *
 *  - **ROP-style illegal crossings**: forged gate entries into
 *    non-adjacent compartments, gate entries aimed at non-entry-point
 *    "gadgets", forged and replayed EPT ring doorbells.
 *  - **Return/stack corruption**: writes into other compartments'
 *    private stack halves (the return-address corruption analogue
 *    across DSS frames).
 *  - **Info-leak probes**: scans of victim stacks and of the
 *    unscrubbed scratch-register file for planted canaries, with
 *    bits-leaked and ASLR-entropy-defeated accounting against the
 *    linker script's per-compartment layout slides.
 *  - **Resource attacks** (re-used from the netstack): SYN floods
 *    against listener backlogs, out-of-order-queue exhaustion, and
 *    flow-table churn aimed at a compromised net compartment.
 *
 * Each scenario reports contained / partial / breached plus the
 * virtual cycles until the containment witness fired, aggregated into
 * an AttackScorecard — the measured security outcome the explore
 * sweeps plot against performance (ConfigPoint::attackScore).
 */

#ifndef FLEXOS_ADVERSARY_ADVERSARY_HH
#define FLEXOS_ADVERSARY_ADVERSARY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace flexos {

class Deployment;

namespace adversary {

/** The attack classes the harness mounts. */
enum class AttackClass
{
    IllegalCrossing,  ///< forged gates into non-adjacent compartments
    ReturnCorruption, ///< cross-compartment stack-frame writes
    ForgedDoorbell,   ///< forged / replayed EPT ring doorbells
    InfoLeak,         ///< stack scans + unscrubbed-register probes
    Resource,         ///< netstack floods from a compromised net comp
};

/** Stable short name (CLI `--attack` argument, JSON keys). */
const char *attackClassName(AttackClass c);

/** Parse an attackClassName; returns false on an unknown name. */
bool parseAttackClass(const std::string &name, AttackClass &out);

/** Every attack class, catalogue order. */
const std::vector<AttackClass> &allAttackClasses();

/** What one scenario achieved against the deployed config. */
enum class Outcome
{
    Contained,    ///< the mechanism/policy stopped and witnessed it
    Partial,      ///< degraded but bounded (throttled, detected late)
    Breached,     ///< the attack reached its goal
    NotApplicable ///< the deployment has no surface for this scenario
};

const char *outcomeName(Outcome o);

/** One attack scenario's verdict. */
struct AttackResult
{
    AttackClass cls = AttackClass::IllegalCrossing;
    /** Scenario id, e.g. "rop-cross:net->app" or "syn-flood". */
    std::string scenario;
    Outcome outcome = Outcome::NotApplicable;
    /**
     * Virtual cycles from mounting the attack to the containment
     * witness firing (0 for breaches — a breach is never detected).
     */
    std::uint64_t detectionCycles = 0;
    /** Counter (or mechanism) that witnessed the containment. */
    std::string witness;
    /** Info-leak accounting: secret bits the attacker recovered. */
    unsigned bitsLeaked = 0;
    /** Layout-randomization bits a leaked pointer revealed. */
    unsigned entropyDefeated = 0;
};

/**
 * The aggregated containment scorecard of one deployment. Attached to
 * explore points as ConfigPoint::attackScore (lower = better, 0 =
 * full containment), the measured counterpart of the static
 * auditScore.
 */
struct AttackScorecard
{
    std::vector<AttackResult> results;

    std::size_t contained() const;
    std::size_t partial() const;
    std::size_t breached() const;
    /** Total secret bits leaked across every scenario. */
    unsigned bitsLeaked() const;
    /** Total ASLR entropy bits defeated across every scenario. */
    unsigned entropyDefeated() const;

    /** No breach and no partial among the applicable scenarios. */
    bool fullContainment() const;

    /** Hazard score: 10 per breach + 3 per partial (0 = contained). */
    int score() const;

    /** One-line human summary. */
    std::string summary() const;
};

/** Harness knobs. */
struct AttackOptions
{
    /** Seed for the scenario RNG (scan order, gadget names). */
    std::uint64_t seed = 0x5eedULL;
    /** Library whose compartment is compromised (must exist). */
    std::string attackerLib = "lwip";
    /** Mount the resource class against the deployment's netstack. */
    bool withNet = false;
};

/**
 * Deterministic splitmix64 generator: the harness must replay
 * identically under a fixed seed (std:: distributions are not
 * portable across standard libraries, so this hand-rolls everything).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform draw in [0, n); 0 when n is 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return n ? next() % n : 0;
    }

  private:
    std::uint64_t state;
};

/**
 * Run the full scenario catalogue against a live deployment from the
 * compromised compartment and return the scorecard. The deployment
 * must be booted; with opts.withNet the pollers must be started. The
 * harness cleans up after itself (attack fibers cancelled, sockets
 * aborted, filters removed), so the deployment stays usable.
 */
AttackScorecard runScorecard(Deployment &dep, const AttackOptions &opts);

/** Run only the scenarios of one class (the bench `--attack` mode). */
AttackScorecard runAttackClass(Deployment &dep, AttackClass cls,
                               const AttackOptions &opts);

} // namespace adversary
} // namespace flexos

#endif // FLEXOS_ADVERSARY_ADVERSARY_HH
