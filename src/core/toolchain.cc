#include "core/toolchain.hh"

#include <set>
#include <sstream>

#include "base/logging.hh"

namespace flexos {

void
Toolchain::validate(const SafetyConfig &cfg) const
{
    fatal_if(cfg.compartments.empty(), "no compartments declared");

    // Exactly one default compartment.
    int defaults = 0;
    std::set<std::string> compNames;
    for (const CompartmentSpec &c : cfg.compartments) {
        defaults += c.isDefault ? 1 : 0;
        fatal_if(!compNames.insert(c.name).second,
                 "duplicate compartment '", c.name, "'");
    }
    fatal_if(defaults == 0, "no default compartment declared");
    fatal_if(defaults > 1, "multiple default compartments declared");

    // Mechanisms are a per-boundary knob: a mixed image instantiates
    // one backend per distinct mechanism. Probe each once so per-
    // mechanism rules (key budgets, TCB replication) can be checked
    // without booting an image.
    std::map<Mechanism, std::unique_ptr<IsolationBackend>> probes;
    for (const CompartmentSpec &c : cfg.compartments)
        if (!probes.count(c.mechanism))
            probes.emplace(c.mechanism, makeBackend(c.mechanism));

    // MPK key budget: 15 compartments + 1 shared key (paper 4.1).
    // Only key-consuming compartments count against the budget; with
    // key virtualization, EPT compartments are VM-private (unmapped
    // outside their VM) and take no key at all, so a mixed image may
    // exceed 15 compartments as long as at most 15 of them are keyed.
    std::size_t mpkComps = 0, keyedComps = 0;
    for (const CompartmentSpec &c : cfg.compartments) {
        if (c.mechanism == Mechanism::IntelMpk ||
            c.mechanism == Mechanism::CubicleMpk)
            ++mpkComps;
        if (mechanismConsumesProtKey(c.mechanism))
            ++keyedComps;
        fatal_if(c.serversExplicit && c.mechanism != Mechanism::VmEpt,
                 "compartment '", c.name, "' sets servers: ", c.servers,
                 " but only vm-ept compartments boot an RPC pool");
    }
    fatal_if(mpkComps > numProtKeys - 1, "MPK supports at most ",
             numProtKeys - 1, " compartments");
    fatal_if(keyedComps > numProtKeys - 1,
             "the key-tagged region model supports at most ",
             numProtKeys - 1,
             " key-consuming compartments per image (one key is "
             "reserved for the shared domain; EPT compartments are "
             "VM-private and keyless)");

    // Resolving the matrix validates the boundary rules: it fatals on
    // rules naming unknown compartments.
    (void)GateMatrix::build(cfg);

    // Library assignments.
    std::set<std::string> assigned;
    bool allReplicateTcb = true;
    for (const auto &[m, probe] : probes)
        if (!probe->replicatesTcb())
            allReplicateTcb = false;
    std::string defaultName;
    for (const CompartmentSpec &c : cfg.compartments)
        if (c.isDefault)
            defaultName = c.name;

    for (const auto &[lib, compName] : cfg.libraries) {
        fatal_if(!reg.contains(lib), "unknown library '", lib, "'");
        fatal_if(!compNames.count(compName), "library '", lib,
                 "' assigned to unknown compartment '", compName, "'");
        fatal_if(!assigned.insert(lib).second, "library '", lib,
                 "' assigned twice");

        // TCB components stay in the trusted compartment unless every
        // mechanism in the image replicates the kernel into its
        // compartments (4.2): callers under any non-replicating
        // mechanism cross into the TCB library's home compartment, so
        // that home must be the trusted one.
        if (reg.get(lib).tcb && !allReplicateTcb) {
            fatal_if(compName != defaultName, "TCB library '", lib,
                     "' must live in the default (trusted) compartment "
                     "when a non-replicating mechanism is present");
        }
    }

    for (const auto &[lib, hardenings] : cfg.libHardening) {
        fatal_if(!assigned.count(lib), "hardening listed for '", lib,
                 "' which is not part of the image");
        (void)hardenings;
    }
}

std::unique_ptr<Image>
Toolchain::build(Machine &m, Scheduler &s, const SafetyConfig &cfg)
{
    validate(cfg);

    auto img = std::make_unique<Image>(m, s, cfg, reg);

    BuildReport rep;

    // --- Gate instantiation (Figure 3, step 3/3') --------------------
    // Walk the static call graph; every cross-compartment edge gets a
    // backend gate, every intra-compartment edge stays a function call.
    for (const auto &[lib, compName] : cfg.libraries) {
        const LibraryInfo &info = reg.get(lib);
        for (const std::string &callee : info.callees) {
            if (!reg.contains(callee))
                continue;
            bool inImage = false;
            for (const auto &[other, oc] : cfg.libraries)
                if (other == callee)
                    inImage = true;
            const LibraryInfo &calleeInfo = reg.get(callee);
            if (!inImage && !calleeInfo.tcb)
                continue;

            std::ostringstream line;
            int callerComp = img->compartmentIndexOf(lib);
            int calleeComp =
                inImage ? img->compartmentIndexOf(callee) : callerComp;
            // The caller's mechanism decides whether the TCB is local
            // (replicated); the *callee's* mechanism supplies the gate.
            bool crosses =
                inImage && callerComp != calleeComp &&
                !(calleeInfo.tcb &&
                  img->backendFor(callerComp).replicatesTcb());
            if (crosses) {
                // Name the boundary's resolved policy, not just the
                // mechanism: flavour/validate/scrub overrides show up
                // in the transformation record.
                line << lib << ": flexos_gate(" << callee
                     << ", ...) -> "
                     << img->policyFor(callerComp, calleeComp).name()
                     << " gate ["
                     << cfg.compartments[static_cast<std::size_t>(
                                             callerComp)]
                            .name
                     << " -> "
                     << cfg.compartments[static_cast<std::size_t>(
                                             calleeComp)]
                            .name
                     << "]";
                ++rep.gatesInserted;
            } else {
                line << lib << ": flexos_gate(" << callee
                     << ", ...) -> direct call (same compartment)";
            }
            rep.transformations.push_back(line.str());
        }
    }

    // --- Shared-data annotation instantiation ------------------------
    // Stack sharing is a per-boundary policy: report the strategy the
    // matrix resolves for each library's home compartment (wildcard
    // rules and the global default all land in the (c, c) cell).
    for (const auto &[lib, compName] : cfg.libraries) {
        const LibraryInfo &info = reg.get(lib);
        if (info.sharedVars == 0)
            continue;
        int comp = img->compartmentIndexOf(lib);
        std::ostringstream line;
        line << lib << ": " << info.sharedVars
             << " __shared annotations -> "
             << stackSharingName(img->stackSharingFor(comp));
        rep.transformations.push_back(line.str());
        rep.annotationsReplaced += info.sharedVars;
    }

    img->boot();
    rep.backendName = img->backendNames();
    rep.linkerScript = img->linkerScript();
    lastReport = std::move(rep);
    return img;
}

} // namespace flexos
