#include "core/toolchain.hh"

#include <set>
#include <sstream>

#include "base/logging.hh"

namespace flexos {

void
Toolchain::validate(const SafetyConfig &cfg) const
{
    fatal_if(cfg.compartments.empty(), "no compartments declared");

    // Exactly one default compartment.
    int defaults = 0;
    std::set<std::string> compNames;
    for (const CompartmentSpec &c : cfg.compartments) {
        defaults += c.isDefault ? 1 : 0;
        fatal_if(!compNames.insert(c.name).second,
                 "duplicate compartment '", c.name, "'");
    }
    fatal_if(defaults == 0, "no default compartment declared");
    fatal_if(defaults > 1, "multiple default compartments declared");

    // The prototype instantiates one mechanism per image (paper 4).
    Mechanism mech = cfg.compartments[0].mechanism;
    for (const CompartmentSpec &c : cfg.compartments)
        fatal_if(c.mechanism != mech,
                 "mixed isolation mechanisms in one image: '",
                 mechanismName(mech), "' vs '",
                 mechanismName(c.mechanism), "' (unsupported by the "
                 "prototype)");

    // MPK key budget: 15 compartments + 1 shared key (paper 4.1).
    if (mech == Mechanism::IntelMpk || mech == Mechanism::CubicleMpk) {
        fatal_if(cfg.compartments.size() > numProtKeys - 1,
                 "MPK supports at most ", numProtKeys - 1,
                 " compartments");
    }

    // Library assignments.
    std::set<std::string> assigned;
    auto backendProbe = makeBackend(mech, cfg.mpkGate);
    std::string defaultName;
    for (const CompartmentSpec &c : cfg.compartments)
        if (c.isDefault)
            defaultName = c.name;

    for (const auto &[lib, compName] : cfg.libraries) {
        fatal_if(!reg.contains(lib), "unknown library '", lib, "'");
        fatal_if(!compNames.count(compName), "library '", lib,
                 "' assigned to unknown compartment '", compName, "'");
        fatal_if(!assigned.insert(lib).second, "library '", lib,
                 "' assigned twice");

        // TCB components stay in the trusted compartment unless the
        // backend replicates the kernel into every compartment (4.2).
        if (reg.get(lib).tcb && !backendProbe->replicatesTcb()) {
            fatal_if(compName != defaultName, "TCB library '", lib,
                     "' must live in the default (trusted) compartment "
                     "under ", mechanismName(mech));
        }
    }

    for (const auto &[lib, hardenings] : cfg.libHardening) {
        fatal_if(!assigned.count(lib), "hardening listed for '", lib,
                 "' which is not part of the image");
        (void)hardenings;
    }
}

std::unique_ptr<Image>
Toolchain::build(Machine &m, Scheduler &s, const SafetyConfig &cfg)
{
    validate(cfg);

    auto img = std::make_unique<Image>(m, s, cfg, reg);

    BuildReport rep;

    // --- Gate instantiation (Figure 3, step 3/3') --------------------
    // Walk the static call graph; every cross-compartment edge gets a
    // backend gate, every intra-compartment edge stays a function call.
    for (const auto &[lib, compName] : cfg.libraries) {
        const LibraryInfo &info = reg.get(lib);
        for (const std::string &callee : info.callees) {
            if (!reg.contains(callee))
                continue;
            bool inImage = false;
            for (const auto &[other, oc] : cfg.libraries)
                if (other == callee)
                    inImage = true;
            const LibraryInfo &calleeInfo = reg.get(callee);
            if (!inImage && !calleeInfo.tcb)
                continue;

            std::ostringstream line;
            bool crosses =
                inImage &&
                img->compartmentIndexOf(lib) !=
                    img->compartmentIndexOf(callee) &&
                !(calleeInfo.tcb &&
                  img->isolationBackend().replicatesTcb());
            if (crosses) {
                line << lib << ": flexos_gate(" << callee
                     << ", ...) -> " << img->isolationBackend().name()
                     << " gate ["
                     << cfg.compartments[static_cast<std::size_t>(
                                             img->compartmentIndexOf(
                                                 lib))]
                            .name
                     << " -> "
                     << cfg.compartments[static_cast<std::size_t>(
                                             img->compartmentIndexOf(
                                                 callee))]
                            .name
                     << "]";
                ++rep.gatesInserted;
            } else {
                line << lib << ": flexos_gate(" << callee
                     << ", ...) -> direct call (same compartment)";
            }
            rep.transformations.push_back(line.str());
        }
    }

    // --- Shared-data annotation instantiation ------------------------
    const char *strategyName =
        cfg.stackSharing == StackSharing::Dss ? "dss"
        : cfg.stackSharing == StackSharing::Heap ? "shared-heap"
                                                 : "shared-stack";
    for (const auto &[lib, compName] : cfg.libraries) {
        const LibraryInfo &info = reg.get(lib);
        if (info.sharedVars == 0)
            continue;
        std::ostringstream line;
        line << lib << ": " << info.sharedVars
             << " __shared annotations -> " << strategyName;
        rep.transformations.push_back(line.str());
        rep.annotationsReplaced += info.sharedVars;
    }

    img->boot();
    rep.backendName = img->isolationBackend().name();
    rep.linkerScript = img->linkerScript();
    lastReport = std::move(rep);
    return img;
}

} // namespace flexos
