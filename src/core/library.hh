/**
 * @file
 * The micro-library registry: FlexOS' view of the system's components.
 *
 * Each Unikraft-style micro-library registers its name, legal entry
 * points (the gate targets the toolchain knows from the control-flow
 * graph, paper 3.1), its static call-graph edges, and its porting
 * metadata (patch size and shared-variable count — Table 1).
 */

#ifndef FLEXOS_CORE_LIBRARY_HH
#define FLEXOS_CORE_LIBRARY_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace flexos {

/**
 * Static description of one micro-library.
 */
struct LibraryInfo
{
    std::string name;

    /**
     * Part of the trusted computing base (paper 3.3): boot code, memory
     * manager, scheduler, interrupt context-switch primitives, backend.
     * TCB libraries live in the trusted compartment (and are replicated
     * into every VM under the EPT backend).
     */
    bool tcb = false;

    /** Legal cross-compartment entry points (gate/CFI targets). */
    std::set<std::string> entryPoints;

    /** Libraries this one calls (static call-graph edges). */
    std::set<std::string> callees;

    /**
     * Repo-relative C++ sources implementing the library — the file
     * list the shared-data escape scanner (flexos::analysis) walks,
     * playing the role of the Coccinelle input set in paper 3.1.
     */
    std::vector<std::string> files;

    /**
     * Whether the library consumes external (network) input. The
     * compartment holding a net-facing library is the attacker-facing
     * root the boundary auditor computes reachability from.
     */
    bool netFacing = false;

    /**
     * Registered shared variables: globals the port explicitly
     * declared shared (the counted shared vars of Table 1). The
     * escape scanner classifies these as registered-shared; mutable
     * globals that are neither registered nor DSS-annotated escape.
     */
    std::set<std::string> sharedData;

    /** @name Porting metadata (Table 1). @{ */
    int sharedVars = 0;
    int patchAdded = 0;
    int patchRemoved = 0;
    /** @} */
};

/**
 * Registry of every library available to the toolchain.
 */
class LibraryRegistry
{
  public:
    /** Register a library. Duplicate names are a fatal user error. */
    void add(LibraryInfo info);

    /** Look up a library; fatal if unknown. */
    const LibraryInfo &get(const std::string &name) const;

    bool contains(const std::string &name) const;

    /** All names, registration order. */
    const std::vector<std::string> &names() const { return order; }

    /** Whether callee is a legal entry point of lib. */
    bool isEntryPoint(const std::string &lib,
                      const std::string &fn) const;

    /**
     * The standard FlexOS registry: the kernel micro-libraries this
     * repository implements plus the ported applications, with entry
     * points, call edges and the porting metadata from the paper's
     * Table 1.
     */
    static LibraryRegistry standard();

  private:
    std::map<std::string, LibraryInfo> libs;
    std::vector<std::string> order;
};

} // namespace flexos

#endif // FLEXOS_CORE_LIBRARY_HH
