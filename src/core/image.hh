/**
 * @file
 * The FlexOS image: the runtime instantiation of one safety
 * configuration over the simulated machine.
 *
 * Built by the Toolchain from a SafetyConfig + LibraryRegistry, the
 * image owns the compartments (keys, heaps, static sections), the
 * shared heap, the DSS stack pool, one isolation backend per mechanism
 * present in the configuration, and the gate dispatch that library
 * code calls through FLEXOS gates. Every crossing is enforced under
 * the (from, to) cell of the image's GateMatrix — by default the
 * callee compartment's mechanism at full strength, overridable per
 * boundary through the config's `boundaries:` section — so a single
 * image can mix mechanisms *and* run different MPK gate flavours on
 * different boundaries simultaneously.
 */

#ifndef FLEXOS_CORE_IMAGE_HH
#define FLEXOS_CORE_IMAGE_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "core/backend.hh"
#include "core/config.hh"
#include "core/hardening.hh"
#include "core/library.hh"
#include "uksched/scheduler.hh"
#include "ukalloc/tlsf.hh"

namespace flexos {

/** Shared-domain protection key (the last MPK key, paper 4.1). */
inline constexpr ProtKey sharedProtKey = 15;

/**
 * Bits of per-compartment layout-randomization entropy a mechanism's
 * loader grants (the linker script's ASLR slide). The numbers model
 * how much of the address space each mechanism can rearrange: MPK
 * compartments share one address space (section-level slide only),
 * EPT compartments own a whole guest physical map, CHERI bounds let
 * the loader scatter within the capability-addressable range, and
 * the unisolated baselines slide everything or nothing together.
 */
unsigned layoutEntropyBits(Mechanism m);

/**
 * Raised by Image::gate() when the (from, to) boundary carries
 * `deny: true`: the configuration declares the edge unreachable
 * (least-privilege call graph). Statically-known call edges are
 * rejected at image build instead; this error covers dynamic
 * crossings the static graph does not see. Counted in `gate.denied`.
 */
class DeniedCrossing : public std::runtime_error
{
  public:
    DeniedCrossing(const std::string &from, const std::string &to)
        : std::runtime_error("denied crossing " + from + " -> " + to),
          from(from), to(to)
    {
    }

    std::string from;
    std::string to;
};

/**
 * Raised by Image::gate() when a rate-limited boundary overflows its
 * token budget and the policy's overflow action is `fail`. Counted in
 * `gate.throttled` (the `stall` action bumps the same counter but
 * back-pressures the caller instead of raising).
 */
class ThrottledCrossing : public std::runtime_error
{
  public:
    ThrottledCrossing(const std::string &from, const std::string &to)
        : std::runtime_error("throttled crossing " + from + " -> " + to),
          from(from), to(to)
    {
    }

    std::string from;
    std::string to;
};

/** RAII guard setting the machine work multiplier for a scope. */
class WorkMultGuard
{
  public:
    WorkMultGuard(Machine &m, double mult)
        : mach(m), saved(m.workMultiplier)
    {
        mach.workMultiplier = mult;
    }

    ~WorkMultGuard() { mach.workMultiplier = saved; }

    WorkMultGuard(const WorkMultGuard &) = delete;
    WorkMultGuard &operator=(const WorkMultGuard &) = delete;

  private:
    Machine &mach;
    double saved;
};

/**
 * A compartment instance: protection key, private heap + allocator,
 * static data section, hardening state.
 */
class Compartment
{
  public:
    int id = 0;
    ProtKey key = 0;
    /**
     * Key virtualization (EPT): the compartment's memory is modelled
     * as unmapped outside its VM rather than key-tagged, so it holds
     * no protection key and doesn't count against the key budget.
     */
    bool vmPrivate = false;
    CompartmentSpec spec;

    /** Combined hardening work multiplier (>= 1.0). */
    double hardenMultiplier = 1.0;

    /**
     * Layout randomization (linker script): the page-aligned ASLR
     * slide this compartment's sections load at, drawn deterministically
     * from the compartment name so runs stay reproducible, masked to
     * the mechanism's entropy budget. An info-leak that reads a code
     * pointer out of a shared stack defeats all `layoutEntropyBits`
     * bits at once — the measurement the adversary suite reports.
     */
    std::uint64_t layoutSlide = 0;
    unsigned layoutEntropyBits = 0;

    /** Hardening runtime handed to library code in this compartment. */
    HardeningContext hardening;

    /** The PKRU value threads use while executing here. */
    Pkru domain;

    /** Private heap allocator ("one allocator per compartment", 4.5);
     *  points at the KASan wrapper when kasan/asan is enabled. */
    Allocator *heap = nullptr;

    /** Arena backing the private heap (registered in the region map). */
    std::vector<char> heapArena;
    /** Per-compartment static data section (.data/.bss analogue). */
    std::vector<char> dataSection;

    std::unique_ptr<TlsfAllocator> rawHeap;
    std::unique_ptr<KasanHeap> kasanHeap;
    CfiRegistry cfiRegistry;
};

/**
 * Per-(thread, compartment) simulated call stack with its DSS upper
 * half (paper 4.1, Figure 4): the stack is doubled; [0, stackBytes) is
 * the private stack, [stackBytes, 2*stackBytes) is the shadow area in
 * the shared domain; shadow(x) = x + stackBytes.
 */
struct SimStack
{
    static constexpr std::size_t stackBytes = 8 * 4096; // 8 pages (6.5)

    std::unique_ptr<char[]> mem; ///< 2 * stackBytes
    std::size_t top = 0;         ///< bump offset within the private half
    /**
     * The sharing strategy this stack was laid out under — a
     * per-boundary policy since the gate matrix carries
     * `stack_sharing`; recorded so teardown removes the right regions
     * and DssFrame follows the layout the stack actually has.
     */
    StackSharing sharing = StackSharing::Dss;
};

/**
 * The runtime image.
 */
class Image
{
  public:
    Image(Machine &m, Scheduler &s, SafetyConfig cfg,
          const LibraryRegistry &reg);
    ~Image();

    Image(const Image &) = delete;
    Image &operator=(const Image &) = delete;

    /** Bring the image up: regions, domains, backend, hooks. */
    void boot();

    /** Orderly teardown (also run by the destructor). */
    void shutdown();

    /** @name Topology. @{ */
    std::size_t compartmentCount() const { return comps.size(); }
    Compartment &compartmentAt(std::size_t idx);
    /** Compartment index a library lives in (caller-relative for
     *  replicated TCB libraries under EPT). */
    int compartmentIndexOf(const std::string &lib) const;
    Compartment &compartmentOf(const std::string &lib);
    bool sameCompartment(const std::string &a, const std::string &b) const;
    /** @} */

    /**
     * The call gate. Executes fn as entry point fnName of calleeLib,
     * performing a domain transition when the caller's current
     * compartment differs from the callee's. Same-compartment calls
     * cost exactly a function call — "you only pay for what you get".
     */
    template <typename F>
    auto
    gate(const std::string &calleeLib, const char *fnName, F &&fn)
        -> std::invoke_result_t<F>
    {
        using R = std::invoke_result_t<F>;
        int from = currentCompartment();
        int to = resolveCallee(calleeLib, from);
        double mult = libMultiplier(calleeLib);
        if (from == to) {
            // Same compartment: the gate degenerates to a plain call
            // (paper Figure 3, step 3': zero overhead). Only the
            // callee's own hardening instrumentation applies.
            mach.consume(mach.timing.functionCall);
            mach.bump("gate.direct");
            WorkMultGuard guard(mach, mult);
            return fn();
        }
        // A pending quiesced matrix swap wins over NEW crossings:
        // yielding here — before any policy reference is taken — lets
        // the swapper flip at the next drained instant instead of
        // being starved by a crossing storm. Charge-free when no swap
        // is pending, so static images are untouched.
        if (swapWaiters > 0 && sched.current())
            yieldForSwap();
        // Per-boundary dispatch: the (from, to) cell of the gate
        // matrix decides how this crossing is enforced — mechanism,
        // MPK flavour, entry validation, return-side scrubbing, and
        // the least-privilege rules (deny, crossing-rate budget)
        // checked before any gate cost is charged.
        const GatePolicy &pol = policyFor(from, to);
        enforceBoundary(from, to, pol);
        GatePolicy scratch;
        const GatePolicy &eff =
            applyElision(from, to, pol, scratch);
        checkEntry(calleeLib, fnName, from, to, pol);
        noteCoreMigration(to);
        IsolationBackend &be = backendOf(pol.mech);
        // `pol`/`eff` reference cells of the live matrix; the scope
        // keeps swapGateMatrix from replacing it while the crossing
        // (which may suspend inside an EPT ring RPC) is in flight.
        CrossingScope xing(*this);
        if constexpr (std::is_void_v<R>) {
            be.crossCall(*this, from, to, eff, calleeLib, fnName, mult,
                         [&] { fn(); });
            noteReturn(pol);
        } else {
            std::optional<R> result;
            be.crossCall(*this, from, to, eff, calleeLib, fnName, mult,
                         [&] { result.emplace(fn()); });
            noteReturn(pol);
            return std::move(*result);
        }
    }

    /**
     * Vectored gate: run a sequence of calls to one entry point of
     * calleeLib through batched crossings of the boundary's `batch:`
     * width — each chunk pays ONE backend transition (one EPT
     * doorbell, one MPK/CHERI entry/return leg) plus a per-slot cost,
     * while deny/rate enforcement is still debited per logical call.
     * `batch: 1` boundaries (and same-compartment calls) degrade to
     * the plain sequential gate, vcycle-identical by construction.
     */
    void gateBatch(const std::string &calleeLib, const char *fnName,
                   const std::vector<std::function<void()>> &bodies);

    /**
     * Deferred vectored gate: queue one call on the calling thread's
     * pending batch for the boundary instead of crossing immediately.
     * The batch flushes when `batch:` calls have accumulated, when a
     * deferred call targets a different library/entry point, on
     * flushBatch(), and — via the scheduler's pre-suspension hook —
     * whenever the thread yields, blocks or sleeps, so a thread can
     * never migrate cores with queued calls (they execute, and are
     * charged, on the core that queued them). On `batch: 1`
     * boundaries the call crosses immediately through the plain gate.
     * Callers must not rely on results before the flush.
     */
    void gateDeferred(const std::string &calleeLib, const char *fnName,
                      std::function<void()> body);

    /** Flush the calling thread's pending deferred batch, if any. */
    void flushBatch();

    /** Flush one thread's pending deferred batch (suspension hook). */
    void flushBatchFor(int threadId);

    /**
     * Effective hardening work multiplier of a library: the union of
     * its compartment's hardening and its own per-component set.
     */
    double libMultiplier(const std::string &lib) const;

    /** Spawn a thread whose execution starts in lib's compartment. */
    Thread *spawnIn(const std::string &lib, std::string name,
                    std::function<void()> entry);

    /** @name Data sharing (paper 3.1/4.1). @{ */
    /** Allocate from the shared communication heap. */
    void *sharedAlloc(std::size_t n);
    void sharedFree(void *p);
    Allocator &sharedHeap() { return *sharedHeapAlloc; }
    /** Private heap of a library's compartment. */
    Allocator &heapOf(const std::string &lib);
    /** @} */

    /** @name Checked accesses (MMU + KASan instrumentation point). @{ */
    template <typename T>
    T
    load(const T *p)
    {
        mach.checkAccess(p, sizeof(T), AccessType::Read);
        currentHardening().checkAccess(p, sizeof(T));
        return *p;
    }

    template <typename T>
    void
    store(T *p, const T &v)
    {
        mach.checkAccess(p, sizeof(T), AccessType::Write);
        currentHardening().checkAccess(p, sizeof(T));
        *p = v;
    }
    /** @} */

    /** Compartment the calling thread currently executes in. */
    int currentCompartment() const;

    /** Hardening context of the current compartment. */
    const HardeningContext &currentHardening() const;

    /**
     * The per-(thread, compartment) simulated stack, lazily built
     * under the given sharing strategy (the crossing boundary's
     * resolved `stack_sharing`). An already-built stack keeps the
     * layout of its first crossing.
     */
    SimStack &simStackFor(int threadId, int comp, StackSharing sharing);

    /** Convenience overload: the compartment's own resolved strategy. */
    SimStack &
    simStackFor(int threadId, int comp)
    {
        return simStackFor(threadId, comp, stackSharingFor(comp));
    }

    /**
     * The shared-stack strategy in force for frames opened while
     * executing in a compartment with no crossing context: the
     * matrix's (comp, comp) cell, which wildcard rules naming the
     * compartment on either side reach.
     */
    StackSharing
    stackSharingFor(int comp) const
    {
        return gates.at(comp, comp).stackSharing;
    }

    /**
     * The strategy a DssFrame opened by (thread, comp) must follow:
     * the layout of the thread's existing stack in the compartment
     * (created by the crossing that entered it), falling back to the
     * compartment's own resolved strategy.
     */
    StackSharing
    frameStrategyFor(int threadId, int comp) const
    {
        auto it = simStacks.find({threadId, comp});
        if (it != simStacks.end())
            return it->second.sharing;
        return stackSharingFor(comp);
    }

    /** Generated linker-script analogue describing the memory layout. */
    std::string linkerScript() const;

    /** Gate-crossing counters per (from, to) pair. */
    const std::map<std::pair<int, int>, std::uint64_t> &
    gateCrossings() const
    {
        return crossings;
    }

    /** One (from, to) boundary's traffic, named by its policy. */
    struct BoundaryStat
    {
        std::string from;   ///< caller compartment name
        std::string to;     ///< callee compartment name
        std::string policy; ///< resolved GatePolicy::name()
        std::uint64_t count = 0;
    };

    /**
     * The per-(from, to) crossing ledger joined with the gate matrix:
     * every boundary that carried traffic, labelled with the policy
     * that enforced it. Map key is the (from, to) index pair.
     */
    std::map<std::pair<int, int>, BoundaryStat> boundaryStats() const;

    void
    noteCrossing(int from, int to)
    {
        ++crossings[{from, to}];
    }

    /**
     * SMP crossing accounting: when a compartment was last entered
     * from a different core, its hot state (private stacks, heap
     * metadata, gate scratch) migrates to the entering core's caches —
     * charged as `crossCoreMigration` and counted in `gate.crossCore`.
     */
    void
    noteCoreMigration(int to)
    {
        int coreNow = mach.activeCore();
        int &lastCore = compLastCore[static_cast<std::size_t>(to)];
        if (lastCore >= 0 && lastCore != coreNow) {
            mach.consume(mach.timing.crossCoreMigration);
            mach.bump("gate.crossCore");
        }
        lastCore = coreNow;
    }

    /**
     * Return-leg policy work: `validate_return` boundaries re-probe
     * the caller's export table on the way back (the symmetric check
     * to `validate`), charged only when the callee returned normally.
     */
    void
    noteReturn(const GatePolicy &pol)
    {
        if (pol.validateReturn) {
            mach.consume(mach.timing.entryValidate);
            mach.bump("gate.validate.return");
        }
    }

    /** The resolved policy of a (from, to) boundary. */
    const GatePolicy &
    policyFor(int from, int to) const
    {
        return gates.at(from, to);
    }

    /** The full policy matrix in force. */
    const GateMatrix &gateMatrix() const { return gates; }

    /** @name Runtime policy swaps (the controller's apply path). @{ */
    /**
     * Replace the live gate matrix through a quiesced epoch flip: the
     * caller's own pending deferred batch is flushed, the swap waits
     * until no thread sits inside a backend transit (their gate frames
     * reference cells of the matrix being replaced), then the matrix
     * flips at one instant, changed-cell token buckets re-prime,
     * every core acknowledges the epoch, and each backend's
     * policyChanged() hook runs. `deny` edges and the compartment
     * topology cannot change — only gate knobs do — so the swap never
     * invalidates region or backend state.
     *
     * A policy-identical `next` is a charge- and counter-free no-op
     * (the regression pin that a no-op swap is bit-identical to no
     * swap), returning false. Effective swaps bump `matrix.swaps` and
     * `matrix.epoch` and return true. Must not be called from inside
     * a gated crossing (panics); callable from a fiber or from the
     * driver (the latter runs the scheduler to drain crossings).
     */
    bool swapGateMatrix(GateMatrix next);

    /** Crossings currently inside a backend transit (tests). */
    int activeCrossings() const { return activeCrossings_; }
    /** @} */

    /** @name Windowed statistics (the controller's sample path). @{ */
    /** A point-in-time copy of the machine's counters. */
    using StatsSnapshot = std::map<std::string, std::uint64_t>;

    /**
     * Snapshot every machine counter. Counters are monotonic totals;
     * rate logic (the controller, epoch tests) must difference two
     * snapshots with statsDelta() instead of reading totals — using
     * totals double-counts all history before the window.
     */
    StatsSnapshot snapshotStats() const;

    /**
     * Per-key difference now - before, keeping only keys that moved.
     * Keys absent from `before` count from zero.
     */
    static StatsSnapshot statsDelta(const StatsSnapshot &before,
                                    const StatsSnapshot &now);
    /** @} */

    Machine &machine() { return mach; }
    Scheduler &scheduler() { return sched; }
    const SafetyConfig &config() const { return cfg; }
    const LibraryRegistry &registry() const { return reg; }

    /** @name Per-boundary backends. @{ */
    /** The backend enforcing a compartment's boundary. */
    IsolationBackend &backendFor(int comp) const;
    /** The instantiated backend for a mechanism (fatal if absent). */
    IsolationBackend &backendOf(Mechanism m) const;
    /** One backend per distinct mechanism, first-appearance order. */
    std::size_t backendCount() const { return backends.size(); }
    /** Joined backend names, e.g. "intel-mpk(dss)+vm-ept". */
    std::string backendNames() const;
    /** @} */

    /** Drop a finished thread's simulated stacks and their regions. */
    void reapSimStacks(int threadId);

  private:
    friend class Toolchain;

    int resolveCallee(const std::string &lib, int from) const;
    /**
     * Entry-point validation of one crossing: a gate aimed at a
     * non-exported symbol (a ROP-style jump into the middle of the
     * callee) raises CfiViolation, witnessed in `gate.validate.reject`
     * and the per-edge `gate.validate.reject.<from>-><to>` counter so
     * the adversary scorecard can pin rejections to the attacked edge.
     */
    void checkEntry(const std::string &lib, const char *fnName, int from,
                    int to, const GatePolicy &pol) const;
    /**
     * Least-privilege enforcement of one crossing: raises
     * DeniedCrossing on a denied edge, and debits the boundary's
     * token bucket on a rate-limited one (stalling the virtual clock
     * or raising ThrottledCrossing on overflow, per the policy).
     */
    void enforceBoundary(int from, int to, const GatePolicy &pol);
    void rejectDeniedStaticEdges() const;
    void registerRegions();
    void unregisterRegions();

    /**
     * Elision streak accounting + the entry-validate leg: records the
     * calling thread's (from, to) crossing, and when the previous
     * crossing was this same boundary and the policy elides legs,
     * returns a policy copy (in `scratch`) with the elided legs
     * dropped (`gate.elided.validate` / `gate.elided.scrub`). The
     * validate charge is made here either way; with `elide: none`
     * (the default) the returned policy is `pol` itself and the
     * charges are exactly the pre-batching gate's.
     */
    const GatePolicy &applyElision(int from, int to,
                                   const GatePolicy &pol,
                                   GatePolicy &scratch);

    /**
     * Whether the calling thread's previous crossing was this same
     * boundary; records (from, to) either way so any intervening
     * crossing resets every other boundary's streak. Charge-free.
     */
    bool noteBoundaryStreak(int from, int to);

    /** Token bucket of one rate-limited boundary (vcycle refill). */
    struct GateBucket
    {
        double tokens = 0;
        Cycles lastRefill = 0;
        bool primed = false; ///< bucket starts full on first crossing
    };

    /**
     * RAII depth of crossings inside backend transits: swapGateMatrix
     * quiesces on the global count (a crossing blocked in an EPT ring
     * holds references into the live matrix), and the per-thread depth
     * catches a swap attempted from inside a gated body.
     */
    struct CrossingScope
    {
        explicit CrossingScope(Image &i)
            : img(i),
              tid(i.sched.current() ? i.sched.current()->id() : -1)
        {
            ++img.activeCrossings_;
            ++img.crossingDepth[tid];
        }

        ~CrossingScope()
        {
            auto it = img.crossingDepth.find(tid);
            if (--it->second == 0)
                img.crossingDepth.erase(it);
            if (--img.activeCrossings_ == 0 && img.swapWaiters > 0)
                img.quiesceWait.wakeAll();
        }

        CrossingScope(const CrossingScope &) = delete;
        CrossingScope &operator=(const CrossingScope &) = delete;

        Image &img;
        int tid;
    };

    /** The gate()-side half of the swap barrier (out of the header's
     *  hot path; defined with swapGateMatrix). */
    void yieldForSwap();

    /** Per-core epoch acknowledgement after a matrix flip. */
    void ackCoresAfterSwap();

    Machine &mach;
    Scheduler &sched;
    SafetyConfig cfg;
    const LibraryRegistry &reg;
    /** Resolved (from, to) gate-policy matrix. */
    GateMatrix gates;
    /** Crossings currently inside a backend transit (all threads). */
    int activeCrossings_ = 0;
    /** Per-thread crossing depth (self-swap detection). */
    std::map<int, int> crossingDepth;
    /** swapGateMatrix callers blocked on the quiesce barrier. */
    int swapWaiters = 0;
    /** Woken when the last in-flight crossing drains. */
    WaitQueue quiesceWait;

    std::vector<std::unique_ptr<Compartment>> comps;
    std::map<std::string, int> libToComp;
    /** One backend per distinct mechanism in the config. */
    std::vector<std::unique_ptr<IsolationBackend>> backends;
    /** Compartment index -> its mechanism's backend. */
    std::vector<IsolationBackend *> compBackends;
    /** Scheduler thread-exit listener id (sim-stack reaping). */
    int threadExitListener = -1;

    std::vector<char> sharedArena;
    std::unique_ptr<TlsfAllocator> sharedHeapAlloc;

    std::map<std::string, double> libMults;
    /** Row-major [from * n + to] buckets for rate-limited boundaries. */
    std::vector<GateBucket> gateBuckets;
    /** Core each compartment last executed on (-1 = never entered). */
    std::vector<int> compLastCore;
    /** Per-thread (from, to) of the last crossing (`elide:` streaks). */
    std::map<int, std::pair<int, int>> lastBoundary;

    /** One thread's queued deferred calls (gateDeferred). */
    struct PendingBatch
    {
        std::string lib;
        const char *fn = nullptr;
        std::vector<std::function<void()>> bodies;
    };
    std::map<int, PendingBatch> pendingBatches;
    /** Scheduler pre-suspension hook installed (batch flushing). */
    bool preSuspendHooked = false;
    std::map<std::pair<int, int>, SimStack> simStacks;
    std::map<std::pair<int, int>, std::uint64_t> crossings;
    std::vector<const void *> registeredRegions;
    bool booted = false;
};

} // namespace flexos

#endif // FLEXOS_CORE_IMAGE_HH
