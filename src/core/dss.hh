/**
 * @file
 * Data Shadow Stacks (paper 4.1, Figure 4).
 *
 * Stack allocations are cheap because the compiler does the bookkeeping;
 * the DSS reuses that bookkeeping for *shared* stack variables: thread
 * stacks are doubled, the upper half lives in the shared domain, and
 * the shadow of variable x is simply &x + STACK_SIZE. The toolchain
 * rewrites references to shared stack variables into shadow references.
 *
 * A DssFrame is the runtime analogue of one function's stack frame
 * after that rewrite. Its allocation strategy follows the StackSharing
 * resolved for the boundary that entered the compartment (the gate
 * matrix's per-(from, to) `stack_sharing` policy; the global config
 * key is just the `'*' -> '*'` default):
 *  - Dss:         bump the private stack; shadow = ptr + stackBytes.
 *  - SharedStack: bump the (entirely shared) stack; shadow = ptr.
 *  - Heap:        one shared-heap allocation per variable (the costly
 *                 conversion existing works use; Figure 11a).
 */

#ifndef FLEXOS_CORE_DSS_HH
#define FLEXOS_CORE_DSS_HH

#include <cstdint>
#include <vector>

#include "core/image.hh"

namespace flexos {

/**
 * One function frame holding shared stack variables.
 */
class DssFrame
{
  public:
    /** Open a frame on the calling thread's compartment stack. */
    explicit DssFrame(Image &img);

    /** Close the frame; verifies the canary under stack-protector. */
    ~DssFrame() noexcept(false);

    DssFrame(const DssFrame &) = delete;
    DssFrame &operator=(const DssFrame &) = delete;

    /** Allocate one shared variable of n bytes. */
    void *alloc(std::size_t n);

    /** Typed variable allocation. */
    template <typename T>
    T *
    var()
    {
        return static_cast<T *>(alloc(sizeof(T)));
    }

    /**
     * The shadow of a frame variable: the address library code in other
     * compartments uses (&x + STACK_SIZE under DSS).
     */
    template <typename T>
    T *
    shadow(T *priv) const
    {
        return reinterpret_cast<T *>(shadowOf(priv));
    }

    /** Validate the stack-protector canary explicitly. */
    void checkCanary() const;

  private:
    void *shadowOf(void *priv) const;

    static constexpr std::uint64_t canaryValue = 0xdead60a7cafef00dull;

    Image &img;
    StackSharing strategy;
    SimStack *stack = nullptr; ///< null under Heap strategy
    std::size_t savedTop = 0;
    std::uint64_t *canary = nullptr;
    bool protectorOn = false;
    std::vector<void *> heapVars; ///< Heap strategy allocations
};

} // namespace flexos

#endif // FLEXOS_CORE_DSS_HH
