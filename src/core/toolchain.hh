/**
 * @file
 * The FlexOS toolchain (paper 3.1, Figure 3): validates a safety
 * configuration, performs the build-time "source transformations" —
 * gate instantiation, shared-data strategy instantiation, linker-script
 * generation — and produces a runnable Image.
 *
 * In the paper the transformations are Coccinelle semantic patches over
 * C sources; here they materialize as a gate plan + memory layout that
 * the Image executes, plus a human-readable transformation report that
 * plays the role of the inspectable rewritten sources.
 */

#ifndef FLEXOS_CORE_TOOLCHAIN_HH
#define FLEXOS_CORE_TOOLCHAIN_HH

#include <memory>
#include <string>
#include <vector>

#include "core/image.hh"

namespace flexos {

/** What the build step did — the inspectable transformation record. */
struct BuildReport
{
    /** Instantiated backends, joined (e.g. "intel-mpk(dss)+vm-ept"). */
    std::string backendName;
    std::string linkerScript;
    /** One line per rewritten call site / annotation. */
    std::vector<std::string> transformations;
    int gatesInserted = 0;
    int annotationsReplaced = 0;
};

/**
 * The build toolchain.
 */
class Toolchain
{
  public:
    explicit Toolchain(const LibraryRegistry &reg) : reg(reg) {}

    /**
     * Check a configuration for user errors. Throws FatalError on:
     * missing/duplicate default compartment, unknown libraries or
     * compartments, double library assignment, MPK key exhaustion
     * (counting only key-consuming compartments — EPT compartments
     * are VM-private and keyless), boundary rules naming unknown
     * compartments, `servers:` on non-EPT compartments, or TCB
     * libraries placed outside the trusted compartment when any
     * compartment's mechanism does not replicate the kernel.
     * Mixed-mechanism configurations are legal: each (from, to)
     * boundary is enforced under its GateMatrix policy. Matrix
     * resolution also rejects equal-specificity rule conflicts;
     * `deny:` rules covering statically-needed call edges are
     * rejected at image build (Image's constructor), which build()
     * below reaches — `tools/config_lint` warns about them earlier.
     */
    void validate(const SafetyConfig &cfg) const;

    /**
     * Validate, transform and boot an image for the configuration.
     * The BuildReport for the last build is kept on the toolchain.
     */
    std::unique_ptr<Image> build(Machine &m, Scheduler &s,
                                 const SafetyConfig &cfg);

    const BuildReport &report() const { return lastReport; }

    /** The library registry the toolchain builds against (the same
     *  registry static analyses must resolve call edges from). */
    const LibraryRegistry &registry() const { return reg; }

  private:
    const LibraryRegistry &reg;
    BuildReport lastReport;
};

} // namespace flexos

#endif // FLEXOS_CORE_TOOLCHAIN_HH
