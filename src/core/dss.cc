#include "core/dss.hh"

#include <exception>

#include "base/logging.hh"

namespace flexos {

DssFrame::DssFrame(Image &image)
    : img(image), strategy(StackSharing::Dss)
{
    protectorOn = img.currentHardening().stackProtector;

    // Stack sharing is a per-boundary policy: follow the layout of
    // the stack the entering crossing built (or the compartment's own
    // resolved strategy when no crossing preceded the frame).
    Thread *t = img.scheduler().current();
    int tid = t ? t->id() : 0;
    int comp = img.currentCompartment();
    strategy = img.frameStrategyFor(tid, comp);

    if (strategy != StackSharing::Heap) {
        stack = &img.simStackFor(tid, comp, strategy);
        savedTop = stack->top;
    }

    if (protectorOn) {
        canary = static_cast<std::uint64_t *>(alloc(sizeof(canaryValue)));
        *canary = canaryValue;
    }
}

DssFrame::~DssFrame() noexcept(false)
{
    bool smashed = protectorOn && canary && *canary != canaryValue;

    for (void *p : heapVars)
        img.sharedFree(p);
    if (stack)
        stack->top = savedTop;

    if (smashed) {
        img.machine().bump("hardening.canarySmashed");
        // Throwing while another exception unwinds would terminate.
        if (std::uncaught_exceptions() == 0)
            throw CanaryViolation("stack smashing detected in DSS frame");
    }
}

void *
DssFrame::alloc(std::size_t n)
{
    auto &m = img.machine();
    if (strategy == StackSharing::Heap) {
        // The conversion existing frameworks apply: every shared stack
        // variable becomes a shared-heap allocation (real allocator
        // cost, one call per variable — paper 6.5).
        void *p = img.sharedAlloc(n);
        fatal_if(!p, "shared heap exhausted");
        heapVars.push_back(p);
        return p;
    }

    // Stack-speed allocation: constant cost, compiler-style bump.
    std::size_t aligned = (n + 15) & ~std::size_t(15);
    panic_if(stack->top + aligned > SimStack::stackBytes,
             "simulated stack overflow");
    void *p = stack->mem.get() + stack->top;
    stack->top += aligned;
    m.consume(m.timing.stackAlloc);
    m.bump("dss.stackAllocs");
    return p;
}

void *
DssFrame::shadowOf(void *priv) const
{
    switch (strategy) {
      case StackSharing::Dss:
        // shadow(x) = &x + STACK_SIZE (Figure 4).
        return static_cast<char *>(priv) + SimStack::stackBytes;
      case StackSharing::SharedStack:
      case StackSharing::Heap:
        // The variable itself is already in shared memory.
        return priv;
    }
    return priv;
}

void
DssFrame::checkCanary() const
{
    if (protectorOn && canary && *canary != canaryValue)
        throw CanaryViolation("stack smashing detected in DSS frame");
}

} // namespace flexos
