/**
 * @file
 * The isolation-backend API (paper 3.2).
 *
 * A backend supplies (1) gate implementations, (2) hooks into core
 * libraries (scheduler thread-creation/switch), (3) its memory-layout
 * recipe (how compartment regions are tagged), and (4) registration into
 * the toolchain. Adding a mechanism means implementing this interface —
 * no redesign of the OS.
 */

#ifndef FLEXOS_CORE_BACKEND_HH
#define FLEXOS_CORE_BACKEND_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"

namespace flexos {

class Image;

/**
 * One isolation mechanism's implementation.
 */
class IsolationBackend
{
  public:
    virtual ~IsolationBackend() = default;

    /** Mechanism this backend implements. */
    virtual Mechanism mechanism() const = 0;

    /** Human-readable name for reports. */
    virtual const char *name() const = 0;

    /**
     * Boot-time hook: tag regions, install scheduler hooks, spawn RPC
     * servers. Called once from Image::boot().
     */
    virtual void boot(Image &img) = 0;

    /** Orderly teardown (stop server threads, remove hooks). */
    virtual void shutdown(Image &img) = 0;

    /**
     * Execute body in compartment 'to' on behalf of the current thread
     * running in compartment 'from' — the instantiated call gate.
     * Charges the gate cost, performs the domain transition, and runs
     * body under calleeWorkMult (the callee component's hardening tax).
     * The resolved (from, to) GatePolicy selects the MPK flavour,
     * caller-side entry validation, and whether the return path scrubs
     * the register set (asymmetric policies like "EPT->MPK returns
     * skip re-validation" drop the return-side scrub).
     */
    virtual void crossCall(Image &img, int from, int to,
                           const GatePolicy &policy,
                           const std::string &calleeLib,
                           const char *fnName, double calleeWorkMult,
                           const std::function<void()> &body) = 0;

    /**
     * Vectored crossing: execute `count` bodies in compartment 'to'
     * through ONE domain transition (`batch: N` boundaries). The
     * default degrades to sequential crossCalls — correct for any
     * backend, no amortization. Backends that can amortize override
     * it: MPK and CHERI pay one entry/return leg plus a per-slot
     * dispatch cost, EPT submits one ring slot and rings one doorbell
     * for the whole vector. Bodies run in order; the policy's
     * validate/scrub legs are charged once per transition, not per
     * body, and an exception from any body aborts the rest of the
     * batch.
     */
    virtual void
    crossCallBatch(Image &img, int from, int to,
                   const GatePolicy &policy,
                   const std::string &calleeLib, const char *fnName,
                   double calleeWorkMult,
                   const std::function<void()> *bodies,
                   std::size_t count)
    {
        for (std::size_t i = 0; i < count; ++i)
            crossCall(img, from, to, policy, calleeLib, fnName,
                      calleeWorkMult, bodies[i]);
    }

    /**
     * Notification that the image's gate matrix changed through a
     * quiesced epoch swap (Image::swapGateMatrix). Called after the
     * flip, outside any crossing, so backends may resize the resources
     * they scale to the policy — the EPT backend shrinks elastic
     * server pools above VMs whose inbound edges became throttled.
     * Default: nothing to adapt.
     */
    virtual void policyChanged(Image &img) { (void)img; }

    /**
     * Whether the mechanism validates entry points on every crossing
     * regardless of CFI hardening (the EPT RPC server does, paper 4.2).
     */
    virtual bool checksEntryPoints() const { return false; }

    /** What became of a forged RPC injected into a backend's ring. */
    enum class ForgedRpcOutcome
    {
        NoRing,   ///< mechanism has no shared ring to forge into
        Rejected, ///< server-side validation refused the slot
        Executed, ///< the body ran in the target compartment (breach)
    };

    /**
     * Adversary hook: inject a forged RPC slot straight into the
     * mechanism's shared transport for compartment 'to' — bypassing
     * every caller-side gate check — as a compromised compartment
     * writing the ring memory would. Backends without a shared ring
     * (MPK, CHERI, the baselines) have nothing to forge: NoRing. The
     * EPT backend enqueues the slot and rings the doorbell; its
     * server-side re-validation decides Rejected vs Executed.
     */
    virtual ForgedRpcOutcome
    injectForgedRpc(Image &img, int to, const std::string &calleeLib,
                    const char *fnName, const std::function<void()> &body)
    {
        (void)img;
        (void)to;
        (void)calleeLib;
        (void)fnName;
        (void)body;
        return ForgedRpcOutcome::NoRing;
    }

    /**
     * Adversary hook: ring a compartment's doorbell with no slot
     * behind it (a replayed/spurious interrupt). Returns true if the
     * mechanism has a doorbell to ring; servers must absorb the wake
     * harmlessly (counted, not crashed).
     */
    virtual bool
    injectSpuriousDoorbell(Image &img, int to)
    {
        (void)img;
        (void)to;
        return false;
    }

    /**
     * Whether the TCB is replicated into every compartment (paper 3.1:
     * backends relying on several systems — VMs — duplicate the TCB so
     * each compartment has a self-contained kernel).
     */
    virtual bool replicatesTcb() const { return false; }
};

/**
 * Instantiate the backend for a mechanism (toolchain registration).
 * Backends are flavour-agnostic: the MPK gate flavour arrives with
 * each crossing's GatePolicy, so one backend instance serves light and
 * DSS boundaries simultaneously.
 */
std::unique_ptr<IsolationBackend> makeBackend(Mechanism m);

} // namespace flexos

#endif // FLEXOS_CORE_BACKEND_HH
