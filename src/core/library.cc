#include "core/library.hh"

#include "base/logging.hh"

namespace flexos {

void
LibraryRegistry::add(LibraryInfo info)
{
    fatal_if(libs.count(info.name), "library '", info.name,
             "' registered twice");
    order.push_back(info.name);
    libs.emplace(info.name, std::move(info));
}

const LibraryInfo &
LibraryRegistry::get(const std::string &name) const
{
    auto it = libs.find(name);
    fatal_if(it == libs.end(), "unknown library '", name, "'");
    return it->second;
}

bool
LibraryRegistry::contains(const std::string &name) const
{
    return libs.count(name) != 0;
}

bool
LibraryRegistry::isEntryPoint(const std::string &lib,
                              const std::string &fn) const
{
    return get(lib).entryPoints.count(fn) != 0;
}

LibraryRegistry
LibraryRegistry::standard()
{
    LibraryRegistry r;

    // --- Trusted computing base (paper 3.3) -----------------------------
    r.add(LibraryInfo{
        .name = "ukboot",
        .tcb = true,
        .entryPoints = {"boot"},
        .callees = {"ukalloc", "uksched"},
    });
    r.add(LibraryInfo{
        .name = "ukalloc", // memory manager
        .tcb = true,
        .entryPoints = {"malloc", "free", "calloc", "realloc"},
        .callees = {},
        .files = {"src/ukalloc/allocator.cc", "src/ukalloc/tlsf.cc",
                  "src/ukalloc/lea.cc"},
    });
    // The low-level context-switch primitive is TCB (paper 3.3), but the
    // uksched micro-library itself (run queues, sleeping, sync) is an
    // isolatable component — Figure 6 places it in its own compartment.
    r.add(LibraryInfo{
        .name = "uksched",
        .tcb = false,
        .entryPoints = {"yield", "sleep", "thread_create", "thread_join",
                        "mutex_lock", "mutex_unlock", "sem_post",
                        "sem_wait"},
        .callees = {"ukalloc", "uktime"},
        .files = {"src/uksched/scheduler.cc"},
        .sharedData = {"activeScheduler", "hostStackBottom",
                       "hostStackSize", "schedFakeStack"},
        .sharedVars = 5,
        .patchAdded = 48,
        .patchRemoved = 8,
    });

    // --- Kernel micro-libraries -----------------------------------------
    r.add(LibraryInfo{
        .name = "uktime",
        .entryPoints = {"clock_gettime", "nanosleep", "timer_arm",
                        "timer_cancel"},
        .callees = {},
        .files = {"src/uktime/clock.hh"},
        .sharedVars = 0,
        .patchAdded = 10,
        .patchRemoved = 9,
    });
    r.add(LibraryInfo{
        .name = "lwip",
        .entryPoints = {"socket", "bind", "listen", "accept", "connect",
                        "send", "recv", "close", "poll", "rx_burst",
                        "timer_poll"},
        .callees = {"ukalloc", "uksched", "uktime"},
        .files = {"src/net/tcp.cc", "src/net/nic.cc",
                  "src/net/proto.cc"},
        .netFacing = true,
        .sharedVars = 23,
        .patchAdded = 542,
        .patchRemoved = 275,
    });
    r.add(LibraryInfo{
        .name = "vfscore", // vfscore + ramfs, ported as one unit (4.4)
        .entryPoints = {"open", "close", "read", "write", "pread",
                        "pwrite", "lseek", "fsync", "ftruncate", "unlink",
                        "mkdir", "rmdir", "stat", "readdir"},
        .callees = {"ukalloc", "uksched"},
        .files = {"src/vfs/vfs.cc", "src/vfs/ramfs.cc"},
        .sharedVars = 12,
        .patchAdded = 148,
        .patchRemoved = 37,
    });
    r.add(LibraryInfo{
        .name = "newlib", // libc facade
        .entryPoints = {"fprintf", "snprintf", "malloc", "free", "memcpy",
                        "strcmp", "socket_call", "fs_call", "time_call"},
        .callees = {"lwip", "vfscore", "uktime", "ukalloc", "uksched"},
        .files = {"src/apps/libc.cc"},
        .sharedVars = 0,
        .patchAdded = 0,
        .patchRemoved = 0,
    });

    // --- Ported applications (Table 1) ----------------------------------
    r.add(LibraryInfo{
        .name = "libredis",
        .entryPoints = {"redis_main", "redis_handle_conn"},
        .callees = {"newlib", "lwip", "uksched"},
        .files = {"src/apps/redis.cc"},
        .sharedVars = 16,
        .patchAdded = 279,
        .patchRemoved = 90,
    });
    r.add(LibraryInfo{
        .name = "libnginx",
        .entryPoints = {"nginx_main", "nginx_handle_conn"},
        .callees = {"newlib", "lwip", "vfscore", "uksched"},
        .files = {"src/apps/http.cc"},
        .sharedVars = 36,
        .patchAdded = 470,
        .patchRemoved = 85,
    });
    r.add(LibraryInfo{
        .name = "libsqlite",
        .entryPoints = {"sqlite_exec", "sqlite_open", "sqlite_close"},
        .callees = {"newlib", "vfscore", "uktime", "uksched"},
        .files = {"src/apps/minisql.cc"},
        .sharedVars = 24,
        .patchAdded = 199,
        .patchRemoved = 145,
    });
    r.add(LibraryInfo{
        .name = "libiperf",
        .entryPoints = {"iperf_server", "iperf_client"},
        .callees = {"newlib", "lwip", "uksched"},
        .files = {"src/apps/iperf.cc"},
        .sharedVars = 4,
        .patchAdded = 15,
        .patchRemoved = 14,
    });
    r.add(LibraryInfo{
        .name = "libopenjpg", // example untrusted parser library (3.0)
        .entryPoints = {"decode_image"},
        .callees = {"newlib"},
        .files = {"src/apps/openjpg.cc"},
        .sharedVars = 2,
        .patchAdded = 31,
        .patchRemoved = 9,
    });

    return r;
}

} // namespace flexos
