#include "core/hardening.hh"

#include <sstream>

#include "base/logging.hh"
#include "machine/timing.hh"

namespace flexos {

KasanHeap::KasanHeap(Allocator &innerAlloc) : inner(innerAlloc)
{
}

KasanHeap::~KasanHeap()
{
    // Return quarantined blocks to the inner allocator so arena-level
    // leak accounting stays exact.
    for (void *q : quarantine) {
        auto addr = reinterpret_cast<std::uintptr_t>(q);
        slots.erase(addr);
        inner.free(static_cast<char *>(q) - redzone);
    }
}

void *
KasanHeap::alloc(std::size_t size)
{
    void *raw = inner.alloc(size + 2 * redzone);
    if (!raw)
        return nullptr;
    void *user = static_cast<char *>(raw) + redzone;
    slots[reinterpret_cast<std::uintptr_t>(user)] = Slot{size, true};

    ++stats_.allocs;
    stats_.liveBytes += size;
    if (stats_.liveBytes > stats_.peakBytes)
        stats_.peakBytes = stats_.liveBytes;
    return user;
}

void
KasanHeap::free(void *p)
{
    if (!p)
        return;
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    auto it = slots.find(addr);
    if (it == slots.end()) {
        ++reportCount;
        throw KasanViolation("invalid free of unknown pointer");
    }
    if (!it->second.live) {
        ++reportCount;
        throw KasanViolation("double free");
    }
    it->second.live = false;
    ++stats_.frees;
    stats_.liveBytes -= it->second.userSize;

    // Quarantine delays reuse so use-after-free is detectable.
    quarantine.push_back(p);
    quarantineBytes += it->second.userSize;
    flushQuarantine();
}

void
KasanHeap::flushQuarantine()
{
    while (quarantineBytes > quarantineLimit && !quarantine.empty()) {
        void *victim = quarantine.front();
        quarantine.pop_front();
        auto addr = reinterpret_cast<std::uintptr_t>(victim);
        auto it = slots.find(addr);
        panic_if(it == slots.end(), "quarantine lost a slot");
        quarantineBytes -= it->second.userSize;
        slots.erase(it);
        inner.free(static_cast<char *>(victim) - redzone);
    }
}

std::size_t
KasanHeap::blockSize(const void *p) const
{
    auto it = slots.find(reinterpret_cast<std::uintptr_t>(
        const_cast<void *>(p)));
    panic_if(it == slots.end(), "blockSize of unknown pointer");
    return it->second.userSize;
}

void
KasanHeap::check(const void *p, std::size_t n) const
{
    auto addr = reinterpret_cast<std::uintptr_t>(p);

    // Find the slot whose user range or redzones could cover addr.
    auto it = slots.upper_bound(addr);
    if (it != slots.begin()) {
        auto prev = std::prev(it);
        std::uintptr_t start = prev->first;
        std::size_t size = prev->second.userSize;
        bool live = prev->second.live;
        if (addr >= start - redzone && addr < start + size + redzone) {
            if (!live) {
                ++reportCount;
                throw KasanViolation("use-after-free");
            }
            if (addr < start || addr + n > start + size) {
                ++reportCount;
                std::ostringstream oss;
                oss << "heap-buffer-overflow: " << n << "-byte access at "
                    << p;
                throw KasanViolation(oss.str());
            }
            return; // fully inside a live allocation: fine
        }
    }
    // Not heap memory we manage: out of KASan's jurisdiction.
}

void
CfiRegistry::registerTarget(const void *fn, const std::string &name)
{
    targets[fn] = name;
}

void
CfiRegistry::checkCall(const void *fn) const
{
    if (!targets.count(fn))
        throw CfiViolation("indirect call to unregistered target");
}

unsigned
hardeningCostPct(Hardening h, const TimingModel &tm)
{
    switch (h) {
      case Hardening::StackProtector:
        return tm.hardenStackProtectorPct;
      case Hardening::Ubsan:
        return tm.hardenUbsanPct;
      case Hardening::Kasan:
        return tm.hardenKasanPct;
      case Hardening::Asan:
        return tm.hardenAsanPct;
      case Hardening::Cfi:
        return tm.hardenCfiPct;
    }
    return 0;
}

double
hardeningMultiplier(const std::vector<Hardening> &set,
                    const TimingModel &tm)
{
    unsigned pct = 0;
    for (Hardening h : set)
        pct += hardeningCostPct(h, tm);
    return 1.0 + static_cast<double>(pct) / 100.0;
}

} // namespace flexos
