#include "core/config.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace flexos {

Mechanism
mechanismFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "none")
        return Mechanism::None;
    if (n == "intel-mpk" || n == "mpk")
        return Mechanism::IntelMpk;
    if (n == "vm-ept" || n == "ept")
        return Mechanism::VmEpt;
    if (n == "cheri")
        return Mechanism::Cheri;
    if (n == "linux-pt")
        return Mechanism::LinuxPt;
    if (n == "sel4-ipc")
        return Mechanism::Sel4Ipc;
    if (n == "cubicle-mpk")
        return Mechanism::CubicleMpk;
    fatal("unknown isolation mechanism '", name, "'");
}

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::None:
        return "none";
      case Mechanism::IntelMpk:
        return "intel-mpk";
      case Mechanism::VmEpt:
        return "vm-ept";
      case Mechanism::Cheri:
        return "cheri";
      case Mechanism::LinuxPt:
        return "linux-pt";
      case Mechanism::Sel4Ipc:
        return "sel4-ipc";
      case Mechanism::CubicleMpk:
        return "cubicle-mpk";
    }
    return "?";
}

bool
mechanismConsumesProtKey(Mechanism m)
{
    // Only EPT compartments live behind their VM's second-level page
    // tables instead of a protection key; every other mechanism's
    // memory is key-tagged in the region model.
    return m != Mechanism::VmEpt;
}

Hardening
hardeningFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "stack-protector" || n == "stackprotector" || n == "sp")
        return Hardening::StackProtector;
    if (n == "ubsan")
        return Hardening::Ubsan;
    if (n == "kasan")
        return Hardening::Kasan;
    if (n == "asan")
        return Hardening::Asan;
    if (n == "cfi")
        return Hardening::Cfi;
    fatal("unknown hardening mechanism '", name, "'");
}

const char *
hardeningName(Hardening h)
{
    switch (h) {
      case Hardening::StackProtector:
        return "stack-protector";
      case Hardening::Ubsan:
        return "ubsan";
      case Hardening::Kasan:
        return "kasan";
      case Hardening::Asan:
        return "asan";
      case Hardening::Cfi:
        return "cfi";
    }
    return "?";
}

namespace {

/** Parse "[a, b, c]" or "a" into items. */
std::vector<std::string>
parseList(const std::string &value)
{
    std::string v = trim(value);
    std::vector<std::string> out;
    if (!v.empty() && v.front() == '[') {
        fatal_if(v.back() != ']', "unterminated list: ", v);
        for (const std::string &item : split(v.substr(1, v.size() - 2), ','))
            if (!trim(item).empty())
                out.push_back(trim(item));
    } else if (!v.empty()) {
        out.push_back(v);
    }
    return out;
}

bool
parseBool(const std::string &value)
{
    std::string v = toLower(trim(value));
    return v == "true" || v == "yes" || v == "1";
}

MpkGateFlavor
flavorFromName(const std::string &value, int lineNo)
{
    std::string v = toLower(trim(value));
    if (v == "light")
        return MpkGateFlavor::Light;
    if (v == "dss" || v == "full")
        return MpkGateFlavor::Dss;
    fatal("config line ", lineNo, ": unknown gate flavour '", value,
          "' (expected light or dss)");
}

/** Strip surrounding single or double quotes ('*' -> *). */
std::string
stripQuotes(const std::string &s)
{
    std::string v = trim(s);
    if (v.size() >= 2 && ((v.front() == '\'' && v.back() == '\'') ||
                          (v.front() == '"' && v.back() == '"')))
        return trim(v.substr(1, v.size() - 2));
    return v;
}

/**
 * Parse a boundary rule: key "from -> to", value "{k: v, ...}".
 * Recognized keys: gate (light|dss), validate (bool), scrub (bool).
 */
BoundaryRule
parseBoundaryRule(const std::string &key, const std::string &value,
                  int lineNo)
{
    auto arrow = key.find("->");
    fatal_if(arrow == std::string::npos, "config line ", lineNo,
             ": boundary rule must be 'from -> to', got '", key, "'");
    BoundaryRule rule;
    rule.from = stripQuotes(key.substr(0, arrow));
    rule.to = stripQuotes(key.substr(arrow + 2));
    fatal_if(rule.from.empty() || rule.to.empty(), "config line ",
             lineNo, ": boundary rule needs both endpoints");

    std::string v = trim(value);
    fatal_if(v.empty() || v.front() != '{' || v.back() != '}',
             "config line ", lineNo,
             ": boundary policy must be an inline map '{...}'");
    for (const std::string &entry : split(v.substr(1, v.size() - 2), ',')) {
        if (trim(entry).empty())
            continue;
        auto colon = entry.find(':');
        fatal_if(colon == std::string::npos, "config line ", lineNo,
                 ": boundary policy entry '", trim(entry),
                 "' is not 'key: value'");
        std::string k = toLower(trim(entry.substr(0, colon)));
        std::string val = trim(entry.substr(colon + 1));
        if (k == "gate")
            rule.flavor = flavorFromName(val, lineNo);
        else if (k == "validate")
            rule.validate = parseBool(val);
        else if (k == "scrub")
            rule.scrub = parseBool(val);
        else
            fatal("config line ", lineNo, ": unknown boundary key '", k,
                  "' (expected gate, validate or scrub)");
    }
    return rule;
}

} // namespace

std::string
GatePolicy::name() const
{
    std::string s = mechanismName(mech);
    if (mech == Mechanism::IntelMpk)
        s += flavor == MpkGateFlavor::Light ? "(light)" : "(dss)";
    if (validateEntry)
        s += "+validate";
    if (!scrubReturn)
        s += "-scrub";
    return s;
}

GateMatrix
GateMatrix::build(const SafetyConfig &cfg)
{
    GateMatrix m;
    m.n = cfg.compartments.size();
    m.cells.resize(m.n * m.n);

    // Default fallback: the callee compartment's mechanism with the
    // full-strength policy (today's callee-side dispatch rule).
    for (std::size_t f = 0; f < m.n; ++f) {
        for (std::size_t t = 0; t < m.n; ++t) {
            GatePolicy &p = m.cells[f * m.n + t];
            p.mech = cfg.compartments[t].mechanism;
        }
    }

    // Layer the rules by specificity; within a layer, file order wins.
    // Callee-side wildcards ('*' -> to) are more specific than
    // caller-side ones (from -> '*'), mirroring callee-side dispatch.
    auto applyLayer = [&](auto matches) {
        for (const BoundaryRule &r : cfg.boundaries) {
            if (!matches(r))
                continue;
            int fi = r.from == "*" ? -1 : cfg.compartmentIndex(r.from);
            int ti = r.to == "*" ? -1 : cfg.compartmentIndex(r.to);
            fatal_if(r.from != "*" && fi < 0, "boundary rule names ",
                     "unknown compartment '", r.from, "'");
            fatal_if(r.to != "*" && ti < 0, "boundary rule names ",
                     "unknown compartment '", r.to, "'");
            for (std::size_t f = 0; f < m.n; ++f) {
                if (fi >= 0 && f != static_cast<std::size_t>(fi))
                    continue;
                for (std::size_t t = 0; t < m.n; ++t) {
                    if (ti >= 0 && t != static_cast<std::size_t>(ti))
                        continue;
                    GatePolicy &p = m.cells[f * m.n + t];
                    if (r.flavor)
                        p.flavor = *r.flavor;
                    if (r.validate)
                        p.validateEntry = *r.validate;
                    if (r.scrub)
                        p.scrubReturn = *r.scrub;
                }
            }
        }
    };
    applyLayer([](const BoundaryRule &r) {
        return r.from == "*" && r.to == "*";
    });
    applyLayer([](const BoundaryRule &r) {
        return r.from != "*" && r.to == "*";
    });
    applyLayer([](const BoundaryRule &r) {
        return r.from == "*" && r.to != "*";
    });
    applyLayer([](const BoundaryRule &r) {
        return r.from != "*" && r.to != "*";
    });
    return m;
}

const GatePolicy &
GateMatrix::at(int from, int to) const
{
    panic_if(from < 0 || to < 0 ||
                 static_cast<std::size_t>(from) >= n ||
                 static_cast<std::size_t>(to) >= n,
             "gate-matrix index out of range");
    return cells[static_cast<std::size_t>(from) * n +
                 static_cast<std::size_t>(to)];
}

SafetyConfig
SafetyConfig::parse(const std::string &text)
{
    SafetyConfig cfg;
    enum class Section { None, Compartments, Libraries, Boundaries }
        section = Section::None;
    CompartmentSpec *current = nullptr;

    int lineNo = 0;
    for (const std::string &rawLine : split(text, '\n')) {
        ++lineNo;
        std::string noComment = rawLine.substr(0, rawLine.find('#'));
        std::string line = trim(noComment);
        if (line.empty())
            continue;

        if (line == "compartments:") {
            section = Section::Compartments;
            current = nullptr;
            continue;
        }
        if (line == "libraries:") {
            section = Section::Libraries;
            current = nullptr;
            continue;
        }
        if (line == "boundaries:") {
            section = Section::Boundaries;
            current = nullptr;
            continue;
        }

        // Top-level scalar options.
        auto colon = line.find(':');
        fatal_if(colon == std::string::npos, "config line ", lineNo,
                 ": expected 'key: value', got '", line, "'");
        bool isItem = line.front() == '-';
        std::string key =
            trim(isItem ? line.substr(1, colon - 1)
                        : line.substr(0, colon));
        std::string value = trim(line.substr(colon + 1));

        if (section == Section::None || (!isItem && current == nullptr &&
                                         section == Section::None)) {
            fatal("config line ", lineNo, ": '", key,
                  "' outside any section");
        }

        // Legacy global knob, accepted anywhere a top-level key could
        // appear: desugars to a ('*','*') flavour rule so old configs
        // keep parsing while the matrix is the only policy source.
        if (!isItem && current == nullptr && key == "mpk_gate") {
            BoundaryRule rule;
            rule.from = "*";
            rule.to = "*";
            rule.flavor = flavorFromName(value, lineNo);
            cfg.boundaries.push_back(std::move(rule));
            continue;
        }

        if (section == Section::Compartments) {
            if (isItem) {
                fatal_if(!value.empty(), "config line ", lineNo,
                         ": compartment item takes no inline value");
                cfg.compartments.push_back(CompartmentSpec{});
                current = &cfg.compartments.back();
                current->name = key;
            } else if (current) {
                if (key == "mechanism") {
                    current->mechanism = mechanismFromName(value);
                } else if (key == "default") {
                    current->isDefault = parseBool(value);
                } else if (key == "hardening") {
                    for (const std::string &h : parseList(value))
                        current->hardening.push_back(
                            hardeningFromName(h));
                } else if (key == "servers") {
                    std::string v = trim(value);
                    bool numeric = !v.empty() && v.size() <= 4;
                    for (char ch : v)
                        numeric = numeric && ch >= '0' && ch <= '9';
                    fatal_if(!numeric, "config line ", lineNo,
                             ": servers must be a small positive "
                             "integer, got '", value, "'");
                    current->servers = std::stoi(v);
                    current->serversExplicit = true;
                    fatal_if(current->servers < 1, "config line ",
                             lineNo, ": servers must be >= 1");
                } else {
                    fatal("config line ", lineNo,
                          ": unknown compartment key '", key, "'");
                }
            } else {
                fatal("config line ", lineNo, ": stray key '", key, "'");
            }
        } else if (section == Section::Boundaries) {
            fatal_if(!isItem, "config line ", lineNo,
                     ": boundaries entries are '- from -> to: {...}'");
            cfg.boundaries.push_back(
                parseBoundaryRule(key, value, lineNo));
        } else if (section == Section::Libraries) {
            if (isItem) {
                fatal_if(value.empty(), "config line ", lineNo,
                         ": library item needs a compartment");
                // Value: "compName" or "compName [harden1, harden2]".
                std::string compName = value;
                auto bracket = value.find('[');
                if (bracket != std::string::npos) {
                    compName = trim(value.substr(0, bracket));
                    for (const std::string &h :
                         parseList(value.substr(bracket)))
                        cfg.libHardening[key].push_back(
                            hardeningFromName(h));
                }
                cfg.libraries.emplace_back(key, compName);
            } else if (key == "stack_sharing") {
                std::string v = toLower(value);
                if (v == "heap")
                    cfg.stackSharing = StackSharing::Heap;
                else if (v == "dss")
                    cfg.stackSharing = StackSharing::Dss;
                else if (v == "shared-stack" || v == "share")
                    cfg.stackSharing = StackSharing::SharedStack;
                else
                    fatal("unknown stack_sharing '", value, "'");
            } else {
                fatal("config line ", lineNo, ": stray key '", key, "'");
            }
        }
    }

    fatal_if(cfg.compartments.empty(), "config declares no compartments");
    return cfg;
}

std::string
SafetyConfig::toText() const
{
    std::ostringstream oss;
    oss << "compartments:\n";
    for (const CompartmentSpec &c : compartments) {
        oss << "- " << c.name << ":\n";
        oss << "    mechanism: " << mechanismName(c.mechanism) << "\n";
        if (c.isDefault)
            oss << "    default: True\n";
        if (c.serversExplicit || c.servers != defaultEptServers)
            oss << "    servers: " << c.servers << "\n";
        if (!c.hardening.empty()) {
            oss << "    hardening: [";
            for (std::size_t i = 0; i < c.hardening.size(); ++i) {
                if (i)
                    oss << ", ";
                oss << hardeningName(c.hardening[i]);
            }
            oss << "]\n";
        }
    }
    oss << "libraries:\n";
    for (const auto &[lib, comp] : libraries) {
        oss << "- " << lib << ": " << comp;
        auto it = libHardening.find(lib);
        if (it != libHardening.end() && !it->second.empty()) {
            oss << " [";
            for (std::size_t i = 0; i < it->second.size(); ++i) {
                if (i)
                    oss << ", ";
                oss << hardeningName(it->second[i]);
            }
            oss << "]";
        }
        oss << "\n";
    }
    if (!boundaries.empty()) {
        auto quoted = [](const std::string &s) {
            return s == "*" ? std::string("'*'") : s;
        };
        oss << "boundaries:\n";
        for (const BoundaryRule &r : boundaries) {
            oss << "- " << quoted(r.from) << " -> " << quoted(r.to)
                << ": {";
            bool first = true;
            auto sep = [&] {
                if (!first)
                    oss << ", ";
                first = false;
            };
            if (r.flavor) {
                sep();
                oss << "gate: "
                    << (*r.flavor == MpkGateFlavor::Light ? "light"
                                                          : "dss");
            }
            if (r.validate) {
                sep();
                oss << "validate: " << (*r.validate ? "true" : "false");
            }
            if (r.scrub) {
                sep();
                oss << "scrub: " << (*r.scrub ? "true" : "false");
            }
            oss << "}\n";
        }
    }
    return oss.str();
}

const CompartmentSpec &
SafetyConfig::compartment(const std::string &name) const
{
    for (const CompartmentSpec &c : compartments)
        if (c.name == name)
            return c;
    fatal("unknown compartment '", name, "'");
}

int
SafetyConfig::compartmentIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < compartments.size(); ++i)
        if (compartments[i].name == name)
            return static_cast<int>(i);
    return -1;
}

std::vector<Mechanism>
SafetyConfig::mechanisms() const
{
    std::vector<Mechanism> out;
    for (const CompartmentSpec &c : compartments) {
        bool seen = false;
        for (Mechanism m : out)
            if (m == c.mechanism)
                seen = true;
        if (!seen)
            out.push_back(c.mechanism);
    }
    return out;
}

std::size_t
SafetyConfig::defaultCompartment() const
{
    for (std::size_t i = 0; i < compartments.size(); ++i)
        if (compartments[i].isDefault)
            return i;
    fatal("no default compartment declared");
}

} // namespace flexos
