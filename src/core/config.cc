#include "core/config.hh"

#include <array>
#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace flexos {

Mechanism
mechanismFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "none")
        return Mechanism::None;
    if (n == "intel-mpk" || n == "mpk")
        return Mechanism::IntelMpk;
    if (n == "vm-ept" || n == "ept")
        return Mechanism::VmEpt;
    if (n == "cheri")
        return Mechanism::Cheri;
    if (n == "linux-pt")
        return Mechanism::LinuxPt;
    if (n == "sel4-ipc")
        return Mechanism::Sel4Ipc;
    if (n == "cubicle-mpk")
        return Mechanism::CubicleMpk;
    fatal("unknown isolation mechanism '", name, "'");
}

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::None:
        return "none";
      case Mechanism::IntelMpk:
        return "intel-mpk";
      case Mechanism::VmEpt:
        return "vm-ept";
      case Mechanism::Cheri:
        return "cheri";
      case Mechanism::LinuxPt:
        return "linux-pt";
      case Mechanism::Sel4Ipc:
        return "sel4-ipc";
      case Mechanism::CubicleMpk:
        return "cubicle-mpk";
    }
    return "?";
}

bool
mechanismConsumesProtKey(Mechanism m)
{
    // Only EPT compartments live behind their VM's second-level page
    // tables instead of a protection key; every other mechanism's
    // memory is key-tagged in the region model.
    return m != Mechanism::VmEpt;
}

StackSharing
stackSharingFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "heap")
        return StackSharing::Heap;
    if (n == "dss")
        return StackSharing::Dss;
    if (n == "shared-stack" || n == "share")
        return StackSharing::SharedStack;
    fatal("unknown stack_sharing '", name,
          "' (expected heap, dss or shared-stack)");
}

const char *
stackSharingName(StackSharing s)
{
    switch (s) {
      case StackSharing::Heap:
        return "heap";
      case StackSharing::Dss:
        return "dss";
      case StackSharing::SharedStack:
        return "shared-stack";
    }
    return "?";
}

const char *
rateOverflowName(RateOverflow o)
{
    return o == RateOverflow::Stall ? "stall" : "fail";
}

NicSteering
steeringFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "rss")
        return NicSteering::Rss;
    if (n == "single")
        return NicSteering::Single;
    fatal("unknown steering '", name, "' (expected rss or single)");
}

const char *
steeringName(NicSteering s)
{
    return s == NicSteering::Rss ? "rss" : "single";
}

GateElide
elideFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "none")
        return GateElide::None;
    if (n == "validate")
        return GateElide::Validate;
    if (n == "scrub")
        return GateElide::Scrub;
    if (n == "both")
        return GateElide::Both;
    fatal("unknown elide '", name,
          "' (expected validate, scrub, both or none)");
}

const char *
elideName(GateElide e)
{
    switch (e) {
      case GateElide::None:
        return "none";
      case GateElide::Validate:
        return "validate";
      case GateElide::Scrub:
        return "scrub";
      case GateElide::Both:
        return "both";
    }
    return "?";
}

Hardening
hardeningFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "stack-protector" || n == "stackprotector" || n == "sp")
        return Hardening::StackProtector;
    if (n == "ubsan")
        return Hardening::Ubsan;
    if (n == "kasan")
        return Hardening::Kasan;
    if (n == "asan")
        return Hardening::Asan;
    if (n == "cfi")
        return Hardening::Cfi;
    fatal("unknown hardening mechanism '", name, "'");
}

const char *
hardeningName(Hardening h)
{
    switch (h) {
      case Hardening::StackProtector:
        return "stack-protector";
      case Hardening::Ubsan:
        return "ubsan";
      case Hardening::Kasan:
        return "kasan";
      case Hardening::Asan:
        return "asan";
      case Hardening::Cfi:
        return "cfi";
    }
    return "?";
}

namespace {

/** Parse "[a, b, c]" or "a" into items. */
std::vector<std::string>
parseList(const std::string &value)
{
    std::string v = trim(value);
    std::vector<std::string> out;
    if (!v.empty() && v.front() == '[') {
        fatal_if(v.back() != ']', "unterminated list: ", v);
        for (const std::string &item : split(v.substr(1, v.size() - 2), ','))
            if (!trim(item).empty())
                out.push_back(trim(item));
    } else if (!v.empty()) {
        out.push_back(v);
    }
    return out;
}

bool
parseBool(const std::string &value)
{
    std::string v = toLower(trim(value));
    return v == "true" || v == "yes" || v == "1";
}

MpkGateFlavor
flavorFromName(const std::string &value, int lineNo)
{
    std::string v = toLower(trim(value));
    if (v == "light")
        return MpkGateFlavor::Light;
    if (v == "dss" || v == "full")
        return MpkGateFlavor::Dss;
    fatal("config line ", lineNo, ": unknown gate flavour '", value,
          "' (expected light or dss)");
}

/** Strip surrounding single or double quotes ('*' -> *). */
std::string
stripQuotes(const std::string &s)
{
    std::string v = trim(s);
    if (v.size() >= 2 && ((v.front() == '\'' && v.back() == '\'') ||
                          (v.front() == '"' && v.back() == '"')))
        return trim(v.substr(1, v.size() - 2));
    return v;
}

/** Parse a positive integer config value (rate, window, servers). */
std::uint64_t
parseCount(const std::string &value, int lineNo, const char *key,
           std::size_t maxDigits)
{
    std::string v = trim(value);
    bool numeric = !v.empty() && v.size() <= maxDigits;
    for (char ch : v)
        numeric = numeric && ch >= '0' && ch <= '9';
    fatal_if(!numeric, "config line ", lineNo, ": ", key,
             " must be a positive integer, got '", value, "'");
    std::uint64_t n = std::stoull(v);
    fatal_if(n < 1, "config line ", lineNo, ": ", key, " must be >= 1");
    return n;
}

/**
 * The keys of one `boundaries:` rule — the table the parser dispatches
 * on AND the source of the generated config reference (key name, value
 * syntax and documentation live here, once).
 */
struct BoundaryKey
{
    const char *key;
    const char *values;
    const char *doc;
    void (*apply)(BoundaryRule &rule, const std::string &value,
                  int lineNo);
};

const BoundaryKey boundaryKeyTable[] = {
    {"gate", "light | dss",
     "MPK gate flavour of the edge: ERIM-style wrpkru pair (light) or "
     "the full register-scrubbing, stack-switching gate (dss). "
     "Default: dss.",
     [](BoundaryRule &r, const std::string &v, int lineNo) {
         r.flavor = flavorFromName(v, lineNo);
     }},
    {"validate", "true | false",
     "Force caller-side entry-point validation on every crossing of "
     "the edge, whatever the mechanism's own rule. Default: false.",
     [](BoundaryRule &r, const std::string &v, int) {
         r.validate = parseBool(v);
     }},
    {"validate_return", "true | false",
     "Validate the return site when the crossing comes back — the "
     "return-path mirror of `validate`, charged on the return leg of "
     "the gate (entry and return are modelled per direction). "
     "Default: false.",
     [](BoundaryRule &r, const std::string &v, int) {
         r.validateReturn = parseBool(v);
     }},
    {"scrub", "true | false",
     "Scrub the register set on the return path (DSS/EPT/CHERI "
     "gates); `false` waives the return-side save/zero on edges whose "
     "returns re-enter trusted state. Default: true.",
     [](BoundaryRule &r, const std::string &v, int) {
         r.scrub = parseBool(v);
     }},
    {"deny", "true | false",
     "Statically forbid the edge (least-privilege call graph): edges "
     "the static call graph needs are rejected at image build, "
     "dynamic crossings raise DeniedCrossing and bump `gate.denied`. "
     "`deny: false` re-allows an edge denied by a less specific rule. "
     "`deny: true` admits no other key in the same rule. "
     "Default: false.",
     [](BoundaryRule &r, const std::string &v, int) {
         r.deny = parseBool(v);
     }},
    {"rate", "<crossings>",
     "Token-bucket crossing budget of the edge: at most this many "
     "crossings per `window` virtual cycles (gate-storm containment). "
     "Overflow bumps `gate.throttled` and acts per `overflow`. "
     "Default: unlimited.",
     [](BoundaryRule &r, const std::string &v, int lineNo) {
         r.rate = parseCount(v, lineNo, "rate", 12);
     }},
    {"window", "<vcycles>",
     "Refill window of the `rate` token bucket, in virtual cycles. "
     "Default: 1000000.",
     [](BoundaryRule &r, const std::string &v, int lineNo) {
         r.window = parseCount(v, lineNo, "window", 12);
     }},
    {"weight", "<factor>",
     "QoS weight of the edge's token bucket: the effective budget is "
     "`rate` x `weight`, biasing boundaries that inherit a shared "
     "wildcard `rate:` instead of starving callers FIFO-less. "
     "Throttled crossings also bump `gate.throttled.<from>`. "
     "Default: 1.",
     [](BoundaryRule &r, const std::string &v, int lineNo) {
         r.weight = parseCount(v, lineNo, "weight", 6);
     }},
    {"overflow", "stall | fail",
     "What a crossing beyond the `rate` budget does: stall the caller "
     "until a token refills (back-pressure) or fail with "
     "ThrottledCrossing. Default: stall.",
     [](BoundaryRule &r, const std::string &v, int lineNo) {
         std::string o = toLower(trim(v));
         if (o == "stall")
             r.overflow = RateOverflow::Stall;
         else if (o == "fail")
             r.overflow = RateOverflow::Fail;
         else
             fatal("config line ", lineNo, ": unknown overflow '", v,
                   "' (expected stall or fail)");
     }},
    {"stack_sharing", "heap | dss | shared-stack",
     "Shared-stack-variable strategy for frames opened behind this "
     "boundary; overrides the image-wide `stack_sharing:` default "
     "(which desugars to a `'*' -> '*'` rule). Default: dss.",
     [](BoundaryRule &r, const std::string &v, int) {
         r.stackSharing = stackSharingFromName(v);
     }},
    {"batch", "<calls>",
     "Vectored-crossing width: up to this many queued calls of the "
     "edge are submitted through one gate (one EPT ring doorbell, one "
     "MPK/CHERI entry/return leg), each extra call paying only a "
     "per-slot dispatch cost. Performance-only — throttle budgets are "
     "still debited per logical call. Default: 1 (no batching).",
     [](BoundaryRule &r, const std::string &v, int lineNo) {
         r.batch = parseCount(v, lineNo, "batch", 6);
     }},
    {"coalesce", "<vcycles>",
     "Doorbell-coalescing window for EPT edges under back-pressure: a "
     "submission finding the ring non-empty within this many vcycles "
     "of the last doorbell skips the doorbell (the ringing server "
     "drains the slot) and bumps `gate.coalesced`. Default: 0 (ring "
     "every time).",
     [](BoundaryRule &r, const std::string &v, int lineNo) {
         r.coalesce = parseCount(v, lineNo, "coalesce", 12);
     }},
    {"elide", "validate | scrub | both | none",
     "Skip entry-validation and/or return-scrub legs for consecutive "
     "same-boundary calls from the same thread; the streak resets on "
     "any intervening crossing, so the first call of every run pays "
     "the full legs. Strictly less safe than the default. Elided legs "
     "bump `gate.elided.validate` / `gate.elided.scrub`. "
     "Default: none.",
     [](BoundaryRule &r, const std::string &v, int) {
         r.elide = elideFromName(v);
     }},
    {"adaptive", "true | false",
     "Opt the edge into online adaptation by the runtime policy "
     "controller (`controller:` section): its rate / overflow / "
     "validation knobs and batch width may be tightened or relaxed "
     "between quiesced matrix swaps. Edges without the opt-in (and "
     "all `deny:` edges) are never touched at runtime. "
     "Default: false.",
     [](BoundaryRule &r, const std::string &v, int) {
         r.adaptive = parseBool(v);
     }},
};

/**
 * The keys of one `compartments:` item — same table-driven scheme as
 * boundaryKeyTable (parser dispatch + generated reference).
 */
struct CompartmentKey
{
    const char *key;
    const char *values;
    const char *doc;
    void (*apply)(CompartmentSpec &spec, const std::string &value,
                  int lineNo);
};

const CompartmentKey compartmentKeyTable[] = {
    {"mechanism",
     "none | intel-mpk | vm-ept | cheri | linux-pt | sel4-ipc | "
     "cubicle-mpk",
     "Isolation mechanism enforcing this compartment's boundary. "
     "Default: intel-mpk.",
     [](CompartmentSpec &c, const std::string &v, int) {
         c.mechanism = mechanismFromName(v);
     }},
    {"default", "true | false",
     "Marks the trusted compartment threads start in; exactly one "
     "compartment must set it.",
     [](CompartmentSpec &c, const std::string &v, int) {
         c.isDefault = parseBool(v);
     }},
    {"hardening", "[stack-protector, ubsan, kasan, asan, cfi]",
     "Software hardening instrumented into every component placed in "
     "the compartment. Default: none.",
     [](CompartmentSpec &c, const std::string &v, int) {
         for (const std::string &h : parseList(v))
             c.hardening.push_back(hardeningFromName(h));
     }},
    {"servers", "<threads>",
     "RPC server threads the compartment's VM boots with (vm-ept "
     "only; the pool grows elastically under load up to a cap). "
     "Default: 2.",
     [](CompartmentSpec &c, const std::string &v, int lineNo) {
         c.servers = static_cast<int>(
             parseCount(v, lineNo, "servers", 4));
         c.serversExplicit = true;
     }},
};

/**
 * The keys of the `controller:` section — same table-driven scheme as
 * boundaryKeyTable (parser dispatch + generated reference). The
 * section's presence enables the runtime policy controller; every key
 * has a default.
 */
struct ControllerKey
{
    const char *key;
    const char *values;
    const char *doc;
    void (*apply)(ControllerConfig &ctl, const std::string &value,
                  int lineNo);
};

const ControllerKey controllerKeyTable[] = {
    {"epoch", "<vcycles>",
     "Sample window of the controller: per-boundary counter deltas "
     "are evaluated once per this many virtual cycles. Default: "
     "1000000.",
     [](ControllerConfig &c, const std::string &v, int lineNo) {
         c.epoch = parseCount(v, lineNo, "epoch", 12);
     }},
    {"storm_threshold", "<crossings>",
     "Crossings per epoch on one boundary that count as a gate storm: "
     "adaptive edges exceeding it get a `rate` budget imposed (or "
     "halved), escalating to `overflow: fail` and entry/return "
     "validation while the storm persists. Default: 1000.",
     [](ControllerConfig &c, const std::string &v, int lineNo) {
         c.stormThreshold = parseCount(v, lineNo, "storm_threshold", 12);
     }},
    {"calm_epochs", "<epochs>",
     "Hysteresis: epochs a tightened boundary must stay below the "
     "storm threshold before the controller relaxes it one step back "
     "toward its configured policy. Default: 3.",
     [](ControllerConfig &c, const std::string &v, int lineNo) {
         c.calmEpochs = parseCount(v, lineNo, "calm_epochs", 6);
     }},
    {"deny_alert", "<witnesses>",
     "DeniedCrossing witnesses on one edge within an epoch that raise "
     "a `controller.alerts` alert and harden the offender's outgoing "
     "adaptive edges to the full DSS gate flavour. `deny:` edges "
     "themselves are never relaxed online. Default: 1.",
     [](ControllerConfig &c, const std::string &v, int lineNo) {
         c.denyAlert = parseCount(v, lineNo, "deny_alert", 9);
     }},
    {"queue_high", "<frames>",
     "NIC backlog (frames per receive queue) above which the "
     "controller widens the adaptive RX burst / `batch:` width, "
     "NAPI-budget style; widths narrow once the backlog stays under "
     "half this mark. 0 disables batch-width adaptation. Default: 8.",
     [](ControllerConfig &c, const std::string &v, int lineNo) {
         std::string t = trim(v);
         c.queueHigh =
             t == "0" ? 0 : parseCount(v, lineNo, "queue_high", 6);
     }},
};

/**
 * Parse a boundary rule: key "from -> to", value "{k: v, ...}".
 * Recognized keys: see boundaryKeyTable.
 */
BoundaryRule
parseBoundaryRule(const std::string &key, const std::string &value,
                  int lineNo)
{
    auto arrow = key.find("->");
    fatal_if(arrow == std::string::npos, "config line ", lineNo,
             ": boundary rule must be 'from -> to', got '", key, "'");
    BoundaryRule rule;
    rule.from = stripQuotes(key.substr(0, arrow));
    rule.to = stripQuotes(key.substr(arrow + 2));
    fatal_if(rule.from.empty() || rule.to.empty(), "config line ",
             lineNo, ": boundary rule needs both endpoints");

    std::string v = trim(value);
    fatal_if(v.empty() || v.front() != '{' || v.back() != '}',
             "config line ", lineNo,
             ": boundary policy must be an inline map '{...}'");
    for (const std::string &entry : split(v.substr(1, v.size() - 2), ',')) {
        if (trim(entry).empty())
            continue;
        auto colon = entry.find(':');
        fatal_if(colon == std::string::npos, "config line ", lineNo,
                 ": boundary policy entry '", trim(entry),
                 "' is not 'key: value'");
        std::string k = toLower(trim(entry.substr(0, colon)));
        std::string val = trim(entry.substr(colon + 1));
        bool known = false;
        for (const BoundaryKey &bk : boundaryKeyTable) {
            if (k == bk.key) {
                bk.apply(rule, val, lineNo);
                known = true;
                break;
            }
        }
        if (!known) {
            std::string expected;
            for (const BoundaryKey &bk : boundaryKeyTable) {
                if (!expected.empty())
                    expected += ", ";
                expected += bk.key;
            }
            fatal("config line ", lineNo, ": unknown boundary key '", k,
                  "' (expected one of: ", expected, ")");
        }
    }

    // `deny: true` forbids the edge outright; combining it with knobs
    // that tune how crossings behave is contradictory, so reject it
    // here rather than silently ignoring the other keys.
    bool denied = rule.deny && *rule.deny;
    fatal_if(denied && (rule.flavor || rule.validate ||
                        rule.validateReturn || rule.scrub ||
                        rule.rate || rule.window || rule.weight ||
                        rule.overflow || rule.stackSharing ||
                        rule.batch || rule.coalesce || rule.elide ||
                        rule.adaptive),
             "config line ", lineNo, ": boundary rule '",
             rule.edgeName(),
             "' sets deny: true alongside other keys — a denied edge "
             "has no gate to tune");
    return rule;
}

} // namespace

std::string
GatePolicy::name() const
{
    if (deny)
        return "denied";
    std::string s = mechanismName(mech);
    if (mech == Mechanism::IntelMpk)
        s += flavor == MpkGateFlavor::Light ? "(light)" : "(dss)";
    if (validateEntry)
        s += "+validate";
    if (validateReturn)
        s += "+validate-return";
    if (!scrubReturn)
        s += "-scrub";
    if (rate) {
        s += "+rate(" + std::to_string(rate);
        if (rateWindow != defaultRateWindow)
            s += "/" + std::to_string(rateWindow);
        if (weight != 1)
            s += ",w" + std::to_string(weight);
        if (overflow == RateOverflow::Fail)
            s += ",fail";
        s += ")";
    }
    if (stackSharing != StackSharing::Dss)
        s += std::string("+stack=") + stackSharingName(stackSharing);
    if (batch > 1)
        s += "+batch(" + std::to_string(batch) + ")";
    if (coalesce)
        s += "+coalesce(" + std::to_string(coalesce) + ")";
    if (elide != GateElide::None)
        s += std::string("+elide=") + elideName(elide);
    if (adaptive)
        s += "+adaptive";
    return s;
}

namespace {

/** The per-cell fields a boundary rule can set (conflict tracking). */
enum PolicyField
{
    FieldFlavor,
    FieldValidate,
    FieldValidateReturn,
    FieldScrub,
    FieldDeny,
    FieldRate,
    FieldWindow,
    FieldWeight,
    FieldOverflow,
    FieldStackSharing,
    FieldBatch,
    FieldCoalesce,
    FieldElide,
    FieldAdaptive,
    FieldCount,
};

const char *const policyFieldName[FieldCount] = {
    "gate",   "validate", "validate_return", "scrub",
    "deny",   "rate",     "window",          "weight",
    "overflow", "stack_sharing", "batch",    "coalesce",
    "elide",  "adaptive",
};

/** Which rule last set a field of a cell, and at what layer. */
struct FieldSetter
{
    int layer = -1;
    int rule = -1;
};

} // namespace

GateMatrix
GateMatrix::build(const SafetyConfig &cfg)
{
    GateMatrix m;
    m.n = cfg.compartments.size();
    m.cells.resize(m.n * m.n);

    // Default fallback: the callee compartment's mechanism with the
    // full-strength policy (today's callee-side dispatch rule) and the
    // image-wide shared-stack strategy.
    for (std::size_t f = 0; f < m.n; ++f) {
        for (std::size_t t = 0; t < m.n; ++t) {
            GatePolicy &p = m.cells[f * m.n + t];
            p.mech = cfg.compartments[t].mechanism;
            p.stackSharing = cfg.stackSharing;
        }
    }

    // Layer the rules by specificity. Callee-side wildcards ('*' -> to)
    // are more specific than caller-side ones (from -> '*'), mirroring
    // callee-side dispatch. Two rules of EQUAL specificity that
    // disagree on a field for the same cell are a user error — there
    // is no silent precedence, and in particular none among deny, rate
    // and the scalar knobs.
    std::vector<std::array<FieldSetter, FieldCount>> setters(m.n * m.n);

    auto applyLayer = [&](int layer, auto matches) {
        for (std::size_t ri = 0; ri < cfg.boundaries.size(); ++ri) {
            const BoundaryRule &r = cfg.boundaries[ri];
            if (!matches(r))
                continue;
            int fi = r.from == "*" ? -1 : cfg.compartmentIndex(r.from);
            int ti = r.to == "*" ? -1 : cfg.compartmentIndex(r.to);
            fatal_if(r.from != "*" && fi < 0, "boundary rule names ",
                     "unknown compartment '", r.from, "'");
            fatal_if(r.to != "*" && ti < 0, "boundary rule names ",
                     "unknown compartment '", r.to, "'");
            for (std::size_t f = 0; f < m.n; ++f) {
                if (fi >= 0 && f != static_cast<std::size_t>(fi))
                    continue;
                for (std::size_t t = 0; t < m.n; ++t) {
                    if (ti >= 0 && t != static_cast<std::size_t>(ti))
                        continue;
                    GatePolicy &p = m.cells[f * m.n + t];
                    auto &st = setters[f * m.n + t];

                    auto conflict = [&](PolicyField field,
                                        const char *detail) {
                        const BoundaryRule &prev = cfg.boundaries
                            [static_cast<std::size_t>(st[field].rule)];
                        fatal("boundary rules '", prev.edgeName(),
                              "' and '", r.edgeName(), "' conflict on ",
                              detail, " for boundary ",
                              cfg.compartments[f].name, " -> ",
                              cfg.compartments[t].name,
                              " at equal specificity — make one rule "
                              "more specific or reconcile them");
                    };
                    // A field set twice at the same layer by different
                    // rules must agree; otherwise it is ambiguous.
                    auto apply = [&](PolicyField field, auto &cellField,
                                     const auto &optVal) {
                        if (!optVal)
                            return;
                        if (st[field].layer == layer &&
                            st[field].rule != static_cast<int>(ri) &&
                            cellField != *optVal)
                            conflict(field, policyFieldName[field]);
                        cellField = *optVal;
                        st[field] = {layer, static_cast<int>(ri)};
                    };
                    // deny and rate have no precedence order between
                    // them: mixing them at one specificity is an error
                    // (a more specific rule may still override either).
                    if (r.deny && *r.deny &&
                        st[FieldRate].layer == layer &&
                        st[FieldRate].rule != static_cast<int>(ri))
                        conflict(FieldRate, "deny vs. rate");
                    if (r.rate && st[FieldDeny].layer == layer &&
                        st[FieldDeny].rule != static_cast<int>(ri) &&
                        p.deny)
                        conflict(FieldDeny, "deny vs. rate");

                    apply(FieldFlavor, p.flavor, r.flavor);
                    apply(FieldValidate, p.validateEntry, r.validate);
                    apply(FieldValidateReturn, p.validateReturn,
                          r.validateReturn);
                    apply(FieldScrub, p.scrubReturn, r.scrub);
                    apply(FieldDeny, p.deny, r.deny);
                    apply(FieldRate, p.rate, r.rate);
                    apply(FieldWindow, p.rateWindow, r.window);
                    apply(FieldWeight, p.weight, r.weight);
                    apply(FieldOverflow, p.overflow, r.overflow);
                    apply(FieldStackSharing, p.stackSharing,
                          r.stackSharing);
                    apply(FieldBatch, p.batch, r.batch);
                    apply(FieldCoalesce, p.coalesce, r.coalesce);
                    apply(FieldElide, p.elide, r.elide);
                    apply(FieldAdaptive, p.adaptive, r.adaptive);
                }
            }
        }
    };
    applyLayer(0, [](const BoundaryRule &r) {
        return r.from == "*" && r.to == "*";
    });
    applyLayer(1, [](const BoundaryRule &r) {
        return r.from != "*" && r.to == "*";
    });
    applyLayer(2, [](const BoundaryRule &r) {
        return r.from == "*" && r.to != "*";
    });
    applyLayer(3, [](const BoundaryRule &r) {
        return r.from != "*" && r.to != "*";
    });
    return m;
}

const GatePolicy &
GateMatrix::at(int from, int to) const
{
    panic_if(from < 0 || to < 0 ||
                 static_cast<std::size_t>(from) >= n ||
                 static_cast<std::size_t>(to) >= n,
             "gate-matrix index out of range");
    return cells[static_cast<std::size_t>(from) * n +
                 static_cast<std::size_t>(to)];
}

void
GateMatrix::set(int from, int to, const GatePolicy &p)
{
    panic_if(from < 0 || to < 0 ||
                 static_cast<std::size_t>(from) >= n ||
                 static_cast<std::size_t>(to) >= n,
             "gate-matrix index out of range");
    cells[static_cast<std::size_t>(from) * n +
          static_cast<std::size_t>(to)] = p;
}

SafetyConfig
SafetyConfig::parse(const std::string &text)
{
    SafetyConfig cfg;
    enum class Section
    {
        None,
        Compartments,
        Libraries,
        Boundaries,
        Controller,
    } section = Section::None;
    CompartmentSpec *current = nullptr;

    int lineNo = 0;
    for (const std::string &rawLine : split(text, '\n')) {
        ++lineNo;
        std::string noComment = rawLine.substr(0, rawLine.find('#'));
        std::string line = trim(noComment);
        if (line.empty())
            continue;

        if (line == "compartments:") {
            section = Section::Compartments;
            current = nullptr;
            continue;
        }
        if (line == "libraries:") {
            section = Section::Libraries;
            current = nullptr;
            continue;
        }
        if (line == "boundaries:") {
            section = Section::Boundaries;
            current = nullptr;
            continue;
        }
        if (line == "controller:") {
            // Presence enables the controller, defaults and all.
            section = Section::Controller;
            current = nullptr;
            if (!cfg.controller)
                cfg.controller = ControllerConfig{};
            continue;
        }

        // Top-level scalar options.
        auto colon = line.find(':');
        fatal_if(colon == std::string::npos, "config line ", lineNo,
                 ": expected 'key: value', got '", line, "'");
        bool isItem = line.front() == '-';
        std::string key =
            trim(isItem ? line.substr(1, colon - 1)
                        : line.substr(0, colon));
        std::string value = trim(line.substr(colon + 1));

        if (section == Section::None || (!isItem && current == nullptr &&
                                         section == Section::None)) {
            fatal("config line ", lineNo, ": '", key,
                  "' outside any section");
        }

        // Legacy global knob, accepted anywhere a top-level key could
        // appear: desugars to a ('*','*') flavour rule so old configs
        // keep parsing while the matrix is the only policy source.
        if (!isItem && current == nullptr && key == "mpk_gate") {
            BoundaryRule rule;
            rule.from = "*";
            rule.to = "*";
            rule.flavor = flavorFromName(value, lineNo);
            cfg.boundaries.push_back(std::move(rule));
            continue;
        }

        // SMP knobs, accepted in the same top-level positions.
        if (!isItem && current == nullptr && key == "cores") {
            cfg.cores = static_cast<unsigned>(
                parseCount(value, lineNo, "cores", 3));
            continue;
        }
        if (!isItem && current == nullptr && key == "steering") {
            cfg.steering = steeringFromName(value);
            continue;
        }

        if (section == Section::Compartments) {
            if (isItem) {
                fatal_if(!value.empty(), "config line ", lineNo,
                         ": compartment item takes no inline value");
                cfg.compartments.push_back(CompartmentSpec{});
                current = &cfg.compartments.back();
                current->name = key;
            } else if (current) {
                bool known = false;
                for (const CompartmentKey &ck : compartmentKeyTable) {
                    if (key == ck.key) {
                        ck.apply(*current, value, lineNo);
                        known = true;
                        break;
                    }
                }
                fatal_if(!known, "config line ", lineNo,
                         ": unknown compartment key '", key, "'");
            } else {
                fatal("config line ", lineNo, ": stray key '", key, "'");
            }
        } else if (section == Section::Boundaries) {
            fatal_if(!isItem, "config line ", lineNo,
                     ": boundaries entries are '- from -> to: {...}'");
            cfg.boundaries.push_back(
                parseBoundaryRule(key, value, lineNo));
        } else if (section == Section::Controller) {
            fatal_if(isItem, "config line ", lineNo,
                     ": controller entries are plain 'key: value'");
            bool known = false;
            for (const ControllerKey &ck : controllerKeyTable) {
                if (key == ck.key) {
                    ck.apply(*cfg.controller, value, lineNo);
                    known = true;
                    break;
                }
            }
            fatal_if(!known, "config line ", lineNo,
                     ": unknown controller key '", key, "'");
        } else if (section == Section::Libraries) {
            if (isItem) {
                fatal_if(value.empty(), "config line ", lineNo,
                         ": library item needs a compartment");
                // Value: "compName" or "compName [harden1, harden2]".
                std::string compName = value;
                auto bracket = value.find('[');
                if (bracket != std::string::npos) {
                    compName = trim(value.substr(0, bracket));
                    for (const std::string &h :
                         parseList(value.substr(bracket)))
                        cfg.libHardening[key].push_back(
                            hardeningFromName(h));
                }
                cfg.libraries.emplace_back(key, compName);
            } else if (key == "stack_sharing") {
                // Image-wide default; desugars to a ('*','*') rule so
                // it round-trips through toText() and participates in
                // the matrix's specificity layering (a more specific
                // rule overrides it, a conflicting equal-specificity
                // rule is rejected) like any other boundary policy.
                cfg.stackSharing = stackSharingFromName(value);
                BoundaryRule rule;
                rule.from = "*";
                rule.to = "*";
                rule.stackSharing = cfg.stackSharing;
                cfg.boundaries.push_back(std::move(rule));
            } else {
                fatal("config line ", lineNo, ": stray key '", key, "'");
            }
        }
    }

    fatal_if(cfg.compartments.empty(), "config declares no compartments");
    return cfg;
}

std::string
SafetyConfig::toText() const
{
    std::ostringstream oss;
    oss << "compartments:\n";
    for (const CompartmentSpec &c : compartments) {
        oss << "- " << c.name << ":\n";
        oss << "    mechanism: " << mechanismName(c.mechanism) << "\n";
        if (c.isDefault)
            oss << "    default: True\n";
        if (c.serversExplicit || c.servers != defaultEptServers)
            oss << "    servers: " << c.servers << "\n";
        if (!c.hardening.empty()) {
            oss << "    hardening: [";
            for (std::size_t i = 0; i < c.hardening.size(); ++i) {
                if (i)
                    oss << ", ";
                oss << hardeningName(c.hardening[i]);
            }
            oss << "]\n";
        }
    }
    oss << "libraries:\n";
    for (const auto &[lib, comp] : libraries) {
        oss << "- " << lib << ": " << comp;
        auto it = libHardening.find(lib);
        if (it != libHardening.end() && !it->second.empty()) {
            oss << " [";
            for (std::size_t i = 0; i < it->second.size(); ++i) {
                if (i)
                    oss << ", ";
                oss << hardeningName(it->second[i]);
            }
            oss << "]";
        }
        oss << "\n";
    }
    // A non-default image-wide strategy set programmatically (no
    // desugared rule carries it) must survive the round trip too —
    // omitting it used to silently reset reparsed configs to DSS.
    bool sharingInRules = false;
    for (const BoundaryRule &r : boundaries)
        if (r.from == "*" && r.to == "*" && r.stackSharing)
            sharingInRules = true;
    if (stackSharing != StackSharing::Dss && !sharingInRules)
        oss << "stack_sharing: " << stackSharingName(stackSharing)
            << "\n";
    if (cores != 1)
        oss << "cores: " << cores << "\n";
    if (steering != NicSteering::Rss)
        oss << "steering: " << steeringName(steering) << "\n";
    if (controller) {
        // All keys are serialized explicitly: section presence alone
        // enables the controller, so a default-valued key costs
        // nothing and the round trip stays field-exact.
        oss << "controller:\n";
        oss << "  epoch: " << controller->epoch << "\n";
        oss << "  storm_threshold: " << controller->stormThreshold
            << "\n";
        oss << "  calm_epochs: " << controller->calmEpochs << "\n";
        oss << "  deny_alert: " << controller->denyAlert << "\n";
        oss << "  queue_high: " << controller->queueHigh << "\n";
    }
    if (!boundaries.empty()) {
        auto quoted = [](const std::string &s) {
            return s == "*" ? std::string("'*'") : s;
        };
        oss << "boundaries:\n";
        // Serialize every explicit rule, including ones whose policy
        // equals the resolved default: dropping "redundant" rules
        // would lose author intent (and the redundancy can become
        // load-bearing when surrounding rules change).
        for (const BoundaryRule &r : boundaries) {
            oss << "- " << quoted(r.from) << " -> " << quoted(r.to)
                << ": {";
            bool first = true;
            auto sep = [&] {
                if (!first)
                    oss << ", ";
                first = false;
            };
            if (r.flavor) {
                sep();
                oss << "gate: "
                    << (*r.flavor == MpkGateFlavor::Light ? "light"
                                                          : "dss");
            }
            if (r.validate) {
                sep();
                oss << "validate: " << (*r.validate ? "true" : "false");
            }
            if (r.validateReturn) {
                sep();
                oss << "validate_return: "
                    << (*r.validateReturn ? "true" : "false");
            }
            if (r.scrub) {
                sep();
                oss << "scrub: " << (*r.scrub ? "true" : "false");
            }
            if (r.deny) {
                sep();
                oss << "deny: " << (*r.deny ? "true" : "false");
            }
            if (r.rate) {
                sep();
                oss << "rate: " << *r.rate;
            }
            if (r.window) {
                sep();
                oss << "window: " << *r.window;
            }
            if (r.weight) {
                sep();
                oss << "weight: " << *r.weight;
            }
            if (r.overflow) {
                sep();
                oss << "overflow: " << rateOverflowName(*r.overflow);
            }
            if (r.stackSharing) {
                sep();
                oss << "stack_sharing: "
                    << stackSharingName(*r.stackSharing);
            }
            if (r.batch) {
                sep();
                oss << "batch: " << *r.batch;
            }
            if (r.coalesce) {
                sep();
                oss << "coalesce: " << *r.coalesce;
            }
            if (r.elide) {
                sep();
                oss << "elide: " << elideName(*r.elide);
            }
            if (r.adaptive) {
                sep();
                oss << "adaptive: " << (*r.adaptive ? "true" : "false");
            }
            oss << "}\n";
        }
    }
    return oss.str();
}

const CompartmentSpec &
SafetyConfig::compartment(const std::string &name) const
{
    for (const CompartmentSpec &c : compartments)
        if (c.name == name)
            return c;
    fatal("unknown compartment '", name, "'");
}

int
SafetyConfig::compartmentIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < compartments.size(); ++i)
        if (compartments[i].name == name)
            return static_cast<int>(i);
    return -1;
}

std::vector<Mechanism>
SafetyConfig::mechanisms() const
{
    std::vector<Mechanism> out;
    for (const CompartmentSpec &c : compartments) {
        bool seen = false;
        for (Mechanism m : out)
            if (m == c.mechanism)
                seen = true;
        if (!seen)
            out.push_back(c.mechanism);
    }
    return out;
}

std::size_t
SafetyConfig::defaultCompartment() const
{
    for (std::size_t i = 0; i < compartments.size(); ++i)
        if (compartments[i].isDefault)
            return i;
    fatal("no default compartment declared");
}

const std::vector<ConfigKeyInfo> &
configKeyReference()
{
    static const std::vector<ConfigKeyInfo> ref = [] {
        std::vector<ConfigKeyInfo> out;
        out.push_back({"compartments", "- <name>:", "",
                       "Declares one compartment; the keys below nest "
                       "under it."});
        for (const CompartmentKey &ck : compartmentKeyTable)
            out.push_back(
                {"compartments", ck.key, ck.values, ck.doc});
        out.push_back({"libraries",
                       "- <library>: <compartment> [hardening...]",
                       "",
                       "Places a micro-library in a compartment; the "
                       "optional bracket list adds per-component "
                       "hardening on top of the compartment's."});
        out.push_back({"libraries", "stack_sharing",
                       "heap | dss | shared-stack",
                       "Image-wide default shared-stack strategy; "
                       "desugars to a `'*' -> '*'` boundary rule. "
                       "Default: dss."});
        out.push_back({"boundaries", "- <from> -> <to>: {key: value, "
                                     "...}",
                       "",
                       "Overrides the gate policy of one (from, to) "
                       "boundary; `'*'` wildcards layer by "
                       "specificity (exact > callee-side > "
                       "caller-side > global). Equal-specificity "
                       "conflicts are rejected."});
        for (const BoundaryKey &bk : boundaryKeyTable)
            out.push_back({"boundaries", bk.key, bk.values, bk.doc});
        out.push_back({"controller", "controller:", "",
                       "Enables the runtime policy controller; the "
                       "keys below nest under it, each with a usable "
                       "default. Only boundaries opting in with "
                       "`adaptive: true` are ever adapted, and `deny:` "
                       "edges are never relaxed online."});
        for (const ControllerKey &ck : controllerKeyTable)
            out.push_back({"controller", ck.key, ck.values, ck.doc});
        out.push_back({"(top level)", "mpk_gate", "light | dss",
                       "Legacy global MPK flavour knob; desugars to a "
                       "`'*' -> '*': {gate: ...}` rule. Prefer "
                       "`boundaries:`."});
        out.push_back({"(top level)", "cores", "<count>",
                       "Simulated cores the image boots; each gets its "
                       "own run queue, NIC receive queue and poller. "
                       "`cores: 1` is the exact single-core model. "
                       "Default: 1."});
        out.push_back({"(top level)", "steering", "rss | single",
                       "Flow steering across cores: hash each "
                       "connection's 4-tuple to a per-core queue (rss) "
                       "or funnel everything through queue 0 (single). "
                       "Only meaningful when cores > 1. Default: "
                       "rss."});
        return out;
    }();
    return ref;
}

std::string
configReferenceMarkdown()
{
    std::ostringstream oss;
    oss << "# Safety-configuration reference\n\n";
    oss << "<!-- GENERATED FILE — do not edit. Produced by "
           "`tools/config_doc` from the\n     key tables the parser in "
           "src/core/config.cc dispatches on; regenerate with\n     "
           "`./build/config_doc > docs/config-reference.md`. CI fails "
           "if this file is\n     stale. -->\n\n";
    oss << "The safety configuration is the YAML subset of the paper "
           "(section 3.0):\na `compartments:` section, a `libraries:` "
           "section, and optional\n`boundaries:` and `controller:` "
           "sections, parsed by `SafetyConfig::parse`\nand serialized "
           "back by `SafetyConfig::toText`.\n";

    // '|' inside a table cell must be escaped or it splits the cell.
    auto cell = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '|')
                out += "\\|";
            else
                out += c;
        }
        return out;
    };

    const char *section = "";
    for (const ConfigKeyInfo &k : configKeyReference()) {
        if (section != std::string(k.section)) {
            section = k.section;
            oss << "\n## `" << section << "`\n\n";
            oss << "| Key | Values | Description |\n";
            oss << "|-----|--------|-------------|\n";
        }
        oss << "| `" << cell(k.key) << "` | "
            << (k.values[0] ? "`" + cell(k.values) + "`" : "") << " | "
            << cell(k.doc) << " |\n";
    }

    oss << "\n## Enum values\n\n";
    oss << "### Mechanisms\n\n";
    oss << "| Name | Meaning |\n|------|---------|\n";
    struct
    {
        Mechanism m;
        const char *doc;
    } mechs[] = {
        {Mechanism::None, "single protection domain (vanilla Unikraft)"},
        {Mechanism::IntelMpk,
         "Intel protection keys, intra-address-space (paper 4.1)"},
        {Mechanism::VmEpt,
         "one VM per compartment with RPC gates (paper 4.2)"},
        {Mechanism::Cheri, "capability backend sketch (paper 4.3)"},
        {Mechanism::LinuxPt,
         "baseline: page-table isolation via Linux syscalls"},
        {Mechanism::Sel4Ipc, "baseline: seL4/Genode microkernel IPC"},
        {Mechanism::CubicleMpk,
         "baseline: CubicleOS MPK via pkey_mprotect"},
    };
    for (const auto &e : mechs)
        oss << "| `" << mechanismName(e.m) << "` | " << e.doc << " |\n";

    oss << "\n### Hardening\n\n";
    oss << "| Name | Meaning |\n|------|---------|\n";
    struct
    {
        Hardening h;
        const char *doc;
    } hards[] = {
        {Hardening::StackProtector, "stack canaries (+8% work)"},
        {Hardening::Ubsan, "undefined-behaviour sanitizer (+32%)"},
        {Hardening::Kasan, "kernel address sanitizer (+110%)"},
        {Hardening::Asan, "userland address sanitizer (+95%)"},
        {Hardening::Cfi, "forward-edge CFI, gates check entry points "
                         "(+15%)"},
    };
    for (const auto &e : hards)
        oss << "| `" << hardeningName(e.h) << "` | " << e.doc << " |\n";

    oss << "\n### Stack sharing\n\n";
    oss << "| Name | Meaning |\n|------|---------|\n";
    struct
    {
        StackSharing s;
        const char *doc;
    } shares[] = {
        {StackSharing::Heap,
         "convert shared stack variables to shared-heap allocations "
         "(costly; Figure 11a)"},
        {StackSharing::Dss,
         "data shadow stacks: doubled stacks, shadow = &x + "
         "STACK_SIZE (Figure 4)"},
        {StackSharing::SharedStack,
         "share the whole stack (cheapest, weakest)"},
    };
    for (const auto &e : shares)
        oss << "| `" << stackSharingName(e.s) << "` | " << e.doc
            << " |\n";

    oss << "\n### Rate overflow\n\n";
    oss << "| Name | Meaning |\n|------|---------|\n";
    oss << "| `" << rateOverflowName(RateOverflow::Stall)
        << "` | stall the caller until the token bucket refills "
           "(back-pressure) |\n";
    oss << "| `" << rateOverflowName(RateOverflow::Fail)
        << "` | fail the crossing with a ThrottledCrossing error |\n";

    oss << "\n### Gate elision\n\n";
    oss << "| Name | Meaning |\n|------|---------|\n";
    struct
    {
        GateElide e;
        const char *doc;
    } elides[] = {
        {GateElide::None, "never skip a leg (full-strength policy)"},
        {GateElide::Validate,
         "skip the entry-validation charge on same-boundary streaks"},
        {GateElide::Scrub,
         "skip the return-path register scrub on same-boundary "
         "streaks"},
        {GateElide::Both, "skip both legs on same-boundary streaks"},
    };
    for (const auto &e : elides)
        oss << "| `" << elideName(e.e) << "` | " << e.doc << " |\n";

    oss << "\n## Checking a configuration\n\n";
    oss << "`tools/config_lint` parses and validates embedded configs "
           "and runs the static\ncall-graph pass; `tools/boundary_audit` "
           "adds the shared-data escape and\npolicy-safety audits and "
           "suggests a minimal `deny:` ruleset — see\n"
           "[static-analysis.md](static-analysis.md).\n";
    return oss.str();
}

} // namespace flexos
