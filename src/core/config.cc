#include "core/config.hh"

#include <sstream>

#include "base/logging.hh"
#include "base/strutil.hh"

namespace flexos {

Mechanism
mechanismFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "none")
        return Mechanism::None;
    if (n == "intel-mpk" || n == "mpk")
        return Mechanism::IntelMpk;
    if (n == "vm-ept" || n == "ept")
        return Mechanism::VmEpt;
    if (n == "cheri")
        return Mechanism::Cheri;
    if (n == "linux-pt")
        return Mechanism::LinuxPt;
    if (n == "sel4-ipc")
        return Mechanism::Sel4Ipc;
    if (n == "cubicle-mpk")
        return Mechanism::CubicleMpk;
    fatal("unknown isolation mechanism '", name, "'");
}

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::None:
        return "none";
      case Mechanism::IntelMpk:
        return "intel-mpk";
      case Mechanism::VmEpt:
        return "vm-ept";
      case Mechanism::Cheri:
        return "cheri";
      case Mechanism::LinuxPt:
        return "linux-pt";
      case Mechanism::Sel4Ipc:
        return "sel4-ipc";
      case Mechanism::CubicleMpk:
        return "cubicle-mpk";
    }
    return "?";
}

Hardening
hardeningFromName(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "stack-protector" || n == "stackprotector" || n == "sp")
        return Hardening::StackProtector;
    if (n == "ubsan")
        return Hardening::Ubsan;
    if (n == "kasan")
        return Hardening::Kasan;
    if (n == "asan")
        return Hardening::Asan;
    if (n == "cfi")
        return Hardening::Cfi;
    fatal("unknown hardening mechanism '", name, "'");
}

const char *
hardeningName(Hardening h)
{
    switch (h) {
      case Hardening::StackProtector:
        return "stack-protector";
      case Hardening::Ubsan:
        return "ubsan";
      case Hardening::Kasan:
        return "kasan";
      case Hardening::Asan:
        return "asan";
      case Hardening::Cfi:
        return "cfi";
    }
    return "?";
}

namespace {

/** Parse "[a, b, c]" or "a" into items. */
std::vector<std::string>
parseList(const std::string &value)
{
    std::string v = trim(value);
    std::vector<std::string> out;
    if (!v.empty() && v.front() == '[') {
        fatal_if(v.back() != ']', "unterminated list: ", v);
        for (const std::string &item : split(v.substr(1, v.size() - 2), ','))
            if (!trim(item).empty())
                out.push_back(trim(item));
    } else if (!v.empty()) {
        out.push_back(v);
    }
    return out;
}

bool
parseBool(const std::string &value)
{
    std::string v = toLower(trim(value));
    return v == "true" || v == "yes" || v == "1";
}

} // namespace

SafetyConfig
SafetyConfig::parse(const std::string &text)
{
    SafetyConfig cfg;
    enum class Section { None, Compartments, Libraries } section =
        Section::None;
    CompartmentSpec *current = nullptr;

    int lineNo = 0;
    for (const std::string &rawLine : split(text, '\n')) {
        ++lineNo;
        std::string noComment = rawLine.substr(0, rawLine.find('#'));
        std::string line = trim(noComment);
        if (line.empty())
            continue;

        if (line == "compartments:") {
            section = Section::Compartments;
            current = nullptr;
            continue;
        }
        if (line == "libraries:") {
            section = Section::Libraries;
            current = nullptr;
            continue;
        }

        // Top-level scalar options.
        auto colon = line.find(':');
        fatal_if(colon == std::string::npos, "config line ", lineNo,
                 ": expected 'key: value', got '", line, "'");
        bool isItem = line.front() == '-';
        std::string key =
            trim(isItem ? line.substr(1, colon - 1)
                        : line.substr(0, colon));
        std::string value = trim(line.substr(colon + 1));

        if (section == Section::None || (!isItem && current == nullptr &&
                                         section == Section::None)) {
            fatal("config line ", lineNo, ": '", key,
                  "' outside any section");
        }

        if (section == Section::Compartments) {
            if (isItem) {
                fatal_if(!value.empty(), "config line ", lineNo,
                         ": compartment item takes no inline value");
                cfg.compartments.push_back(CompartmentSpec{});
                current = &cfg.compartments.back();
                current->name = key;
            } else if (current) {
                if (key == "mechanism") {
                    current->mechanism = mechanismFromName(value);
                } else if (key == "default") {
                    current->isDefault = parseBool(value);
                } else if (key == "hardening") {
                    for (const std::string &h : parseList(value))
                        current->hardening.push_back(
                            hardeningFromName(h));
                } else {
                    fatal("config line ", lineNo,
                          ": unknown compartment key '", key, "'");
                }
            } else if (key == "mpk_gate") {
                cfg.mpkGate = toLower(value) == "light"
                                  ? MpkGateFlavor::Light
                                  : MpkGateFlavor::Dss;
            } else {
                fatal("config line ", lineNo, ": stray key '", key, "'");
            }
        } else if (section == Section::Libraries) {
            if (isItem) {
                fatal_if(value.empty(), "config line ", lineNo,
                         ": library item needs a compartment");
                // Value: "compName" or "compName [harden1, harden2]".
                std::string compName = value;
                auto bracket = value.find('[');
                if (bracket != std::string::npos) {
                    compName = trim(value.substr(0, bracket));
                    for (const std::string &h :
                         parseList(value.substr(bracket)))
                        cfg.libHardening[key].push_back(
                            hardeningFromName(h));
                }
                cfg.libraries.emplace_back(key, compName);
            } else if (key == "mpk_gate") {
                cfg.mpkGate = toLower(value) == "light"
                                  ? MpkGateFlavor::Light
                                  : MpkGateFlavor::Dss;
            } else if (key == "stack_sharing") {
                std::string v = toLower(value);
                if (v == "heap")
                    cfg.stackSharing = StackSharing::Heap;
                else if (v == "dss")
                    cfg.stackSharing = StackSharing::Dss;
                else if (v == "shared-stack" || v == "share")
                    cfg.stackSharing = StackSharing::SharedStack;
                else
                    fatal("unknown stack_sharing '", value, "'");
            } else {
                fatal("config line ", lineNo, ": stray key '", key, "'");
            }
        }
    }

    fatal_if(cfg.compartments.empty(), "config declares no compartments");
    return cfg;
}

std::string
SafetyConfig::toText() const
{
    std::ostringstream oss;
    oss << "compartments:\n";
    for (const CompartmentSpec &c : compartments) {
        oss << "- " << c.name << ":\n";
        oss << "    mechanism: " << mechanismName(c.mechanism) << "\n";
        if (c.isDefault)
            oss << "    default: True\n";
        if (!c.hardening.empty()) {
            oss << "    hardening: [";
            for (std::size_t i = 0; i < c.hardening.size(); ++i) {
                if (i)
                    oss << ", ";
                oss << hardeningName(c.hardening[i]);
            }
            oss << "]\n";
        }
    }
    oss << "libraries:\n";
    for (const auto &[lib, comp] : libraries) {
        oss << "- " << lib << ": " << comp;
        auto it = libHardening.find(lib);
        if (it != libHardening.end() && !it->second.empty()) {
            oss << " [";
            for (std::size_t i = 0; i < it->second.size(); ++i) {
                if (i)
                    oss << ", ";
                oss << hardeningName(it->second[i]);
            }
            oss << "]";
        }
        oss << "\n";
    }
    return oss.str();
}

const CompartmentSpec &
SafetyConfig::compartment(const std::string &name) const
{
    for (const CompartmentSpec &c : compartments)
        if (c.name == name)
            return c;
    fatal("unknown compartment '", name, "'");
}

std::vector<Mechanism>
SafetyConfig::mechanisms() const
{
    std::vector<Mechanism> out;
    for (const CompartmentSpec &c : compartments) {
        bool seen = false;
        for (Mechanism m : out)
            if (m == c.mechanism)
                seen = true;
        if (!seen)
            out.push_back(c.mechanism);
    }
    return out;
}

std::size_t
SafetyConfig::defaultCompartment() const
{
    for (std::size_t i = 0; i < compartments.size(); ++i)
        if (compartments[i].isDefault)
            return i;
    fatal("no default compartment declared");
}

} // namespace flexos
