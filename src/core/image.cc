#include "core/image.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "base/logging.hh"

namespace flexos {

namespace {

/**
 * splitmix64 of a compartment name: the deterministic "ASLR seed" the
 * linker script draws layout slides from. A real loader would use a
 * boot-time random source; the simulation keys off the name so every
 * run of the same config produces the same (reproducible) layout while
 * distinct compartments still land on unrelated slides.
 */
std::uint64_t
layoutSeed(const std::string &name)
{
    std::uint64_t z = 0x9e3779b97f4a7c15ull;
    for (unsigned char ch : name)
        z = (z ^ ch) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

unsigned
layoutEntropyBits(Mechanism m)
{
    switch (m) {
      case Mechanism::None:
        return 0; // one domain, one load address: nothing to slide
      case Mechanism::IntelMpk:
      case Mechanism::CubicleMpk:
        return 12; // shared address space: section-level shuffle only
      case Mechanism::VmEpt:
        return 28; // whole guest-physical map per compartment
      case Mechanism::Cheri:
        return 14; // bounded caps let the loader scatter sections
      case Mechanism::LinuxPt:
        return 22; // per-process mmap ASLR
      case Mechanism::Sel4Ipc:
        return 16; // per-server vspace layout
    }
    return 0;
}

Image::Image(Machine &m, Scheduler &s, SafetyConfig config,
             const LibraryRegistry &registry)
    : mach(m), sched(s), cfg(std::move(config)), reg(registry),
      quiesceWait(s)
{
    // Build compartment objects (memory comes later, at boot()).
    // Key virtualization: only key-consuming compartments take a
    // protection key; EPT compartments are VM-private (their memory is
    // unmapped outside the VM) and stay off the key budget, lifting
    // the 15-compartment cap for mixed images.
    ProtKey nextKey = 0;
    for (std::size_t i = 0; i < cfg.compartments.size(); ++i) {
        auto c = std::make_unique<Compartment>();
        c->id = static_cast<int>(i);
        c->spec = cfg.compartments[i];
        c->hardenMultiplier =
            hardeningMultiplier(c->spec.hardening, mach.timing);
        if (mechanismConsumesProtKey(c->spec.mechanism)) {
            fatal_if(nextKey >= sharedProtKey,
                     "the key-tagged region model supports at most ",
                     numProtKeys - 1,
                     " key-consuming compartments per image (one key "
                     "is reserved for the shared domain)");
            c->key = nextKey++;
            c->domain = Pkru::allowing({c->key, sharedProtKey});
        } else {
            // VM-private: no key; inside the VM only its own memory
            // (via the VM token) and the shared domain are reachable.
            c->vmPrivate = true;
            c->key = sharedProtKey;
            c->domain = Pkru::allowing({sharedProtKey});
        }
        // Page-aligned layout slide, masked to the mechanism's entropy
        // budget (an info leak of any section pointer reveals it all).
        c->layoutEntropyBits = flexos::layoutEntropyBits(c->spec.mechanism);
        c->layoutSlide = c->layoutEntropyBits == 0
                             ? 0
                             : (layoutSeed(c->spec.name) &
                                ((1ull << c->layoutEntropyBits) - 1))
                                   << 12;
        comps.push_back(std::move(c));
    }

    for (const auto &[lib, compName] : cfg.libraries) {
        const CompartmentSpec &spec = cfg.compartment(compName);
        for (std::size_t i = 0; i < cfg.compartments.size(); ++i) {
            if (cfg.compartments[i].name == spec.name) {
                libToComp[lib] = static_cast<int>(i);
                break;
            }
        }
    }

    // Resolve per-library hardening multipliers: compartment set plus
    // the component's own set (Figure 6 hardens per component).
    for (const auto &[lib, compIdx] : libToComp) {
        std::vector<Hardening> set =
            cfg.compartments[static_cast<std::size_t>(compIdx)].hardening;
        auto it = cfg.libHardening.find(lib);
        if (it != cfg.libHardening.end())
            set.insert(set.end(), it->second.begin(), it->second.end());
        libMults[lib] = hardeningMultiplier(set, mach.timing);
    }

    // One backend per distinct mechanism; each boundary's crossing is
    // enforced under the gate matrix's resolved (from, to) policy.
    gates = GateMatrix::build(cfg);
    gateBuckets.resize(comps.size() * comps.size());
    compLastCore.assign(comps.size(), -1);
    for (Mechanism m : cfg.mechanisms())
        backends.push_back(makeBackend(m));
    compBackends.resize(comps.size(), nullptr);
    for (std::size_t i = 0; i < comps.size(); ++i) {
        for (auto &b : backends)
            if (b->mechanism() == comps[i]->spec.mechanism)
                compBackends[i] = b.get();
        panic_if(!compBackends[i], "compartment without a backend");
    }

    // Least privilege is checked at build for everything the build can
    // see: a `deny:` rule on an edge the static call graph needs is a
    // configuration contradiction, not a runtime surprise.
    rejectDeniedStaticEdges();
}

void
Image::rejectDeniedStaticEdges() const
{
    for (const auto &[lib, compName] : cfg.libraries) {
        int from = compartmentIndexOf(lib);
        for (const std::string &callee : reg.get(lib).callees) {
            if (!reg.contains(callee))
                continue;
            auto it = libToComp.find(callee);
            if (it == libToComp.end())
                continue; // unassigned TCB service: local to the caller
            int to = it->second;
            // Mirrors resolveCallee: TCB libraries are local to
            // callers whose mechanism replicates the kernel.
            if (from == to ||
                (reg.get(callee).tcb && backendFor(from).replicatesTcb()))
                continue;
            fatal_if(policyFor(from, to).deny, "boundary ",
                     cfg.compartments[static_cast<std::size_t>(from)]
                         .name,
                     " -> ",
                     cfg.compartments[static_cast<std::size_t>(to)].name,
                     " is denied but the static call graph needs it: ",
                     lib, " calls ", callee,
                     " (re-allow the edge with 'deny: false' or move "
                     "the libraries)");
        }
    }
}

void
Image::enforceBoundary(int from, int to, const GatePolicy &pol)
{
    if (pol.deny) {
        const std::string &fromName =
            cfg.compartments[static_cast<std::size_t>(from)].name;
        const std::string &toName =
            cfg.compartments[static_cast<std::size_t>(to)].name;
        mach.bump("gate.denied");
        // Per-edge witness: the runtime controller's deny-alert rule
        // needs to know WHICH edge is being probed, not just that
        // some denied crossing happened somewhere.
        mach.bump("gate.denied." + fromName + "->" + toName);
        throw DeniedCrossing(fromName, toName);
    }
    if (!pol.rate)
        return;

    // Token bucket in virtual time: `rate` tokens per `rateWindow`
    // vcycles, starting full. The refill is fractional so a budget of
    // N/window behaves identically to k*N/(k*window). The policy's QoS
    // weight scales the edge's effective budget, so boundaries
    // inheriting one wildcard `rate:` can be biased per caller.
    GateBucket &b =
        gateBuckets[static_cast<std::size_t>(from) * comps.size() +
                    static_cast<std::size_t>(to)];
    Cycles now = mach.cycles();
    double rate = static_cast<double>(pol.rate * pol.weight);
    if (!b.primed) {
        b.tokens = rate;
        b.primed = true;
    } else if (now > b.lastRefill) {
        double refill = static_cast<double>(now - b.lastRefill) * rate /
                        static_cast<double>(pol.rateWindow);
        b.tokens = std::min(rate, b.tokens + refill);
    }
    b.lastRefill = now;

    if (b.tokens < 1.0) {
        mach.bump("gate.throttled");
        // Per-caller breakdown: who is being back-pressured matters
        // for QoS tuning (which `weight:` to raise).
        mach.bump("gate.throttled." +
                  cfg.compartments[static_cast<std::size_t>(from)].name);
        // Per-edge breakdown: the controller's relax rule reads this
        // to see whether a tightened budget still actively constrains.
        mach.bump(
            "gate.throttled." +
            cfg.compartments[static_cast<std::size_t>(from)].name +
            "->" +
            cfg.compartments[static_cast<std::size_t>(to)].name);
        if (pol.overflow == RateOverflow::Fail)
            throw ThrottledCrossing(
                cfg.compartments[static_cast<std::size_t>(from)].name,
                cfg.compartments[static_cast<std::size_t>(to)].name);
        // Stall: back-pressure the caller until the next token
        // refills. Waiting is not work, so the virtual clock advances
        // without the hardening multiplier (machine.stallCycles).
        auto wait = static_cast<Cycles>(
            (1.0 - b.tokens) * static_cast<double>(pol.rateWindow) /
                rate +
            1.0);
        mach.stall(wait);
        b.tokens = 1.0;
        b.lastRefill = mach.cycles();
    }
    b.tokens -= 1.0;
}

bool
Image::noteBoundaryStreak(int from, int to)
{
    Thread *t = sched.current();
    int id = t ? t->id() : -1;
    auto key = std::make_pair(from, to);
    auto [it, inserted] = lastBoundary.try_emplace(id, key);
    if (inserted)
        return false;
    bool same = it->second == key;
    it->second = key;
    return same;
}

const GatePolicy &
Image::applyElision(int from, int to, const GatePolicy &pol,
                    GatePolicy &scratch)
{
    bool streak = noteBoundaryStreak(from, to);
    if (pol.validateEntry) {
        if (streak && elidesValidate(pol.elide)) {
            mach.bump("gate.elided.validate");
        } else {
            // Policy-forced caller-side entry validation: one probe
            // of the callee's export table, whatever the mechanism's
            // own rule (the functional check is in checkEntry).
            mach.consume(mach.timing.entryValidate);
            mach.bump("gate.validate");
        }
    }
    if (streak && elidesScrub(pol.elide) && pol.scrubReturn) {
        scratch = pol;
        scratch.scrubReturn = false;
        mach.bump("gate.elided.scrub");
        return scratch;
    }
    return pol;
}

void
Image::gateBatch(const std::string &calleeLib, const char *fnName,
                 const std::vector<std::function<void()>> &bodies)
{
    if (bodies.empty())
        return;
    int from = currentCompartment();
    int to = resolveCallee(calleeLib, from);
    const std::size_t width =
        from == to
            ? 1
            : static_cast<std::size_t>(
                  std::max<std::uint64_t>(policyFor(from, to).batch, 1));
    if (width <= 1) {
        // Unbatched boundary (or a same-compartment call): exactly
        // the sequential gate path, vcycle-identical by construction.
        for (const auto &body : bodies)
            gate(calleeLib, fnName, [&] { body(); });
        return;
    }
    double mult = libMultiplier(calleeLib);
    // Pending-swap barrier, mirroring gate(): park here so the policy
    // reference below resolves against the post-swap matrix. Once the
    // loop starts, the reference stays valid — a swap can only proceed
    // while this fiber is suspended, which only happens inside a
    // crossing, where the CrossingScope holds the swap off.
    if (swapWaiters > 0 && sched.current())
        yieldForSwap();
    const GatePolicy &pol = policyFor(from, to);
    IsolationBackend &be = backendOf(pol.mech);
    for (std::size_t i = 0; i < bodies.size(); i += width) {
        std::size_t k = std::min(width, bodies.size() - i);
        // Least-privilege enforcement is per LOGICAL call: a batch of
        // k debits the token bucket k times (and a denied edge
        // rejects the whole batch before any work).
        for (std::size_t j = 0; j < k; ++j)
            enforceBoundary(from, to, pol);
        GatePolicy scratch;
        const GatePolicy &eff = applyElision(from, to, pol, scratch);
        checkEntry(calleeLib, fnName, from, to, pol);
        noteCoreMigration(to);
        CrossingScope xing(*this);
        if (k == 1) {
            be.crossCall(*this, from, to, eff, calleeLib, fnName, mult,
                         bodies[i]);
        } else {
            mach.bump("gate.batched");
            mach.bump("gate.batchedCalls", k);
            be.crossCallBatch(*this, from, to, eff, calleeLib, fnName,
                              mult, &bodies[i], k);
        }
        noteReturn(pol);
    }
}

void
Image::gateDeferred(const std::string &calleeLib, const char *fnName,
                    std::function<void()> body)
{
    int from = currentCompartment();
    int to = resolveCallee(calleeLib, from);
    if (from == to || policyFor(from, to).batch <= 1) {
        gate(calleeLib, fnName, [&] { body(); });
        return;
    }
    Thread *t = sched.current();
    int id = t ? t->id() : -1;
    {
        PendingBatch &pb = pendingBatches[id];
        if (!pb.bodies.empty() &&
            (pb.lib != calleeLib || std::strcmp(pb.fn, fnName) != 0)) {
            // A deferred call to a different target flushes the
            // pending batch first so the two boundaries stay ordered.
            flushBatchFor(id);
        }
    }
    PendingBatch &pb = pendingBatches[id]; // flush may have erased it
    pb.lib = calleeLib;
    pb.fn = fnName;
    pb.bodies.push_back(std::move(body));
    if (pb.bodies.size() >= static_cast<std::size_t>(
                                policyFor(from, to).batch))
        flushBatchFor(id);
}

void
Image::flushBatch()
{
    Thread *t = sched.current();
    flushBatchFor(t ? t->id() : -1);
}

void
Image::flushBatchFor(int threadId)
{
    auto it = pendingBatches.find(threadId);
    if (it == pendingBatches.end() || it->second.bodies.empty())
        return;
    // Move the batch out before crossing: the crossing can suspend
    // (an EPT RPC blocks on its completion) and re-enter this
    // function through the pre-suspension hook, which must then find
    // no pending work.
    PendingBatch pb = std::move(it->second);
    pendingBatches.erase(it);
    gateBatch(pb.lib, pb.fn, pb.bodies);
}

IsolationBackend &
Image::backendFor(int comp) const
{
    panic_if(comp < 0 ||
                 static_cast<std::size_t>(comp) >= compBackends.size(),
             "compartment index out of range");
    return *compBackends[static_cast<std::size_t>(comp)];
}

IsolationBackend &
Image::backendOf(Mechanism m) const
{
    for (const auto &b : backends)
        if (b->mechanism() == m)
            return *b;
    fatal("image instantiates no '", mechanismName(m), "' backend");
}

std::string
Image::backendNames() const
{
    std::string out;
    for (const auto &b : backends) {
        if (!out.empty())
            out += "+";
        out += b->name();
    }
    return out;
}

Image::~Image()
{
    shutdown();
}

void
Image::boot()
{
    panic_if(booted, "image booted twice");

    // ukboot: carve out per-compartment memory and the shared heap.
    for (auto &c : comps) {
        c->heapArena.resize(cfg.heapBytes);
        c->dataSection.resize(64 * 1024);
        c->rawHeap = std::make_unique<TlsfAllocator>(c->heapArena.data(),
                                                     c->heapArena.size());
        bool wantKasan = c->spec.hardenedWith(Hardening::Kasan) ||
                         c->spec.hardenedWith(Hardening::Asan);
        if (wantKasan) {
            c->kasanHeap = std::make_unique<KasanHeap>(*c->rawHeap);
            c->heap = c->kasanHeap.get();
        } else {
            c->heap = c->rawHeap.get();
        }

        // Functional hardening is active when the compartment, or any
        // component placed in it, enables the mechanism.
        auto anyLibWants = [&](Hardening h) {
            for (const auto &[lib, compIdx] : libToComp) {
                if (compIdx != c->id)
                    continue;
                auto it = cfg.libHardening.find(lib);
                if (it == cfg.libHardening.end())
                    continue;
                for (Hardening x : it->second)
                    if (x == h)
                        return true;
            }
            return false;
        };
        if (!wantKasan && (anyLibWants(Hardening::Kasan) ||
                           anyLibWants(Hardening::Asan))) {
            wantKasan = true;
            c->kasanHeap = std::make_unique<KasanHeap>(*c->rawHeap);
            c->heap = c->kasanHeap.get();
        }

        c->hardening.kasan = wantKasan;
        c->hardening.ubsan = c->spec.hardenedWith(Hardening::Ubsan) ||
                             anyLibWants(Hardening::Ubsan);
        c->hardening.cfi = c->spec.hardenedWith(Hardening::Cfi) ||
                           anyLibWants(Hardening::Cfi);
        c->hardening.stackProtector =
            c->spec.hardenedWith(Hardening::StackProtector) ||
            anyLibWants(Hardening::StackProtector);
        c->hardening.kasanHeap = c->kasanHeap.get();
        c->hardening.cfiRegistry = &c->cfiRegistry;
    }

    sharedArena.resize(cfg.sharedHeapBytes);
    sharedHeapAlloc = std::make_unique<TlsfAllocator>(sharedArena.data(),
                                                      sharedArena.size());

    registerRegions();
    for (auto &b : backends)
        b->boot(*this);

    // Reap a thread's simulated compartment stacks the moment it
    // finishes; long-running images would otherwise leak one memMap
    // region pair per (thread, compartment) ever seen.
    threadExitListener = sched.addThreadExitListener(
        [this](Thread &t) { reapSimStacks(t.id()); });

    // Deferred vectored calls must never ride a migration: flush a
    // thread's pending batch at every suspension point, while it is
    // still running on the core that queued the calls (only suspended
    // threads can be stolen or woken cross-core).
    sched.onPreSuspend = [this](Thread &t) { flushBatchFor(t.id()); };
    preSuspendHooked = true;

    // Boot-time cost: section protection, key setup, backend init.
    mach.consume(50'000 + 10'000 * comps.size());
    mach.bump("image.boots");
    booted = true;
}

void
Image::shutdown()
{
    if (!booted)
        return;
    // Tear the backends down in reverse boot order; each only touches
    // the compartments it owns (EPT stops its RPC servers, etc.).
    for (auto it = backends.rbegin(); it != backends.rend(); ++it)
        (*it)->shutdown(*this);
    sched.removeThreadExitListener(threadExitListener);
    threadExitListener = -1;
    if (preSuspendHooked) {
        sched.onPreSuspend = nullptr;
        preSuspendHooked = false;
    }
    pendingBatches.clear();
    lastBoundary.clear();
    unregisterRegions();
    booted = false;
}

void
Image::registerRegions()
{
    auto addRegion = [&](const void *base, std::size_t size, ProtKey key,
                         std::string name) {
        mach.memMap.add(base, size, key, std::move(name));
        registeredRegions.push_back(base);
    };

    auto addVmRegion = [&](const void *base, std::size_t size, int vm,
                           std::string name) {
        mach.memMap.addVmPrivate(base, size, vm, std::move(name));
        registeredRegions.push_back(base);
    };

    for (auto &c : comps) {
        if (c->vmPrivate) {
            // EPT: the compartment's memory lives in its VM's
            // second-level page tables, unmapped for everyone else —
            // no protection key consumed.
            addVmRegion(c->heapArena.data(), c->heapArena.size(), c->id,
                        c->spec.name + ".heap");
            addVmRegion(c->dataSection.data(), c->dataSection.size(),
                        c->id, c->spec.name + ".data");
        } else {
            addRegion(c->heapArena.data(), c->heapArena.size(), c->key,
                      c->spec.name + ".heap");
            addRegion(c->dataSection.data(), c->dataSection.size(),
                      c->key, c->spec.name + ".data");
        }
    }
    addRegion(sharedArena.data(), sharedArena.size(), sharedProtKey,
              "shared.heap");
}

void
Image::unregisterRegions()
{
    // Sim stacks were registered lazily; drop those regions too. Each
    // stack's own recorded sharing mode decides whether a separate
    // DSS-half region exists (the mode is per boundary, not global).
    for (auto &[key, stack] : simStacks) {
        mach.memMap.remove(stack.mem.get());
        if (stack.sharing == StackSharing::Dss)
            mach.memMap.remove(stack.mem.get() + SimStack::stackBytes);
    }
    simStacks.clear();
    for (const void *base : registeredRegions)
        mach.memMap.remove(base);
    registeredRegions.clear();
}

Compartment &
Image::compartmentAt(std::size_t idx)
{
    panic_if(idx >= comps.size(), "compartment index out of range");
    return *comps[idx];
}

int
Image::compartmentIndexOf(const std::string &lib) const
{
    auto it = libToComp.find(lib);
    fatal_if(it == libToComp.end(), "library '", lib,
             "' not assigned to any compartment");
    return it->second;
}

Compartment &
Image::compartmentOf(const std::string &lib)
{
    return *comps[static_cast<std::size_t>(compartmentIndexOf(lib))];
}

bool
Image::sameCompartment(const std::string &a, const std::string &b) const
{
    return compartmentIndexOf(a) == compartmentIndexOf(b);
}

int
Image::resolveCallee(const std::string &lib, int from) const
{
    // TCB libraries are replicated into every compartment when the
    // backend duplicates the kernel (EPT), and always for the memory
    // manager: each compartment owns a private allocator instance.
    auto it = libToComp.find(lib);
    if (it == libToComp.end()) {
        const LibraryInfo &info = reg.get(lib);
        fatal_if(!info.tcb, "library '", lib, "' not in the image");
        return from; // unassigned TCB service: local to every caller
    }
    // TCB replication is a property of the *caller's* compartment: a
    // compartment whose mechanism duplicates the kernel (EPT VMs) has
    // its own local copy; callers under non-replicating mechanisms
    // cross into the TCB library's home compartment.
    if (reg.get(lib).tcb && backendFor(from).replicatesTcb())
        return from;
    return it->second;
}

int
Image::currentCompartment() const
{
    Thread *t = sched.current();
    if (!t)
        return static_cast<int>(cfg.defaultCompartment());
    return t->currentCompartment;
}

const HardeningContext &
Image::currentHardening() const
{
    return comps[static_cast<std::size_t>(currentCompartment())]
        ->hardening;
}

void
Image::checkEntry(const std::string &lib, const char *fnName, int from,
                  int to, const GatePolicy &pol) const
{
    bool enforce = pol.validateEntry ||
                   backendOf(pol.mech).checksEntryPoints() ||
                   comps[static_cast<std::size_t>(to)]->spec.hardenedWith(
                       Hardening::Cfi);
    if (!enforce)
        return;
    if (!reg.isEntryPoint(lib, fnName)) {
        // Witness the rejection per attacked edge before raising, so
        // the adversary scorecard (and the controller's deny-witness
        // pass) can attribute the forged entry to its boundary.
        mach.bump("gate.validate.reject");
        mach.bump(
            "gate.validate.reject." +
            comps[static_cast<std::size_t>(from)]->spec.name + "->" +
            comps[static_cast<std::size_t>(to)]->spec.name);
        throw CfiViolation(std::string("gate to non-entry-point ") + lib +
                           "." + fnName);
    }
}

double
Image::libMultiplier(const std::string &lib) const
{
    auto it = libMults.find(lib);
    if (it != libMults.end())
        return it->second;
    // Unassigned TCB services execute in the caller's compartment and
    // inherit no extra instrumentation.
    return 1.0;
}

Thread *
Image::spawnIn(const std::string &lib, std::string name,
               std::function<void()> entry)
{
    int comp = compartmentIndexOf(lib);
    Compartment &c = *comps[static_cast<std::size_t>(comp)];
    Thread *t = sched.spawn(std::move(name), std::move(entry));
    t->currentCompartment = comp;
    t->pkru = c.domain;
    t->vm = c.vmPrivate ? comp : -1;
    t->workMult = libMultiplier(lib);
    return t;
}

void *
Image::sharedAlloc(std::size_t n)
{
    return sharedHeapAlloc->alloc(n);
}

void
Image::sharedFree(void *p)
{
    sharedHeapAlloc->free(p);
}

Allocator &
Image::heapOf(const std::string &lib)
{
    return *compartmentOf(lib).heap;
}

SimStack &
Image::simStackFor(int threadId, int comp, StackSharing sharing)
{
    auto key = std::make_pair(threadId, comp);
    auto it = simStacks.find(key);
    if (it != simStacks.end())
        return it->second;

    SimStack stack;
    stack.mem = std::make_unique<char[]>(2 * SimStack::stackBytes);
    stack.sharing = sharing;
    char *base = stack.mem.get();
    Compartment &c = *comps[static_cast<std::size_t>(comp)];

    // Private halves of a VM-private (EPT) compartment's stacks live
    // inside the VM, not behind a key.
    auto addPrivate = [&](char *p, std::size_t n, std::string tag) {
        if (c.vmPrivate)
            mach.memMap.addVmPrivate(p, n, comp, std::move(tag));
        else
            mach.memMap.add(p, n, c.key, std::move(tag));
    };

    std::string tag = "stack-t" + std::to_string(threadId) + "-c" +
                      std::to_string(comp);
    switch (sharing) {
      case StackSharing::Dss:
        // Lower half private, upper half (the DSS) in the shared domain.
        addPrivate(base, SimStack::stackBytes, tag);
        mach.memMap.add(base + SimStack::stackBytes, SimStack::stackBytes,
                        sharedProtKey, tag + ".dss");
        break;
      case StackSharing::SharedStack:
        // The whole stack is shared: cheap but weakest isolation.
        mach.memMap.add(base, 2 * SimStack::stackBytes, sharedProtKey,
                        tag + ".shared");
        break;
      case StackSharing::Heap:
        // Stack stays fully private; shared variables go to the heap.
        addPrivate(base, 2 * SimStack::stackBytes, tag);
        break;
    }
    auto [pos, inserted] = simStacks.emplace(key, std::move(stack));
    return pos->second;
}

void
Image::reapSimStacks(int threadId)
{
    // (threadId, comp) keys sort by thread id first, so a thread's
    // stacks are one contiguous map range.
    auto it = simStacks.lower_bound({threadId, 0});
    while (it != simStacks.end() && it->first.first == threadId) {
        mach.memMap.remove(it->second.mem.get());
        if (it->second.sharing == StackSharing::Dss)
            mach.memMap.remove(it->second.mem.get() +
                               SimStack::stackBytes);
        it = simStacks.erase(it);
        mach.bump("image.simStackReaps");
    }
    lastBoundary.erase(threadId);
    // A thread that exits with deferred calls still queued never
    // reached a flush point — drop them, visibly (the cancellation
    // unwind legitimately strands batches at teardown).
    auto pit = pendingBatches.find(threadId);
    if (pit != pendingBatches.end()) {
        if (!pit->second.bodies.empty())
            mach.bump("gate.batchDropped", pit->second.bodies.size());
        pendingBatches.erase(pit);
    }
}

std::string
Image::linkerScript() const
{
    std::ostringstream oss;
    oss << "/* FlexOS generated linker script (backends: "
        << backendNames() << ") */\n";
    oss << "SECTIONS\n{\n";
    oss << "    /* gate-policy matrix (from -> to : policy) */\n";
    for (const auto &f : comps) {
        for (const auto &t : comps) {
            if (f->id == t->id)
                continue;
            oss << "    /*   " << f->spec.name << " -> " << t->spec.name
                << " : " << policyFor(f->id, t->id).name() << " */\n";
        }
    }
    for (const auto &c : comps) {
        const std::string &n = c->spec.name;
        oss << "    /* compartment " << c->id << " '" << n << "' ";
        if (c->vmPrivate)
            oss << "vm-private (no key)";
        else
            oss << "key " << int(c->key);
        oss << " mechanism " << mechanismName(c->spec.mechanism)
            << " gate " << backendFor(c->id).name() << " */\n";
        oss << "    /*   aslr slide 0x" << std::hex << c->layoutSlide
            << std::dec << " (" << c->layoutEntropyBits
            << " bits entropy)"
            << (c->layoutEntropyBits == 0 ? " -- fixed layout" : "")
            << " */\n";
        std::string prot = c->vmPrivate
                               ? "ept vm " + std::to_string(c->id)
                               : "pkey " + std::to_string(int(c->key));
        oss << "    .text." << n << "    : { *(.text." << n << ") }\n";
        oss << "    .rodata." << n << "  : { *(.rodata." << n << ") }\n";
        oss << "    .data." << n << "    : { *(.data." << n
            << ") } /* " << c->dataSection.size() << " bytes, " << prot
            << " */\n";
        oss << "    .bss." << n << "     : { *(.bss." << n << ") }\n";
        oss << "    .heap." << n << "    : { . += " << cfg.heapBytes
            << "; } /* " << prot << " */\n";
    }
    oss << "    /* shared communication domain, pkey "
        << int(sharedProtKey) << " */\n";
    oss << "    .heap.shared   : { . += " << cfg.sharedHeapBytes
        << "; }\n";
    oss << "    .dss           : { /* per-thread doubled stacks, "
        << SimStack::stackBytes << " B halves */ }\n";
    oss << "}\n";
    return oss.str();
}

void
Image::yieldForSwap()
{
    // Kept out of the header's hot path: a plain cooperative yield —
    // the swapper is runnable (or will be woken by the next drained
    // crossing) and flips the matrix before this thread runs again.
    mach.bump("matrix.swapYields");
    sched.yield();
}

bool
Image::swapGateMatrix(GateMatrix next)
{
    panic_if(next.size() != gates.size(),
             "swapGateMatrix: matrix shape mismatch (", next.size(),
             " compartments vs ", gates.size(), ")");

    // Policy-identical swap: detected before any quiesce machinery
    // engages, so it is charge-free and counter-free — the regression
    // pin that a no-op swap is bit-identical to no swap at all.
    if (next == gates)
        return false;

    Thread *self = sched.current();
    int tid = self ? self->id() : -1;
    panic_if(crossingDepth.count(tid),
             "swapGateMatrix called from inside a gated crossing");

    // The swapper's own pending batch would otherwise be flushed by a
    // later suspension and cross under whichever matrix is live then;
    // flush it now so its calls are charged under the epoch that
    // queued them.
    flushBatch();

    // Quiesce: wait until no thread holds references into the live
    // matrix (a crossing blocked in an EPT ring RPC does). New
    // crossings park at the gate()-side barrier while swapWaiters > 0.
    ++swapWaiters;
    if (activeCrossings_ > 0)
        mach.bump("matrix.quiesceWaits");
    while (activeCrossings_ > 0) {
        if (self) {
            quiesceWait.wait(); // woken by the last CrossingScope
        } else {
            // Driver context: run the scheduler until the in-flight
            // crossings drain on their own.
            sched.runUntil([&] { return activeCrossings_ == 0; });
            panic_if(activeCrossings_ > 0,
                     "swapGateMatrix could not quiesce: a crossing is "
                     "blocked forever (execution dried up with ",
                     activeCrossings_, " crossings in flight)");
        }
    }
    --swapWaiters;

    GateMatrix old = std::move(gates);
    gates = std::move(next);
    gates.setEpoch(old.epoch() + 1);

    // Re-prime only the buckets whose budget actually changed: an
    // untouched boundary keeps its token level and refill timestamp
    // across the epoch, so a swap elsewhere cannot hand it a free
    // burst of freshly-primed tokens.
    std::size_t n = comps.size();
    for (std::size_t f = 0; f < n; ++f) {
        for (std::size_t t = 0; t < n; ++t) {
            const GatePolicy &np =
                gates.at(static_cast<int>(f), static_cast<int>(t));
            const GatePolicy &op =
                old.at(static_cast<int>(f), static_cast<int>(t));
            if (np.rate != op.rate || np.rateWindow != op.rateWindow ||
                np.weight != op.weight)
                gateBuckets[f * n + t] = GateBucket{};
        }
    }

    // Elision streaks are a same-policy-run optimisation; they do not
    // survive an epoch whose policies may differ.
    lastBoundary.clear();

    ackCoresAfterSwap();

    for (auto &b : backends)
        b->policyChanged(*this);

    mach.bump("matrix.swaps");
    mach.bump("matrix.epoch");
    return true;
}

void
Image::ackCoresAfterSwap()
{
    // A core acknowledges the new epoch by dispatching a thread after
    // the flip (every dispatch is a policy-safe point: the thread it
    // resumes is outside any crossing, by quiescence). Cores with no
    // runnable work are idle — trivially at a safe point.
    Thread *self = sched.current();
    int selfCore = self ? mach.activeCore() : -1;
    std::size_t cores = mach.coreCount();
    std::vector<std::uint64_t> mark(cores);
    for (std::size_t c = 0; c < cores; ++c)
        mark[c] = sched.dispatchesOn(static_cast<int>(c));
    for (std::size_t c = 0; c < cores; ++c) {
        int core = static_cast<int>(c);
        if (core == selfCore) {
            // The swapper's own core acks by running this code.
            mach.bump("matrix.coreAcks");
            continue;
        }
        if (self) {
            while (sched.coreHasRunnable(core) &&
                   sched.dispatchesOn(core) == mark[c])
                sched.yield();
        } else if (sched.coreHasRunnable(core)) {
            sched.runUntil([&] {
                return !sched.coreHasRunnable(core) ||
                       sched.dispatchesOn(core) != mark[c];
            });
        }
        mach.bump("matrix.coreAcks");
    }
}

Image::StatsSnapshot
Image::snapshotStats() const
{
    return mach.counters();
}

Image::StatsSnapshot
Image::statsDelta(const StatsSnapshot &before, const StatsSnapshot &now)
{
    StatsSnapshot out;
    for (const auto &[key, value] : now) {
        auto it = before.find(key);
        std::uint64_t prev = it == before.end() ? 0 : it->second;
        if (value > prev)
            out[key] = value - prev;
    }
    return out;
}

std::map<std::pair<int, int>, Image::BoundaryStat>
Image::boundaryStats() const
{
    std::map<std::pair<int, int>, BoundaryStat> out;
    for (const auto &[pair, count] : crossings) {
        BoundaryStat s;
        s.from = comps[static_cast<std::size_t>(pair.first)]->spec.name;
        s.to = comps[static_cast<std::size_t>(pair.second)]->spec.name;
        s.policy = policyFor(pair.first, pair.second).name();
        s.count = count;
        out.emplace(pair, std::move(s));
    }
    return out;
}

} // namespace flexos
