/**
 * @file
 * Safety configuration: the build-time input that selects the
 * compartmentalization, the isolation mechanism, the data-sharing
 * strategy and per-compartment software hardening (paper 3.0).
 *
 * The text format is the YAML subset used in the paper:
 *
 *     compartments:
 *     - comp1:
 *         mechanism: intel-mpk
 *         default: True
 *     - comp2:
 *         mechanism: intel-mpk
 *         hardening: [cfi, asan]
 *     libraries:
 *     - libredis: comp1
 *     - libopenjpg: comp2
 *     - lwip: comp2
 */

#ifndef FLEXOS_CORE_CONFIG_HH
#define FLEXOS_CORE_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace flexos {

/** Isolation mechanisms understood by the toolchain. */
enum class Mechanism
{
    None,         ///< single protection domain (vanilla Unikraft)
    IntelMpk,     ///< protection keys, intra-AS (paper 4.1)
    VmEpt,        ///< one VM per compartment, RPC gates (paper 4.2)
    Cheri,        ///< capability backend (sketch, paper 4.3)
    LinuxPt,      ///< baseline: page-table isolation via syscalls
    Sel4Ipc,      ///< baseline: microkernel IPC (seL4/Genode)
    CubicleMpk,   ///< baseline: CubicleOS MPK-via-pkey_mprotect
};

/** MPK gate flavours (paper 4.1). */
enum class MpkGateFlavor
{
    Light, ///< shared stack + registers; raw wrpkru pair (ERIM-like)
    Dss,   ///< full gate: register save/zero + stack switch (HODOR-like)
};

/** How shared stack variables are materialized (paper 4.1, Fig. 11a). */
enum class StackSharing
{
    Heap,        ///< convert stack allocations to shared-heap ones
    Dss,         ///< data shadow stacks
    SharedStack, ///< share the whole stack (cheapest, least safe)
};

/** Software hardening mechanisms (paper 4.5). */
enum class Hardening
{
    StackProtector,
    Ubsan,
    Kasan,
    Cfi,
    Asan, // userland flavour of kasan; same instrumentation point
};

/** Parse helpers for the enums (fatal on unknown names). */
Mechanism mechanismFromName(const std::string &name);
const char *mechanismName(Mechanism m);
Hardening hardeningFromName(const std::string &name);
const char *hardeningName(Hardening h);

/** One compartment in the configuration. */
struct CompartmentSpec
{
    std::string name;
    Mechanism mechanism = Mechanism::IntelMpk;
    bool isDefault = false;
    std::vector<Hardening> hardening;

    bool
    hardenedWith(Hardening h) const
    {
        for (Hardening x : hardening)
            if (x == h)
                return true;
        return false;
    }
};

/** A full safety configuration. */
struct SafetyConfig
{
    std::vector<CompartmentSpec> compartments;
    /** library name -> compartment name, in file order. */
    std::vector<std::pair<std::string, std::string>> libraries;

    /**
     * Per-library hardening on top of the compartment's (Figure 6
     * enables hardening per *component*). Config syntax:
     *     - lwip: comp2 [kasan, ubsan]
     */
    std::map<std::string, std::vector<Hardening>> libHardening;

    MpkGateFlavor mpkGate = MpkGateFlavor::Dss;
    StackSharing stackSharing = StackSharing::Dss;

    /** Per-compartment private heap size (bytes). */
    std::size_t heapBytes = 8 * 1024 * 1024;
    /** Shared communication heap size (bytes). */
    std::size_t sharedHeapBytes = 4 * 1024 * 1024;

    /** Parse the YAML-subset text; fatal on malformed input. */
    static SafetyConfig parse(const std::string &text);

    /** Serialize back to the config-file format. */
    std::string toText() const;

    /** Find a compartment spec by name (fatal if missing). */
    const CompartmentSpec &compartment(const std::string &name) const;

    /** The default compartment's index (fatal if none declared). */
    std::size_t defaultCompartment() const;

    /**
     * Distinct isolation mechanisms declared across compartments, in
     * first-appearance order. A heterogeneous (mixed-mechanism) image
     * has more than one entry; each gets its own backend instance.
     */
    std::vector<Mechanism> mechanisms() const;
};

} // namespace flexos

#endif // FLEXOS_CORE_CONFIG_HH
