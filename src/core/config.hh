/**
 * @file
 * Safety configuration: the build-time input that selects the
 * compartmentalization, the isolation mechanism, the data-sharing
 * strategy and per-compartment software hardening (paper 3.0).
 *
 * The text format is the YAML subset used in the paper:
 *
 *     compartments:
 *     - comp1:
 *         mechanism: intel-mpk
 *         default: True
 *     - comp2:
 *         mechanism: intel-mpk
 *         hardening: [cfi, asan]
 *     libraries:
 *     - libredis: comp1
 *     - libopenjpg: comp2
 *     - lwip: comp2
 *     boundaries:
 *     - comp1 -> comp2: {gate: light}
 *     - '*' -> comp2: {validate: true, rate: 1000, overflow: stall}
 *     - comp2 -> comp1: {deny: true}
 *
 * The optional `boundaries:` section overrides the gate policy of
 * individual (from, to) compartment pairs; see BoundaryRule/GateMatrix.
 * The full key-by-key reference, docs/config-reference.md, is generated
 * from the same tables the parser dispatches on (tools/config_doc).
 */

#ifndef FLEXOS_CORE_CONFIG_HH
#define FLEXOS_CORE_CONFIG_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flexos {

/** Isolation mechanisms understood by the toolchain. */
enum class Mechanism
{
    None,         ///< single protection domain (vanilla Unikraft)
    IntelMpk,     ///< protection keys, intra-AS (paper 4.1)
    VmEpt,        ///< one VM per compartment, RPC gates (paper 4.2)
    Cheri,        ///< capability backend (sketch, paper 4.3)
    LinuxPt,      ///< baseline: page-table isolation via syscalls
    Sel4Ipc,      ///< baseline: microkernel IPC (seL4/Genode)
    CubicleMpk,   ///< baseline: CubicleOS MPK-via-pkey_mprotect
};

/** MPK gate flavours (paper 4.1). */
enum class MpkGateFlavor
{
    Light, ///< shared stack + registers; raw wrpkru pair (ERIM-like)
    Dss,   ///< full gate: register save/zero + stack switch (HODOR-like)
};

/** How shared stack variables are materialized (paper 4.1, Fig. 11a). */
enum class StackSharing
{
    Heap,        ///< convert stack allocations to shared-heap ones
    Dss,         ///< data shadow stacks
    SharedStack, ///< share the whole stack (cheapest, least safe)
};

/** Software hardening mechanisms (paper 4.5). */
enum class Hardening
{
    StackProtector,
    Ubsan,
    Kasan,
    Cfi,
    Asan, // userland flavour of kasan; same instrumentation point
};

/**
 * What a rate-limited boundary does with a crossing that exceeds its
 * token budget (`overflow:` key): stall the caller until a token
 * refills (gate-storm containment: the boundary back-pressures), or
 * fail the crossing with a ThrottledCrossing error.
 */
enum class RateOverflow
{
    Stall,
    Fail,
};

/**
 * How the NIC spreads received flows across cores on a multi-core
 * image (`steering:` key): RSS hashes each connection's 4-tuple to one
 * of per-core receive queues, `single` funnels everything through
 * queue 0 (the single-core data path, kept as a control knob).
 */
enum class NicSteering
{
    Rss,
    Single,
};

/**
 * Which per-crossing safety legs a boundary may skip for consecutive
 * same-boundary calls from the same thread (`elide:` key). The streak
 * resets on any intervening crossing of a *different* boundary, so the
 * first call after a boundary change always pays the full legs.
 * Strictly less safe than None — the explore poset orders it so.
 */
enum class GateElide
{
    None,     ///< never skip (the default, full-strength policy)
    Validate, ///< skip the entry-validation charge on streaks
    Scrub,    ///< skip the return-path register scrub on streaks
    Both,     ///< skip both legs on streaks
};

/** Parse helpers for the enums (fatal on unknown names). */
Mechanism mechanismFromName(const std::string &name);
const char *mechanismName(Mechanism m);
Hardening hardeningFromName(const std::string &name);
const char *hardeningName(Hardening h);
StackSharing stackSharingFromName(const std::string &name);
const char *stackSharingName(StackSharing s);
const char *rateOverflowName(RateOverflow o);
NicSteering steeringFromName(const std::string &name);
const char *steeringName(NicSteering s);
GateElide elideFromName(const std::string &name);
const char *elideName(GateElide e);

/** Whether an elide mode covers entry validation / return scrubbing. */
inline bool
elidesValidate(GateElide e)
{
    return e == GateElide::Validate || e == GateElide::Both;
}
inline bool
elidesScrub(GateElide e)
{
    return e == GateElide::Scrub || e == GateElide::Both;
}

/**
 * Whether a mechanism's compartments occupy an MPK protection key in
 * the region model. EPT compartments are modelled as "unmapped outside
 * their VM" (key virtualization): their memory is reachable only from
 * threads executing inside the VM, so they consume no PKRU key and do
 * not count against the 15-compartment key budget.
 */
bool mechanismConsumesProtKey(Mechanism m);

/** RPC servers an EPT compartment's VM boots with by default. */
inline constexpr int defaultEptServers = 2;

/**
 * Default token-bucket refill window of a rate-limited boundary, in
 * virtual cycles (`window:` key): `rate: N` alone budgets N crossings
 * per this many vcycles.
 */
inline constexpr std::uint64_t defaultRateWindow = 1'000'000;

/** One compartment in the configuration. */
struct CompartmentSpec
{
    std::string name;
    Mechanism mechanism = Mechanism::IntelMpk;
    bool isDefault = false;
    std::vector<Hardening> hardening;

    /**
     * RPC server threads this compartment's VM boots with (EPT only;
     * `servers: N` in the config). The pool grows elastically under
     * load up to EptBackend's cap, so blocked RPC bodies cannot starve
     * the boundary.
     */
    int servers = defaultEptServers;
    /** Whether `servers:` was written explicitly (EPT-only key). */
    bool serversExplicit = false;

    bool
    hardenedWith(Hardening h) const
    {
        for (Hardening x : hardening)
            if (x == h)
                return true;
        return false;
    }
};

/**
 * The resolved gate policy of one (from, to) boundary — the first-class
 * value every crossing is enforced under. Defaults reproduce the
 * callee-side rule: the callee compartment's mechanism, the full DSS
 * flavour for MPK boundaries, no extra entry validation, and register
 * scrubbing on the return path.
 */
struct GatePolicy
{
    /** Mechanism enforcing the crossing (the callee compartment's). */
    Mechanism mech = Mechanism::None;
    /** MPK gate flavour used when mech is intel-mpk. */
    MpkGateFlavor flavor = MpkGateFlavor::Dss;
    /** Force caller-side entry-point validation on this edge. */
    bool validateEntry = false;
    /** Scrub the register set on the return path (DSS/EPT gates). */
    bool scrubReturn = true;
    /**
     * Validate the return site when the crossing comes back, the
     * return-path mirror of validateEntry: gates charge entry and
     * return legs separately, and each direction can be audited
     * independently (`validate_return:` key).
     */
    bool validateReturn = false;

    /**
     * Statically forbid this edge: crossings of the call graph the
     * configuration declares unreachable (least-privilege). Edges the
     * static call graph needs are rejected at image build; dynamic
     * crossings raise DeniedCrossing and bump `gate.denied`.
     */
    bool deny = false;

    /**
     * Crossing budget: at most `rate` crossings per `rateWindow`
     * virtual cycles (token bucket), 0 = unlimited. Overflowing
     * crossings bump `gate.throttled` and either stall until a token
     * refills or fail with ThrottledCrossing, per `overflow`.
     */
    std::uint64_t rate = 0;
    std::uint64_t rateWindow = defaultRateWindow;
    RateOverflow overflow = RateOverflow::Stall;

    /**
     * QoS weight of the edge's token bucket (`weight:` key): the
     * effective budget is rate x weight, so boundaries sharing a
     * wildcard `rate:` can be biased per caller instead of starving
     * FIFO-less. Throttled crossings additionally bump the per-caller
     * `gate.throttled.<from>` counter. Default 1 (no bias).
     */
    std::uint64_t weight = 1;

    /**
     * How shared stack variables are materialized for frames opened
     * behind this boundary — per-boundary since the data-sharing
     * strategy is a (from, to) knob like the gate itself. The global
     * `stack_sharing:` key desugars to a ('*','*') rule.
     */
    StackSharing stackSharing = StackSharing::Dss;

    /**
     * Vectored-crossing width (`batch:` key): up to this many queued
     * calls of the same boundary are submitted through ONE gate —
     * one EPT ring doorbell, one MPK/CHERI entry/return leg — with
     * each extra call charged only the per-slot dispatch cost.
     * Perf-only (every call still runs behind the boundary, and
     * throttle budgets are debited per logical call). 1 = no batching,
     * vcycle-identical to the unbatched gate by construction.
     */
    std::uint64_t batch = 1;

    /**
     * Doorbell-coalescing window in virtual cycles (`coalesce:` key,
     * EPT boundaries under back-pressure): a submission that finds the
     * ring non-empty within this window of the last doorbell skips the
     * doorbell — the already-ringing server will drain the slot. 0 =
     * ring every time.
     */
    std::uint64_t coalesce = 0;

    /**
     * Skip entry-validation and/or return-scrub legs for consecutive
     * same-boundary calls from the same thread (`elide:` key). The
     * streak resets on any intervening crossing, so the first call of
     * every run pays the full legs. Strictly less safe than None.
     */
    GateElide elide = GateElide::None;

    /**
     * Opt this edge into online policy adaptation (`adaptive:` key):
     * the runtime PolicyController may tighten or relax its rate /
     * overflow / validation knobs between epochs. Edges without the
     * opt-in (and all `deny:` edges) are never touched at runtime, so
     * an image with no adaptive edges behaves bit-identically to the
     * static model.
     */
    bool adaptive = false;

    /** Policy name, e.g. "intel-mpk(light)" or "vm-ept+validate". */
    std::string name() const;

    bool operator==(const GatePolicy &o) const = default;
};

/**
 * One rule of the `boundaries:` section. `from`/`to` are compartment
 * names or the wildcard "*"; unset fields leave the less specific
 * layer's (or the default policy's) value in place.
 */
struct BoundaryRule
{
    std::string from;
    std::string to;
    std::optional<MpkGateFlavor> flavor; ///< `gate: light|dss`
    std::optional<bool> validate;        ///< `validate: true|false`
    std::optional<bool> validateReturn;  ///< `validate_return: ...`
    std::optional<bool> scrub;           ///< `scrub: true|false`
    std::optional<bool> deny;            ///< `deny: true|false`
    std::optional<std::uint64_t> rate;   ///< `rate: N` (crossings)
    std::optional<std::uint64_t> window; ///< `window: N` (vcycles)
    std::optional<std::uint64_t> weight; ///< `weight: N` (QoS bias)
    std::optional<RateOverflow> overflow; ///< `overflow: stall|fail`
    /** `stack_sharing: heap|dss|shared-stack` */
    std::optional<StackSharing> stackSharing;
    std::optional<std::uint64_t> batch;    ///< `batch: N` (calls/gate)
    std::optional<std::uint64_t> coalesce; ///< `coalesce: N` (vcycles)
    std::optional<GateElide> elide; ///< `elide: validate|scrub|both|none`
    std::optional<bool> adaptive;   ///< `adaptive: true|false`

    /** "from -> to", for error messages. */
    std::string edgeName() const { return from + " -> " + to; }

    bool operator==(const BoundaryRule &o) const = default;
};

struct SafetyConfig;

/**
 * Runtime policy-controller parameters (`controller:` section). The
 * section's *presence* enables the controller; every key has a usable
 * default. The controller samples per-boundary counters once per
 * `epoch` virtual cycles and only ever adapts boundaries that opt in
 * with `adaptive: true` — an image without the section (or without any
 * adaptive edge) runs the static model unchanged.
 */
struct ControllerConfig
{
    /** Sample window in virtual cycles (`epoch:` key). */
    std::uint64_t epoch = 1'000'000;

    /**
     * Crossings per epoch on one boundary that count as a gate storm
     * (`storm_threshold:` key): the controller imposes/halves a
     * `rate` budget on adaptive edges that exceed it, escalating
     * `overflow: fail` and entry/return validation on persistence.
     */
    std::uint64_t stormThreshold = 1'000;

    /**
     * Hysteresis (`calm_epochs:` key): epochs a tightened boundary
     * must stay below the storm threshold before the controller
     * relaxes it one step back toward its configured policy.
     */
    std::uint64_t calmEpochs = 3;

    /**
     * DeniedCrossing witnesses on one edge within an epoch that raise
     * a `controller.alerts` alert and harden the offender's outgoing
     * adaptive edges to the full DSS flavour (`deny_alert:` key).
     */
    std::uint64_t denyAlert = 1;

    /**
     * NIC backlog (frames per queue) above which the controller widens
     * the adaptive RX burst / `batch:` width, NAPI-budget style
     * (`queue_high:` key). Widths narrow again once the backlog stays
     * under half this mark. 0 disables batch-width adaptation.
     */
    std::uint64_t queueHigh = 8;

    bool operator==(const ControllerConfig &o) const = default;
};

/**
 * The (from, to) gate-policy matrix resolved from a configuration:
 * one GatePolicy per ordered compartment pair. Rules are layered by
 * specificity — ('*','*') then (from,'*') then ('*',to) then exact —
 * so callee-side wildcards override caller-side ones, matching the
 * historical callee-decides dispatch rule. Two rules of *equal*
 * specificity that disagree on a field for the same cell are a fatal
 * user error (no silent precedence), as is mixing `deny: true` with a
 * `rate:` budget at equal specificity — deny, rate and the scalar
 * knobs have no precedence order among themselves.
 */
class GateMatrix
{
  public:
    /** Resolve the matrix (fatal on rules naming unknown comps). */
    static GateMatrix build(const SafetyConfig &cfg);

    /** Policy of the (from, to) boundary. */
    const GatePolicy &at(int from, int to) const;

    /**
     * Replace the (from, to) cell — the runtime controller's mutation
     * primitive. Only ever applied to a *pending* copy of the matrix;
     * the live matrix changes solely through Image::swapGateMatrix's
     * quiesced epoch flip.
     */
    void set(int from, int to, const GatePolicy &p);

    /** Number of compartments (the matrix is size x size). */
    std::size_t size() const { return n; }

    /**
     * Swap epoch of the live matrix: 0 for the boot matrix, +1 per
     * effective swapGateMatrix. Version bookkeeping, not policy — the
     * equality below deliberately ignores it so a swap to an
     * identical matrix can be detected (and elided) cheaply.
     */
    std::uint64_t epoch() const { return epoch_; }
    void setEpoch(std::uint64_t e) { epoch_ = e; }

    /** Policy equality: same shape, same cells (epoch ignored). */
    bool operator==(const GateMatrix &o) const
    {
        return n == o.n && cells == o.cells;
    }

  private:
    std::size_t n = 0;
    std::uint64_t epoch_ = 0;
    std::vector<GatePolicy> cells; ///< row-major [from * n + to]
};

/** A full safety configuration. */
struct SafetyConfig
{
    std::vector<CompartmentSpec> compartments;
    /** library name -> compartment name, in file order. */
    std::vector<std::pair<std::string, std::string>> libraries;

    /**
     * Per-library hardening on top of the compartment's (Figure 6
     * enables hardening per *component*). Config syntax:
     *     - lwip: comp2 [kasan, ubsan]
     */
    std::map<std::string, std::vector<Hardening>> libHardening;

    /**
     * Per-boundary policy overrides in declaration order. The legacy
     * global `mpk_gate:` knob desugars to a ('*','*') flavour rule.
     */
    std::vector<BoundaryRule> boundaries;

    /**
     * Image-wide default shared-stack strategy: the value the gate
     * matrix seeds every cell's stackSharing with before boundary
     * rules layer on top. The config key `stack_sharing:` both sets
     * this field and desugars to a ('*','*') rule so it round-trips
     * through toText(); programmatic users may simply assign it.
     */
    StackSharing stackSharing = StackSharing::Dss;

    /** Per-compartment private heap size (bytes). */
    std::size_t heapBytes = 8 * 1024 * 1024;
    /** Shared communication heap size (bytes). */
    std::size_t sharedHeapBytes = 4 * 1024 * 1024;

    /**
     * Simulated cores the image boots (`cores: N`). One per-core NIC
     * queue and poller is spawned for each; `cores: 1` is the exact
     * single-core model every earlier config ran under.
     */
    unsigned cores = 1;

    /**
     * Flow steering across cores (`steering:`); only meaningful when
     * cores > 1. Default RSS.
     */
    NicSteering steering = NicSteering::Rss;

    /**
     * Runtime policy controller (`controller:` section). Engaged when
     * present; see ControllerConfig for the per-key semantics.
     */
    std::optional<ControllerConfig> controller;

    /** Parse the YAML-subset text; fatal on malformed input. */
    static SafetyConfig parse(const std::string &text);

    /** Serialize back to the config-file format. */
    std::string toText() const;

    /** Find a compartment spec by name (fatal if missing). */
    const CompartmentSpec &compartment(const std::string &name) const;

    /** Index of a compartment by name, or -1 if unknown. */
    int compartmentIndex(const std::string &name) const;

    /** The default compartment's index (fatal if none declared). */
    std::size_t defaultCompartment() const;

    /**
     * Distinct isolation mechanisms declared across compartments, in
     * first-appearance order. A heterogeneous (mixed-mechanism) image
     * has more than one entry; each gets its own backend instance.
     */
    std::vector<Mechanism> mechanisms() const;
};

/**
 * @name Self-describing config surface.
 *
 * The parser dispatches the per-section keys off static tables whose
 * entries carry the key name, its value syntax and one line of
 * documentation. configReferenceMarkdown() renders those same tables
 * (plus the enum-name tables behind the *FromName helpers) as
 * docs/config-reference.md, so the generated reference cannot drift
 * from what the parser accepts — CI regenerates it and fails on diff.
 * @{
 */

/** One documented config key, as the parser knows it. */
struct ConfigKeyInfo
{
    const char *section; ///< e.g. "compartments", "boundaries"
    const char *key;     ///< e.g. "mechanism", "rate"
    const char *values;  ///< value syntax, e.g. "light | dss"
    const char *doc;     ///< one-line description
};

/** Every key the parser accepts, section by section. */
const std::vector<ConfigKeyInfo> &configKeyReference();

/** The full generated config reference (docs/config-reference.md). */
std::string configReferenceMarkdown();

/** @} */

} // namespace flexos

#endif // FLEXOS_CORE_CONFIG_HH
