/**
 * @file
 * Safety configuration: the build-time input that selects the
 * compartmentalization, the isolation mechanism, the data-sharing
 * strategy and per-compartment software hardening (paper 3.0).
 *
 * The text format is the YAML subset used in the paper:
 *
 *     compartments:
 *     - comp1:
 *         mechanism: intel-mpk
 *         default: True
 *     - comp2:
 *         mechanism: intel-mpk
 *         hardening: [cfi, asan]
 *     libraries:
 *     - libredis: comp1
 *     - libopenjpg: comp2
 *     - lwip: comp2
 *     boundaries:
 *     - comp1 -> comp2: {gate: light}
 *     - '*' -> comp2: {validate: true}
 *
 * The optional `boundaries:` section overrides the gate policy of
 * individual (from, to) compartment pairs; see BoundaryRule/GateMatrix.
 */

#ifndef FLEXOS_CORE_CONFIG_HH
#define FLEXOS_CORE_CONFIG_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flexos {

/** Isolation mechanisms understood by the toolchain. */
enum class Mechanism
{
    None,         ///< single protection domain (vanilla Unikraft)
    IntelMpk,     ///< protection keys, intra-AS (paper 4.1)
    VmEpt,        ///< one VM per compartment, RPC gates (paper 4.2)
    Cheri,        ///< capability backend (sketch, paper 4.3)
    LinuxPt,      ///< baseline: page-table isolation via syscalls
    Sel4Ipc,      ///< baseline: microkernel IPC (seL4/Genode)
    CubicleMpk,   ///< baseline: CubicleOS MPK-via-pkey_mprotect
};

/** MPK gate flavours (paper 4.1). */
enum class MpkGateFlavor
{
    Light, ///< shared stack + registers; raw wrpkru pair (ERIM-like)
    Dss,   ///< full gate: register save/zero + stack switch (HODOR-like)
};

/** How shared stack variables are materialized (paper 4.1, Fig. 11a). */
enum class StackSharing
{
    Heap,        ///< convert stack allocations to shared-heap ones
    Dss,         ///< data shadow stacks
    SharedStack, ///< share the whole stack (cheapest, least safe)
};

/** Software hardening mechanisms (paper 4.5). */
enum class Hardening
{
    StackProtector,
    Ubsan,
    Kasan,
    Cfi,
    Asan, // userland flavour of kasan; same instrumentation point
};

/** Parse helpers for the enums (fatal on unknown names). */
Mechanism mechanismFromName(const std::string &name);
const char *mechanismName(Mechanism m);
Hardening hardeningFromName(const std::string &name);
const char *hardeningName(Hardening h);

/**
 * Whether a mechanism's compartments occupy an MPK protection key in
 * the region model. EPT compartments are modelled as "unmapped outside
 * their VM" (key virtualization): their memory is reachable only from
 * threads executing inside the VM, so they consume no PKRU key and do
 * not count against the 15-compartment key budget.
 */
bool mechanismConsumesProtKey(Mechanism m);

/** RPC servers an EPT compartment's VM boots with by default. */
inline constexpr int defaultEptServers = 2;

/** One compartment in the configuration. */
struct CompartmentSpec
{
    std::string name;
    Mechanism mechanism = Mechanism::IntelMpk;
    bool isDefault = false;
    std::vector<Hardening> hardening;

    /**
     * RPC server threads this compartment's VM boots with (EPT only;
     * `servers: N` in the config). The pool grows elastically under
     * load up to EptBackend's cap, so blocked RPC bodies cannot starve
     * the boundary.
     */
    int servers = defaultEptServers;
    /** Whether `servers:` was written explicitly (EPT-only key). */
    bool serversExplicit = false;

    bool
    hardenedWith(Hardening h) const
    {
        for (Hardening x : hardening)
            if (x == h)
                return true;
        return false;
    }
};

/**
 * The resolved gate policy of one (from, to) boundary — the first-class
 * value every crossing is enforced under. Defaults reproduce the
 * callee-side rule: the callee compartment's mechanism, the full DSS
 * flavour for MPK boundaries, no extra entry validation, and register
 * scrubbing on the return path.
 */
struct GatePolicy
{
    /** Mechanism enforcing the crossing (the callee compartment's). */
    Mechanism mech = Mechanism::None;
    /** MPK gate flavour used when mech is intel-mpk. */
    MpkGateFlavor flavor = MpkGateFlavor::Dss;
    /** Force caller-side entry-point validation on this edge. */
    bool validateEntry = false;
    /** Scrub the register set on the return path (DSS/EPT gates). */
    bool scrubReturn = true;

    /** Policy name, e.g. "intel-mpk(light)" or "vm-ept+validate". */
    std::string name() const;

    bool operator==(const GatePolicy &o) const = default;
};

/**
 * One rule of the `boundaries:` section. `from`/`to` are compartment
 * names or the wildcard "*"; unset fields leave the less specific
 * layer's (or the default policy's) value in place.
 */
struct BoundaryRule
{
    std::string from;
    std::string to;
    std::optional<MpkGateFlavor> flavor; ///< `gate: light|dss`
    std::optional<bool> validate;        ///< `validate: true|false`
    std::optional<bool> scrub;           ///< `scrub: true|false`

    bool operator==(const BoundaryRule &o) const = default;
};

struct SafetyConfig;

/**
 * The (from, to) gate-policy matrix resolved from a configuration:
 * one GatePolicy per ordered compartment pair. Rules are layered by
 * specificity — ('*','*') then (from,'*') then ('*',to) then exact —
 * so callee-side wildcards override caller-side ones, matching the
 * historical callee-decides dispatch rule; later rules of equal
 * specificity win.
 */
class GateMatrix
{
  public:
    /** Resolve the matrix (fatal on rules naming unknown comps). */
    static GateMatrix build(const SafetyConfig &cfg);

    /** Policy of the (from, to) boundary. */
    const GatePolicy &at(int from, int to) const;

    /** Number of compartments (the matrix is size x size). */
    std::size_t size() const { return n; }

  private:
    std::size_t n = 0;
    std::vector<GatePolicy> cells; ///< row-major [from * n + to]
};

/** A full safety configuration. */
struct SafetyConfig
{
    std::vector<CompartmentSpec> compartments;
    /** library name -> compartment name, in file order. */
    std::vector<std::pair<std::string, std::string>> libraries;

    /**
     * Per-library hardening on top of the compartment's (Figure 6
     * enables hardening per *component*). Config syntax:
     *     - lwip: comp2 [kasan, ubsan]
     */
    std::map<std::string, std::vector<Hardening>> libHardening;

    /**
     * Per-boundary policy overrides in declaration order. The legacy
     * global `mpk_gate:` knob desugars to a ('*','*') flavour rule.
     */
    std::vector<BoundaryRule> boundaries;

    StackSharing stackSharing = StackSharing::Dss;

    /** Per-compartment private heap size (bytes). */
    std::size_t heapBytes = 8 * 1024 * 1024;
    /** Shared communication heap size (bytes). */
    std::size_t sharedHeapBytes = 4 * 1024 * 1024;

    /** Parse the YAML-subset text; fatal on malformed input. */
    static SafetyConfig parse(const std::string &text);

    /** Serialize back to the config-file format. */
    std::string toText() const;

    /** Find a compartment spec by name (fatal if missing). */
    const CompartmentSpec &compartment(const std::string &name) const;

    /** Index of a compartment by name, or -1 if unknown. */
    int compartmentIndex(const std::string &name) const;

    /** The default compartment's index (fatal if none declared). */
    std::size_t defaultCompartment() const;

    /**
     * Distinct isolation mechanisms declared across compartments, in
     * first-appearance order. A heterogeneous (mixed-mechanism) image
     * has more than one entry; each gets its own backend instance.
     */
    std::vector<Mechanism> mechanisms() const;
};

} // namespace flexos

#endif // FLEXOS_CORE_CONFIG_HH
