/**
 * @file
 * Software hardening (paper 4.5): functional analogues of the hardening
 * mechanisms FlexOS can enable per compartment.
 *
 * - KASan/ASan: a redzone+quarantine wrapper around the compartment's
 *   allocator that detects heap overflow and use-after-free on checked
 *   accesses.
 * - UBSan: checked integer arithmetic and bounds helpers.
 * - CFI: call gates validate entry points against the library registry;
 *   indirect calls validate targets against a registered set.
 * - Stack protector: canaries on DSS frames.
 *
 * Each mechanism also carries a work-multiplier cost (timing.hh) that
 * the gates apply to the instrumented compartment.
 */

#ifndef FLEXOS_CORE_HARDENING_HH
#define FLEXOS_CORE_HARDENING_HH

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "core/config.hh"
#include "ukalloc/allocator.hh"

namespace flexos {

/** Base class of all hardening-detected violations. */
class HardeningViolation : public std::runtime_error
{
  public:
    HardeningViolation(const std::string &kind, const std::string &what)
        : std::runtime_error(kind + ": " + what), kind(kind)
    {
    }

    std::string kind;
};

/** KASan report: heap overflow / use-after-free / invalid free. */
class KasanViolation : public HardeningViolation
{
  public:
    explicit KasanViolation(const std::string &what)
        : HardeningViolation("kasan", what)
    {
    }
};

/** UBSan report: overflow, bad shift, out-of-bounds index. */
class UbsanViolation : public HardeningViolation
{
  public:
    explicit UbsanViolation(const std::string &what)
        : HardeningViolation("ubsan", what)
    {
    }
};

/** CFI report: illegal entry point or indirect-call target. */
class CfiViolation : public HardeningViolation
{
  public:
    explicit CfiViolation(const std::string &what)
        : HardeningViolation("cfi", what)
    {
    }
};

/** Stack-protector report: smashed canary. */
class CanaryViolation : public HardeningViolation
{
  public:
    explicit CanaryViolation(const std::string &what)
        : HardeningViolation("stack-protector", what)
    {
    }
};

/**
 * KASan-style allocator wrapper: pads every allocation with redzones,
 * tracks liveness, quarantines frees to catch use-after-free, and
 * validates checked accesses.
 */
class KasanHeap : public Allocator
{
  public:
    static constexpr std::size_t redzone = 16;
    static constexpr std::size_t quarantineLimit = 256 * 1024;

    explicit KasanHeap(Allocator &inner);
    ~KasanHeap() override;

    void *alloc(std::size_t size) override;
    void free(void *p) override;
    std::size_t blockSize(const void *p) const override;
    const char *name() const override { return "kasan"; }

    /**
     * Validate an access of n bytes at p. Throws KasanViolation on a
     * redzone hit or freed block; unknown addresses pass (they belong
     * to other memory, e.g. stacks, which KASan shadows separately).
     */
    void check(const void *p, std::size_t n) const;

    /** Number of violations that would have been reported. */
    std::uint64_t reports() const { return reportCount; }

  private:
    struct Slot
    {
        std::size_t userSize;
        bool live;
    };

    void flushQuarantine();

    Allocator &inner;
    /** user pointer -> slot info (live and quarantined). */
    std::map<std::uintptr_t, Slot> slots;
    std::deque<void *> quarantine;
    std::size_t quarantineBytes = 0;
    mutable std::uint64_t reportCount = 0;
};

/** UBSan-style checked arithmetic. All throw UbsanViolation. */
namespace ubsan {

template <typename T>
T
addChecked(T a, T b)
{
    T out;
    if (__builtin_add_overflow(a, b, &out))
        throw UbsanViolation("signed integer overflow in addition");
    return out;
}

template <typename T>
T
subChecked(T a, T b)
{
    T out;
    if (__builtin_sub_overflow(a, b, &out))
        throw UbsanViolation("signed integer overflow in subtraction");
    return out;
}

template <typename T>
T
mulChecked(T a, T b)
{
    T out;
    if (__builtin_mul_overflow(a, b, &out))
        throw UbsanViolation("signed integer overflow in multiplication");
    return out;
}

template <typename T>
T
shlChecked(T v, unsigned amount)
{
    if (amount >= sizeof(T) * 8)
        throw UbsanViolation("shift amount out of range");
    return static_cast<T>(v << amount);
}

inline std::size_t
indexChecked(std::size_t idx, std::size_t bound)
{
    if (idx >= bound)
        throw UbsanViolation("index out of bounds");
    return idx;
}

} // namespace ubsan

/**
 * CFI indirect-call registry: the toolchain's answer to function
 * pointers crossing compartments (paper 3.1 requires annotating the
 * possible targets; the gate then validates).
 */
class CfiRegistry
{
  public:
    /** Register a legal indirect-call target. */
    void registerTarget(const void *fn, const std::string &name);

    /** Validate a target before an indirect call. */
    void checkCall(const void *fn) const;

    bool known(const void *fn) const { return targets.count(fn) != 0; }

  private:
    std::map<const void *, std::string> targets;
};

/**
 * The per-compartment hardening context handed to library code: a
 * single object carrying which mechanisms are live plus their runtime
 * state. Checks degrade to no-ops when the mechanism is off, so library
 * code is written once (the "porting" state) and the build-time config
 * decides what actually executes — mirroring the paper's build-time
 * instantiation.
 */
struct HardeningContext
{
    bool kasan = false;
    bool ubsan = false;
    bool cfi = false;
    bool stackProtector = false;

    KasanHeap *kasanHeap = nullptr;
    CfiRegistry *cfiRegistry = nullptr;

    /** Checked memory access (no-op unless kasan). */
    void
    checkAccess(const void *p, std::size_t n) const
    {
        if (kasan && kasanHeap)
            kasanHeap->check(p, n);
    }

    /** Checked addition (plain add unless ubsan). */
    template <typename T>
    T
    add(T a, T b) const
    {
        return ubsan ? ubsan::addChecked(a, b) : static_cast<T>(a + b);
    }

    template <typename T>
    T
    mul(T a, T b) const
    {
        return ubsan ? ubsan::mulChecked(a, b) : static_cast<T>(a * b);
    }

    std::size_t
    index(std::size_t idx, std::size_t bound) const
    {
        return ubsan ? ubsan::indexChecked(idx, bound) : idx;
    }

    /** Checked indirect call target (no-op unless cfi). */
    void
    checkIndirect(const void *fn) const
    {
        if (cfi && cfiRegistry)
            cfiRegistry->checkCall(fn);
    }
};

/** Extra work (percent) a hardening mechanism costs, from the model. */
unsigned hardeningCostPct(Hardening h, const struct TimingModel &tm);

/** Combined multiplier for a hardening set. */
double hardeningMultiplier(const std::vector<Hardening> &set,
                           const struct TimingModel &tm);

} // namespace flexos

#endif // FLEXOS_CORE_HARDENING_HH
