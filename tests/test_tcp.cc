/**
 * @file
 * Tests for the TCP/IP stack: wire formats, checksums, handshake, data
 * transfer, flow control, teardown, and property tests under loss and
 * reordering injected at the NIC.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "net/tcp.hh"

namespace flexos {
namespace {

TEST(Proto, InetChecksumKnownVector)
{
    // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 (one's
    // complement folded), checksum = ~0xddf2 = 0x220d.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(inetChecksum(data, sizeof(data)), 0x220d);
}

TEST(Proto, ChecksumOddLength)
{
    const std::uint8_t data[] = {0xab};
    // sum = 0xab00 -> checksum = ~0xab00 = 0x54ff
    EXPECT_EQ(inetChecksum(data, 1), 0x54ff);
}

TEST(Proto, Ip4RoundTrip)
{
    std::uint8_t wire[Ip4Header::wireSize];
    Ip4Header h;
    h.totalLen = 40;
    h.id = 7;
    h.src = makeIp(10, 0, 0, 1);
    h.dst = makeIp(10, 0, 0, 2);
    h.serialize(wire);

    Ip4Header parsed;
    ASSERT_TRUE(parsed.parse(wire, sizeof(wire) + 20));
    EXPECT_EQ(parsed.totalLen, 40);
    EXPECT_EQ(parsed.src, h.src);
    EXPECT_EQ(parsed.dst, h.dst);
}

TEST(Proto, Ip4CorruptionDetected)
{
    std::uint8_t wire[Ip4Header::wireSize];
    Ip4Header h;
    h.totalLen = 40;
    h.src = makeIp(10, 0, 0, 1);
    h.dst = makeIp(10, 0, 0, 2);
    h.serialize(wire);
    wire[15] ^= 0x40; // flip a bit in the source address
    Ip4Header parsed;
    EXPECT_FALSE(parsed.parse(wire, sizeof(wire) + 20));
}

TEST(Proto, TcpChecksumCoversPayloadAndPseudoHeader)
{
    std::uint8_t seg[TcpHeader::wireSize + 5];
    std::uint8_t *payload = seg + TcpHeader::wireSize;
    std::memcpy(payload, "hello", 5);
    TcpHeader h;
    h.srcPort = 1234;
    h.dstPort = 80;
    h.seq = 42;
    h.ack = 7;
    h.flags = tcpAck | tcpPsh;
    h.window = 5000;
    std::uint32_t src = makeIp(1, 2, 3, 4), dst = makeIp(5, 6, 7, 8);
    h.serialize(seg, src, dst, payload, 5);

    TcpHeader parsed;
    ASSERT_TRUE(parsed.parse(seg, sizeof(seg), src, dst));
    EXPECT_EQ(parsed.seq, 42u);
    EXPECT_EQ(parsed.window, 5000);

    // Payload corruption must break the checksum.
    payload[2] ^= 1;
    EXPECT_FALSE(parsed.parse(seg, sizeof(seg), src, dst));
    payload[2] ^= 1;
    // Wrong pseudo-header (different src IP) must too.
    EXPECT_FALSE(parsed.parse(seg, sizeof(seg), src + 1, dst));
}

TEST(Proto, SeqArithmeticWraps)
{
    EXPECT_TRUE(seqLt(0xfffffff0u, 0x10u));
    EXPECT_FALSE(seqLt(0x10u, 0xfffffff0u));
    EXPECT_TRUE(seqLe(5u, 5u));
}

TEST(NetBuf, PushPullAppend)
{
    NetBuf b(256, 64);
    b.append("abc", 3);
    EXPECT_EQ(b.size(), 3u);
    std::uint8_t *hdr = b.push(2);
    hdr[0] = 'H';
    hdr[1] = 'I';
    EXPECT_EQ(b.size(), 5u);
    EXPECT_EQ(std::memcmp(b.data(), "HIabc", 5), 0);
    b.pull(2);
    EXPECT_EQ(std::memcmp(b.data(), "abc", 3), 0);
    EXPECT_THROW(b.pull(99), PanicError);
}

TEST(NetBuf, MoveResetsSource)
{
    NetBuf a(256, 64);
    a.append("abc", 3);
    NetBuf b = std::move(a);
    EXPECT_EQ(b.size(), 3u);
    EXPECT_EQ(std::memcmp(b.data(), "abc", 3), 0);

    // The moved-from buffer must not keep stale sizes over its emptied
    // storage (the corruption class behind the netbuf panic).
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(a.headroom(), 0u);
    EXPECT_EQ(a.capacity(), 0u);
    EXPECT_EQ(a.tailroom(), 0u);
    EXPECT_THROW(a.pull(1), PanicError);

    NetBuf c(128, 32);
    c.append("x", 1);
    c = std::move(b);
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(std::memcmp(c.data(), "abc", 3), 0);
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.headroom(), 0u);
    EXPECT_EQ(b.capacity(), 0u);

    // reset() restores a sane empty state, clamped to the capacity.
    b.reset();
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.headroom(), 0u); // moved-from: no storage to reserve
    c.reset(16);
    EXPECT_EQ(c.size(), 0u);
    EXPECT_EQ(c.headroom(), 16u);
    c.append("hello", 5);
    EXPECT_EQ(std::memcmp(c.data(), "hello", 5), 0);
}

TEST(NetBuf, ViewSliceAndTrim)
{
    NetBuf b(256, 64);
    b.append("abcdefgh", 8);

    NetBufView v = b.view();
    EXPECT_EQ(v.size(), 8u);
    EXPECT_EQ(v[0], 'a');
    EXPECT_EQ(std::memcmp(v.data(), "abcdefgh", 8), 0);

    NetBufView mid = v.sub(2, 4);
    EXPECT_EQ(mid.size(), 4u);
    EXPECT_EQ(std::memcmp(mid.data(), "cdef", 4), 0);

    // Open-ended slice clamps to the remainder.
    NetBufView tail = b.view(5);
    EXPECT_EQ(tail.size(), 3u);
    EXPECT_EQ(std::memcmp(tail.data(), "fgh", 3), 0);

    mid.pull(1);
    EXPECT_EQ(std::memcmp(mid.data(), "def", 3), 0);
    mid.trimBack(1);
    EXPECT_EQ(mid.size(), 2u);
    EXPECT_EQ(std::memcmp(mid.data(), "de", 2), 0);

    EXPECT_THROW(v.sub(9), PanicError);
    EXPECT_THROW(mid.pull(3), PanicError);
    EXPECT_THROW(mid.trimBack(3), PanicError);
}

TEST(Nic, LinkDeliversFramesInOrder)
{
    Machine m;
    MachineScope scope(m);
    Link link;
    NetBuf f1, f2;
    f1.append("one", 3);
    f2.append("two", 3);
    link.endA().transmit(std::move(f1));
    link.endA().transmit(std::move(f2));
    auto r1 = link.endB().receive();
    auto r2 = link.endB().receive();
    ASSERT_TRUE(r1 && r2);
    EXPECT_EQ(std::memcmp(r1->data(), "one", 3), 0);
    EXPECT_EQ(std::memcmp(r2->data(), "two", 3), 0);
    EXPECT_FALSE(link.endB().receive());
}

/**
 * Full two-stack harness: server at 10.0.0.1 (endA), client at 10.0.0.2
 * (endB), both polled by fibers on one scheduler.
 */
struct TcpFixture : ::testing::Test
{
    TcpFixture()
        : scope(mach), sched(mach),
          server(mach, sched, link.endA(), makeIp(10, 0, 0, 1)),
          client(mach, sched, link.endB(), makeIp(10, 0, 0, 2))
    {
        // Shrink timeouts so loss tests converge quickly.
        server.baseRtoNs = 2'000'000;
        client.baseRtoNs = 2'000'000;
        server.startPoller("srv-poll");
        client.startPoller("cli-poll");
    }

    ~TcpFixture() override
    {
        server.stop();
        client.stop();
        sched.run();
        // Unwind fibers still blocked in recv/accept while the network
        // stacks (and their sockets) are alive.
        sched.cancelAll();
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    Link link;
    NetStack server;
    NetStack client;
};

TEST_F(TcpFixture, HandshakeEstablishesBothEnds)
{
    TcpSocket *accepted = nullptr;
    TcpSocket *conn = nullptr;
    server.listen(80);
    TcpSocket *listener = nullptr;
    // Re-listen via pointer: listen() already returned the socket.
    sched.spawn("srv", [&] {
        // accept on the existing listener
    });
    listener = server.listen(81);
    sched.spawn("srv-accept", [&] { accepted = listener->accept(); });
    sched.spawn("cli", [&] {
        conn = client.connect(makeIp(10, 0, 0, 1), 81);
    });
    ASSERT_TRUE(sched.runUntil([&] { return accepted && conn; }));
    EXPECT_TRUE(conn->established());
    EXPECT_TRUE(accepted->established());
    EXPECT_EQ(accepted->remotePort(), conn->localPort());
}

TEST_F(TcpFixture, ConnectToClosedPortFails)
{
    TcpSocket *conn = reinterpret_cast<TcpSocket *>(1);
    sched.spawn("cli", [&] {
        conn = client.connect(makeIp(10, 0, 0, 1), 9999);
    });
    // No listener: SYN is dropped; the connect retries until we give up
    // waiting. Run a bounded number of switches and verify it has not
    // (falsely) established.
    sched.runUntil([&] { return conn == nullptr; }, 20000);
    EXPECT_NE(conn, reinterpret_cast<TcpSocket *>(2)); // still pending ok
}

TEST_F(TcpFixture, SmallPayloadRoundTrip)
{
    std::string got;
    TcpSocket *listener = server.listen(80);
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        char buf[64];
        long n = s->recv(buf, sizeof(buf));
        got.assign(buf, static_cast<std::size_t>(n));
        s->send("pong", 4);
    });
    std::string reply;
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        ASSERT_NE(s, nullptr);
        s->send("ping", 4);
        char buf[64];
        long n = s->recv(buf, sizeof(buf));
        reply.assign(buf, static_cast<std::size_t>(n));
    });
    ASSERT_TRUE(sched.runUntil([&] { return !reply.empty(); }));
    EXPECT_EQ(got, "ping");
    EXPECT_EQ(reply, "pong");
}

TEST_F(TcpFixture, BulkTransferLargerThanWindow)
{
    // 1 MiB >> the 64 KiB window: exercises flow control and window
    // updates from the reader.
    const std::size_t total = 1 << 20;
    std::vector<std::uint8_t> sent(total);
    Rng rng(3);
    for (auto &b : sent)
        b = static_cast<std::uint8_t>(rng.next());

    std::vector<std::uint8_t> received;
    received.reserve(total);

    TcpSocket *listener = server.listen(80);
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        std::uint8_t buf[8192];
        long n;
        while ((n = s->recv(buf, sizeof(buf))) > 0)
            received.insert(received.end(), buf, buf + n);
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        ASSERT_NE(s, nullptr);
        s->send(sent.data(), sent.size());
        s->close();
    });
    ASSERT_TRUE(
        sched.runUntil([&] { return received.size() == total; }));
    EXPECT_EQ(received, sent);
}

TEST_F(TcpFixture, GracefulCloseDeliversEof)
{
    TcpSocket *listener = server.listen(80);
    long eof = -2;
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        char buf[16];
        s->recv(buf, sizeof(buf)); // "bye"
        eof = s->recv(buf, sizeof(buf));
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        s->send("bye", 3);
        s->close();
    });
    ASSERT_TRUE(sched.runUntil([&] { return eof != -2; }));
    EXPECT_EQ(eof, 0);
}

TEST_F(TcpFixture, ManySequentialConnections)
{
    TcpSocket *listener = server.listen(80);
    int served = 0;
    sched.spawn("srv", [&] {
        for (int i = 0; i < 10; ++i) {
            TcpSocket *s = listener->accept();
            char buf[16];
            long n = s->recv(buf, sizeof(buf));
            s->send(buf, static_cast<std::size_t>(n)); // echo
            ++served;
        }
    });
    int ok = 0;
    sched.spawn("cli", [&] {
        for (int i = 0; i < 10; ++i) {
            TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
            ASSERT_NE(s, nullptr);
            std::string msg = "msg" + std::to_string(i);
            s->send(msg.data(), msg.size());
            char buf[16];
            long n = s->recv(buf, sizeof(buf));
            if (std::string(buf, static_cast<std::size_t>(n)) == msg)
                ++ok;
            s->close();
        }
    });
    ASSERT_TRUE(sched.runUntil([&] { return ok == 10; }));
    EXPECT_EQ(served, 10);
}

TEST_F(TcpFixture, SegmentsCarryRealChecksumsEndToEnd)
{
    // Corrupt one in-flight frame; the checksum must reject it and
    // retransmission must still deliver correct data.
    bool corrupted = false;
    link.endA().rxFilter = [&](NetBuf &f) {
        if (!corrupted && f.size() > 60) {
            f.data()[f.size() - 1] ^= 0xff;
            corrupted = true;
        }
        return true;
    };
    TcpSocket *listener = server.listen(80);
    std::string got;
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        char buf[128];
        long n;
        while ((n = s->recv(buf, sizeof(buf))) > 0)
            got.append(buf, static_cast<std::size_t>(n));
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        std::string payload(300, 'q');
        s->send(payload.data(), payload.size());
        s->close();
    });
    ASSERT_TRUE(sched.runUntil([&] { return got.size() == 300; }));
    EXPECT_TRUE(corrupted);
    EXPECT_GE(mach.counter("tcp.badChecksum"), 1u);
    EXPECT_GE(mach.counter("tcp.retransmits"), 1u);
}

/**
 * Craft a full Eth+IPv4+TCP frame with valid checksums, for injecting
 * hand-built segments (overlaps, far-future data) into a live flow.
 */
NetBuf
craftSegment(std::uint32_t srcIp, std::uint32_t dstIp,
             std::uint16_t srcPort, std::uint16_t dstPort,
             std::uint32_t seq, std::uint8_t flags,
             const std::vector<std::uint8_t> &payload)
{
    NetBuf frame;
    if (!payload.empty())
        frame.append(payload.data(), payload.size());

    TcpHeader tcp;
    tcp.srcPort = srcPort;
    tcp.dstPort = dstPort;
    tcp.seq = seq;
    tcp.ack = 0;
    tcp.flags = flags;
    tcp.window = 0xffff;
    std::uint8_t *at = frame.push(TcpHeader::wireSize);
    tcp.serialize(at, srcIp, dstIp, at + TcpHeader::wireSize,
                  payload.size());

    Ip4Header ip;
    ip.totalLen = static_cast<std::uint16_t>(
        Ip4Header::wireSize + TcpHeader::wireSize + payload.size());
    ip.protocol = Ip4Header::protoTcp;
    ip.src = srcIp;
    ip.dst = dstIp;
    ip.serialize(frame.push(Ip4Header::wireSize));

    EthHeader eth{};
    eth.etherType = EthHeader::typeIp4;
    eth.serialize(frame.push(EthHeader::wireSize));
    return frame;
}

/** Deterministic payload byte for stream offset i. */
std::uint8_t
streamByte(std::size_t i)
{
    return static_cast<std::uint8_t>('A' + i % 23);
}

/**
 * A segment that partially overlaps delivered data must contribute its
 * new tail bytes — the seed stack miscounted it as a duplicate and
 * dropped them, forcing a full retransmit.
 */
TEST_F(TcpFixture, OverlappingRetransmitDeliversNewTail)
{
    TcpSocket *listener = server.listen(80);
    TcpSocket *accepted = nullptr;
    std::string got;
    sched.spawn("srv", [&] {
        accepted = listener->accept();
        char buf[64];
        long n;
        while ((n = accepted->recv(buf, sizeof(buf))) > 0)
            got.append(buf, static_cast<std::size_t>(n));
    });
    TcpSocket *conn = nullptr;
    sched.spawn("cli", [&] {
        conn = client.connect(makeIp(10, 0, 0, 1), 80);
        ASSERT_NE(conn, nullptr);
        conn->send("hello", 5);
    });
    ASSERT_TRUE(sched.runUntil([&] { return got == "hello"; }));

    // The client stack's deterministic ISS: issCounter starts at 1000
    // and pickIss() advances by 64000, so the first data byte of the
    // first connection is sequence 65001.
    const std::uint32_t firstData = 65001;

    // Retransmit "hello" grown by new data: seq overlaps the 5
    // delivered bytes, the tail is new. PSH only (no ACK) so the
    // server's ACK machinery is not involved.
    std::vector<std::uint8_t> overlap{'h', 'e', 'l', 'l', 'o',
                                      'W', 'O', 'R', 'L', 'D'};
    link.endB().transmit(craftSegment(
        makeIp(10, 0, 0, 2), makeIp(10, 0, 0, 1), conn->localPort(), 80,
        firstData, tcpPsh, overlap));

    ASSERT_TRUE(sched.runUntil([&] { return got.size() == 10; }));
    EXPECT_EQ(got, "helloWORLD");
    EXPECT_GE(mach.counter("tcp.partialOverlaps"), 1u);
}

/**
 * The out-of-order queue is bounded: segments farthest from rcvNxt are
 * evicted once oooLimit is exceeded, and delivery still completes
 * correctly from the in-order stream.
 */
TEST_F(TcpFixture, OutOfOrderQueueBoundedEviction)
{
    TcpSocket *listener = server.listen(80);
    TcpSocket *accepted = nullptr;
    std::vector<std::uint8_t> received;
    sched.spawn("srv", [&] {
        accepted = listener->accept();
        std::uint8_t buf[4096];
        long n;
        while ((n = accepted->recv(buf, sizeof(buf))) > 0)
            received.insert(received.end(), buf, buf + n);
    });
    TcpSocket *conn = nullptr;
    sched.spawn("cli", [&] {
        conn = client.connect(makeIp(10, 0, 0, 1), 80);
    });
    ASSERT_TRUE(sched.runUntil([&] { return accepted && conn; }));
    accepted->oooLimit = 2048;

    const std::uint32_t firstData = 65001;
    auto inject = [&](std::size_t off, std::size_t len) {
        std::vector<std::uint8_t> bytes(len);
        for (std::size_t i = 0; i < len; ++i)
            bytes[i] = streamByte(off + i);
        link.endB().transmit(craftSegment(
            makeIp(10, 0, 0, 2), makeIp(10, 0, 0, 1), conn->localPort(),
            80, firstData + static_cast<std::uint32_t>(off), tcpPsh,
            bytes));
    };

    // Four disjoint future segments, 2400 bytes > the 2048 limit: the
    // farthest (offset 4000) must be evicted.
    inject(1000, 600);
    inject(2000, 600);
    inject(3000, 600);
    inject(4000, 600);
    ASSERT_TRUE(sched.runUntil(
        [&] { return mach.counter("tcp.oooEvicted") > 0; }));
    EXPECT_EQ(accepted->oooQueuedBytes(), 1800u);
    EXPECT_LE(accepted->oooQueuedBytes(), accepted->oooLimit);
    EXPECT_EQ(mach.counter("tcp.oooEvicted"), 600u);
    EXPECT_GE(mach.counter("tcp.outOfOrder"), 3u);

    // Injecting a segment fully inside a stashed one is a duplicate.
    std::uint64_t dupsBefore = mach.counter("tcp.duplicates");
    inject(2100, 300);
    ASSERT_TRUE(sched.runUntil(
        [&] { return mach.counter("tcp.duplicates") > dupsBefore; }));
    EXPECT_EQ(accepted->oooQueuedBytes(), 1800u);

    // The in-order stream then delivers everything; stashed ranges are
    // merged (not re-delivered) and the evicted range arrives in order.
    const std::size_t total = 5000;
    std::vector<std::uint8_t> sent(total);
    for (std::size_t i = 0; i < total; ++i)
        sent[i] = streamByte(i);
    sched.spawn("cli-send", [&] {
        conn->send(sent.data(), sent.size());
        conn->close();
    });
    ASSERT_TRUE(
        sched.runUntil([&] { return received.size() == total; }));
    EXPECT_EQ(received, sent);
    EXPECT_EQ(accepted->oooQueuedBytes(), 0u);
}

/** 100 clients connect in parallel against one listener. */
TEST_F(TcpFixture, AcceptStormHundredConnections)
{
    constexpr int conns = 100;
    TcpSocket *listener = server.listen(80);
    int served = 0;
    sched.spawn("srv-accept", [&] {
        for (int i = 0; i < conns; ++i) {
            TcpSocket *s = listener->accept();
            sched.spawn("srv-echo", [&, s] {
                char buf[32];
                long n = s->recv(buf, sizeof(buf));
                if (n > 0)
                    s->send(buf, static_cast<std::size_t>(n));
                while (s->recv(buf, sizeof(buf)) > 0) {
                }
                s->close();
                ++served;
            });
        }
    });

    int ok = 0;
    for (int i = 0; i < conns; ++i) {
        sched.spawn("cli-" + std::to_string(i), [&, i] {
            TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
            ASSERT_NE(s, nullptr);
            std::string msg = "c" + std::to_string(i);
            s->send(msg.data(), msg.size());
            char buf[32];
            long n = s->recv(buf, sizeof(buf));
            if (std::string(buf, static_cast<std::size_t>(n)) == msg)
                ++ok;
            s->close();
        });
    }

    ASSERT_TRUE(sched.runUntil(
        [&] { return ok == conns && served == conns; }, 5'000'000));
    EXPECT_EQ(mach.counter("tcp.backlogDrops"), 0u);

    // Flow-table hygiene: every closed connection is reaped.
    ASSERT_TRUE(sched.runUntil(
        [&] {
            return server.flowCount() == 0 && client.flowCount() == 0;
        },
        5'000'000));
}

/**
 * A tiny backlog under a connection storm: excess SYNs are dropped and
 * recovered by SYN retransmission, so every client still gets served.
 */
TEST_F(TcpFixture, SmallBacklogRecoversViaSynRetransmit)
{
    constexpr int conns = 20;
    TcpSocket *listener = server.listen(80, 2);
    int served = 0;
    sched.spawn("srv-accept", [&] {
        for (int i = 0; i < conns; ++i) {
            TcpSocket *s = listener->accept();
            sched.spawn("srv-echo", [&, s] {
                char buf[32];
                long n = s->recv(buf, sizeof(buf));
                if (n > 0)
                    s->send(buf, static_cast<std::size_t>(n));
                s->close();
                ++served;
            });
        }
    });

    int ok = 0;
    for (int i = 0; i < conns; ++i) {
        sched.spawn("cli-" + std::to_string(i), [&, i] {
            TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
            ASSERT_NE(s, nullptr);
            std::string msg = "b" + std::to_string(i);
            s->send(msg.data(), msg.size());
            char buf[32];
            long n = s->recv(buf, sizeof(buf));
            if (n > 0 &&
                std::string(buf, static_cast<std::size_t>(n)) == msg)
                ++ok;
            s->close();
        });
    }

    ASSERT_TRUE(sched.runUntil(
        [&] { return ok == conns && served == conns; }, 10'000'000));
    EXPECT_GE(mach.counter("tcp.backlogDrops"), 1u);
}

/** Property test: delivery is reliable under random loss + reordering. */
class TcpLossTest : public TcpFixture,
                    public ::testing::WithParamInterface<std::uint64_t>
{
};

TEST_P(TcpLossTest, ReliableUnderLossAndReorder)
{
    Rng rng(GetParam());
    // Drop 12% of the frames in each direction; retransmission must
    // recover every byte in order.
    link.endA().rxFilter = [&](NetBuf &) { return !rng.chance(3, 25); };
    link.endB().rxFilter = [&](NetBuf &) { return !rng.chance(3, 25); };

    const std::size_t total = 128 * 1024;
    std::vector<std::uint8_t> sent(total);
    for (auto &b : sent)
        b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> received;

    TcpSocket *listener = server.listen(80);
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        std::uint8_t buf[4096];
        long n;
        while ((n = s->recv(buf, sizeof(buf))) > 0)
            received.insert(received.end(), buf, buf + n);
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        ASSERT_NE(s, nullptr);
        s->send(sent.data(), sent.size());
        s->close();
    });
    ASSERT_TRUE(sched.runUntil(
        [&] { return received.size() == total; }, 5'000'000));
    EXPECT_EQ(received, sent);
    EXPECT_GT(mach.counter("tcp.retransmits"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpLossTest,
                         ::testing::Values(11, 22, 33, 44, 55));

/** Out-of-order reassembly without loss: delay every 5th frame. */
TEST_F(TcpFixture, ReassemblesReorderedSegments)
{
    // Shared (not stack) state: the reinject fiber below is resumed
    // one last time by the fixture's cancelAll() after the test body
    // has returned, so anything it touches must outlive this scope.
    auto counter = std::make_shared<int>(0);
    auto held = std::make_shared<std::optional<NetBuf>>();
    link.endA().rxFilter = [counter, held](NetBuf &f) -> bool {
        ++*counter;
        if (*counter % 5 == 0 && !*held) {
            *held = std::move(f);
            return false;
        }
        return true;
    };
    // A separate fiber re-injects held frames after a short delay,
    // producing genuine reordering rather than loss.
    sched.spawn("reinject", [this, held] {
        for (int i = 0; i < 2000; ++i) {
            if (*held) {
                NetBuf f = std::move(**held);
                held->reset();
                // Bypass the filter to avoid re-holding.
                auto saved = link.endA().rxFilter;
                link.endA().rxFilter = nullptr;
                link.endB().transmit(NetBuf(f)); // wrong direction? no:
                link.endA().rxFilter = saved;
            }
            sched.yield();
        }
    });

    const std::size_t total = 96 * 1024;
    std::vector<std::uint8_t> sent(total);
    Rng rng(9);
    for (auto &b : sent)
        b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> received;

    TcpSocket *listener = server.listen(80);
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        std::uint8_t buf[4096];
        long n;
        while ((n = s->recv(buf, sizeof(buf))) > 0)
            received.insert(received.end(), buf, buf + n);
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        s->send(sent.data(), sent.size());
        s->close();
    });
    ASSERT_TRUE(sched.runUntil(
        [&] { return received.size() == total; }, 5'000'000));
    EXPECT_EQ(received, sent);
}

} // namespace
} // namespace flexos
