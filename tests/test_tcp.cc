/**
 * @file
 * Tests for the TCP/IP stack: wire formats, checksums, handshake, data
 * transfer, flow control, teardown, and property tests under loss and
 * reordering injected at the NIC.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "net/tcp.hh"

namespace flexos {
namespace {

TEST(Proto, InetChecksumKnownVector)
{
    // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 (one's
    // complement folded), checksum = ~0xddf2 = 0x220d.
    const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(inetChecksum(data, sizeof(data)), 0x220d);
}

TEST(Proto, ChecksumOddLength)
{
    const std::uint8_t data[] = {0xab};
    // sum = 0xab00 -> checksum = ~0xab00 = 0x54ff
    EXPECT_EQ(inetChecksum(data, 1), 0x54ff);
}

TEST(Proto, Ip4RoundTrip)
{
    std::uint8_t wire[Ip4Header::wireSize];
    Ip4Header h;
    h.totalLen = 40;
    h.id = 7;
    h.src = makeIp(10, 0, 0, 1);
    h.dst = makeIp(10, 0, 0, 2);
    h.serialize(wire);

    Ip4Header parsed;
    ASSERT_TRUE(parsed.parse(wire, sizeof(wire) + 20));
    EXPECT_EQ(parsed.totalLen, 40);
    EXPECT_EQ(parsed.src, h.src);
    EXPECT_EQ(parsed.dst, h.dst);
}

TEST(Proto, Ip4CorruptionDetected)
{
    std::uint8_t wire[Ip4Header::wireSize];
    Ip4Header h;
    h.totalLen = 40;
    h.src = makeIp(10, 0, 0, 1);
    h.dst = makeIp(10, 0, 0, 2);
    h.serialize(wire);
    wire[15] ^= 0x40; // flip a bit in the source address
    Ip4Header parsed;
    EXPECT_FALSE(parsed.parse(wire, sizeof(wire) + 20));
}

TEST(Proto, TcpChecksumCoversPayloadAndPseudoHeader)
{
    std::uint8_t seg[TcpHeader::wireSize + 5];
    std::uint8_t *payload = seg + TcpHeader::wireSize;
    std::memcpy(payload, "hello", 5);
    TcpHeader h;
    h.srcPort = 1234;
    h.dstPort = 80;
    h.seq = 42;
    h.ack = 7;
    h.flags = tcpAck | tcpPsh;
    h.window = 5000;
    std::uint32_t src = makeIp(1, 2, 3, 4), dst = makeIp(5, 6, 7, 8);
    h.serialize(seg, src, dst, payload, 5);

    TcpHeader parsed;
    ASSERT_TRUE(parsed.parse(seg, sizeof(seg), src, dst));
    EXPECT_EQ(parsed.seq, 42u);
    EXPECT_EQ(parsed.window, 5000);

    // Payload corruption must break the checksum.
    payload[2] ^= 1;
    EXPECT_FALSE(parsed.parse(seg, sizeof(seg), src, dst));
    payload[2] ^= 1;
    // Wrong pseudo-header (different src IP) must too.
    EXPECT_FALSE(parsed.parse(seg, sizeof(seg), src + 1, dst));
}

TEST(Proto, SeqArithmeticWraps)
{
    EXPECT_TRUE(seqLt(0xfffffff0u, 0x10u));
    EXPECT_FALSE(seqLt(0x10u, 0xfffffff0u));
    EXPECT_TRUE(seqLe(5u, 5u));
}

TEST(NetBuf, PushPullAppend)
{
    NetBuf b(256, 64);
    b.append("abc", 3);
    EXPECT_EQ(b.size(), 3u);
    std::uint8_t *hdr = b.push(2);
    hdr[0] = 'H';
    hdr[1] = 'I';
    EXPECT_EQ(b.size(), 5u);
    EXPECT_EQ(std::memcmp(b.data(), "HIabc", 5), 0);
    b.pull(2);
    EXPECT_EQ(std::memcmp(b.data(), "abc", 3), 0);
    EXPECT_THROW(b.pull(99), PanicError);
}

TEST(Nic, LinkDeliversFramesInOrder)
{
    Machine m;
    MachineScope scope(m);
    Link link;
    NetBuf f1, f2;
    f1.append("one", 3);
    f2.append("two", 3);
    link.endA().transmit(std::move(f1));
    link.endA().transmit(std::move(f2));
    auto r1 = link.endB().receive();
    auto r2 = link.endB().receive();
    ASSERT_TRUE(r1 && r2);
    EXPECT_EQ(std::memcmp(r1->data(), "one", 3), 0);
    EXPECT_EQ(std::memcmp(r2->data(), "two", 3), 0);
    EXPECT_FALSE(link.endB().receive());
}

/**
 * Full two-stack harness: server at 10.0.0.1 (endA), client at 10.0.0.2
 * (endB), both polled by fibers on one scheduler.
 */
struct TcpFixture : ::testing::Test
{
    TcpFixture()
        : scope(mach), sched(mach),
          server(mach, sched, link.endA(), makeIp(10, 0, 0, 1)),
          client(mach, sched, link.endB(), makeIp(10, 0, 0, 2))
    {
        // Shrink timeouts so loss tests converge quickly.
        server.baseRtoNs = 2'000'000;
        client.baseRtoNs = 2'000'000;
        server.startPoller("srv-poll");
        client.startPoller("cli-poll");
    }

    ~TcpFixture() override
    {
        server.stop();
        client.stop();
        sched.run();
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    Link link;
    NetStack server;
    NetStack client;
};

TEST_F(TcpFixture, HandshakeEstablishesBothEnds)
{
    TcpSocket *accepted = nullptr;
    TcpSocket *conn = nullptr;
    server.listen(80);
    TcpSocket *listener = nullptr;
    // Re-listen via pointer: listen() already returned the socket.
    sched.spawn("srv", [&] {
        // accept on the existing listener
    });
    listener = server.listen(81);
    sched.spawn("srv-accept", [&] { accepted = listener->accept(); });
    sched.spawn("cli", [&] {
        conn = client.connect(makeIp(10, 0, 0, 1), 81);
    });
    ASSERT_TRUE(sched.runUntil([&] { return accepted && conn; }));
    EXPECT_TRUE(conn->established());
    EXPECT_TRUE(accepted->established());
    EXPECT_EQ(accepted->remotePort(), conn->localPort());
}

TEST_F(TcpFixture, ConnectToClosedPortFails)
{
    TcpSocket *conn = reinterpret_cast<TcpSocket *>(1);
    sched.spawn("cli", [&] {
        conn = client.connect(makeIp(10, 0, 0, 1), 9999);
    });
    // No listener: SYN is dropped; the connect retries until we give up
    // waiting. Run a bounded number of switches and verify it has not
    // (falsely) established.
    sched.runUntil([&] { return conn == nullptr; }, 20000);
    EXPECT_NE(conn, reinterpret_cast<TcpSocket *>(2)); // still pending ok
}

TEST_F(TcpFixture, SmallPayloadRoundTrip)
{
    std::string got;
    TcpSocket *listener = server.listen(80);
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        char buf[64];
        long n = s->recv(buf, sizeof(buf));
        got.assign(buf, static_cast<std::size_t>(n));
        s->send("pong", 4);
    });
    std::string reply;
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        ASSERT_NE(s, nullptr);
        s->send("ping", 4);
        char buf[64];
        long n = s->recv(buf, sizeof(buf));
        reply.assign(buf, static_cast<std::size_t>(n));
    });
    ASSERT_TRUE(sched.runUntil([&] { return !reply.empty(); }));
    EXPECT_EQ(got, "ping");
    EXPECT_EQ(reply, "pong");
}

TEST_F(TcpFixture, BulkTransferLargerThanWindow)
{
    // 1 MiB >> the 64 KiB window: exercises flow control and window
    // updates from the reader.
    const std::size_t total = 1 << 20;
    std::vector<std::uint8_t> sent(total);
    Rng rng(3);
    for (auto &b : sent)
        b = static_cast<std::uint8_t>(rng.next());

    std::vector<std::uint8_t> received;
    received.reserve(total);

    TcpSocket *listener = server.listen(80);
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        std::uint8_t buf[8192];
        long n;
        while ((n = s->recv(buf, sizeof(buf))) > 0)
            received.insert(received.end(), buf, buf + n);
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        ASSERT_NE(s, nullptr);
        s->send(sent.data(), sent.size());
        s->close();
    });
    ASSERT_TRUE(
        sched.runUntil([&] { return received.size() == total; }));
    EXPECT_EQ(received, sent);
}

TEST_F(TcpFixture, GracefulCloseDeliversEof)
{
    TcpSocket *listener = server.listen(80);
    long eof = -2;
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        char buf[16];
        s->recv(buf, sizeof(buf)); // "bye"
        eof = s->recv(buf, sizeof(buf));
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        s->send("bye", 3);
        s->close();
    });
    ASSERT_TRUE(sched.runUntil([&] { return eof != -2; }));
    EXPECT_EQ(eof, 0);
}

TEST_F(TcpFixture, ManySequentialConnections)
{
    TcpSocket *listener = server.listen(80);
    int served = 0;
    sched.spawn("srv", [&] {
        for (int i = 0; i < 10; ++i) {
            TcpSocket *s = listener->accept();
            char buf[16];
            long n = s->recv(buf, sizeof(buf));
            s->send(buf, static_cast<std::size_t>(n)); // echo
            ++served;
        }
    });
    int ok = 0;
    sched.spawn("cli", [&] {
        for (int i = 0; i < 10; ++i) {
            TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
            ASSERT_NE(s, nullptr);
            std::string msg = "msg" + std::to_string(i);
            s->send(msg.data(), msg.size());
            char buf[16];
            long n = s->recv(buf, sizeof(buf));
            if (std::string(buf, static_cast<std::size_t>(n)) == msg)
                ++ok;
            s->close();
        }
    });
    ASSERT_TRUE(sched.runUntil([&] { return ok == 10; }));
    EXPECT_EQ(served, 10);
}

TEST_F(TcpFixture, SegmentsCarryRealChecksumsEndToEnd)
{
    // Corrupt one in-flight frame; the checksum must reject it and
    // retransmission must still deliver correct data.
    bool corrupted = false;
    link.endA().rxFilter = [&](NetBuf &f) {
        if (!corrupted && f.size() > 60) {
            f.data()[f.size() - 1] ^= 0xff;
            corrupted = true;
        }
        return true;
    };
    TcpSocket *listener = server.listen(80);
    std::string got;
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        char buf[128];
        long n;
        while ((n = s->recv(buf, sizeof(buf))) > 0)
            got.append(buf, static_cast<std::size_t>(n));
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        std::string payload(300, 'q');
        s->send(payload.data(), payload.size());
        s->close();
    });
    ASSERT_TRUE(sched.runUntil([&] { return got.size() == 300; }));
    EXPECT_TRUE(corrupted);
    EXPECT_GE(mach.counter("tcp.badChecksum"), 1u);
    EXPECT_GE(mach.counter("tcp.retransmits"), 1u);
}

/** Property test: delivery is reliable under random loss + reordering. */
class TcpLossTest : public TcpFixture,
                    public ::testing::WithParamInterface<std::uint64_t>
{
};

TEST_P(TcpLossTest, ReliableUnderLossAndReorder)
{
    Rng rng(GetParam());
    // Drop 12% of the frames in each direction; retransmission must
    // recover every byte in order.
    link.endA().rxFilter = [&](NetBuf &) { return !rng.chance(3, 25); };
    link.endB().rxFilter = [&](NetBuf &) { return !rng.chance(3, 25); };

    const std::size_t total = 128 * 1024;
    std::vector<std::uint8_t> sent(total);
    for (auto &b : sent)
        b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> received;

    TcpSocket *listener = server.listen(80);
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        std::uint8_t buf[4096];
        long n;
        while ((n = s->recv(buf, sizeof(buf))) > 0)
            received.insert(received.end(), buf, buf + n);
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        ASSERT_NE(s, nullptr);
        s->send(sent.data(), sent.size());
        s->close();
    });
    ASSERT_TRUE(sched.runUntil(
        [&] { return received.size() == total; }, 5'000'000));
    EXPECT_EQ(received, sent);
    EXPECT_GT(mach.counter("tcp.retransmits"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpLossTest,
                         ::testing::Values(11, 22, 33, 44, 55));

/** Out-of-order reassembly without loss: delay every 5th frame. */
TEST_F(TcpFixture, ReassemblesReorderedSegments)
{
    int counter = 0;
    std::optional<NetBuf> held;
    link.endA().rxFilter = [&](NetBuf &f) -> bool {
        ++counter;
        if (counter % 5 == 0 && !held) {
            held = std::move(f);
            return false;
        }
        return true;
    };
    // A separate fiber re-injects held frames after a short delay,
    // producing genuine reordering rather than loss.
    sched.spawn("reinject", [&] {
        for (int i = 0; i < 2000; ++i) {
            if (held) {
                NetBuf f = std::move(*held);
                held.reset();
                // Bypass the filter to avoid re-holding.
                auto saved = link.endA().rxFilter;
                link.endA().rxFilter = nullptr;
                link.endB().transmit(NetBuf(f)); // wrong direction? no:
                link.endA().rxFilter = saved;
            }
            sched.yield();
        }
    });

    const std::size_t total = 96 * 1024;
    std::vector<std::uint8_t> sent(total);
    Rng rng(9);
    for (auto &b : sent)
        b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t> received;

    TcpSocket *listener = server.listen(80);
    sched.spawn("srv", [&] {
        TcpSocket *s = listener->accept();
        std::uint8_t buf[4096];
        long n;
        while ((n = s->recv(buf, sizeof(buf))) > 0)
            received.insert(received.end(), buf, buf + n);
    });
    sched.spawn("cli", [&] {
        TcpSocket *s = client.connect(makeIp(10, 0, 0, 1), 80);
        s->send(sent.data(), sent.size());
        s->close();
    });
    ASSERT_TRUE(sched.runUntil(
        [&] { return received.size() == total; }, 5'000'000));
    EXPECT_EQ(received, sent);
}

} // namespace
} // namespace flexos
