/**
 * @file
 * Escape-scanner fixture: one global of every classification the
 * shared-data pass distinguishes, plus the lexical hazards the
 * scanner must not trip over (comments, raw strings, local statics,
 * pointer-carrying gate call sites). NOT part of the build — scanned
 * by tests/test_analysis.cc through a synthetic library registry
 * entry whose `sharedData` registers `missCount`.
 */

#include <cstdint>

#include "core/image.hh"

namespace leaky {
namespace {

constexpr int tableSize = 64; // constant: never reported

const int tableShift = 6; // const non-pointer: never reported

const char *banner = "leaky fixture"; // mutable pointer: escaping

// flexos: dss
std::uint64_t dssCounter = 0; // marker on previous line

std::uint64_t hitCount = 0; // flexos: shared

std::uint64_t missCount = 0; // registered via LibraryInfo.sharedData

int leakedState = 0; // unannotated mutable global: escaping

/* int commentedOut = 0;
   int alsoCommented = 0; -- inside a block comment, never reported */

const char *fixtureConfig = R"cfg(
compartments: not a real one   # inside a raw string, never parsed
int notADatum = 0;
)cfg";

} // namespace

int
bump()
{
    static int bumpCalls = 0; // function-local static: escaping
    return ++bumpCalls;
}

int
use(flexos::Image &img, int x)
{
    // A pointer-carrying gate call site: the by-reference capture
    // hands caller-frame addresses across the boundary.
    return img.gate("newlib", "memcpy", [&] { return x + leakedState; });
}

} // namespace leaky
