/**
 * @file
 * Boundary-auditor tests: embedded-config extraction over the full
 * raw-string grammar, deny-aware transitive reachability on
 * wildcard-layered gate matrices (including multi-hop severing),
 * shared-data escape classification on the leaky fixture library,
 * suggested-deny minimality against the wayfinder's required block
 * edges (and that the suggested ruleset image-builds cleanly), the
 * JSON round-trip, the seeded-violation config's exact findings, and
 * the explore hook's audit score.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "analysis/audit.hh"
#include "analysis/callgraph.hh"
#include "analysis/escape.hh"
#include "analysis/extract.hh"
#include "core/toolchain.hh"
#include "explore/wayfinder.hh"
#include "machine/machine.hh"
#include "uksched/scheduler.hh"

#ifndef FLEXOS_REPO_ROOT
#define FLEXOS_REPO_ROOT "."
#endif

namespace flexos {
namespace {

using analysis::AuditReport;
using analysis::Finding;
using analysis::Severity;

struct AnalysisFixture : ::testing::Test
{
    AnalysisFixture() : reg(LibraryRegistry::standard()), tc(reg) {}

    SafetyConfig
    parse(const std::string &text)
    {
        SafetyConfig cfg = SafetyConfig::parse(text);
        tc.validate(cfg);
        return cfg;
    }

    AuditReport
    audit(const std::string &text, bool escape = false)
    {
        analysis::AuditOptions opts;
        opts.escape = escape;
        opts.srcRoot = FLEXOS_REPO_ROOT;
        return analysis::runAudit(parse(text), reg, opts);
    }

    static std::vector<const Finding *>
    byCode(const AuditReport &r, const std::string &code)
    {
        std::vector<const Finding *> out;
        for (const Finding &f : r.findings)
            if (f.code == code)
                out.push_back(&f);
        return out;
    }

    LibraryRegistry reg;
    Toolchain tc;
};

// ------------------------------------------------ config extraction

TEST(AnalysisExtract, HandlesDelimitedRawStringsAndEscapedParens)
{
    // lint-skip: the fragments below are extraction fodder, not
    // loadable configurations.
    std::string src = R"src(
const char *plain = R"(
compartments:
- a: {default: True}
libraries:
- libredis: a
)";
const char *delimited = R"cfg(
compartments:
- b: {default: True}   # a stray )" does not end a delimited literal
libraries:
- newlib: b
)cfg";
const char *notAConfig = R"(just text)";
)src";

    auto blocks = analysis::extractEmbeddedConfigs(src);
    ASSERT_EQ(blocks.size(), 2u);
    EXPECT_NE(blocks[0].text.find("- a:"), std::string::npos);
    EXPECT_EQ(blocks[0].line, 2u);
    // The delimited literal survives the embedded `)"` intact.
    EXPECT_NE(blocks[1].text.find("stray )\" does not"),
              std::string::npos);
    EXPECT_NE(blocks[1].text.find("- newlib: b"), std::string::npos);
    EXPECT_EQ(blocks[1].line, 8u);
}

TEST(AnalysisExtract, SkipMarkersAndUnterminatedLiterals)
{
    std::string src =
        "// lint-skip: intentionally invalid\n"
        "const char *bad = R\"(\ncompartments:\nlibraries:\n)\";\n"
        "const char *ok = R\"x(\ncompartments:\n- a: {default: True}\n"
        "libraries:\n- libredis: a\n)x\";\n"
        "const char *hang = R\"(\ncompartments: libraries: never closed";

    auto all = analysis::rawStringLiterals(src);
    ASSERT_EQ(all.size(), 2u); // the unterminated literal is dropped
    EXPECT_TRUE(all[0].skip);
    EXPECT_FALSE(all[1].skip);

    auto cfgs = analysis::extractEmbeddedConfigs(src);
    ASSERT_EQ(cfgs.size(), 1u);
    EXPECT_NE(cfgs[0].text.find("- libredis: a"), std::string::npos);
}

// ------------------------------------------- call-graph reachability

// Three compartments with a proxy topology: a (default, libsqlite +
// uksched + uktime) statically calls b (newlib), which calls both c
// (lwip) and back into a; c calls a. Denying a -> b severs every
// static path out of a — including the two-hop one to c, which no
// deny rule names.
const char *proxyTopology = R"(
compartments:
- a:
    mechanism: intel-mpk
    default: True
- b:
    mechanism: intel-mpk
- c:
    mechanism: intel-mpk
libraries:
- libsqlite: a
- uksched: a
- uktime: a
- newlib: b
- lwip: c
)";

TEST_F(AnalysisFixture, CompartmentGraphProjectsStaticEdges)
{
    auto g = analysis::buildCompartmentGraph(parse(proxyTopology), reg);
    ASSERT_EQ(g.size(), 3u);
    EXPECT_EQ(g.defaultComp, 0);
    EXPECT_EQ(g.netComp, 2); // lwip is the net-facing library

    auto edge = [&](int f, int t) { return g.staticEdge(f, t); };
    ASSERT_NE(edge(0, 1), nullptr); // libsqlite -> newlib
    ASSERT_NE(edge(1, 2), nullptr); // newlib -> lwip
    ASSERT_NE(edge(1, 0), nullptr); // newlib -> uksched/uktime
    ASSERT_NE(edge(2, 0), nullptr); // lwip -> uksched/uktime
    EXPECT_EQ(edge(0, 2), nullptr); // nothing in a calls lwip directly
    EXPECT_EQ(edge(2, 1), nullptr);

    const auto &w = edge(0, 1)->witnesses;
    ASSERT_EQ(w.size(), 1u);
    EXPECT_EQ(w[0].lib, "libsqlite");
    EXPECT_EQ(w[0].callee, "newlib");

    // No deny rules: everything is reachable, statically and for an
    // attacker in c.
    EXPECT_TRUE(g.reachable[1] && g.reachable[2]);
    EXPECT_TRUE(g.netReachable[0] && g.netReachable[1]);
}

TEST_F(AnalysisFixture, WildcardLayeredDenyResolvesPerPair)
{
    std::string text = std::string(proxyTopology) + R"(boundaries:
- '*' -> a: {deny: true}
- c -> a: {deny: false}
)";
    auto g = analysis::buildCompartmentGraph(parse(text), reg);
    EXPECT_FALSE(g.edgeAllowed(1, 0)); // wildcard layer applies
    EXPECT_TRUE(g.edgeAllowed(2, 0));  // exact pair overrides it
    EXPECT_TRUE(g.edgeAllowed(0, 1));

    // b -> a is a denied static edge (one finding per severed library
    // dependency: newlib -> uksched and newlib -> uktime); a stays
    // reachable through c.
    AuditReport r;
    analysis::callGraphPass(g, r);
    r.normalize();
    auto denied = byCode(r, "denied-static-edge");
    ASSERT_EQ(denied.size(), 2u);
    EXPECT_EQ(denied[0]->from, "b");
    EXPECT_EQ(denied[0]->to, "a");
    EXPECT_NE(denied[0]->message.find("uksched"), std::string::npos);
    EXPECT_NE(denied[1]->message.find("uktime"), std::string::npos);
    EXPECT_TRUE(byCode(r, "deny-unreachable-compartment").empty());
}

TEST_F(AnalysisFixture, DenySeversTwoHopReachability)
{
    std::string text = std::string(proxyTopology) + R"(boundaries:
- a -> b: {deny: true}
)";
    auto g = analysis::buildCompartmentGraph(parse(text), reg);
    EXPECT_TRUE(g.reachableIgnoringDeny[1]);
    EXPECT_TRUE(g.reachableIgnoringDeny[2]);
    EXPECT_FALSE(g.reachable[1]);
    EXPECT_FALSE(g.reachable[2]); // two hops away; no rule names c

    AuditReport r;
    analysis::callGraphPass(g, r);
    r.normalize();

    auto denied = byCode(r, "denied-static-edge");
    ASSERT_EQ(denied.size(), 1u);
    EXPECT_EQ(denied[0]->severity, Severity::Error);
    EXPECT_NE(denied[0]->message.find("libsqlite"), std::string::npos);

    auto severed = byCode(r, "deny-unreachable-compartment");
    ASSERT_EQ(severed.size(), 2u);
    EXPECT_EQ(severed[0]->to, "b");
    EXPECT_EQ(severed[1]->to, "c");
    EXPECT_EQ(severed[1]->severity, Severity::Warning);
}

// --------------------------------------------- shared-data escape

TEST(AnalysisEscape, ClassifiesLeakyFixtureLibrary)
{
    LibraryInfo leaky;
    leaky.name = "leaky";
    leaky.files = {"tests/fixtures/leaky_lib.cc"};
    leaky.sharedData = {"missCount"};

    analysis::EscapeScan scan =
        analysis::scanLibrarySources(leaky, FLEXOS_REPO_ROOT);
    EXPECT_TRUE(scan.missingFiles.empty());

    auto cls = [&](const std::string &name) {
        for (const analysis::SharedDatum &d : scan.data)
            if (d.name == name)
                return analysis::datumClassName(d.cls);
        return "absent";
    };
    // Constants are never reported.
    EXPECT_STREQ(cls("tableSize"), "absent");
    EXPECT_STREQ(cls("tableShift"), "absent");
    // A const char * is a mutable pointer: it escapes.
    EXPECT_STREQ(cls("banner"), "escaping");
    EXPECT_STREQ(cls("dssCounter"), "dss-framed");
    EXPECT_STREQ(cls("hitCount"), "registered-shared");
    EXPECT_STREQ(cls("missCount"), "registered-shared");
    EXPECT_STREQ(cls("leakedState"), "escaping");
    EXPECT_STREQ(cls("bumpCalls"), "escaping"); // function-local static
    // Comment and raw-string contents never surface as data.
    EXPECT_STREQ(cls("commentedOut"), "absent");
    EXPECT_STREQ(cls("alsoCommented"), "absent");
    EXPECT_STREQ(cls("notADatum"), "absent");
    EXPECT_EQ(scan.data.size(), 6u);

    EXPECT_EQ(scan.pointerCarryingCalls, 1);
}

// -------------------------------------------------- seeded violation

// The paper's section-7 story with every mistake the auditor exists
// to catch: the untrusted parser is compartmentalized but leaks a
// global, and the boundary out of the netstack disables scrubbing,
// elides legs, and validates nothing.
const char *seededViolation = R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- jail:
    mechanism: intel-mpk
- net:
    mechanism: intel-mpk
libraries:
- libredis: app
- newlib: app
- uksched: app
- uktime: app
- libopenjpg: jail
- lwip: net
boundaries:
- net -> app: {scrub: false, elide: scrub}
)";

TEST_F(AnalysisFixture, SeededViolationConfigReportsAllThreePasses)
{
    AuditReport r = audit(seededViolation, /*escape=*/true);

    auto escaping = byCode(r, "escaping-shared-datum");
    ASSERT_EQ(escaping.size(), 1u);
    EXPECT_EQ(escaping[0]->library, "libopenjpg");
    EXPECT_EQ(escaping[0]->datum, "lastDecodeState");
    EXPECT_EQ(escaping[0]->file, "src/apps/openjpg.cc");
    EXPECT_EQ(escaping[0]->severity, Severity::Error);

    auto unscrubbed = byCode(r, "unscrubbed-net-boundary");
    ASSERT_EQ(unscrubbed.size(), 1u);
    EXPECT_EQ(unscrubbed[0]->from, "net");
    EXPECT_EQ(unscrubbed[0]->to, "app");
    auto elided = byCode(r, "elided-net-boundary");
    ASSERT_EQ(elided.size(), 1u);
    EXPECT_EQ(elided[0]->from, "net");
    // Every allowed pair is net-reachable and unvalidated.
    EXPECT_EQ(byCode(r, "unvalidated-net-boundary").size(), 6u);
    EXPECT_EQ(byCode(r, "unthrottled-external-edge").size(), 2u);

    EXPECT_EQ(r.countOf(Severity::Error), 3u);

    // The suggested ruleset is exactly the statically-unneeded pairs.
    std::vector<std::pair<std::string, std::string>> want = {
        {"app", "jail"}, {"jail", "net"}, {"net", "jail"}};
    EXPECT_EQ(r.suggestedDeny, want);
}

TEST_F(AnalysisFixture, SuggestedDenyRulesetBuildsCleanlyAndIsMinimal)
{
    AuditReport r = audit(seededViolation);

    // Minimality: a suggested pair never covers a static edge, and
    // every unsuggested, undenied pair does (denying it would starve a
    // dependency) — the set is exactly the complement.
    auto g = analysis::buildCompartmentGraph(parse(seededViolation), reg);
    auto indexOf = [&](const std::string &name) {
        return static_cast<int>(
            std::find(g.comps.begin(), g.comps.end(), name) -
            g.comps.begin());
    };
    std::set<std::pair<std::string, std::string>> suggested(
        r.suggestedDeny.begin(), r.suggestedDeny.end());
    for (const auto &f : g.comps)
        for (const auto &t : g.comps) {
            if (f == t)
                continue;
            bool hasStatic =
                g.staticEdge(indexOf(f), indexOf(t)) != nullptr;
            EXPECT_NE(suggested.count({f, t}) != 0, hasStatic)
                << f << " -> " << t;
        }

    // Applying the suggestion yields a buildable image whose audit
    // has nothing further to suggest.
    std::string tightened = seededViolation;
    for (const auto &[f, t] : r.suggestedDeny)
        tightened += "- " + f + " -> " + t + ": {deny: true}\n";

    Machine mach;
    MachineScope scope(mach);
    Scheduler sched(mach);
    SafetyConfig cfg = parse(tightened);
    cfg.heapBytes = 1 << 20;
    cfg.sharedHeapBytes = 1 << 20;
    EXPECT_NO_THROW(tc.build(mach, sched, cfg));

    AuditReport r2 = audit(tightened);
    EXPECT_TRUE(r2.suggestedDeny.empty());
    EXPECT_TRUE(byCode(r2, "denied-static-edge").empty());
    EXPECT_TRUE(byCode(r2, "unused-static-edge").empty());
}

// ----------------------------------- wayfinder required-edge cross-check

TEST_F(AnalysisFixture, SuggestedDenyMatchesWayfinderRequiredEdges)
{
    // For every Figure 8 partition: the auditor's suggested deny set
    // over the materialized config must be exactly the complement of
    // wayfinder::requiredBlockEdges — the same least-privilege
    // frontier leastPrivilegeSpace() sweeps.
    for (const auto &partition : wayfinder::fig6Partitions()) {
        ConfigPoint p;
        p.partition = partition;
        p.hardening.assign(partition.size(), 0);
        SafetyConfig cfg = wayfinder::toSafetyConfig(p, "libredis");
        tc.validate(cfg);

        analysis::AuditOptions opts;
        opts.escape = false;
        AuditReport r = analysis::runAudit(cfg, reg, opts);

        // Suggested pairs, mapped back to partition block ids
        // (toSafetyConfig names block b "comp{b+1}").
        std::set<std::pair<int, int>> suggested;
        for (const auto &[f, t] : r.suggestedDeny)
            suggested.insert({std::stoi(f.substr(4)) - 1,
                              std::stoi(t.substr(4)) - 1});

        auto required =
            wayfinder::requiredBlockEdges(partition, "libredis");
        std::set<std::pair<int, int>> keep(required.begin(),
                                           required.end());
        int nBlocks = p.compartments();
        std::set<std::pair<int, int>> deniable;
        for (int f = 0; f < nBlocks; ++f)
            for (int t = 0; t < nBlocks; ++t)
                if (f != t && !keep.count({f, t}))
                    deniable.insert({f, t});
        EXPECT_EQ(suggested, deniable);
    }
}

TEST_F(AnalysisFixture, ExploreHookAttachesAuditScore)
{
    ConfigPoint loose;
    loose.partition = {0, 0, 1, 2};
    loose.hardening.assign(4, 0);
    EXPECT_EQ(loose.auditScore, -1);
    wayfinder::attachAuditScore(loose, "libredis");
    ASSERT_GE(loose.auditScore, 0);

    // Denying every deniable edge removes the unused-static-edge
    // notes, so the tightened point scores strictly cleaner.
    ConfigPoint tight = loose;
    auto required =
        wayfinder::requiredBlockEdges(loose.partition, "libredis");
    std::set<std::pair<int, int>> keep(required.begin(),
                                       required.end());
    for (int f = 0; f < 3; ++f)
        for (int t = 0; t < 3; ++t)
            if (f != t && !keep.count({f, t}))
                tight.deniedEdges.push_back({f, t});
    wayfinder::attachAuditScore(tight, "libredis");
    EXPECT_LT(tight.auditScore, loose.auditScore);
}

// ------------------------------------------------------ JSON round-trip

TEST_F(AnalysisFixture, ReportRoundTripsThroughJson)
{
    AuditReport r = audit(seededViolation, /*escape=*/true);
    r.label = "tests/test_analysis.cc:seeded";

    AuditReport back = AuditReport::fromJson(r.toJson());
    EXPECT_EQ(back, r);
    EXPECT_EQ(back.score(), r.score());
    EXPECT_EQ(back.label, r.label);

    // Escaping round-trips too.
    AuditReport quirky;
    quirky.label = "a \"quoted\"\tlabel\nwith\\controls";
    Finding f;
    f.pass = "escape";
    f.code = "escaping-shared-datum";
    f.severity = Severity::Error;
    f.message = "datum \"x\" <tab>\there";
    f.line = 42;
    quirky.add(std::move(f));
    quirky.normalize();
    EXPECT_EQ(AuditReport::fromJson(quirky.toJson()), quirky);
}

} // namespace
} // namespace flexos
