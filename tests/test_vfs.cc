/**
 * @file
 * Unit tests for vfscore + ramfs: descriptor lifecycle, path resolution,
 * block-spanning IO, truncate semantics, directories, and allocator-
 * backed storage accounting.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "machine/machine.hh"
#include "ukalloc/tlsf.hh"
#include "vfs/ramfs.hh"
#include "vfs/vfs.hh"

namespace flexos {
namespace {

struct VfsFixture : ::testing::Test
{
    VfsFixture() : vfs(makeRamfs()) {}

    Vfs vfs;

    std::string
    readAll(const std::string &path)
    {
        int fd = vfs.open(path, oRdOnly);
        EXPECT_GE(fd, 0);
        std::string out;
        char buf[4096];
        long n;
        while ((n = vfs.read(fd, buf, sizeof(buf))) > 0)
            out.append(buf, static_cast<std::size_t>(n));
        vfs.close(fd);
        return out;
    }

    void
    writeFile(const std::string &path, const std::string &content)
    {
        int fd = vfs.open(path, oCreat | oWrOnly | oTrunc);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(vfs.write(fd, content.data(), content.size()),
                  static_cast<long>(content.size()));
        vfs.close(fd);
    }
};

TEST_F(VfsFixture, CreateWriteReadBack)
{
    writeFile("/hello.txt", "hello world");
    EXPECT_EQ(readAll("/hello.txt"), "hello world");
}

TEST_F(VfsFixture, MissingFileIsEnoent)
{
    EXPECT_EQ(vfs.open("/nope", oRdOnly), vfsNotFound);
}

TEST_F(VfsFixture, OpenWithoutCreatDoesNotCreate)
{
    EXPECT_LT(vfs.open("/x", oWrOnly), 0);
    VfsStat st;
    EXPECT_EQ(vfs.stat("/x", st), vfsNotFound);
}

TEST_F(VfsFixture, NestedDirectories)
{
    EXPECT_EQ(vfs.mkdir("/a"), vfsOk);
    EXPECT_EQ(vfs.mkdir("/a/b"), vfsOk);
    writeFile("/a/b/f.txt", "deep");
    EXPECT_EQ(readAll("/a/b/f.txt"), "deep");
    VfsStat st;
    ASSERT_EQ(vfs.stat("/a/b", st), vfsOk);
    EXPECT_EQ(st.type, VnodeType::Directory);
}

TEST_F(VfsFixture, MkdirInMissingParentFails)
{
    EXPECT_EQ(vfs.mkdir("/no/such/dir"), vfsNotFound);
}

TEST_F(VfsFixture, DuplicateMkdirFails)
{
    EXPECT_EQ(vfs.mkdir("/d"), vfsOk);
    EXPECT_EQ(vfs.mkdir("/d"), vfsExists);
}

TEST_F(VfsFixture, WriteSpanningMultipleBlocks)
{
    std::string big(3 * RamfsNode::blockSize + 123, 'x');
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<char>('a' + i % 26);
    writeFile("/big", big);
    EXPECT_EQ(readAll("/big"), big);
    VfsStat st;
    ASSERT_EQ(vfs.stat("/big", st), vfsOk);
    EXPECT_EQ(st.size, big.size());
}

TEST_F(VfsFixture, PreadPwriteAtOffsets)
{
    writeFile("/f", "0123456789");
    int fd = vfs.open("/f", oRdWr);
    ASSERT_GE(fd, 0);
    char buf[4] = {};
    EXPECT_EQ(vfs.pread(fd, buf, 4, 3), 4);
    EXPECT_EQ(std::string(buf, 4), "3456");
    EXPECT_EQ(vfs.pwrite(fd, "XY", 2, 8), 2);
    vfs.close(fd);
    EXPECT_EQ(readAll("/f"), "01234567XY");
}

TEST_F(VfsFixture, SeekSetCurEnd)
{
    writeFile("/f", "abcdef");
    int fd = vfs.open("/f", oRdOnly);
    EXPECT_EQ(vfs.lseek(fd, 2, SeekWhence::Set), 2);
    char c;
    vfs.read(fd, &c, 1);
    EXPECT_EQ(c, 'c');
    EXPECT_EQ(vfs.lseek(fd, 1, SeekWhence::Cur), 4);
    EXPECT_EQ(vfs.lseek(fd, -1, SeekWhence::End), 5);
    vfs.read(fd, &c, 1);
    EXPECT_EQ(c, 'f');
    EXPECT_EQ(vfs.lseek(fd, -99, SeekWhence::Set), vfsInval);
    vfs.close(fd);
}

TEST_F(VfsFixture, AppendModeWritesAtEnd)
{
    writeFile("/log", "one");
    int fd = vfs.open("/log", oWrOnly | oAppend);
    vfs.write(fd, "+two", 4);
    vfs.close(fd);
    EXPECT_EQ(readAll("/log"), "one+two");
}

TEST_F(VfsFixture, TruncateShrinkAndRegrowReadsZeros)
{
    writeFile("/t", "abcdefgh");
    int fd = vfs.open("/t", oRdWr);
    EXPECT_EQ(vfs.ftruncate(fd, 4), vfsOk);
    EXPECT_EQ(vfs.ftruncate(fd, 8), vfsOk);
    char buf[8];
    EXPECT_EQ(vfs.pread(fd, buf, 8, 0), 8);
    EXPECT_EQ(std::memcmp(buf, "abcd\0\0\0\0", 8), 0);
    vfs.close(fd);
}

TEST_F(VfsFixture, OTruncClearsContent)
{
    writeFile("/t", "content");
    int fd = vfs.open("/t", oWrOnly | oTrunc);
    vfs.close(fd);
    VfsStat st;
    vfs.stat("/t", st);
    EXPECT_EQ(st.size, 0u);
}

TEST_F(VfsFixture, UnlinkRemovesFile)
{
    writeFile("/gone", "x");
    EXPECT_EQ(vfs.unlink("/gone"), vfsOk);
    EXPECT_EQ(vfs.open("/gone", oRdOnly), vfsNotFound);
    EXPECT_EQ(vfs.unlink("/gone"), vfsNotFound);
}

TEST_F(VfsFixture, UnlinkDirectoryRejected)
{
    vfs.mkdir("/d");
    EXPECT_EQ(vfs.unlink("/d"), vfsIsDir);
    EXPECT_EQ(vfs.rmdir("/d"), vfsOk);
}

TEST_F(VfsFixture, RmdirNonEmptyRejected)
{
    vfs.mkdir("/d");
    writeFile("/d/f", "x");
    EXPECT_EQ(vfs.rmdir("/d"), vfsNotEmpty);
    vfs.unlink("/d/f");
    EXPECT_EQ(vfs.rmdir("/d"), vfsOk);
}

TEST_F(VfsFixture, ReaddirListsEntries)
{
    vfs.mkdir("/dir");
    writeFile("/dir/a", "1");
    writeFile("/dir/b", "2");
    std::vector<std::string> names;
    ASSERT_EQ(vfs.readdir("/dir", names), vfsOk);
    EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
}

TEST_F(VfsFixture, DescriptorsAreReusedLowestFirst)
{
    writeFile("/f", "x");
    int fd1 = vfs.open("/f", oRdOnly);
    int fd2 = vfs.open("/f", oRdOnly);
    vfs.close(fd1);
    int fd3 = vfs.open("/f", oRdOnly);
    EXPECT_EQ(fd3, fd1);
    vfs.close(fd2);
    vfs.close(fd3);
    EXPECT_EQ(vfs.openCount(), 0u);
}

TEST_F(VfsFixture, BadFdRejected)
{
    char c;
    EXPECT_EQ(vfs.read(-1, &c, 1), vfsBadFd);
    EXPECT_EQ(vfs.read(99, &c, 1), vfsBadFd);
    EXPECT_EQ(vfs.close(99), vfsBadFd);
    EXPECT_EQ(vfs.fsync(99), vfsBadFd);
}

TEST_F(VfsFixture, OpenFileSurvivesUnlink)
{
    // POSIX semantics: data reachable through an open fd after unlink.
    writeFile("/f", "persist");
    int fd = vfs.open("/f", oRdOnly);
    vfs.unlink("/f");
    char buf[7];
    EXPECT_EQ(vfs.read(fd, buf, 7), 7);
    EXPECT_EQ(std::string(buf, 7), "persist");
    vfs.close(fd);
}

TEST(RamfsAllocator, FileDataComesFromCompartmentAllocator)
{
    TlsfAllocator alloc(1024 * 1024);
    auto root = makeRamfs(&alloc);
    Vfs vfs(root);

    int fd = vfs.open("/blob", oCreat | oWrOnly);
    std::string data(3 * RamfsNode::blockSize, 'z');
    vfs.write(fd, data.data(), data.size());
    EXPECT_GE(alloc.stats().liveBytes, 3 * RamfsNode::blockSize);
    vfs.close(fd);

    vfs.unlink("/blob");
    EXPECT_EQ(alloc.stats().liveBytes, 0u); // blocks returned on unlink
}

TEST(RamfsAllocator, ExhaustedAllocatorYieldsNoSpace)
{
    TlsfAllocator alloc(16 * 1024); // tiny heap
    auto root = makeRamfs(&alloc);
    Vfs vfs(root);
    int fd = vfs.open("/f", oCreat | oWrOnly);
    std::string data(64 * 1024, 'x');
    EXPECT_EQ(vfs.write(fd, data.data(), data.size()), vfsNoSpace);
    vfs.close(fd);
}

TEST(VfsCycles, OperationsChargeTheClock)
{
    Machine m;
    MachineScope scope(m);
    Vfs vfs(makeRamfs());
    int fd = vfs.open("/f", oCreat | oWrOnly);
    Cycles before = m.cycles();
    char buf[1024] = {};
    vfs.write(fd, buf, sizeof(buf));
    EXPECT_GT(m.cycles(), before + m.timing.vfsOpBase);
    EXPECT_GE(m.counter("vfs.ops"), 2u);
    vfs.close(fd);
}

} // namespace
} // namespace flexos
