/**
 * @file
 * Application-level and integration tests: RESP/Redis, HTTP/Nginx,
 * minisql (SQL, B+tree, transactions, crash recovery), iPerf — each
 * running end-to-end inside FlexOS images under different isolation
 * configurations.
 */

#include <gtest/gtest.h>

#include "apps/deploy.hh"
#include "apps/http.hh"
#include "apps/iperf.hh"
#include "apps/minisql.hh"
#include "apps/redis.hh"

namespace flexos {
namespace {

const char *redisMpk2 = R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libredis: comp1
- newlib: comp1
- uksched: comp1
- uktime: comp1
- lwip: comp2
)";

const char *noneConfigAllApps = R"(
compartments:
- all:
    mechanism: none
    default: True
libraries:
- libredis: all
- libnginx: all
- libsqlite: all
- libiperf: all
- newlib: all
- uksched: all
- uktime: all
- lwip: all
- vfscore: all
)";

// ----------------------------------------------------------------- RESP

TEST(Resp, ParsesPipelinedCommands)
{
    RespParser p;
    std::string wire = RespParser::command({"SET", "k", "v"}) +
                       RespParser::command({"GET", "k"});
    p.feed(wire.data(), wire.size());
    auto c1 = p.next();
    auto c2 = p.next();
    ASSERT_TRUE(c1 && c2);
    EXPECT_EQ(*c1, (RespCommand{"SET", "k", "v"}));
    EXPECT_EQ(*c2, (RespCommand{"GET", "k"}));
    EXPECT_FALSE(p.next());
}

TEST(Resp, HandlesSplitFeeds)
{
    RespParser p;
    std::string wire = RespParser::command({"GET", "key:42"});
    for (char c : wire)
        p.feed(&c, 1);
    auto cmd = p.next();
    ASSERT_TRUE(cmd);
    EXPECT_EQ((*cmd)[1], "key:42");
}

TEST(Resp, RejectsGarbage)
{
    RespParser p;
    p.feed("HELLO\r\n", 7);
    EXPECT_TRUE(p.errored());
}

TEST(Resp, BinarySafeValues)
{
    RespParser p;
    std::string val("a\0b\r\nc", 6);
    std::string wire = RespParser::command({"SET", "k", val});
    p.feed(wire.data(), wire.size());
    auto cmd = p.next();
    ASSERT_TRUE(cmd);
    EXPECT_EQ((*cmd)[2], val);
}

TEST(RedisDictTest, SetGetDelete)
{
    RedisDict d(8);
    d.set("a", "1");
    d.set("b", "2");
    ASSERT_NE(d.get("a"), nullptr);
    EXPECT_EQ(*d.get("a"), "1");
    EXPECT_EQ(d.get("c"), nullptr);
    EXPECT_TRUE(d.del("a"));
    EXPECT_FALSE(d.del("a"));
    EXPECT_EQ(d.get("a"), nullptr);
    EXPECT_EQ(d.size(), 1u);
}

TEST(RedisDictTest, GrowsPastInitialCapacity)
{
    RedisDict d(8);
    for (int i = 0; i < 1000; ++i)
        d.set("key" + std::to_string(i), std::to_string(i));
    EXPECT_EQ(d.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        const std::string *v = d.get("key" + std::to_string(i));
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, std::to_string(i));
    }
}

TEST(RedisDictTest, OverwriteKeepsSize)
{
    RedisDict d;
    d.set("k", "1");
    d.set("k", "2");
    EXPECT_EQ(d.size(), 1u);
    EXPECT_EQ(*d.get("k"), "2");
}

// ----------------------------------------------------- Redis end-to-end

TEST(RedisServerTest, ServesGetSetOverTcpUnderMpk)
{
    Deployment dep(redisMpk2);
    dep.start();
    RedisServer server(dep.libc(), 6379);
    server.start();

    std::string reply;
    Thread *cli = dep.scheduler().spawn("cli", [&] {
        TcpSocket *s = dep.clientStack().connect(makeIp(10, 0, 0, 1),
                                                 6379);
        ASSERT_NE(s, nullptr);
        std::string wire = RespParser::command({"SET", "city", "lausanne"}) +
                           RespParser::command({"GET", "city"}) +
                           RespParser::command({"GET", "nothere"}) +
                           RespParser::command({"PING"});
        s->send(wire.data(), wire.size());
        char buf[512];
        while (reply.find("PONG") == std::string::npos) {
            long n = s->recv(buf, sizeof(buf));
            if (n <= 0)
                break;
            reply.append(buf, static_cast<std::size_t>(n));
        }
        s->close();
    });
    cli->freeRunning = true;

    ASSERT_TRUE(dep.scheduler().runUntil(
        [&] { return reply.find("PONG") != std::string::npos; }));
    EXPECT_NE(reply.find("+OK"), std::string::npos);
    EXPECT_NE(reply.find("$8\r\nlausanne"), std::string::npos);
    EXPECT_NE(reply.find("$-1"), std::string::npos); // nil for missing
    EXPECT_GE(server.commandsServed(), 4u);
    // The isolation actually engaged: MPK gates were crossed.
    EXPECT_GT(dep.machine().counter("gate.mpk.dss"), 0u);
    server.stop();
    dep.stop();
}

TEST(RedisServerTest, IncrIsCheckedUnderUbsanHardening)
{
    std::string cfg = std::string(redisMpk2);
    // Harden the application component with ubsan.
    cfg.replace(cfg.find("- libredis: comp1"), 17,
                "- libredis: comp1 [ubsan]");
    Deployment dep(cfg);
    dep.start();
    RedisServer server(dep.libc(), 6379);
    server.start();

    std::string reply;
    Thread *cli = dep.scheduler().spawn("cli", [&] {
        TcpSocket *s = dep.clientStack().connect(makeIp(10, 0, 0, 1),
                                                 6379);
        std::string wire =
            RespParser::command(
                {"SET", "n", std::to_string(INT64_MAX)}) +
            RespParser::command({"INCR", "n"});
        s->send(wire.data(), wire.size());
        char buf[256];
        while (reply.find("\r\n-ERR") == std::string::npos &&
               reply.find("overflow") == std::string::npos) {
            long n = s->recv(buf, sizeof(buf));
            if (n <= 0)
                break;
            reply.append(buf, static_cast<std::size_t>(n));
        }
        s->close();
    });
    cli->freeRunning = true;
    // The overflow must be *detected* (server replies with an error or
    // the worker records the violation), not silently wrap.
    dep.scheduler().runUntil(
        [&] { return reply.find("overflow") != std::string::npos; },
        2'000'000);
    EXPECT_NE(reply.find("overflow"), std::string::npos);
    server.stop();
    dep.stop();
}

TEST(RedisBenchmark, ProducesThroughput)
{
    Deployment dep(noneConfigAllApps);
    dep.start();
    RedisBenchmarkResult res =
        runRedisGetBenchmark(dep.image(), dep.libc(), dep.clientStack(),
                             500, 8, 50);
    EXPECT_EQ(res.requests, 500u);
    EXPECT_GT(res.requestsPerSec, 10'000.0);
    dep.stop();
}

TEST(RedisBenchmark, IsolationCostsThroughput)
{
    double baseline, isolated;
    {
        Deployment dep(noneConfigAllApps);
        dep.start();
        baseline = runRedisGetBenchmark(dep.image(), dep.libc(),
                                        dep.clientStack(), 400, 8, 50)
                       .requestsPerSec;
        dep.stop();
    }
    {
        Deployment dep(redisMpk2);
        dep.start();
        isolated = runRedisGetBenchmark(dep.image(), dep.libc(),
                                        dep.clientStack(), 400, 8, 50)
                       .requestsPerSec;
        dep.stop();
    }
    EXPECT_LT(isolated, baseline);
    EXPECT_GT(isolated, baseline * 0.3); // but not catastrophic
}

// ------------------------------------------------------------------ HTTP

TEST(Http, ParserHandlesKeepAliveAndClose)
{
    HttpParser p;
    std::string wire = "GET /a HTTP/1.1\r\nHost: x\r\n\r\n"
                       "GET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
    p.feed(wire.data(), wire.size());
    auto r1 = p.next();
    auto r2 = p.next();
    ASSERT_TRUE(r1 && r2);
    EXPECT_EQ(r1->path, "/a");
    EXPECT_TRUE(r1->keepAlive);
    EXPECT_EQ(r2->path, "/b");
    EXPECT_FALSE(r2->keepAlive);
}

TEST(Http, ParserRejectsMalformedRequestLine)
{
    HttpParser p;
    p.feed("NOT-HTTP\r\n\r\n", 12);
    EXPECT_TRUE(p.errored());
}

TEST(HttpServerTest, ServesFilesFromRamfs)
{
    Deployment dep(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libnginx: comp1
- newlib: comp1
- uksched: comp1
- lwip: comp2
- vfscore: comp2
)");
    dep.writeFile("/www/index.html", "<h1>flexos</h1>");
    dep.start();
    HttpServer server(dep.libc(), "/www", 80);
    server.start();

    std::string reply;
    Thread *cli = dep.scheduler().spawn("cli", [&] {
        TcpSocket *s = dep.clientStack().connect(makeIp(10, 0, 0, 1), 80);
        std::string req = "GET / HTTP/1.1\r\nHost: t\r\n\r\n"
                          "GET /missing HTTP/1.1\r\nHost: t\r\n\r\n"
                          "GET /../etc HTTP/1.1\r\nHost: t\r\n\r\n";
        s->send(req.data(), req.size());
        char buf[1024];
        while (reply.find("403") == std::string::npos) {
            long n = s->recv(buf, sizeof(buf));
            if (n <= 0)
                break;
            reply.append(buf, static_cast<std::size_t>(n));
        }
        s->close();
    });
    cli->freeRunning = true;
    ASSERT_TRUE(dep.scheduler().runUntil(
        [&] { return reply.find("403") != std::string::npos; }));
    EXPECT_NE(reply.find("200 OK"), std::string::npos);
    EXPECT_NE(reply.find("<h1>flexos</h1>"), std::string::npos);
    EXPECT_NE(reply.find("404 Not Found"), std::string::npos);
    EXPECT_NE(reply.find("403 Forbidden"), std::string::npos);
    server.stop();
    dep.stop();
}

TEST(HttpBenchmark, ProducesThroughput)
{
    Deployment dep(noneConfigAllApps);
    dep.writeFile("/www/index.html", std::string(512, 'x'));
    dep.start();
    HttpBenchmarkResult res = runHttpBenchmark(
        dep.image(), dep.libc(), dep.clientStack(), 300);
    EXPECT_EQ(res.requests, 300u);
    EXPECT_GT(res.requestsPerSec, 10'000.0);
    dep.stop();
}

// --------------------------------------------------------------- minisql

struct SqlFixture : ::testing::Test
{
    SqlFixture()
        : dep(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libsqlite: comp1
- newlib: comp1
- uksched: comp1
- uktime: comp1
- vfscore: comp2
)",
              DeployOptions{.withNet = false})
    {
    }

    /** Run body inside libsqlite's compartment and wait for it. */
    void
    inApp(std::function<void()> body)
    {
        bool done = false;
        dep.image().spawnIn("libsqlite", "sql", [&] {
            body();
            done = true;
        });
        ASSERT_TRUE(dep.scheduler().runUntil([&] { return done; }));
    }

    Deployment dep;
};

TEST_F(SqlFixture, CreateInsertSelect)
{
    inApp([&] {
        minisql::Database db(dep.libc(), "/test.db");
        db.open();
        auto r = db.exec("CREATE TABLE t (id INTEGER, name TEXT)");
        ASSERT_TRUE(r.ok) << r.error;
        ASSERT_TRUE(db.exec("INSERT INTO t VALUES (1, 'ada')").ok);
        ASSERT_TRUE(db.exec("INSERT INTO t VALUES (2, 'grace')").ok);

        r = db.exec("SELECT * FROM t");
        ASSERT_TRUE(r.ok);
        ASSERT_EQ(r.rows.size(), 2u);
        EXPECT_EQ(minisql::valueToString(r.rows[0][1]), "ada");
        EXPECT_EQ(minisql::valueToString(r.rows[1][1]), "grace");

        r = db.exec("SELECT * FROM t WHERE name = 'grace'");
        ASSERT_TRUE(r.ok);
        ASSERT_EQ(r.rows.size(), 1u);
        EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 2);

        r = db.exec("SELECT COUNT(*) FROM t");
        ASSERT_TRUE(r.ok);
        EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 2);
        db.close();
    });
}

TEST_F(SqlFixture, ErrorsAreReportedNotFatal)
{
    inApp([&] {
        minisql::Database db(dep.libc(), "/e.db");
        db.open();
        EXPECT_FALSE(db.exec("SELECT * FROM missing").ok);
        EXPECT_FALSE(db.exec("DROP TABLE x").ok);
        EXPECT_FALSE(db.exec("INSERT INTO nowhere VALUES (1)").ok);
        db.exec("CREATE TABLE t (a INTEGER)");
        EXPECT_FALSE(db.exec("CREATE TABLE t (a INTEGER)").ok);
        EXPECT_FALSE(db.exec("INSERT INTO t VALUES (1, 2)").ok);
        db.close();
    });
}

TEST_F(SqlFixture, DataPersistsAcrossReopen)
{
    inApp([&] {
        {
            minisql::Database db(dep.libc(), "/p.db");
            db.open();
            db.exec("CREATE TABLE kv (k TEXT, v INTEGER)");
            for (int i = 0; i < 50; ++i)
                db.exec("INSERT INTO kv VALUES ('key" +
                        std::to_string(i) + "', " + std::to_string(i) +
                        ")");
            db.close();
        }
        minisql::Database db(dep.libc(), "/p.db");
        db.open();
        auto r = db.exec("SELECT COUNT(*) FROM kv");
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 50);
        r = db.exec("SELECT * FROM kv WHERE k = 'key7'");
        ASSERT_EQ(r.rows.size(), 1u);
        EXPECT_EQ(std::get<std::int64_t>(r.rows[0][1]), 7);
        db.close();
    });
}

TEST_F(SqlFixture, ExplicitTransactionRollback)
{
    inApp([&] {
        minisql::Database db(dep.libc(), "/txn.db");
        db.open();
        db.exec("CREATE TABLE t (x INTEGER)");
        db.exec("INSERT INTO t VALUES (1)");

        ASSERT_TRUE(db.exec("BEGIN").ok);
        db.exec("INSERT INTO t VALUES (2)");
        db.exec("INSERT INTO t VALUES (3)");
        ASSERT_TRUE(db.exec("ROLLBACK").ok);

        auto r = db.exec("SELECT COUNT(*) FROM t");
        EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 1);

        ASSERT_TRUE(db.exec("BEGIN").ok);
        db.exec("INSERT INTO t VALUES (2)");
        ASSERT_TRUE(db.exec("COMMIT").ok);
        r = db.exec("SELECT COUNT(*) FROM t");
        EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 2);
        db.close();
    });
}

TEST_F(SqlFixture, BtreeSurvivesManyInsertsAndSplits)
{
    inApp([&] {
        minisql::Database db(dep.libc(), "/big.db");
        db.open();
        db.exec("CREATE TABLE t (n INTEGER, tag TEXT)");
        const int rows = 500; // forces multiple leaf + inner splits
        for (int i = 0; i < rows; ++i) {
            auto r = db.exec("INSERT INTO t VALUES (" +
                             std::to_string(i) + ", 'row" +
                             std::to_string(i) + "')");
            ASSERT_TRUE(r.ok) << i << ": " << r.error;
        }
        auto r = db.exec("SELECT COUNT(*) FROM t");
        EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), rows);

        // Scan order must be rowid order.
        r = db.exec("SELECT * FROM t");
        ASSERT_EQ(r.rows.size(), static_cast<std::size_t>(rows));
        for (int i = 0; i < rows; ++i)
            EXPECT_EQ(std::get<std::int64_t>(r.rows[i][0]), i);
        db.close();
    });
}

TEST_F(SqlFixture, HotJournalRecoveryRestoresPreCrashState)
{
    inApp([&] {
        // Simulate a crash mid-transaction: journal the pre-image of a
        // page, scribble on the database, and "crash" without commit.
        {
            minisql::Database db(dep.libc(), "/crash.db");
            db.open();
            db.exec("CREATE TABLE t (x INTEGER)");
            db.exec("INSERT INTO t VALUES (42)");
            db.close();
        }
        {
            // Open a raw pager and leave a hot journal behind.
            minisql::Pager pager(dep.libc(), "/crash.db");
            pager.open();
            pager.begin();
            auto &page = pager.getMutable(0);
            page.fill(0xff); // corrupt the catalog in the cache...
            // ...and push it to disk, as a crashed writer could have.
            pager.commitDirtyForTest();
        }
        // Reopening must roll back from the journal: data intact.
        minisql::Database db(dep.libc(), "/crash.db");
        db.open();
        auto r = db.exec("SELECT COUNT(*) FROM t");
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(std::get<std::int64_t>(r.rows[0][0]), 1);
        db.close();
    });
}

TEST_F(SqlFixture, EachAutoCommitInsertWritesAndDropsJournal)
{
    inApp([&] {
        minisql::Database db(dep.libc(), "/j.db");
        db.open();
        db.exec("CREATE TABLE t (x INTEGER)");
        std::uint64_t before =
            dep.machine().counter("vfs.ops");
        db.exec("INSERT INTO t VALUES (1)");
        std::uint64_t after = dep.machine().counter("vfs.ops");
        // journal open+write+fsync+close + page writes + db fsync +
        // journal unlink: a filesystem-intensive transaction.
        EXPECT_GE(after - before, 8u);
        VfsStat st;
        EXPECT_EQ(dep.vfs().stat("/j.db-journal", st), vfsNotFound);
        db.close();
    });
}

TEST(SqlTokenizer, HandlesLiteralsAndPunctuation)
{
    auto toks = minisql::tokenize(
        "INSERT INTO t VALUES (1, 'two words', -3);");
    std::vector<std::string> expect{"INSERT", "INTO", "t",
                                    "VALUES", "(",    "1",
                                    ",",      "'two words",
                                    ",",      "-3",   ")",
                                    ";"};
    EXPECT_EQ(toks, expect);
}

// ----------------------------------------------------------------- iperf

TEST(Iperf, TransfersAllBytes)
{
    Deployment dep(noneConfigAllApps);
    dep.start();
    IperfResult res = runIperf(dep.image(), dep.libc(),
                               dep.clientStack(), 256 * 1024, 4096);
    EXPECT_EQ(res.bytes, 256u * 1024);
    EXPECT_GT(res.gbitPerSec, 0.01);
    dep.stop();
}

TEST(Iperf, MultiFlowAggregateHolds)
{
    double single;
    {
        Deployment dep(noneConfigAllApps);
        dep.start();
        single = runIperf(dep.image(), dep.libc(), dep.clientStack(),
                          128 * 1024, 8192)
                     .gbitPerSec;
        dep.stop();
    }
    Deployment dep(noneConfigAllApps);
    dep.start();
    IperfResult res = runIperfMulti(dep.image(), dep.libc(),
                                    dep.clientStack(), 128 * 1024, 8192,
                                    8);
    dep.stop();
    // All eight flows complete in full...
    EXPECT_EQ(res.flows, 8u);
    EXPECT_EQ(res.bytes, 8u * 128 * 1024);
    // ...and on the single simulated core the aggregate goodput holds
    // near the single-flow figure rather than collapsing under the
    // extra demux/accept work.
    EXPECT_GT(res.gbitPerSec, single * 0.7);
}

TEST(RedisBenchmark, MultiConnectionServesAllRequests)
{
    Deployment dep(noneConfigAllApps);
    dep.start();
    RedisBenchmarkResult res =
        runRedisGetBenchmark(dep.image(), dep.libc(), dep.clientStack(),
                             500, 8, 50, 6379, 8);
    EXPECT_EQ(res.requests, 500u);
    EXPECT_EQ(res.connections, 8u);
    EXPECT_GT(res.requestsPerSec, 10'000.0);
    dep.stop();
}

TEST(Iperf, LargerBuffersAreFaster)
{
    auto run = [](std::size_t bufSize) {
        Deployment dep(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libiperf: comp1
- newlib: comp2
- uksched: comp2
- lwip: comp2
)");
        dep.start();
        IperfResult r = runIperf(dep.image(), dep.libc(),
                                 dep.clientStack(), 256 * 1024, bufSize);
        dep.stop();
        return r.gbitPerSec;
    };
    double small = run(64);
    double large = run(8192);
    EXPECT_GT(large, small); // batching amortizes the gate crossings
}

} // namespace
} // namespace flexos
