/**
 * @file
 * Unit and property tests for the TLSF and Lea allocators: alignment,
 * reuse, coalescing, exhaustion, and randomized stress with invariant
 * checking, run over both implementations via a typed/parameterized
 * suite.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "base/rng.hh"
#include "machine/machine.hh"
#include "ukalloc/lea.hh"
#include "ukalloc/tlsf.hh"

namespace flexos {
namespace {

enum class Kind { Tlsf, Lea };

std::unique_ptr<Allocator>
makeAllocator(Kind k, std::size_t bytes)
{
    if (k == Kind::Tlsf)
        return std::make_unique<TlsfAllocator>(bytes);
    return std::make_unique<LeaAllocator>(bytes);
}

void
checkConsistency(Allocator &a)
{
    if (auto *t = dynamic_cast<TlsfAllocator *>(&a))
        t->checkConsistency();
    else if (auto *l = dynamic_cast<LeaAllocator *>(&a))
        l->checkConsistency();
}

class AllocatorTest : public ::testing::TestWithParam<Kind>
{
};

TEST_P(AllocatorTest, BasicAllocFree)
{
    auto a = makeAllocator(GetParam(), 64 * 1024);
    void *p = a->alloc(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xab, 100);
    EXPECT_GE(a->blockSize(p), 100u);
    a->free(p);
    EXPECT_EQ(a->stats().allocs, 1u);
    EXPECT_EQ(a->stats().frees, 1u);
    checkConsistency(*a);
}

TEST_P(AllocatorTest, ReturnsAlignedPointers)
{
    auto a = makeAllocator(GetParam(), 64 * 1024);
    for (std::size_t sz : {1u, 7u, 16u, 33u, 100u, 1000u}) {
        void *p = a->alloc(sz);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % allocAlign, 0u)
            << "size " << sz;
    }
    checkConsistency(*a);
}

TEST_P(AllocatorTest, DistinctLiveBlocksDoNotOverlap)
{
    auto a = makeAllocator(GetParam(), 256 * 1024);
    std::vector<std::pair<char *, std::size_t>> live;
    for (int i = 0; i < 50; ++i) {
        std::size_t sz = 16 + 13 * static_cast<std::size_t>(i);
        auto *p = static_cast<char *>(a->alloc(sz));
        ASSERT_NE(p, nullptr);
        for (auto &[q, qsz] : live)
            EXPECT_TRUE(p + sz <= q || q + qsz <= p) << "overlap";
        live.emplace_back(p, sz);
    }
    checkConsistency(*a);
}

TEST_P(AllocatorTest, FreedMemoryIsReused)
{
    auto a = makeAllocator(GetParam(), 64 * 1024);
    void *p = a->alloc(128);
    a->free(p);
    void *q = a->alloc(128);
    EXPECT_EQ(p, q); // same-size refill should land on the same block
}

TEST_P(AllocatorTest, CoalescingAllowsLargeRefill)
{
    auto a = makeAllocator(GetParam(), 64 * 1024);
    // Fragment the heap, then free everything: a near-arena-size
    // allocation must succeed again, proving frees coalesced.
    std::vector<void *> ps;
    for (int i = 0; i < 64; ++i) {
        void *p = a->alloc(512);
        ASSERT_NE(p, nullptr);
        ps.push_back(p);
    }
    for (void *p : ps)
        a->free(p);
    checkConsistency(*a);
    void *big = a->alloc(48 * 1024);
    EXPECT_NE(big, nullptr);
}

TEST_P(AllocatorTest, ExhaustionReturnsNull)
{
    auto a = makeAllocator(GetParam(), 16 * 1024);
    std::vector<void *> ps;
    while (void *p = a->alloc(1024))
        ps.push_back(p);
    EXPECT_GE(ps.size(), 8u);
    EXPECT_GT(a->stats().failed, 0u);
    for (void *p : ps)
        a->free(p);
    checkConsistency(*a);
}

TEST_P(AllocatorTest, DoubleFreePanics)
{
    auto a = makeAllocator(GetParam(), 16 * 1024);
    void *p = a->alloc(64);
    a->free(p);
    EXPECT_THROW(a->free(p), PanicError);
}

TEST_P(AllocatorTest, FreeNullIsNoop)
{
    auto a = makeAllocator(GetParam(), 16 * 1024);
    EXPECT_NO_THROW(a->free(nullptr));
}

TEST_P(AllocatorTest, LiveBytesTrackPeak)
{
    auto a = makeAllocator(GetParam(), 64 * 1024);
    void *p = a->alloc(1024);
    void *q = a->alloc(2048);
    std::size_t peak = a->stats().liveBytes;
    a->free(p);
    a->free(q);
    EXPECT_EQ(a->stats().liveBytes, 0u);
    EXPECT_EQ(a->stats().peakBytes, peak);
}

TEST_P(AllocatorTest, ChargesCyclesWhenMachinePresent)
{
    Machine m;
    MachineScope scope(m);
    auto a = makeAllocator(GetParam(), 16 * 1024);
    Cycles before = m.cycles();
    void *p = a->alloc(64);
    EXPECT_GT(m.cycles(), before);
    a->free(p);
    EXPECT_GT(a->stats().steps, 0u);
}

TEST_P(AllocatorTest, WritesNeverCorruptNeighbours)
{
    auto a = makeAllocator(GetParam(), 128 * 1024);
    std::map<char *, std::pair<std::size_t, char>> live;
    Rng rng(7);
    for (int round = 0; round < 400; ++round) {
        if (live.size() < 20 && rng.chance(3, 5)) {
            std::size_t sz = 1 + rng.below(600);
            auto *p = static_cast<char *>(a->alloc(sz));
            if (p) {
                char tag = static_cast<char>(rng.below(256));
                std::memset(p, tag, sz);
                live[p] = {sz, tag};
            }
        } else if (!live.empty()) {
            auto it = live.begin();
            std::advance(it, rng.below(live.size()));
            auto [sz, tag] = it->second;
            for (std::size_t i = 0; i < sz; ++i)
                ASSERT_EQ(it->first[i], tag) << "corruption at " << i;
            a->free(it->first);
            live.erase(it);
        }
    }
    checkConsistency(*a);
}

/** Randomized stress: invariants hold after every 64 operations. */
TEST_P(AllocatorTest, RandomStressKeepsInvariants)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        auto a = makeAllocator(GetParam(), 512 * 1024);
        Rng rng(seed);
        std::vector<void *> live;
        for (int i = 0; i < 3000; ++i) {
            if (live.empty() || rng.chance(11, 20)) {
                std::size_t sz = 1 + rng.below(4000);
                void *p = a->alloc(sz);
                if (p)
                    live.push_back(p);
            } else {
                std::size_t idx = rng.below(live.size());
                a->free(live[idx]);
                live[idx] = live.back();
                live.pop_back();
            }
            if (i % 64 == 0)
                checkConsistency(*a);
        }
        for (void *p : live)
            a->free(p);
        checkConsistency(*a);
        EXPECT_EQ(a->stats().liveBytes, 0u) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Allocators, AllocatorTest,
                         ::testing::Values(Kind::Tlsf, Kind::Lea),
                         [](const auto &info) {
                             return info.param == Kind::Tlsf ? "Tlsf"
                                                             : "Lea";
                         });

TEST(TlsfSpecific, ExternalArenaIsUsed)
{
    std::vector<char> arena(32 * 1024);
    TlsfAllocator a(arena.data(), arena.size());
    auto *p = static_cast<char *>(a.alloc(100));
    ASSERT_NE(p, nullptr);
    EXPECT_GE(p, arena.data());
    EXPECT_LT(p, arena.data() + arena.size());
}

TEST(LeaSpecific, DesignatedVictimMakesRepeatCyclesCheap)
{
    // The dlmalloc fast path: repeated same-size alloc/free settles into
    // very few steps per op — the property behind CubicleOS' allocator
    // advantage in the paper's Figure 10 discussion.
    LeaAllocator a(256 * 1024);
    void *warm = a.alloc(100);
    a.free(warm);
    std::uint64_t before = a.stats().steps;
    for (int i = 0; i < 100; ++i)
        a.free(a.alloc(100));
    std::uint64_t perOp = (a.stats().steps - before) / 200;
    EXPECT_LE(perOp, 4u);
}

TEST(AllocatorComparison, LeaCheaperThanTlsfOnSqlitePattern)
{
    // The pattern the SQLite benchmark produces: bursts of short-lived
    // equal-size allocations (journal pages / cell buffers).
    TlsfAllocator tlsf(512 * 1024);
    LeaAllocator lea(512 * 1024);
    auto run = [](Allocator &a) {
        for (int txn = 0; txn < 500; ++txn) {
            void *j = a.alloc(4096);
            void *c = a.alloc(256);
            a.free(c);
            a.free(j);
        }
        return a.stats().steps;
    };
    EXPECT_LT(run(lea), run(tlsf));
}

} // namespace
} // namespace flexos
