/**
 * @file
 * Mixed-mechanism (heterogeneous isolation) tests: per-boundary gate
 * dispatch through the callee compartment's backend, per-mechanism
 * boot/shutdown, range-aware MMU checks, EPT shutdown with servers
 * still blocked in RPC bodies, and sim-stack reaping on thread exit.
 */

#include <gtest/gtest.h>

#include "apps/deploy.hh"
#include "apps/iperf.hh"
#include "core/image.hh"
#include "core/toolchain.hh"

namespace flexos {
namespace {

/** MPK default + EPT network + unisolated libc compartment. */
const char *threeMechConfig = R"(
compartments:
- trusted:
    mechanism: intel-mpk
    default: True
- net:
    mechanism: vm-ept
- loose:
    mechanism: none
libraries:
- libredis: trusted
- uksched: trusted
- lwip: net
- newlib: loose
)";

struct MixedFixture : ::testing::Test
{
    MixedFixture()
        : scope(mach), sched(mach), reg(LibraryRegistry::standard()),
          tc(reg)
    {
    }

    std::unique_ptr<Image>
    buildFrom(const std::string &text)
    {
        SafetyConfig cfg = SafetyConfig::parse(text);
        cfg.heapBytes = 1 << 20;
        cfg.sharedHeapBytes = 1 << 20;
        return tc.build(mach, sched, cfg);
    }

    Machine mach;
    MachineScope scope;
    Scheduler sched;
    LibraryRegistry reg;
    Toolchain tc;
};

// ------------------------------------------------- per-boundary gates

TEST_F(MixedFixture, BootsOneBackendPerMechanism)
{
    auto img = buildFrom(threeMechConfig);
    EXPECT_EQ(img->backendCount(), 3u);
    EXPECT_EQ(img->backendFor(0).mechanism(), Mechanism::IntelMpk);
    EXPECT_EQ(img->backendFor(1).mechanism(), Mechanism::VmEpt);
    EXPECT_EQ(img->backendFor(2).mechanism(), Mechanism::None);
    EXPECT_NE(&img->backendFor(0), &img->backendFor(1));
    // Backends are flavour-agnostic: the MPK gate flavour is carried
    // by each boundary's GatePolicy, not baked into the backend.
    EXPECT_EQ(img->backendNames(), std::string("intel-mpk+vm-ept+none"));
    img->shutdown();
}

/**
 * The acceptance regression for per-boundary dispatch: under the old
 * single-backend image every crossing used compartment 0's mechanism
 * (here: all-MPK), so gate.ept and gate.none stayed zero.
 */
TEST_F(MixedFixture, CrossingsUseCalleeCompartmentsBackend)
{
    auto img = buildFrom(threeMechConfig);
    bool done = false;
    img->spawnIn("libredis", "t", [&] {
        // trusted -> net: the callee is EPT-backed -> RPC gate.
        img->gate("lwip", "recv", [] {});
        // trusted -> loose: callee unisolated -> plain-call gate.
        img->gate("newlib", "memcpy", [&] {
            // loose -> trusted: callee is MPK -> MPK gate.
            img->gate("uksched", "yield", [] {});
        });
        done = true;
    });
    sched.runUntil([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_EQ(mach.counter("gate.ept"), 1u);
    EXPECT_EQ(mach.counter("gate.none"), 1u);
    EXPECT_EQ(mach.counter("gate.mpk.dss"), 1u);

    // And the per-(from, to) ledger agrees boundary by boundary.
    const auto &xs = img->gateCrossings();
    EXPECT_EQ(xs.at({0, 1}), 1u); // trusted -> net   (EPT)
    EXPECT_EQ(xs.at({0, 2}), 1u); // trusted -> loose (none)
    EXPECT_EQ(xs.at({2, 0}), 1u); // loose -> trusted (MPK)
    img->shutdown();
}

TEST_F(MixedFixture, EptEntryCheckAppliesOnlyAtEptBoundary)
{
    auto img = buildFrom(threeMechConfig);
    bool rejected = false, looseRan = false;
    img->spawnIn("libredis", "t", [&] {
        // Crossing into the EPT compartment validates entry points...
        try {
            img->gate("lwip", "internal_tcp_input", [] {});
        } catch (const CfiViolation &) {
            rejected = true;
        }
        // ...crossing into the unhardened 'none' compartment does not.
        img->gate("newlib", "not_an_entry_point",
                  [&] { looseRan = true; });
    });
    sched.runUntil([&] { return looseRan; });
    EXPECT_TRUE(rejected);
    EXPECT_TRUE(looseRan);
    img->shutdown();
}

TEST_F(MixedFixture, ToolchainReportNamesPerBoundaryGates)
{
    auto img = buildFrom(threeMechConfig);
    const BuildReport &rep = tc.report();
    EXPECT_EQ(rep.backendName, std::string("intel-mpk+vm-ept+none"));

    // The gate plan names the callee boundary's mechanism: calls into
    // lwip (net) are EPT RPC gates, calls into uksched (trusted) are
    // MPK gates, calls into newlib (loose) are plain-call gates.
    bool eptGate = false, mpkGate = false, noneGate = false;
    for (const std::string &t : rep.transformations) {
        if (t.find("flexos_gate(lwip") != std::string::npos &&
            t.find("vm-ept gate") != std::string::npos)
            eptGate = true;
        if (t.find("flexos_gate(uksched") != std::string::npos &&
            t.find("intel-mpk(dss) gate") != std::string::npos)
            mpkGate = true;
        if (t.find("flexos_gate(newlib") != std::string::npos &&
            t.find("none gate") != std::string::npos)
            noneGate = true;
    }
    EXPECT_TRUE(eptGate);
    EXPECT_TRUE(mpkGate);
    EXPECT_TRUE(noneGate);

    // The linker script records each compartment's mechanism.
    EXPECT_NE(rep.linkerScript.find("mechanism intel-mpk"),
              std::string::npos);
    EXPECT_NE(rep.linkerScript.find("mechanism vm-ept"),
              std::string::npos);
    EXPECT_NE(rep.linkerScript.find("backends: intel-mpk+vm-ept"),
              std::string::npos);
    // ...and the full (from, to) policy matrix.
    EXPECT_NE(rep.linkerScript.find("gate-policy matrix"),
              std::string::npos);
    EXPECT_NE(rep.linkerScript.find("trusted -> net : vm-ept"),
              std::string::npos);
    img->shutdown();
}

TEST_F(MixedFixture, IsolationStillHoldsAcrossMixedBoundaries)
{
    auto img = buildFrom(threeMechConfig);
    // EPT compartment memory is still keyed: an MPK-compartment thread
    // cannot read lwip's private heap directly.
    int *secret = nullptr;
    bool faulted = false, done = false;
    img->spawnIn("libredis", "t", [&] {
        img->gate("lwip", "recv", [&] {
            secret = static_cast<int *>(img->heapOf("lwip").alloc(16));
            img->store(secret, 7);
        });
        try {
            img->load(secret);
        } catch (const ProtectionFault &) {
            faulted = true;
        }
        done = true;
    });
    sched.runUntil([&] { return done; });
    EXPECT_TRUE(faulted);
    img->shutdown();
}

// ---------------------------------------------- range-aware MMU check

TEST_F(MixedFixture, CheckAccessCatchesWriteExtendingIntoDeniedRegion)
{
    // Regression: the old point lookup consulted only the region
    // containing the first byte, so a 16-byte write starting 8 bytes
    // before a denied region sailed through.
    alignas(16) static char arena[128];
    mach.memMap.add(arena + 8, 64, 3, "denied");
    mach.pkru = Pkru::allowing({0});
    EXPECT_THROW(mach.checkAccess(arena, 16, AccessType::Write),
                 ProtectionFault);
    EXPECT_EQ(mach.violations, 1u);
    // The same access entirely before the region passes.
    EXPECT_NO_THROW(mach.checkAccess(arena, 8, AccessType::Write));
    mach.memMap.remove(arena + 8);
}

TEST_F(MixedFixture, CheckAccessCrossesPermittedIntoDeniedRegion)
{
    alignas(16) static char arena[128];
    mach.memMap.add(arena, 64, 0, "mine");
    mach.memMap.add(arena + 64, 64, 3, "theirs");
    mach.pkru = Pkru::allowing({0});
    // Starts in permitted memory, runs into the denied region.
    EXPECT_THROW(mach.checkAccess(arena + 56, 16, AccessType::Read),
                 ProtectionFault);
    EXPECT_NO_THROW(mach.checkAccess(arena + 48, 16, AccessType::Read));
    mach.memMap.remove(arena);
    mach.memMap.remove(arena + 64);
}

// ------------------------------------------------------- EPT shutdown

TEST_F(MixedFixture, EptShutdownCancelsServerBlockedInRpcBody)
{
    auto img = buildFrom(threeMechConfig);
    WaitQueue never(sched); // nobody ever signals this
    bool inBody = false;
    Thread *caller = img->spawnIn("libredis", "caller", [&] {
        img->gate("lwip", "recv", [&] {
            inBody = true;
            never.wait(); // an RPC that will not complete
        });
    });
    ASSERT_TRUE(sched.runUntil([&] { return inBody; }));

    // The bounded drain cannot finish this server; teardown must
    // unwind it instead of destroying the rings under its feet.
    img->shutdown();
    EXPECT_EQ(mach.counter("gate.ept.shutdownCancels"), 1u);

    // The caller observes the cancellation and unwinds cleanly.
    sched.run();
    EXPECT_EQ(caller->state(), Thread::State::Finished);
    EXPECT_FALSE(caller->failed()) << caller->error();
}

TEST_F(MixedFixture, EptShutdownDrainsQueuedRpcs)
{
    auto img = buildFrom(threeMechConfig);
    WaitQueue never(sched);
    int inBody = 0;
    std::vector<Thread *> callers;
    // Ten callers into one VM: the pool grows elastically from the
    // base 2 up to the cap of 8, every server blocks inside a body,
    // and the last two RPCs sit queued in the ring.
    for (int i = 0; i < 10; ++i) {
        callers.push_back(img->spawnIn(
            "libredis", "caller-" + std::to_string(i), [&] {
                img->gate("lwip", "recv", [&] {
                    ++inBody;
                    never.wait();
                });
            }));
    }
    EXPECT_FALSE(sched.run()); // everything is blocked
    ASSERT_EQ(inBody, 8);
    EXPECT_EQ(mach.counter("gate.ept.elasticSpawns"), 6u);

    // Shutdown must cancel all busy servers AND fail the queued RPCs —
    // otherwise their callers wait on doneWait forever.
    img->shutdown();
    EXPECT_EQ(mach.counter("gate.ept.shutdownCancels"), 8u);
    EXPECT_EQ(mach.counter("gate.ept.shutdownDrained"), 2u);

    sched.run();
    for (Thread *t : callers) {
        EXPECT_EQ(t->state(), Thread::State::Finished);
        EXPECT_FALSE(t->failed()) << t->error();
    }
}

// --------------------------------------------------- sim-stack reaping

TEST_F(MixedFixture, SimStacksReapedWhenThreadsExit)
{
    auto img = buildFrom(R"(
compartments:
- comp1:
    mechanism: intel-mpk
    default: True
- comp2:
    mechanism: intel-mpk
libraries:
- libredis: comp1
- lwip: comp2
)");
    std::size_t baseline = mach.memMap.count();

    // A 100-thread storm: every thread's first DSS-gate crossing lazily
    // registers a private+shadow stack pair for (thread, comp2).
    for (int i = 0; i < 100; ++i) {
        img->spawnIn("libredis", "worker-" + std::to_string(i), [&] {
            img->gate("lwip", "recv", [] {});
        });
    }
    sched.run();

    // All workers finished: their stacks (and memMap regions) are gone,
    // so long-running images don't accrete dead regions that slow every
    // MMU lookup.
    EXPECT_EQ(mach.memMap.count(), baseline);
    EXPECT_GE(mach.counter("image.simStackReaps"), 100u);
    img->shutdown();
}

// ------------------------------------------- deployment under load

TEST_F(MixedFixture, MixedDeploymentServesMultiFlowIperf)
{
    DeployOptions opts;
    opts.withFs = false;
    opts.heapBytes = 2 * 1024 * 1024;
    opts.sharedHeapBytes = 1 * 1024 * 1024;
    Deployment dep(R"(
compartments:
- app:
    mechanism: intel-mpk
    default: True
- sys:
    mechanism: intel-mpk
- net:
    mechanism: vm-ept
libraries:
- libiperf: app
- newlib: sys
- uksched: sys
- lwip: net
)",
                   opts);
    dep.start();
    IperfResult res =
        runIperfMulti(dep.image(), dep.libc(), dep.clientStack(),
                      16 * 1024, 2048, /*flows=*/4, /*port=*/5201);

    EXPECT_EQ(res.bytes, 4u * 16 * 1024);
    EXPECT_GT(res.gbitPerSec, 0.0);
    // Both mechanisms carried traffic on their own boundaries.
    EXPECT_GT(dep.machine().counter("gate.ept"), 0u);
    EXPECT_GT(dep.machine().counter("gate.mpk.dss"), 0u);

    // All per-connection fibers from the first run exited and their
    // sim stacks were reaped; only long-lived threads (pollers, RPC
    // servers — including elastically spawned ones) may still hold
    // stacks, and they build them lazily. The region count must
    // therefore reach a fixed point over identical runs instead of
    // growing per run — the unbounded-accretion regression.
    EXPECT_GT(dep.machine().counter("image.simStackReaps"), 0u);
    std::size_t prev = dep.machine().memMap.count();
    int stableRuns = 0;
    for (int run = 0; run < 6 && stableRuns < 2; ++run) {
        IperfResult res2 = runIperfMulti(
            dep.image(), dep.libc(), dep.clientStack(), 16 * 1024,
            2048, /*flows=*/4, /*port=*/static_cast<uint16_t>(5202 + run));
        EXPECT_EQ(res2.bytes, 4u * 16 * 1024);
        std::size_t now = dep.machine().memMap.count();
        stableRuns = now == prev ? stableRuns + 1 : 0;
        prev = now;
    }
    dep.stop();
    EXPECT_GE(stableRuns, 2);
}

} // namespace
} // namespace flexos

